//! # torch2chip
//!
//! A from-scratch Rust reproduction of **Torch2Chip** (Meng et al., MLSys
//! 2024): an end-to-end customizable DNN compression and deployment
//! toolkit for prototype hardware accelerator design.
//!
//! This façade crate re-exports the whole workspace:
//!
//! | crate | role |
//! |---|---|
//! | [`tensor`] | n-dim CPU tensors (f32 training / i32 integer paths) |
//! | [`autograd`] | tape-based reverse-mode AD with STE hooks |
//! | [`nn`] | layers and the ResNet / MobileNet-V1 / ViT model zoo |
//! | [`optim`] | SGD / AdamW and LR schedules |
//! | [`data`] | synthetic vision datasets, augmentation, loaders |
//! | [`core`] | **the toolkit**: Dual-Path quantizers, fusion, MulQuant, integer models, trainers |
//! | [`sparse`] | magnitude / GraNet / N:M pruners and the sparse trainer |
//! | [`ssl`] | Barlow-Twins + cross-distillation pre-training |
//! | [`export`] | `.t2cm` model files, hex/binary/decimal memory images |
//! | [`accel`] | behavioural MAC-array accelerator simulator |
//! | [`obs`] | opt-in profiling: counters, histograms, JSON reports (`T2C_PROFILE=1`) |
//! | [`lint`] | static integer-pipeline verifier + quantization-error certifier (`t2c-check` CLI) |
//! | [`serve`] | batched integer-inference serving runtime (`t2c-serve` binary) |
//! | [`cluster`] | replicated, sharded serving tier: placement, health-aware routing, hedging, rolling updates (`t2c-cluster` binary) |
//!
//! ## The five-line workflow (paper §3.4)
//!
//! ```
//! use torch2chip::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = SynthVision::generate(&SynthVisionConfig::tiny(3, 12));
//! let mut rng = TensorRng::seed_from(0);
//! let model = MobileNetV1::new(&mut rng, MobileNetConfig::tiny(3));
//!
//! // 1–2) pick a trainer and fit
//! let qnn = QMobileNet::from_float(&model, &QuantFactory::minmax(QuantConfig::wa(8)));
//! QatTrainer::new(TrainConfig::quick(1)).fit(&qnn, &data)?;
//! // 3–5) convert, fuse and extract the integer-only model
//! let (chip, report) = T2C::new(&qnn).nn2chip(FuseScheme::PreFuse)?;
//! assert!(report.weight_bytes > 0);
//! assert!(chip.len() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use t2c_accel as accel;
pub use t2c_autograd as autograd;
pub use t2c_cluster as cluster;
pub use t2c_core as core;
pub use t2c_data as data;
pub use t2c_export as export;
pub use t2c_lint as lint;
pub use t2c_nn as nn;
pub use t2c_obs as obs;
pub use t2c_optim as optim;
pub use t2c_serve as serve;
pub use t2c_sparse as sparse;
pub use t2c_ssl as ssl;
pub use t2c_tensor as tensor;

/// Everything needed for the common workflows, in one import.
pub mod prelude {
    pub use t2c_accel::{Accelerator, AcceleratorConfig};
    pub use t2c_autograd::{Graph, Param, Var};
    pub use t2c_cluster::{Cluster, ClusterConfig};
    pub use t2c_core::qmodels::{QMobileNet, QResNet, QViT, QuantFactory, QuantModel};
    pub use t2c_core::trainer::{
        dual_path_divergence, evaluate, evaluate_int, FpTrainer, PtqMethod, PtqPipeline,
        QatTrainer, TrainConfig,
    };
    pub use t2c_core::{
        Arena, ExecPlan, FixedPointFormat, FuseScheme, IntModel, MulQuant, PathMode, QuantConfig,
        QuantSpec, T2C,
    };
    pub use t2c_data::{Augment, AugmentConfig, BatchIter, SynthVision, SynthVisionConfig};
    pub use t2c_export::{export_package, verify_package, CertifiedError};
    pub use t2c_lint::{
        certify_model, lint_model, lint_package, ErrorBoundConfig, ErrorReport, LintReport,
    };
    pub use t2c_nn::models::{MobileNetConfig, MobileNetV1, ResNet, ResNetConfig, ViT, ViTConfig};
    pub use t2c_nn::Module;
    pub use t2c_optim::{AdamW, Optimizer, Sgd};
    pub use t2c_serve::{BatchConfig, ModelRegistry, ServeError, Server, ServerConfig};
    pub use t2c_sparse::{
        prunable_weights, GraNetPruner, NmPruner, Pruner, SparseTrainer, SparseTrainerConfig,
    };
    pub use t2c_ssl::{FineTuner, SslConfig, SslMethod, SslTrainer};
    pub use t2c_tensor::rng::TensorRng;
    pub use t2c_tensor::{num_threads, set_num_threads, with_threads, Tensor};
}
