//! # t2c-autograd
//!
//! A tape-based reverse-mode automatic differentiation engine over
//! [`t2c_tensor::Tensor`].
//!
//! Torch2Chip's "Dual-Path" design needs a training path in which
//! *non-differentiable* quantization operations (rounding, clipping,
//! bit-discretization) participate in gradient descent through
//! **straight-through estimators** (STE). This engine therefore exposes:
//!
//! * the usual differentiable primitives (arithmetic, matmul, convolution,
//!   pooling, normalization, softmax, losses),
//! * STE primitives ([`Var::round_ste`], [`Var::clamp_ste`],
//!   [`Var::detach`]), and
//! * a [`Var::custom`] escape hatch with which the quantizer crate installs
//!   exact custom gradients (PACT's clip-threshold gradient, LSQ's scale
//!   gradient, AdaRound's soft-rounding gradient, …).
//!
//! ## Example
//!
//! ```
//! use t2c_autograd::{Graph, Param};
//! use t2c_tensor::Tensor;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let w = Param::new("w", Tensor::from_vec(vec![2.0_f32], &[1])?);
//! let g = Graph::new();
//! let x = g.leaf(Tensor::from_vec(vec![3.0_f32], &[1])?);
//! let y = g.param(&w).mul(&x)?.square().mean_all(); // y = (w·x)²
//! y.backward()?;
//! // dy/dw = 2·w·x² = 36
//! assert_eq!(w.grad().as_slice(), &[36.0]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod param;
mod var;

pub mod gradcheck;

pub use graph::Graph;
pub use param::Param;
pub use var::Var;

/// Convenience alias for this crate's `Result`.
pub type Result<T> = std::result::Result<T, t2c_tensor::TensorError>;
