//! Elementwise arithmetic and activation functions on [`Var`].

use crate::{Result, Var};

impl Var {
    /// Broadcasting addition.
    ///
    /// # Errors
    ///
    /// Returns an error if shapes do not broadcast.
    pub fn add(&self, other: &Var) -> Result<Var> {
        self.binary_broadcast(other, |a, b| a + b, |_, _| 1.0, |_, _| 1.0)
    }

    /// Broadcasting subtraction.
    ///
    /// # Errors
    ///
    /// Returns an error if shapes do not broadcast.
    pub fn sub(&self, other: &Var) -> Result<Var> {
        self.binary_broadcast(other, |a, b| a - b, |_, _| 1.0, |_, _| -1.0)
    }

    /// Broadcasting multiplication.
    ///
    /// # Errors
    ///
    /// Returns an error if shapes do not broadcast.
    pub fn mul(&self, other: &Var) -> Result<Var> {
        self.binary_broadcast(other, |a, b| a * b, |_, b| b, |a, _| a)
    }

    /// Broadcasting division.
    ///
    /// # Errors
    ///
    /// Returns an error if shapes do not broadcast.
    pub fn div(&self, other: &Var) -> Result<Var> {
        self.binary_broadcast(other, |a, b| a / b, |_, b| 1.0 / b, |a, b| -a / (b * b))
    }

    /// Adds a scalar constant.
    pub fn add_scalar(&self, s: f32) -> Var {
        let v = self.value().add_scalar(s);
        self.unary(v, std::clone::Clone::clone)
    }

    /// Multiplies by a scalar constant.
    pub fn mul_scalar(&self, s: f32) -> Var {
        let v = self.value().mul_scalar(s);
        self.unary(v, move |g| g.mul_scalar(s))
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Var {
        self.mul_scalar(-1.0)
    }

    /// Elementwise absolute value (subgradient 0 at 0).
    pub fn abs(&self) -> Var {
        let x = self.value();
        let v = x.abs();
        self.unary(v, move |g| {
            g.zip_map(&x, |gi, xi| {
                gi * if xi > 0.0 {
                    1.0
                } else if xi < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            })
            .expect("abs backward shape")
        })
    }

    /// Elementwise square.
    pub fn square(&self) -> Var {
        let x = self.value();
        let v = x.square();
        self.unary(v, move |g| g.zip_map(&x, |gi, xi| gi * 2.0 * xi).expect("square backward"))
    }

    /// Elementwise natural exponential.
    pub fn exp(&self) -> Var {
        let v = self.value().exp();
        let vc = v.clone();
        self.unary(v, move |g| g.zip_map(&vc, |gi, yi| gi * yi).expect("exp backward"))
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Var {
        let x = self.value();
        let v = x.ln();
        self.unary(v, move |g| g.zip_map(&x, |gi, xi| gi / xi).expect("ln backward"))
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Var {
        let v = self.value().sqrt();
        let vc = v.clone();
        self.unary(v, move |g| {
            g.zip_map(&vc, |gi, yi| gi * 0.5 / yi.max(1e-12)).expect("sqrt backward")
        })
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Var {
        let x = self.value();
        let v = x.relu();
        self.unary(v, move |g| {
            g.zip_map(&x, |gi, xi| if xi > 0.0 { gi } else { 0.0 }).expect("relu backward")
        })
    }

    /// GELU with the tanh approximation and its analytic derivative.
    pub fn gelu(&self) -> Var {
        let x = self.value();
        let v = x.gelu();
        self.unary(v, move |g| {
            g.zip_map(&x, |gi, xi| gi * gelu_derivative(xi)).expect("gelu backward")
        })
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        let v = self.value().sigmoid();
        let vc = v.clone();
        self.unary(v, move |g| {
            g.zip_map(&vc, |gi, si| gi * si * (1.0 - si)).expect("sigmoid backward")
        })
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        let v = self.value().tanh();
        let vc = v.clone();
        self.unary(v, move |g| {
            g.zip_map(&vc, |gi, ti| gi * (1.0 - ti * ti)).expect("tanh backward")
        })
    }

    /// Clamp with the *true* (masked) gradient: zero outside `[lo, hi]`.
    ///
    /// For the straight-through variant used by quantizers see
    /// [`Var::clamp_ste`].
    pub fn clamp(&self, lo: f32, hi: f32) -> Var {
        let x = self.value();
        let v = x.clamp(lo, hi);
        self.unary(v, move |g| {
            g.zip_map(&x, |gi, xi| if xi >= lo && xi <= hi { gi } else { 0.0 })
                .expect("clamp backward")
        })
    }
}

/// Derivative of the tanh-approximated GELU.
fn gelu_derivative(x: f32) -> f32 {
    const A: f32 = 0.797_884_6; // sqrt(2/π)
    const B: f32 = 0.044_715;
    let u = A * (x + B * x * x * x);
    let t = u.tanh();
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * A * (1.0 + 3.0 * B * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;
    use t2c_tensor::Tensor;

    fn leaf(g: &Graph, data: &[f32]) -> Var {
        g.leaf(Tensor::from_vec(data.to_vec(), &[data.len()]).unwrap())
    }

    #[test]
    fn mul_product_rule() {
        let g = Graph::new();
        let a = leaf(&g, &[2.0, 3.0]);
        let b = leaf(&g, &[5.0, 7.0]);
        let y = a.mul(&b).unwrap();
        y.backward().unwrap();
        assert_eq!(a.grad().unwrap().as_slice(), &[5.0, 7.0]);
        assert_eq!(b.grad().unwrap().as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn div_quotient_rule() {
        let g = Graph::new();
        let a = leaf(&g, &[6.0]);
        let b = leaf(&g, &[3.0]);
        let y = a.div(&b).unwrap();
        y.backward().unwrap();
        assert!((a.grad().unwrap().as_slice()[0] - 1.0 / 3.0).abs() < 1e-6);
        assert!((b.grad().unwrap().as_slice()[0] + 6.0 / 9.0).abs() < 1e-6);
    }

    #[test]
    fn broadcast_add_reduces_gradient() {
        let g = Graph::new();
        let a = g.leaf(Tensor::zeros(&[2, 3]));
        let b = g.leaf(Tensor::zeros(&[3]));
        let y = a.add(&b).unwrap();
        y.backward().unwrap();
        assert_eq!(b.grad().unwrap().as_slice(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn relu_masks_gradient() {
        let g = Graph::new();
        let a = leaf(&g, &[-1.0, 2.0]);
        a.relu().backward().unwrap();
        assert_eq!(a.grad().unwrap().as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn clamp_masks_gradient_outside_range() {
        let g = Graph::new();
        let a = leaf(&g, &[-2.0, 0.5, 2.0]);
        a.clamp(-1.0, 1.0).backward().unwrap();
        assert_eq!(a.grad().unwrap().as_slice(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn exp_ln_inverse_gradients() {
        let g = Graph::new();
        let a = leaf(&g, &[2.0]);
        let y = a.exp().ln(); // identity
        y.backward().unwrap();
        assert!((a.grad().unwrap().as_slice()[0] - 1.0).abs() < 1e-5);
    }
}
