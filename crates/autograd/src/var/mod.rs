//! Differentiable variables and the operation library.

mod arith;
mod nn_ops;
mod reduce;
mod shape_ops;
mod ste;

use std::rc::Rc;

use t2c_tensor::{ops, Tensor, TensorError};

use crate::graph::Node;
use crate::{Graph, Result};

/// A handle to one value recorded on a [`Graph`] tape.
///
/// `Var` is cheap to clone. All operations record themselves on the tape so
/// that [`Var::backward`] can replay them in reverse.
#[derive(Clone)]
pub struct Var {
    pub(crate) graph: Graph,
    pub(crate) id: usize,
}

impl Var {
    /// Shared reference to the forward value.
    pub fn value(&self) -> Rc<Tensor<f32>> {
        self.graph.value(self.id)
    }

    /// The graph this variable is recorded on (cheap clone of the handle).
    pub fn graph_handle(&self) -> Graph {
        self.graph.clone()
    }

    /// Deep copy of the forward value.
    pub fn tensor(&self) -> Tensor<f32> {
        (*self.value()).clone()
    }

    /// The value's dimensions.
    pub fn dims(&self) -> Vec<usize> {
        self.value().dims().to_vec()
    }

    /// The gradient accumulated at this node by a previous backward pass.
    pub fn grad(&self) -> Option<Tensor<f32>> {
        self.graph.inner.borrow()[self.id].grad.clone()
    }

    /// Runs backpropagation from this node, seeding with ones.
    ///
    /// For a scalar loss this is the ordinary gradient; for non-scalar roots
    /// it differentiates the *sum* of the root's elements.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from any recorded backward function.
    pub fn backward(&self) -> Result<()> {
        let seed = Tensor::full(self.value().dims(), 1.0);
        self.graph.backward_from(self.id, seed)
    }

    /// Runs backpropagation with an explicit seed gradient.
    ///
    /// # Errors
    ///
    /// Returns an error if `seed` does not match this node's shape.
    pub fn backward_with(&self, seed: Tensor<f32>) -> Result<()> {
        self.graph.backward_from(self.id, seed)
    }

    /// Records a custom operation.
    ///
    /// `inputs` are the operands; `value` is the precomputed forward result;
    /// `backward` maps the output gradient to one gradient per input
    /// *position* (same order as `inputs`). Positions may be omitted to send
    /// no gradient to that input.
    ///
    /// This is the extension point the quantizer crate uses to install
    /// straight-through and learned-step-size gradients.
    ///
    /// # Errors
    ///
    /// Returns an error if `inputs` is empty or the inputs live on
    /// different graphs.
    pub fn custom(
        inputs: &[&Var],
        value: Tensor<f32>,
        backward: impl Fn(&Tensor<f32>) -> Vec<(usize, Tensor<f32>)> + 'static,
    ) -> Result<Var> {
        let first = inputs.first().ok_or_else(|| {
            TensorError::InvalidArgument("custom op requires at least one input".into())
        })?;
        let graph = first.graph.clone();
        let ids: Vec<usize> = inputs
            .iter()
            .map(|v| {
                if !Rc::ptr_eq(&v.graph.inner, &graph.inner) {
                    return Err(TensorError::InvalidArgument(
                        "custom op inputs must share one graph".into(),
                    ));
                }
                Ok(v.id)
            })
            .collect::<Result<_>>()?;
        Ok(graph.push(Node {
            value: Rc::new(value),
            grad: None,
            backward: Some(Box::new(move |g| {
                backward(g).into_iter().map(|(pos, grad)| (ids[pos], grad)).collect()
            })),
            param: None,
        }))
    }

    /// Internal helper: unary op with value `y` and gradient
    /// `g ↦ f(g)` flowing to `self`.
    pub(crate) fn unary(
        &self,
        value: Tensor<f32>,
        grad_fn: impl Fn(&Tensor<f32>) -> Tensor<f32> + 'static,
    ) -> Var {
        let parent = self.id;
        self.graph.push(Node {
            value: Rc::new(value),
            grad: None,
            backward: Some(Box::new(move |g| vec![(parent, grad_fn(g))])),
            param: None,
        })
    }

    /// Internal helper: broadcasting binary elementwise op.
    ///
    /// `d_lhs`/`d_rhs` produce the *local* derivative factor at the
    /// broadcast shape; the helper multiplies by the output gradient and
    /// reduces back to each operand's shape.
    pub(crate) fn binary_broadcast(
        &self,
        other: &Var,
        f: impl Fn(f32, f32) -> f32,
        d_lhs: impl Fn(f32, f32) -> f32 + 'static,
        d_rhs: impl Fn(f32, f32) -> f32 + 'static,
    ) -> Result<Var> {
        let a = self.value();
        let b = other.value();
        let value = ops::broadcast_zip(&a, &b, f)?;
        let (ida, idb) = (self.id, other.id);
        let a_shape = a.shape().clone();
        let b_shape = b.shape().clone();
        let (ac, bc) = (Rc::clone(&a), Rc::clone(&b));
        Ok(self.graph.push(Node {
            value: Rc::new(value),
            grad: None,
            backward: Some(Box::new(move |g| {
                let mut out = Vec::with_capacity(2);
                // local · upstream at broadcast shape, then reduce.
                if let Ok(da) = ops::broadcast_zip(&ac, &bc, &d_lhs)
                    .and_then(|d| g.mul(&d))
                    .and_then(|gg| ops::reduce_to_shape(&gg, &a_shape))
                {
                    out.push((ida, da));
                }
                if let Ok(db) = ops::broadcast_zip(&ac, &bc, &d_rhs)
                    .and_then(|d| g.mul(&d))
                    .and_then(|gg| ops::reduce_to_shape(&gg, &b_shape))
                {
                    out.push((idb, db));
                }
                out
            })),
            param: None,
        }))
    }
}

impl std::fmt::Debug for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Var(id {}, shape {:?})", self.id, self.value().dims())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn custom_op_routes_gradients_by_position() {
        let g = Graph::new();
        let a = g.leaf(Tensor::from_vec(vec![1.0_f32], &[1]).unwrap());
        let b = g.leaf(Tensor::from_vec(vec![2.0_f32], &[1]).unwrap());
        // y = a + 3b with a deliberately custom backward.
        let y = Var::custom(&[&a, &b], Tensor::from_vec(vec![7.0], &[1]).unwrap(), |g| {
            vec![(0, g.clone()), (1, g.mul_scalar(3.0))]
        })
        .unwrap();
        y.backward().unwrap();
        assert_eq!(a.grad().unwrap().as_slice(), &[1.0]);
        assert_eq!(b.grad().unwrap().as_slice(), &[3.0]);
    }

    #[test]
    fn custom_op_rejects_cross_graph_inputs() {
        let g1 = Graph::new();
        let g2 = Graph::new();
        let a = g1.leaf(Tensor::zeros(&[1]));
        let b = g2.leaf(Tensor::zeros(&[1]));
        assert!(Var::custom(&[&a, &b], Tensor::zeros(&[1]), |_| vec![]).is_err());
    }

    #[test]
    fn backward_with_explicit_seed() {
        let g = Graph::new();
        let a = g.leaf(Tensor::from_vec(vec![1.0_f32, 2.0], &[2]).unwrap());
        let y = a.mul_scalar(2.0);
        y.backward_with(Tensor::from_vec(vec![10.0, 100.0], &[2]).unwrap()).unwrap();
        assert_eq!(a.grad().unwrap().as_slice(), &[20.0, 200.0]);
    }
}
