//! Neural-network primitives on [`Var`]: matmul, convolution, pooling and
//! normalization, each with exact backward passes.

use std::rc::Rc;

use t2c_tensor::ops::{
    avg_pool2d, avg_pool2d_backward, col2im, conv2d, global_avg_pool2d, im2col, max_pool2d,
    max_pool2d_backward, Conv2dSpec, PoolSpec,
};
use t2c_tensor::{Tensor, TensorError};

use crate::graph::Node;
use crate::{Result, Var};

impl Var {
    /// Matrix product `[m,k] × [k,n] → [m,n]`.
    ///
    /// # Errors
    ///
    /// Returns an error on rank/shape mismatch.
    pub fn matmul(&self, other: &Var) -> Result<Var> {
        let a = self.value();
        let b = other.value();
        let value = a.matmul(&b)?;
        let (ida, idb) = (self.id, other.id);
        Ok(self.graph.push(Node {
            value: Rc::new(value),
            grad: None,
            backward: Some(Box::new(move |g| {
                let ga = g.matmul(&b.transpose().expect("matmul bwd")).expect("matmul bwd a");
                let gb = a.transpose().expect("matmul bwd").matmul(g).expect("matmul bwd b");
                vec![(ida, ga), (idb, gb)]
            })),
            param: None,
        }))
    }

    /// Batched matrix product `[b,m,k] × [b,k,n] → [b,m,n]`.
    ///
    /// # Errors
    ///
    /// Returns an error on rank/shape mismatch.
    pub fn bmm(&self, other: &Var) -> Result<Var> {
        let a = self.value();
        let b = other.value();
        let value = a.bmm(&b)?;
        let (ida, idb) = (self.id, other.id);
        Ok(self.graph.push(Node {
            value: Rc::new(value),
            grad: None,
            backward: Some(Box::new(move |g| {
                let bt = b.permute(&[0, 2, 1]).expect("bmm bwd");
                let at = a.permute(&[0, 2, 1]).expect("bmm bwd");
                let ga = g.bmm(&bt).expect("bmm bwd a");
                let gb = at.bmm(g).expect("bmm bwd b");
                vec![(ida, ga), (idb, gb)]
            })),
            param: None,
        }))
    }

    /// Grouped 2-D convolution `[N,C,H,W] ⊛ [OC,C/g,KH,KW]` (no bias; add a
    /// broadcast bias separately).
    ///
    /// # Errors
    ///
    /// Returns an error on geometry mismatch.
    pub fn conv2d(&self, weight: &Var, spec: Conv2dSpec) -> Result<Var> {
        let x = self.value();
        let w = weight.value();
        let value = conv2d(&x, &w, None, spec)?;
        let (idx, idw) = (self.id, weight.id);
        Ok(self.graph.push(Node {
            value: Rc::new(value),
            grad: None,
            backward: Some(Box::new(move |g| {
                let (gx, gw) = conv2d_backward(&x, &w, g, spec).expect("conv2d backward");
                vec![(idx, gx), (idw, gw)]
            })),
            param: None,
        }))
    }

    /// Max pooling over `[N,C,H,W]`.
    ///
    /// # Errors
    ///
    /// Returns an error on geometry mismatch.
    pub fn max_pool2d(&self, spec: PoolSpec) -> Result<Var> {
        let x = self.value();
        let (value, argmax) = max_pool2d(&x, spec)?;
        let in_dims = x.dims().to_vec();
        Ok(self.unary(value, move |g| {
            max_pool2d_backward(g, &argmax, &in_dims).expect("max_pool2d backward")
        }))
    }

    /// Average pooling over `[N,C,H,W]`.
    ///
    /// # Errors
    ///
    /// Returns an error on geometry mismatch.
    pub fn avg_pool2d(&self, spec: PoolSpec) -> Result<Var> {
        let x = self.value();
        let value = avg_pool2d(&x, spec)?;
        let in_dims = x.dims().to_vec();
        Ok(self.unary(value, move |g| {
            avg_pool2d_backward(g, &in_dims, spec).expect("avg_pool2d backward")
        }))
    }

    /// Global average pooling `[N,C,H,W] → [N,C]`.
    ///
    /// # Errors
    ///
    /// Returns an error for non-rank-4 input.
    pub fn global_avg_pool2d(&self) -> Result<Var> {
        let x = self.value();
        let value = global_avg_pool2d(&x)?;
        let dims = x.dims().to_vec();
        let inv = 1.0 / (dims[2] * dims[3]) as f32;
        Ok(self.unary(value, move |g| {
            let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
            let mut out = Tensor::<f32>::zeros(&dims);
            let os = out.as_mut_slice();
            let gs = g.as_slice();
            for img in 0..n {
                for ch in 0..c {
                    let gv = gs[img * c + ch] * inv;
                    let base = (img * c + ch) * h * w;
                    for v in &mut os[base..base + h * w] {
                        *v = gv;
                    }
                }
            }
            out
        }))
    }

    /// Training-mode BatchNorm over `[N,C,H,W]` with batch statistics.
    ///
    /// Returns the normalized output plus the batch `(mean, var)` per
    /// channel so the caller can maintain running statistics.
    ///
    /// # Errors
    ///
    /// Returns an error on rank/shape mismatch.
    pub fn batch_norm2d(
        &self,
        gamma: &Var,
        beta: &Var,
        eps: f32,
    ) -> Result<(Var, Tensor<f32>, Tensor<f32>)> {
        let x = self.value();
        if x.rank() != 4 {
            return Err(TensorError::RankMismatch {
                got: x.rank(),
                expected: 4,
                op: "batch_norm2d",
            });
        }
        let (n, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
        let gv = gamma.value();
        let bv = beta.value();
        if gv.numel() != c || bv.numel() != c {
            return Err(TensorError::ShapeMismatch {
                lhs: gv.dims().to_vec(),
                rhs: vec![c],
                op: "batch_norm2d gamma/beta",
            });
        }
        let (mean, var) = x.channel_stats()?;
        let m = (n * h * w) as f32;
        // xhat = (x − μ)/σ, y = γ·xhat + β
        let mut xhat = Tensor::<f32>::zeros(x.dims());
        let mut y = Tensor::<f32>::zeros(x.dims());
        let inv_std: Vec<f32> = var.as_slice().iter().map(|&v| 1.0 / (v + eps).sqrt()).collect();
        {
            let xs = x.as_slice();
            let xh = xhat.as_mut_slice();
            let ys = y.as_mut_slice();
            for img in 0..n {
                for (ch, &is) in inv_std.iter().enumerate() {
                    let base = (img * c + ch) * h * w;
                    let mu = mean.as_slice()[ch];
                    let (ga, be) = (gv.as_slice()[ch], bv.as_slice()[ch]);
                    for i in base..base + h * w {
                        let xx = (xs[i] - mu) * is;
                        xh[i] = xx;
                        ys[i] = ga * xx + be;
                    }
                }
            }
        }
        let (idx, idg, idb) = (self.id, gamma.id, beta.id);
        let xhat_rc = Rc::new(xhat);
        let xhat_b = Rc::clone(&xhat_rc);
        let out = self.graph.push(Node {
            value: Rc::new(y),
            grad: None,
            backward: Some(Box::new(move |g| {
                // Standard BN backward:
                //   gβ_c   = Σ g
                //   gγ_c   = Σ g·xhat
                //   gx     = γ/σ · (g − gβ/m − xhat·gγ/m)
                let gs = g.as_slice();
                let xh = xhat_b.as_slice();
                let mut gbeta = vec![0f32; c];
                let mut ggamma = vec![0f32; c];
                for img in 0..n {
                    for ch in 0..c {
                        let base = (img * c + ch) * h * w;
                        for i in base..base + h * w {
                            gbeta[ch] += gs[i];
                            ggamma[ch] += gs[i] * xh[i];
                        }
                    }
                }
                let mut gx = Tensor::<f32>::zeros(&[n, c, h, w]);
                {
                    let gxs = gx.as_mut_slice();
                    for img in 0..n {
                        for ch in 0..c {
                            let base = (img * c + ch) * h * w;
                            let coeff = gv.as_slice()[ch] * inv_std[ch];
                            let mb = gbeta[ch] / m;
                            let mg = ggamma[ch] / m;
                            for i in base..base + h * w {
                                gxs[i] = coeff * (gs[i] - mb - xh[i] * mg);
                            }
                        }
                    }
                }
                vec![
                    (idx, gx),
                    (idg, Tensor::from_vec(ggamma, &[c]).expect("bn ggamma")),
                    (idb, Tensor::from_vec(gbeta, &[c]).expect("bn gbeta")),
                ]
            })),
            param: None,
        });
        Ok((out, mean, var))
    }

    /// LayerNorm over the last axis with learnable per-feature `gamma` and
    /// `beta`.
    ///
    /// # Errors
    ///
    /// Returns an error if `gamma`/`beta` do not match the last axis.
    pub fn layer_norm(&self, gamma: &Var, beta: &Var, eps: f32) -> Result<Var> {
        let x = self.value();
        if x.rank() == 0 {
            return Err(TensorError::RankMismatch { got: 0, expected: 1, op: "layer_norm" });
        }
        let d = x.dim(x.rank() - 1);
        let rows = x.numel() / d;
        let gv = gamma.value();
        let bv = beta.value();
        if gv.numel() != d || bv.numel() != d {
            return Err(TensorError::ShapeMismatch {
                lhs: gv.dims().to_vec(),
                rhs: vec![d],
                op: "layer_norm gamma/beta",
            });
        }
        let mut xhat = Tensor::<f32>::zeros(x.dims());
        let mut y = Tensor::<f32>::zeros(x.dims());
        let mut inv_std = vec![0f32; rows];
        {
            let xs = x.as_slice();
            let xh = xhat.as_mut_slice();
            let ys = y.as_mut_slice();
            for (r, slot) in inv_std.iter_mut().enumerate() {
                let base = r * d;
                let row = &xs[base..base + d];
                let mu: f32 = row.iter().sum::<f32>() / d as f32;
                let var: f32 = row.iter().map(|&v| (v - mu) * (v - mu)).sum::<f32>() / d as f32;
                let is = 1.0 / (var + eps).sqrt();
                *slot = is;
                for j in 0..d {
                    let xx = (row[j] - mu) * is;
                    xh[base + j] = xx;
                    ys[base + j] = gv.as_slice()[j] * xx + bv.as_slice()[j];
                }
            }
        }
        let (idx, idg, idb) = (self.id, gamma.id, beta.id);
        let dims = x.dims().to_vec();
        let xhat_rc = Rc::new(xhat);
        Ok(self.graph.push(Node {
            value: Rc::new(y),
            grad: None,
            backward: Some(Box::new(move |g| {
                let gs = g.as_slice();
                let xh = xhat_rc.as_slice();
                let mut ggamma = vec![0f32; d];
                let mut gbeta = vec![0f32; d];
                let mut gx = vec![0f32; rows * d];
                for (r, &is) in inv_std.iter().enumerate() {
                    let base = r * d;
                    // gh = g·γ (per element); then the LN row Jacobian.
                    let mut sum_gh = 0.0f32;
                    let mut sum_gh_xh = 0.0f32;
                    for j in 0..d {
                        let gh = gs[base + j] * gv.as_slice()[j];
                        sum_gh += gh;
                        sum_gh_xh += gh * xh[base + j];
                        ggamma[j] += gs[base + j] * xh[base + j];
                        gbeta[j] += gs[base + j];
                    }
                    let inv_d = 1.0 / d as f32;
                    for j in 0..d {
                        let gh = gs[base + j] * gv.as_slice()[j];
                        gx[base + j] =
                            is * (gh - sum_gh * inv_d - xh[base + j] * sum_gh_xh * inv_d);
                    }
                }
                vec![
                    (idx, Tensor::from_vec(gx, &dims).expect("ln gx")),
                    (idg, Tensor::from_vec(ggamma, &[d]).expect("ln ggamma")),
                    (idb, Tensor::from_vec(gbeta, &[d]).expect("ln gbeta")),
                ]
            })),
            param: None,
        }))
    }
}

/// Gradient of a grouped conv2d w.r.t. input and weight.
pub(crate) fn conv2d_backward(
    x: &Tensor<f32>,
    w: &Tensor<f32>,
    grad_out: &Tensor<f32>,
    spec: Conv2dSpec,
) -> crate::Result<(Tensor<f32>, Tensor<f32>)> {
    let (n, c, h, wd) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    let (oc, _cg, kh, kw) = (w.dim(0), w.dim(1), w.dim(2), w.dim(3));
    let g = spec.groups;
    let (cg, ocg) = (c / g, oc / g);
    let l = grad_out.dim(2) * grad_out.dim(3);
    let k = cg * kh * kw;
    let cols = im2col(x, kh, kw, spec)?;
    let mut gw = Tensor::<f32>::zeros(w.dims());
    let mut gcols = Tensor::<f32>::zeros(cols.dims());
    let ws = w.as_slice();
    let gos = grad_out.as_slice();
    let cs = cols.as_slice();
    {
        let gws = gw.as_mut_slice();
        let gcs = gcols.as_mut_slice();
        for img in 0..n {
            for grp in 0..g {
                let go_base = img * oc * l + grp * ocg * l;
                let col_base = img * c * kh * kw * l + grp * k * l;
                let w_base = grp * ocg * k;
                for o in 0..ocg {
                    let grow = &gos[go_base + o * l..go_base + (o + 1) * l];
                    // gw[o, p] += Σ_j grow[j] · cols[p, j]
                    for p in 0..k {
                        let crow = &cs[col_base + p * l..col_base + (p + 1) * l];
                        let mut acc = 0.0f32;
                        for j in 0..l {
                            acc += grow[j] * crow[j];
                        }
                        gws[w_base + o * k + p] += acc;
                    }
                    // gcols[p, j] += w[o, p] · grow[j]
                    for p in 0..k {
                        let wv = ws[w_base + o * k + p];
                        if wv == 0.0 {
                            continue;
                        }
                        let gcrow = &mut gcs[col_base + p * l..col_base + (p + 1) * l];
                        for j in 0..l {
                            gcrow[j] += wv * grow[j];
                        }
                    }
                }
            }
        }
    }
    let gx = col2im(&gcols, c, h, wd, kh, kw, spec)?;
    Ok((gx, gw))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;
    use t2c_tensor::rng::TensorRng;

    #[test]
    fn matmul_gradients_match_formula() {
        let g = Graph::new();
        let a = g.leaf(Tensor::from_vec(vec![1.0_f32, 2.0, 3.0, 4.0], &[2, 2]).unwrap());
        let b = g.leaf(Tensor::from_vec(vec![5.0_f32, 6.0, 7.0, 8.0], &[2, 2]).unwrap());
        let y = a.matmul(&b).unwrap();
        y.backward().unwrap();
        // With seed=1s: gA = 1·Bᵀ, gB = Aᵀ·1
        assert_eq!(a.grad().unwrap().as_slice(), &[11.0, 15.0, 11.0, 15.0]);
        assert_eq!(b.grad().unwrap().as_slice(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn conv2d_backward_matches_finite_difference() {
        let mut rng = TensorRng::seed_from(9);
        let x0 = rng.normal(&[1, 2, 5, 5], 0.0, 1.0);
        let w0 = rng.normal(&[3, 2, 3, 3], 0.0, 0.5);
        let spec = Conv2dSpec::new(1, 1);
        let g = Graph::new();
        let x = g.leaf(x0.clone());
        let w = g.leaf(w0.clone());
        let loss = x.conv2d(&w, spec).unwrap().square().mean_all();
        loss.backward().unwrap();
        let gw = w.grad().unwrap();
        // Finite-difference check on a few weight entries.
        let eps = 1e-2;
        for &i in &[0usize, 7, 20, 53] {
            let mut wp = w0.clone();
            wp.as_mut_slice()[i] += eps;
            let mut wm = w0.clone();
            wm.as_mut_slice()[i] -= eps;
            let lp = conv2d(&x0, &wp, None, spec).unwrap().square().mean();
            let lm = conv2d(&x0, &wm, None, spec).unwrap().square().mean();
            let num = (lp - lm) / (2.0 * eps);
            let ana = gw.as_slice()[i];
            assert!((num - ana).abs() < 2e-2, "weight {i}: numeric {num} vs analytic {ana}");
        }
    }

    #[test]
    fn depthwise_conv_backward_finite_difference() {
        let mut rng = TensorRng::seed_from(10);
        let x0 = rng.normal(&[1, 4, 4, 4], 0.0, 1.0);
        let w0 = rng.normal(&[4, 1, 3, 3], 0.0, 0.5);
        let spec = Conv2dSpec::new(1, 1).with_groups(4);
        let g = Graph::new();
        let x = g.leaf(x0.clone());
        let w = g.leaf(w0.clone());
        let loss = x.conv2d(&w, spec).unwrap().square().mean_all();
        loss.backward().unwrap();
        let gx = x.grad().unwrap();
        let eps = 1e-2;
        for &i in &[0usize, 13, 40, 63] {
            let mut xp = x0.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x0.clone();
            xm.as_mut_slice()[i] -= eps;
            let lp = conv2d(&xp, &w0, None, spec).unwrap().square().mean();
            let lm = conv2d(&xm, &w0, None, spec).unwrap().square().mean();
            let num = (lp - lm) / (2.0 * eps);
            let ana = gx.as_slice()[i];
            assert!((num - ana).abs() < 2e-2, "input {i}: numeric {num} vs analytic {ana}");
        }
    }

    #[test]
    fn batch_norm_output_is_standardized() {
        let mut rng = TensorRng::seed_from(11);
        let g = Graph::new();
        let x = g.leaf(rng.normal(&[4, 3, 5, 5], 2.0, 3.0));
        let gamma = g.leaf(Tensor::ones(&[3]));
        let beta = g.leaf(Tensor::zeros(&[3]));
        let (y, mean, var) = x.batch_norm2d(&gamma, &beta, 1e-5).unwrap();
        let (ym, yv) = y.tensor().channel_stats().unwrap();
        for ch in 0..3 {
            assert!(ym.as_slice()[ch].abs() < 1e-4);
            assert!((yv.as_slice()[ch] - 1.0).abs() < 1e-3);
        }
        assert!((mean.as_slice()[0] - 2.0).abs() < 0.5);
        assert!((var.as_slice()[0] - 9.0).abs() < 2.0);
    }

    #[test]
    fn batch_norm_gradient_finite_difference_on_gamma() {
        let mut rng = TensorRng::seed_from(12);
        let x0 = rng.normal(&[2, 2, 3, 3], 0.0, 1.0);
        let gamma0 = Tensor::from_vec(vec![1.5_f32, 0.5], &[2]).unwrap();
        let beta0 = Tensor::from_vec(vec![0.1_f32, -0.2], &[2]).unwrap();
        let target = rng.normal(&[2, 2, 3, 3], 0.0, 1.0);
        let run = |ga: &Tensor<f32>| -> f32 {
            let g = Graph::new();
            let x = g.leaf(x0.clone());
            let gam = g.leaf(ga.clone());
            let bet = g.leaf(beta0.clone());
            let (y, _, _) = x.batch_norm2d(&gam, &bet, 1e-5).unwrap();
            y.mse_loss(&target).unwrap().tensor().item()
        };
        let g = Graph::new();
        let x = g.leaf(x0.clone());
        let gam = g.leaf(gamma0.clone());
        let bet = g.leaf(beta0.clone());
        let (y, _, _) = x.batch_norm2d(&gam, &bet, 1e-5).unwrap();
        y.mse_loss(&target).unwrap().backward().unwrap();
        let ana = gam.grad().unwrap();
        let eps = 1e-3;
        for i in 0..2 {
            let mut gp = gamma0.clone();
            gp.as_mut_slice()[i] += eps;
            let mut gm = gamma0.clone();
            gm.as_mut_slice()[i] -= eps;
            let num = (run(&gp) - run(&gm)) / (2.0 * eps);
            assert!(
                (num - ana.as_slice()[i]).abs() < 1e-2,
                "gamma {i}: numeric {num} vs analytic {}",
                ana.as_slice()[i]
            );
        }
    }

    #[test]
    fn layer_norm_rows_standardized_and_grad_checks() {
        let mut rng = TensorRng::seed_from(13);
        let x0 = rng.normal(&[3, 8], 1.0, 2.0);
        let g = Graph::new();
        let x = g.leaf(x0.clone());
        let gamma = g.leaf(Tensor::ones(&[8]));
        let beta = g.leaf(Tensor::zeros(&[8]));
        let y = x.layer_norm(&gamma, &beta, 1e-5).unwrap();
        let yt = y.tensor();
        for r in 0..3 {
            let row = &yt.as_slice()[r * 8..(r + 1) * 8];
            let mu: f32 = row.iter().sum::<f32>() / 8.0;
            assert!(mu.abs() < 1e-4);
        }
        // Gradient sanity: LN output is invariant to a constant shift of the
        // input row, so the input gradient rows must sum to ~0.
        y.square().mean_all().backward().unwrap();
        let gx = x.grad().unwrap();
        for r in 0..3 {
            let s: f32 = gx.as_slice()[r * 8..(r + 1) * 8].iter().sum();
            assert!(s.abs() < 1e-5, "row {r} grad sum {s}");
        }
    }

    #[test]
    fn pooling_gradients_flow() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_fn(&[1, 1, 4, 4], |i| i as f32));
        let y = x.max_pool2d(PoolSpec::new(2)).unwrap();
        y.sum_all().backward().unwrap();
        let gx = x.grad().unwrap();
        assert_eq!(gx.sum(), 4.0); // one winner per window
        let g2 = Graph::new();
        let x2 = g2.leaf(Tensor::from_fn(&[1, 1, 4, 4], |i| i as f32));
        let y2 = x2.avg_pool2d(PoolSpec::new(2)).unwrap();
        y2.sum_all().backward().unwrap();
        assert!(x2.grad().unwrap().as_slice().iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }

    #[test]
    fn global_avg_pool_gradient() {
        let g = Graph::new();
        let x = g.leaf(Tensor::ones(&[2, 3, 4, 4]));
        let y = x.global_avg_pool2d().unwrap();
        assert_eq!(y.dims(), vec![2, 3]);
        y.sum_all().backward().unwrap();
        assert!(x.grad().unwrap().as_slice().iter().all(|&v| (v - 1.0 / 16.0).abs() < 1e-6));
    }
}
