//! Straight-through estimators — the gradient plumbing that makes
//! non-differentiable quantization ops trainable (paper §3.1).

use crate::Var;

impl Var {
    /// Rounds to the nearest integer in the forward pass; passes the
    /// gradient through unchanged (the classic STE).
    ///
    /// This is the op at the heart of every fake-quantizer's training path:
    /// `w_dq = round(w/S)·S` forwards like the discretized weight but
    /// backpropagates like the identity.
    pub fn round_ste(&self) -> Var {
        let v = self.value().round();
        self.unary(v, std::clone::Clone::clone)
    }

    /// Floors in the forward pass; identity gradient.
    pub fn floor_ste(&self) -> Var {
        let v = self.value().floor();
        self.unary(v, std::clone::Clone::clone)
    }

    /// Clamps into `[lo, hi]` in the forward pass; identity gradient
    /// (contrast with [`Var::clamp`], whose gradient is masked).
    pub fn clamp_ste(&self, lo: f32, hi: f32) -> Var {
        let v = self.value().clamp(lo, hi);
        self.unary(v, std::clone::Clone::clone)
    }

    /// Stops gradient flow: the value continues forward, nothing flows back.
    pub fn detach(&self) -> Var {
        self.graph.leaf(self.tensor())
    }

    /// The fake-quantization residual trick used throughout Torch2Chip's
    /// base quantizer:
    ///
    /// ```text
    /// w_dq = (quantized − w).detach() + w
    /// ```
    ///
    /// Forwards the quantized value exactly while backpropagating as the
    /// identity w.r.t. `self`. `quantized` must be a tensor computed from
    /// `self`'s value (its own graph history, if any, is ignored).
    pub fn ste_from(&self, quantized: t2c_tensor::Tensor<f32>) -> Var {
        self.unary(quantized, std::clone::Clone::clone)
    }
}

#[cfg(test)]
mod tests {
    use crate::Graph;
    use t2c_tensor::Tensor;

    #[test]
    fn round_ste_forwards_rounded_backwards_identity() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![0.4_f32, 1.6, -2.3], &[3]).unwrap());
        let y = x.round_ste();
        assert_eq!(y.tensor().as_slice(), &[0.0, 2.0, -2.0]);
        y.backward().unwrap();
        assert_eq!(x.grad().unwrap().as_slice(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn clamp_ste_passes_gradient_outside_range() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![-5.0_f32, 5.0], &[2]).unwrap());
        let y = x.clamp_ste(-1.0, 1.0);
        assert_eq!(y.tensor().as_slice(), &[-1.0, 1.0]);
        y.backward().unwrap();
        assert_eq!(x.grad().unwrap().as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn detach_blocks_gradient() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![2.0_f32], &[1]).unwrap());
        let y = x.detach().square();
        y.backward().unwrap();
        assert!(x.grad().is_none());
    }

    #[test]
    fn ste_from_swaps_forward_value() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![1.2_f32], &[1]).unwrap());
        let q = Tensor::from_vec(vec![1.0_f32], &[1]).unwrap();
        let y = x.ste_from(q).mul_scalar(3.0);
        assert_eq!(y.tensor().as_slice(), &[3.0]);
        y.backward().unwrap();
        assert_eq!(x.grad().unwrap().as_slice(), &[3.0]);
    }

    #[test]
    fn floor_ste() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![1.9_f32, -0.1], &[2]).unwrap());
        let y = x.floor_ste();
        assert_eq!(y.tensor().as_slice(), &[1.0, -1.0]);
        y.backward().unwrap();
        assert_eq!(x.grad().unwrap().as_slice(), &[1.0, 1.0]);
    }
}
