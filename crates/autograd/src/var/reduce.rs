//! Reductions and row-wise softmax / loss functions on [`Var`].

use std::rc::Rc;

use t2c_tensor::{Tensor, TensorError};

use crate::graph::Node;
use crate::{Result, Var};

impl Var {
    /// Sum of all elements (rank-0 result).
    pub fn sum_all(&self) -> Var {
        let x = self.value();
        let dims = x.dims().to_vec();
        let v = Tensor::scalar(x.sum());
        self.unary(v, move |g| Tensor::full(&dims, g.item()))
    }

    /// Mean of all elements (rank-0 result).
    pub fn mean_all(&self) -> Var {
        let x = self.value();
        let dims = x.dims().to_vec();
        let n = x.numel().max(1) as f32;
        let v = Tensor::scalar(x.mean());
        self.unary(v, move |g| Tensor::full(&dims, g.item() / n))
    }

    /// Sum along `axis`, keeping the axis with extent 1.
    ///
    /// # Errors
    ///
    /// Returns an error for a bad axis.
    pub fn sum_axis(&self, axis: usize) -> Result<Var> {
        let x = self.value();
        let v = x.sum_axis(axis)?;
        let dims = x.dims().to_vec();
        Ok(self.unary(v, move |g| expand_axis(g, axis, &dims, 1.0)))
    }

    /// Mean along `axis`, keeping the axis with extent 1.
    ///
    /// # Errors
    ///
    /// Returns an error for a bad axis.
    pub fn mean_axis(&self, axis: usize) -> Result<Var> {
        let x = self.value();
        let v = x.mean_axis(axis)?;
        let dims = x.dims().to_vec();
        let scale = 1.0 / dims[axis].max(1) as f32;
        Ok(self.unary(v, move |g| expand_axis(g, axis, &dims, scale)))
    }

    /// Row-wise softmax over the last axis, with the exact softmax Jacobian
    /// in the backward pass.
    ///
    /// # Errors
    ///
    /// Returns an error for rank-0 input.
    pub fn softmax_lastdim(&self) -> Result<Var> {
        let x = self.value();
        let y = x.softmax_lastdim()?;
        let yc = y.clone();
        Ok(self.unary(y, move |g| {
            // gx = (g − ⟨g, y⟩_row) ⊙ y
            let cols = yc.dims()[yc.rank() - 1];
            let rows = yc.numel() / cols;
            let mut out = vec![0f32; yc.numel()];
            let (gs, ys) = (g.as_slice(), yc.as_slice());
            for r in 0..rows {
                let base = r * cols;
                let dot: f32 = (0..cols).map(|j| gs[base + j] * ys[base + j]).sum();
                for j in 0..cols {
                    out[base + j] = (gs[base + j] - dot) * ys[base + j];
                }
            }
            Tensor::from_vec(out, yc.dims()).expect("softmax backward shape")
        }))
    }

    /// Mean cross-entropy between row logits `[N, K]` and integer class
    /// labels, with the fused softmax backward.
    ///
    /// # Errors
    ///
    /// Returns an error if the value is not rank 2, `labels.len() != N`, or
    /// any label is out of range.
    pub fn cross_entropy_logits(&self, labels: &[usize]) -> Result<Var> {
        let x = self.value();
        if x.rank() != 2 {
            return Err(TensorError::RankMismatch {
                got: x.rank(),
                expected: 2,
                op: "cross_entropy_logits",
            });
        }
        let (n, k) = (x.dim(0), x.dim(1));
        if labels.len() != n {
            return Err(TensorError::InvalidArgument(format!(
                "expected {n} labels, got {}",
                labels.len()
            )));
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= k) {
            return Err(TensorError::InvalidArgument(format!(
                "label {bad} out of range for {k} classes"
            )));
        }
        let probs = x.softmax_lastdim()?;
        let mut loss = 0.0;
        for (row, &label) in labels.iter().enumerate() {
            loss -= probs.as_slice()[row * k + label].max(1e-12).ln();
        }
        loss /= n as f32;
        let labels = labels.to_vec();
        let parent = self.id;
        Ok(self.graph.push(Node {
            value: Rc::new(Tensor::scalar(loss)),
            grad: None,
            backward: Some(Box::new(move |g| {
                let scale = g.item() / n as f32;
                let mut gx = probs.clone();
                for (row, &label) in labels.iter().enumerate() {
                    let v = gx.as_mut_slice()[row * k + label] - 1.0;
                    gx.as_mut_slice()[row * k + label] = v;
                }
                vec![(parent, gx.mul_scalar(scale))]
            })),
            param: None,
        }))
    }

    /// Mean squared error against a constant target.
    ///
    /// # Errors
    ///
    /// Returns an error if shapes differ.
    pub fn mse_loss(&self, target: &Tensor<f32>) -> Result<Var> {
        let x = self.value();
        if x.dims() != target.dims() {
            return Err(TensorError::ShapeMismatch {
                lhs: x.dims().to_vec(),
                rhs: target.dims().to_vec(),
                op: "mse_loss",
            });
        }
        let diff = x.zip_map(target, |a, b| a - b)?;
        let n = x.numel().max(1) as f32;
        let loss = diff.square().sum() / n;
        let diff_c = diff.clone();
        Ok(self.unary(Tensor::scalar(loss), move |g| diff_c.mul_scalar(2.0 * g.item() / n)))
    }
}

/// Broadcasts a keep-dim reduced gradient back along `axis`, scaled.
fn expand_axis(g: &Tensor<f32>, axis: usize, dims: &[usize], scale: f32) -> Tensor<f32> {
    let outer: usize = dims[..axis].iter().product();
    let mid = dims[axis];
    let inner: usize = dims[axis + 1..].iter().product();
    let gs = g.as_slice();
    let mut out = vec![0f32; outer * mid * inner];
    for o in 0..outer {
        for m in 0..mid {
            let dst = (o * mid + m) * inner;
            let src = o * inner;
            for i in 0..inner {
                out[dst + i] = gs[src + i] * scale;
            }
        }
    }
    Tensor::from_vec(out, dims).expect("expand_axis shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn mean_all_distributes_gradient() {
        let g = Graph::new();
        let a = g.leaf(Tensor::from_vec(vec![1.0_f32, 2.0, 3.0, 4.0], &[2, 2]).unwrap());
        a.mean_all().backward().unwrap();
        assert!(a.grad().unwrap().as_slice().iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }

    #[test]
    fn sum_axis_gradient_broadcasts_back() {
        let g = Graph::new();
        let a = g.leaf(Tensor::from_fn(&[2, 3], |i| i as f32));
        let y = a.sum_axis(1).unwrap();
        assert_eq!(y.dims(), vec![2, 1]);
        y.backward_with(Tensor::from_vec(vec![10.0, 20.0], &[2, 1]).unwrap()).unwrap();
        assert_eq!(a.grad().unwrap().as_slice(), &[10.0, 10.0, 10.0, 20.0, 20.0, 20.0]);
    }

    #[test]
    fn softmax_gradient_sums_to_zero_per_row() {
        let g = Graph::new();
        let a = g.leaf(Tensor::from_vec(vec![1.0_f32, 2.0, 3.0], &[1, 3]).unwrap());
        let y = a.softmax_lastdim().unwrap();
        y.backward_with(Tensor::from_vec(vec![1.0, 0.0, 0.0], &[1, 3]).unwrap()).unwrap();
        let gsum: f32 = a.grad().unwrap().as_slice().iter().sum();
        assert!(gsum.abs() < 1e-6, "softmax grad rows must sum to zero, got {gsum}");
    }

    #[test]
    fn cross_entropy_gradient_is_probs_minus_onehot() {
        let g = Graph::new();
        let a = g.leaf(Tensor::from_vec(vec![0.0_f32, 0.0], &[1, 2]).unwrap());
        let loss = a.cross_entropy_logits(&[1]).unwrap();
        assert!((loss.tensor().item() - (2.0_f32).ln()).abs() < 1e-5);
        loss.backward().unwrap();
        let grad = a.grad().unwrap();
        assert!((grad.as_slice()[0] - 0.5).abs() < 1e-5);
        assert!((grad.as_slice()[1] + 0.5).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_validates_labels() {
        let g = Graph::new();
        let a = g.leaf(Tensor::zeros(&[2, 3]));
        assert!(a.cross_entropy_logits(&[0]).is_err());
        assert!(a.cross_entropy_logits(&[0, 3]).is_err());
    }

    #[test]
    fn mse_loss_gradient() {
        let g = Graph::new();
        let a = g.leaf(Tensor::from_vec(vec![1.0_f32, 2.0], &[2]).unwrap());
        let target = Tensor::from_vec(vec![0.0_f32, 0.0], &[2]).unwrap();
        let loss = a.mse_loss(&target).unwrap();
        assert!((loss.tensor().item() - 2.5).abs() < 1e-6);
        loss.backward().unwrap();
        assert_eq!(a.grad().unwrap().as_slice(), &[1.0, 2.0]);
    }
}
