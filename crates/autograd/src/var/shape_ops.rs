//! Shape manipulation on [`Var`]: reshape, permute, transpose, concat,
//! narrow.

use t2c_tensor::{Tensor, TensorError};

use crate::graph::Node;
use crate::{Result, Var};
use std::rc::Rc;

impl Var {
    /// Reshapes to `dims` (same volume).
    ///
    /// # Errors
    ///
    /// Returns an error if the volumes differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Var> {
        let old_dims = self.value().dims().to_vec();
        let v = self.value().reshape(dims)?;
        Ok(self.unary(v, move |g| g.reshape(&old_dims).expect("reshape backward")))
    }

    /// Permutes axes; the backward applies the inverse permutation.
    ///
    /// # Errors
    ///
    /// Returns an error if `perm` is not a valid permutation.
    pub fn permute(&self, perm: &[usize]) -> Result<Var> {
        let v = self.value().permute(perm)?;
        let mut inverse = vec![0usize; perm.len()];
        for (i, &p) in perm.iter().enumerate() {
            inverse[p] = i;
        }
        Ok(self.unary(v, move |g| g.permute(&inverse).expect("permute backward")))
    }

    /// Transposes a rank-2 value.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrices.
    pub fn transpose(&self) -> Result<Var> {
        let v = self.value().transpose()?;
        Ok(self.unary(v, move |g| g.transpose().expect("transpose backward")))
    }

    /// Concatenates two variables along `axis`; the backward splits the
    /// gradient back.
    ///
    /// # Errors
    ///
    /// Returns an error if shapes are incompatible for concatenation.
    pub fn concat(&self, other: &Var, axis: usize) -> Result<Var> {
        let a = self.value();
        let b = other.value();
        let value = Tensor::concat(&[&a, &b], axis)?;
        let a_dims = a.dims().to_vec();
        let b_dims = b.dims().to_vec();
        let (ida, idb) = (self.id, other.id);
        Ok(self.graph.push(Node {
            value: Rc::new(value),
            grad: None,
            backward: Some(Box::new(move |g| {
                let (ga, gb) = split_axis(g, axis, a_dims[axis], &a_dims, &b_dims);
                vec![(ida, ga), (idb, gb)]
            })),
            param: None,
        }))
    }

    /// Takes the slice `[start, start+len)` along `axis`; the backward
    /// zero-pads the gradient back to the source extent.
    ///
    /// # Errors
    ///
    /// Returns an error if the range exceeds the axis extent.
    pub fn narrow(&self, axis: usize, start: usize, len: usize) -> Result<Var> {
        let x = self.value();
        if axis >= x.rank() {
            return Err(TensorError::AxisOutOfRange { axis, rank: x.rank() });
        }
        if start + len > x.dim(axis) {
            return Err(TensorError::InvalidArgument(format!(
                "narrow range {start}..{} exceeds extent {}",
                start + len,
                x.dim(axis)
            )));
        }
        let src_dims = x.dims().to_vec();
        let mut dst_dims = src_dims.clone();
        dst_dims[axis] = len;
        let value = copy_axis_range(&x, axis, start, len, &dst_dims);
        Ok(self.unary(value, move |g| {
            // Scatter the gradient back into a zero tensor of the source shape.
            let mut out = Tensor::<f32>::zeros(&src_dims);
            scatter_axis_range(&mut out, g, axis, start);
            out
        }))
    }
}

fn copy_axis_range(
    x: &Tensor<f32>,
    axis: usize,
    start: usize,
    len: usize,
    dst_dims: &[usize],
) -> Tensor<f32> {
    let src_dims = x.dims();
    let outer: usize = src_dims[..axis].iter().product();
    let inner: usize = src_dims[axis + 1..].iter().product();
    let src_mid = src_dims[axis];
    let mut data = Vec::with_capacity(outer * len * inner);
    let xs = x.as_slice();
    for o in 0..outer {
        let base = (o * src_mid + start) * inner;
        data.extend_from_slice(&xs[base..base + len * inner]);
    }
    Tensor::from_vec(data, dst_dims).expect("narrow copy shape")
}

fn scatter_axis_range(out: &mut Tensor<f32>, g: &Tensor<f32>, axis: usize, start: usize) {
    let dst_dims = out.dims().to_vec();
    let outer: usize = dst_dims[..axis].iter().product();
    let inner: usize = dst_dims[axis + 1..].iter().product();
    let dst_mid = dst_dims[axis];
    let len = g.dims()[axis];
    let gs = g.as_slice();
    let os = out.as_mut_slice();
    for o in 0..outer {
        let dst_base = (o * dst_mid + start) * inner;
        let src_base = o * len * inner;
        os[dst_base..dst_base + len * inner].copy_from_slice(&gs[src_base..src_base + len * inner]);
    }
}

fn split_axis(
    g: &Tensor<f32>,
    axis: usize,
    split: usize,
    a_dims: &[usize],
    b_dims: &[usize],
) -> (Tensor<f32>, Tensor<f32>) {
    let dims = g.dims();
    let outer: usize = dims[..axis].iter().product();
    let inner: usize = dims[axis + 1..].iter().product();
    let mid = dims[axis];
    let gs = g.as_slice();
    let mut ga = Vec::with_capacity(outer * split * inner);
    let mut gb = Vec::with_capacity(outer * (mid - split) * inner);
    for o in 0..outer {
        let base = o * mid * inner;
        ga.extend_from_slice(&gs[base..base + split * inner]);
        gb.extend_from_slice(&gs[base + split * inner..base + mid * inner]);
    }
    (
        Tensor::from_vec(ga, a_dims).expect("concat backward lhs"),
        Tensor::from_vec(gb, b_dims).expect("concat backward rhs"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn reshape_round_trips_gradient() {
        let g = Graph::new();
        let a = g.leaf(Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]).unwrap());
        let y = a.reshape(&[3, 2]).unwrap().mul_scalar(2.0);
        y.backward().unwrap();
        assert_eq!(a.grad().unwrap().dims(), &[2, 3]);
        assert!(a.grad().unwrap().as_slice().iter().all(|&v| v == 2.0));
    }

    #[test]
    fn permute_backward_uses_inverse() {
        let g = Graph::new();
        let a = g.leaf(Tensor::from_fn(&[2, 3, 4], |i| i as f32));
        let y = a.permute(&[2, 0, 1]).unwrap();
        assert_eq!(y.dims(), vec![4, 2, 3]);
        y.backward_with(y.tensor()).unwrap();
        // With seed == permuted value, the gradient must equal the original.
        assert_eq!(a.grad().unwrap().as_slice(), a.value().as_slice());
    }

    #[test]
    fn concat_splits_gradient() {
        let g = Graph::new();
        let a = g.leaf(Tensor::from_vec(vec![1.0_f32, 2.0], &[1, 2]).unwrap());
        let b = g.leaf(Tensor::from_vec(vec![3.0_f32], &[1, 1]).unwrap());
        let y = a.concat(&b, 1).unwrap();
        assert_eq!(y.dims(), vec![1, 3]);
        y.backward_with(Tensor::from_vec(vec![10.0, 20.0, 30.0], &[1, 3]).unwrap()).unwrap();
        assert_eq!(a.grad().unwrap().as_slice(), &[10.0, 20.0]);
        assert_eq!(b.grad().unwrap().as_slice(), &[30.0]);
    }

    #[test]
    fn narrow_zero_pads_gradient() {
        let g = Graph::new();
        let a = g.leaf(Tensor::from_vec(vec![1.0_f32, 2.0, 3.0, 4.0], &[1, 4]).unwrap());
        let y = a.narrow(1, 1, 2).unwrap();
        assert_eq!(y.tensor().as_slice(), &[2.0, 3.0]);
        y.backward().unwrap();
        assert_eq!(a.grad().unwrap().as_slice(), &[0.0, 1.0, 1.0, 0.0]);
        assert!(a.narrow(1, 3, 2).is_err());
    }
}
