use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use t2c_tensor::Tensor;

/// A trainable tensor that persists across forward/backward passes.
///
/// `Param` is a shared handle (`Clone` is cheap); layers hold one clone,
/// optimizers hold another. Gradients produced by [`crate::Var::backward`]
/// accumulate into the parameter until [`Param::zero_grad`] clears them.
#[derive(Clone)]
pub struct Param {
    inner: Rc<RefCell<ParamInner>>,
}

struct ParamInner {
    name: String,
    value: Tensor<f32>,
    grad: Tensor<f32>,
    trainable: bool,
}

impl Param {
    /// Creates a trainable parameter with a zeroed gradient buffer.
    pub fn new(name: impl Into<String>, value: Tensor<f32>) -> Self {
        let grad = Tensor::zeros(value.dims());
        Param {
            inner: Rc::new(RefCell::new(ParamInner {
                name: name.into(),
                value,
                grad,
                trainable: true,
            })),
        }
    }

    /// Creates a non-trainable parameter (e.g. BatchNorm running statistics):
    /// its gradient buffer exists but optimizers skip it.
    pub fn frozen(name: impl Into<String>, value: Tensor<f32>) -> Self {
        let p = Param::new(name, value);
        p.inner.borrow_mut().trainable = false;
        p
    }

    /// The parameter's diagnostic name.
    pub fn name(&self) -> String {
        self.inner.borrow().name.clone()
    }

    /// Whether optimizers should update this parameter.
    pub fn is_trainable(&self) -> bool {
        self.inner.borrow().trainable
    }

    /// Marks the parameter trainable or frozen.
    pub fn set_trainable(&self, trainable: bool) {
        self.inner.borrow_mut().trainable = trainable;
    }

    /// A copy of the current value.
    pub fn value(&self) -> Tensor<f32> {
        self.inner.borrow().value.clone()
    }

    /// A copy of the accumulated gradient.
    pub fn grad(&self) -> Tensor<f32> {
        self.inner.borrow().grad.clone()
    }

    /// Number of elements in the parameter.
    pub fn numel(&self) -> usize {
        self.inner.borrow().value.numel()
    }

    /// Replaces the value (the gradient buffer is resized to match).
    pub fn set_value(&self, value: Tensor<f32>) {
        let mut inner = self.inner.borrow_mut();
        inner.grad = Tensor::zeros(value.dims());
        inner.value = value;
    }

    /// Adds `delta` into the gradient buffer.
    ///
    /// # Panics
    ///
    /// Panics if the shapes disagree — a gradient with the wrong shape is a
    /// bug in an upstream op, not a recoverable condition.
    pub fn accumulate_grad(&self, delta: &Tensor<f32>) {
        let mut inner = self.inner.borrow_mut();
        inner.grad = inner
            .grad
            .zip_map(delta, |g, d| g + d)
            .expect("gradient shape must match parameter shape");
    }

    /// Clears the gradient buffer to zero.
    pub fn zero_grad(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.grad = Tensor::zeros(inner.value.dims());
    }

    /// Applies an in-place update `value ← f(value, grad)`, used by
    /// optimizers.
    pub fn update(&self, f: impl FnOnce(&Tensor<f32>, &Tensor<f32>) -> Tensor<f32>) {
        let mut inner = self.inner.borrow_mut();
        inner.value = f(&inner.value, &inner.grad);
    }

    /// Mutates the value in place through a closure (used by pruning masks).
    pub fn modify_value(&self, f: impl FnOnce(&mut Tensor<f32>)) {
        f(&mut self.inner.borrow_mut().value);
    }

    /// `true` if both handles point at the same underlying parameter.
    pub fn ptr_eq(&self, other: &Param) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }
}

impl fmt::Debug for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        write!(
            f,
            "Param({}, shape {:?}, trainable: {})",
            inner.name,
            inner.value.dims(),
            inner.trainable
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grad_accumulates_and_clears() {
        let p = Param::new("p", Tensor::zeros(&[2]));
        p.accumulate_grad(&Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        p.accumulate_grad(&Tensor::from_vec(vec![0.5, 0.5], &[2]).unwrap());
        assert_eq!(p.grad().as_slice(), &[1.5, 2.5]);
        p.zero_grad();
        assert_eq!(p.grad().as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn update_applies_closure() {
        let p = Param::new("p", Tensor::from_vec(vec![1.0_f32], &[1]).unwrap());
        p.accumulate_grad(&Tensor::from_vec(vec![0.5_f32], &[1]).unwrap());
        p.update(|v, g| v.sub(&g.mul_scalar(0.1)).unwrap());
        assert!((p.value().as_slice()[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn frozen_params_are_not_trainable() {
        let p = Param::frozen("stats", Tensor::zeros(&[3]));
        assert!(!p.is_trainable());
        p.set_trainable(true);
        assert!(p.is_trainable());
    }

    #[test]
    fn clone_shares_storage() {
        let p = Param::new("p", Tensor::zeros(&[1]));
        let q = p.clone();
        q.set_value(Tensor::from_vec(vec![7.0_f32], &[1]).unwrap());
        assert_eq!(p.value().as_slice(), &[7.0]);
        assert!(p.ptr_eq(&q));
    }
}
