//! Finite-difference gradient checking utilities, used by this crate's own
//! tests and by downstream quantizer tests to validate custom gradients.

use t2c_tensor::Tensor;

use crate::{Param, Result};

/// Result of a gradient check: the worst absolute and relative error seen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheckReport {
    /// Largest absolute difference between numeric and analytic gradients.
    pub max_abs_err: f32,
    /// Largest relative difference (|num − ana| / max(|num|, |ana|, 1e-3)).
    pub max_rel_err: f32,
}

impl GradCheckReport {
    /// `true` if both error bounds are within tolerance.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_abs_err < tol || self.max_rel_err < tol
    }
}

/// Compares the analytic gradient of `param` (produced by running `loss_fn`
/// once with autograd) against central finite differences of the same
/// closure.
///
/// `loss_fn` must build a fresh graph each call and return the scalar loss
/// value. Only `probe_indices` of the parameter are perturbed (exhaustive
/// checks are quadratic).
///
/// # Errors
///
/// Propagates errors from `loss_fn`.
pub fn check_param_grad(
    param: &Param,
    probe_indices: &[usize],
    eps: f32,
    mut loss_fn: impl FnMut() -> Result<f32>,
) -> Result<GradCheckReport> {
    param.zero_grad();
    // One autograd pass: the caller's loss_fn is expected to call backward.
    let _ = loss_fn()?;
    let analytic = param.grad();
    let original = param.value();
    let mut report = GradCheckReport { max_abs_err: 0.0, max_rel_err: 0.0 };
    for &i in probe_indices {
        let mut plus = original.clone();
        plus.as_mut_slice()[i] += eps;
        param.set_value(plus);
        let lp = loss_fn()?;
        let mut minus = original.clone();
        minus.as_mut_slice()[i] -= eps;
        param.set_value(minus);
        let lm = loss_fn()?;
        param.set_value(original.clone());
        let numeric = (lp - lm) / (2.0 * eps);
        let ana = analytic.as_slice()[i];
        let abs = (numeric - ana).abs();
        let rel = abs / numeric.abs().max(ana.abs()).max(1e-3);
        report.max_abs_err = report.max_abs_err.max(abs);
        report.max_rel_err = report.max_rel_err.max(rel);
    }
    // Restore gradient state to the analytic pass for the caller.
    param.zero_grad();
    let _ = loss_fn()?;
    Ok(report)
}

/// Numerically differentiates a scalar function of a tensor at the probe
/// indices (helper for testing ops without parameters).
pub fn numeric_grad(
    x: &Tensor<f32>,
    probe_indices: &[usize],
    eps: f32,
    mut f: impl FnMut(&Tensor<f32>) -> f32,
) -> Vec<f32> {
    probe_indices
        .iter()
        .map(|&i| {
            let mut plus = x.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = x.clone();
            minus.as_mut_slice()[i] -= eps;
            (f(&plus) - f(&minus)) / (2.0 * eps)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn check_param_grad_validates_square_loss() {
        let p = Param::new("p", Tensor::from_vec(vec![1.0_f32, -2.0, 3.0], &[3]).unwrap());
        let pc = p.clone();
        let report = check_param_grad(&p, &[0, 1, 2], 1e-3, move || {
            pc.zero_grad();
            let g = Graph::new();
            let loss = g.param(&pc).square().mean_all();
            loss.backward()?;
            Ok(loss.tensor().item())
        })
        .unwrap();
        assert!(report.passes(1e-2), "{report:?}");
    }

    #[test]
    fn numeric_grad_of_square() {
        let x = Tensor::from_vec(vec![3.0_f32], &[1]).unwrap();
        let g = numeric_grad(&x, &[0], 1e-3, |t| t.square().sum());
        assert!((g[0] - 6.0).abs() < 1e-2);
    }
}
