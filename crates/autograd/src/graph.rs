use std::cell::RefCell;
use std::rc::Rc;

use t2c_tensor::{Tensor, TensorError};

use crate::{Param, Result, Var};

/// A backward function: given the node's output gradient, produce the
/// gradient contribution for each parent as `(parent_id, grad)` pairs.
pub(crate) type BackwardFn = Box<dyn Fn(&Tensor<f32>) -> Vec<(usize, Tensor<f32>)>>;

pub(crate) struct Node {
    pub value: Rc<Tensor<f32>>,
    pub grad: Option<Tensor<f32>>,
    pub backward: Option<BackwardFn>,
    /// Set on leaves created from a [`Param`]; backward accumulates into it.
    pub param: Option<Param>,
}

/// The recording tape for one forward pass.
///
/// A `Graph` is a cheaply clonable handle; every [`Var`] holds one. Typical
/// training code builds a fresh graph per batch:
///
/// ```
/// use t2c_autograd::{Graph, Param};
/// use t2c_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let w = Param::new("w", Tensor::from_vec(vec![1.0_f32, 2.0], &[2])?);
/// for _step in 0..3 {
///     let g = Graph::new();
///     let loss = g.param(&w).square().mean_all();
///     w.zero_grad();
///     loss.backward()?;
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Default)]
pub struct Graph {
    pub(crate) inner: Rc<RefCell<Vec<Node>>>,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    /// `true` if nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().is_empty()
    }

    /// Records a constant leaf: gradients flow *to* it (readable via
    /// [`Var::grad`]) but nowhere further.
    pub fn leaf(&self, value: Tensor<f32>) -> Var {
        self.push(Node { value: Rc::new(value), grad: None, backward: None, param: None })
    }

    /// Records a leaf bound to a trainable [`Param`]; backward accumulates
    /// the leaf gradient into the parameter.
    pub fn param(&self, param: &Param) -> Var {
        self.push(Node {
            value: Rc::new(param.value()),
            grad: None,
            backward: None,
            param: Some(param.clone()),
        })
    }

    pub(crate) fn push(&self, node: Node) -> Var {
        let mut nodes = self.inner.borrow_mut();
        let id = nodes.len();
        nodes.push(node);
        Var { graph: self.clone(), id }
    }

    pub(crate) fn value(&self, id: usize) -> Rc<Tensor<f32>> {
        Rc::clone(&self.inner.borrow()[id].value)
    }

    /// Runs reverse-mode accumulation from `root`, seeding with `seed`.
    ///
    /// # Errors
    ///
    /// Returns an error if `seed`'s shape differs from the root value's
    /// shape, or if any backward contribution has a mismatched shape.
    pub(crate) fn backward_from(&self, root: usize, seed: Tensor<f32>) -> Result<()> {
        {
            let mut nodes = self.inner.borrow_mut();
            let rv = &nodes[root].value;
            if rv.dims() != seed.dims() {
                return Err(TensorError::ShapeMismatch {
                    lhs: rv.dims().to_vec(),
                    rhs: seed.dims().to_vec(),
                    op: "backward seed",
                });
            }
            accumulate(&mut nodes[root].grad, seed)?;
        }
        for id in (0..=root).rev() {
            // Take what we need, then release the borrow before running the
            // user-supplied backward closure.
            let (grad, back) = {
                let mut nodes = self.inner.borrow_mut();
                let node = &mut nodes[id];
                match (&node.grad, node.backward.take()) {
                    (Some(g), Some(b)) => (g.clone(), b),
                    _ => continue,
                }
            };
            let contributions = back(&grad);
            let mut nodes = self.inner.borrow_mut();
            for (parent, g) in contributions {
                debug_assert!(parent < id, "backward edge must point to an earlier node");
                accumulate(&mut nodes[parent].grad, g)?;
            }
            // Reinstall so a second backward pass over an unrelated root
            // still sees the closure.
            nodes[id].backward = Some(back);
        }
        // Flush leaf gradients into parameters.
        let nodes = self.inner.borrow();
        for node in nodes.iter() {
            if let (Some(param), Some(grad)) = (&node.param, &node.grad) {
                param.accumulate_grad(grad);
            }
        }
        Ok(())
    }
}

fn accumulate(slot: &mut Option<Tensor<f32>>, delta: Tensor<f32>) -> Result<()> {
    match slot {
        None => {
            *slot = Some(delta);
            Ok(())
        }
        Some(existing) => {
            *existing = existing.zip_map(&delta, |a, b| a + b)?;
            Ok(())
        }
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Graph({} nodes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_records_value() {
        let g = Graph::new();
        let v = g.leaf(Tensor::from_vec(vec![1.0_f32, 2.0], &[2]).unwrap());
        assert_eq!(v.value().as_slice(), &[1.0, 2.0]);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn param_leaf_accumulates_into_param() {
        let p = Param::new("p", Tensor::from_vec(vec![3.0_f32], &[1]).unwrap());
        let g = Graph::new();
        let loss = g.param(&p).mul_scalar(2.0).mean_all();
        loss.backward().unwrap();
        assert_eq!(p.grad().as_slice(), &[2.0]);
    }

    #[test]
    fn gradients_fan_in_and_accumulate() {
        // y = p + p ⇒ dy/dp = 2
        let p = Param::new("p", Tensor::from_vec(vec![1.0_f32], &[1]).unwrap());
        let g = Graph::new();
        let x = g.param(&p);
        let y = x.add(&x).unwrap().mean_all();
        y.backward().unwrap();
        assert_eq!(p.grad().as_slice(), &[2.0]);
    }

    #[test]
    fn backward_rejects_bad_seed_shape() {
        let g = Graph::new();
        let v = g.leaf(Tensor::zeros(&[2, 2]));
        assert!(g.backward_from(v.id, Tensor::zeros(&[3])).is_err());
    }
}
