//! Property-based tests: analytic gradients must match finite differences
//! for arbitrary inputs across the differentiable op library.

use proptest::prelude::*;
use t2c_autograd::{gradcheck, Graph, Param};
use t2c_tensor::Tensor;

fn values(n: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec((-300i32..300).prop_map(|v| v as f32 / 100.0), n)
}

/// Runs a finite-difference check of `loss_fn` (which must do its own
/// backward pass) against the analytic gradient of `p`.
fn check(p: &Param, probes: &[usize], loss_fn: impl FnMut() -> t2c_autograd::Result<f32>) -> bool {
    gradcheck::check_param_grad(p, probes, 1e-3, loss_fn).is_ok_and(|r| r.passes(0.03))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn elementwise_chain_gradients(vals in values(6)) {
        // loss = mean(sigmoid(x)·tanh(x) + x²)
        let p = Param::new("p", Tensor::from_vec(vals, &[6]).unwrap());
        let pc = p.clone();
        let ok = check(&p, &[0, 2, 5], move || {
            pc.zero_grad();
            let g = Graph::new();
            let x = g.param(&pc);
            let loss = x.sigmoid().mul(&x.tanh())?.add(&x.square())?.mean_all();
            loss.backward()?;
            Ok(loss.tensor().item())
        });
        prop_assert!(ok);
    }

    #[test]
    fn matmul_gradients(vals in values(12)) {
        let p = Param::new("w", Tensor::from_vec(vals, &[3, 4]).unwrap());
        let fixed = Tensor::from_fn(&[4, 2], |i| (i as f32) * 0.3 - 1.0);
        let pc = p.clone();
        let ok = check(&p, &[0, 5, 11], move || {
            pc.zero_grad();
            let g = Graph::new();
            let w = g.param(&pc);
            let loss = w.matmul(&g.leaf(fixed.clone()))?.square().mean_all();
            loss.backward()?;
            Ok(loss.tensor().item())
        });
        prop_assert!(ok);
    }

    #[test]
    fn softmax_cross_entropy_gradients(vals in values(8)) {
        let p = Param::new("logits", Tensor::from_vec(vals, &[2, 4]).unwrap());
        let pc = p.clone();
        let ok = check(&p, &[0, 3, 6], move || {
            pc.zero_grad();
            let g = Graph::new();
            let loss = g.param(&pc).cross_entropy_logits(&[1, 3])?;
            loss.backward()?;
            Ok(loss.tensor().item())
        });
        prop_assert!(ok);
    }

    #[test]
    fn layer_norm_gradients(vals in values(8)) {
        let p = Param::new("x", Tensor::from_vec(vals, &[2, 4]).unwrap());
        let pc = p.clone();
        let target = Tensor::from_fn(&[2, 4], |i| (i as f32) * 0.1);
        let ok = check(&p, &[0, 4, 7], move || {
            pc.zero_grad();
            let g = Graph::new();
            let gamma = g.leaf(Tensor::from_fn(&[4], |i| 1.0 + i as f32 * 0.1));
            let beta = g.leaf(Tensor::zeros(&[4]));
            let loss = g.param(&pc).layer_norm(&gamma, &beta, 1e-5)?.mse_loss(&target)?;
            loss.backward()?;
            Ok(loss.tensor().item())
        });
        prop_assert!(ok);
    }

    #[test]
    fn reduction_and_broadcast_gradients(vals in values(6)) {
        // loss = sum_axis + broadcast interplay.
        let p = Param::new("x", Tensor::from_vec(vals, &[2, 3]).unwrap());
        let pc = p.clone();
        let ok = check(&p, &[0, 3, 5], move || {
            pc.zero_grad();
            let g = Graph::new();
            let x = g.param(&pc);
            let col_mean = x.mean_axis(1)?; // [2,1]
            let loss = x.sub(&col_mean)?.square().mean_all();
            loss.backward()?;
            Ok(loss.tensor().item())
        });
        prop_assert!(ok);
    }

    #[test]
    fn ste_round_gradient_is_identity(vals in values(5)) {
        let p = Param::new("x", Tensor::from_vec(vals.clone(), &[5]).unwrap());
        p.zero_grad();
        let g = Graph::new();
        let y = g.param(&p).round_ste();
        y.sum_all().backward().unwrap();
        prop_assert!(p.grad().as_slice().iter().all(|&v| v == 1.0));
    }
}
