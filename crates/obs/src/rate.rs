//! Sliding-window event-rate estimation.
//!
//! [`RateWindow`] answers "what fraction of recent events were hits?" —
//! e.g. the deadline-miss rate a cluster router feeds into replica
//! health. It is a pure state machine over an explicit `now_ns` (the
//! same discipline as the serve `MicroBatcher`): no clocks, no threads,
//! no sleeps in tests. Callers needing sharing wrap it in their own
//! mutex; the router keeps one per replica under its state lock.

/// A bucketed sliding window counting events and hits over the trailing
/// `window_ns`. Granularity is `window_ns / buckets`; expired buckets are
/// lazily recycled on the next touch, so memory is fixed at construction.
#[derive(Debug, Clone)]
pub struct RateWindow {
    bucket_ns: u64,
    /// Per-bucket `(epoch, events, hits)`; a bucket is live only while
    /// its stored epoch matches the epoch `now_ns` maps it to.
    buckets: Vec<(u64, u64, u64)>,
}

impl RateWindow {
    /// A window covering the trailing `window_ns`, split into `buckets`
    /// slices (both forced to at least 1).
    pub fn new(window_ns: u64, buckets: usize) -> Self {
        let buckets = buckets.max(1);
        RateWindow {
            bucket_ns: (window_ns / buckets as u64).max(1),
            buckets: vec![(u64::MAX, 0, 0); buckets],
        }
    }

    fn slot(&self, now_ns: u64) -> (usize, u64) {
        let epoch = now_ns / self.bucket_ns;
        ((epoch % self.buckets.len() as u64) as usize, epoch)
    }

    /// Records one event at `now_ns`; `hit` marks it as counting toward
    /// the rate's numerator (a miss, a failure — whatever is tracked).
    pub fn record(&mut self, now_ns: u64, hit: bool) {
        let (i, epoch) = self.slot(now_ns);
        let b = &mut self.buckets[i];
        if b.0 != epoch {
            *b = (epoch, 0, 0);
        }
        b.1 += 1;
        b.2 += u64::from(hit);
    }

    /// Records `events` events at once, `hits` of them counting toward
    /// the numerator — the delta-feeding form for callers that observe
    /// counters rather than individual events.
    pub fn record_many(&mut self, now_ns: u64, events: u64, hits: u64) {
        if events == 0 {
            return;
        }
        let (i, epoch) = self.slot(now_ns);
        let b = &mut self.buckets[i];
        if b.0 != epoch {
            *b = (epoch, 0, 0);
        }
        b.1 += events;
        b.2 += hits.min(events);
    }

    /// Events and hits inside the window ending at `now_ns`.
    pub fn totals(&self, now_ns: u64) -> (u64, u64) {
        let live_from = (now_ns / self.bucket_ns).saturating_sub(self.buckets.len() as u64 - 1);
        self.buckets
            .iter()
            .filter(|b| b.0 != u64::MAX && b.0 >= live_from && b.0 <= now_ns / self.bucket_ns)
            .fold((0, 0), |(e, h), b| (e + b.1, h + b.2))
    }

    /// Hit fraction over the window ending at `now_ns`; `0.0` when no
    /// events are in the window (an idle replica is presumed healthy).
    pub fn rate(&self, now_ns: u64) -> f64 {
        let (events, hits) = self.totals(now_ns);
        if events == 0 {
            0.0
        } else {
            hits as f64 / events as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_tracks_hits_inside_the_window() {
        let mut w = RateWindow::new(1_000, 10);
        assert_eq!(w.rate(0), 0.0, "empty window reads healthy");
        for t in 0..10 {
            w.record(t * 100, t % 2 == 0);
        }
        assert_eq!(w.totals(950), (10, 5));
        assert!((w.rate(950) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn old_events_age_out_as_time_advances() {
        let mut w = RateWindow::new(1_000, 10);
        for t in 0..5 {
            w.record(t * 100, true); // 5 misses early in the window
        }
        assert_eq!(w.rate(450), 1.0);
        // 2 windows later the misses are gone without any new writes.
        assert_eq!(w.totals(2_500), (0, 0));
        assert_eq!(w.rate(2_500), 0.0);
        // New clean traffic after the gap reads clean, and the recycled
        // buckets don't resurrect the old counts.
        for t in 0..5 {
            w.record(3_000 + t * 100, false);
        }
        assert_eq!(w.totals(3_450), (5, 0));
        assert_eq!(w.rate(3_450), 0.0);
    }

    #[test]
    fn partial_expiry_keeps_only_the_trailing_window() {
        let mut w = RateWindow::new(1_000, 10);
        w.record(50, true); // bucket 0
        w.record(950, false); // bucket 9
                              // At t=1_600 the window is (600, 1_600]: bucket 0's epoch-0 entry
                              // is out, bucket 9 is still in.
        assert_eq!(w.totals(1_600), (1, 0));
        // Degenerate configs stay sane.
        let mut tiny = RateWindow::new(0, 0);
        tiny.record(5, true);
        assert_eq!(tiny.rate(5), 1.0);
    }
}
