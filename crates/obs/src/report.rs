//! Structured snapshots of the metrics registry: text and JSON rendering,
//! per-layer aggregation, and file dumps for bench bins.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::Hist;

/// Report schema version embedded in every JSON dump.
pub const SCHEMA_VERSION: u32 = 1;

/// Top-level keys every JSON report must contain; `scripts/verify.sh` and
/// the schema unit test both check against this list.
pub const REQUIRED_KEYS: [&str; 8] =
    ["version", "tag", "counters", "gauges", "histograms", "series", "layers", "dual_path"];

/// Immutable snapshot of the registry at capture time.
#[derive(Debug, Clone)]
pub struct Report {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub version: u32,
    /// Caller-chosen label (bench bin name, experiment id, ...).
    pub tag: String,
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, Hist>,
    /// Series points by name.
    pub series: BTreeMap<String, Vec<f64>>,
}

/// Per-layer aggregate synthesized from the `layer.<name>.<field>` metric
/// naming convention (`forward_ns` histogram; `macs`, `bytes`, `elements`,
/// `saturated` counters).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerStats {
    /// Layer name as reported by the model graph.
    pub name: String,
    /// Number of recorded forward passes.
    pub calls: u64,
    /// Total forward wall time in nanoseconds.
    pub forward_ns: f64,
    /// Multiply-accumulate operations executed.
    pub macs: u64,
    /// Bytes moved (inputs read + outputs written).
    pub bytes: u64,
    /// Output elements produced.
    pub elements: u64,
    /// Output elements clipped to the quantization grid edge.
    pub saturated: u64,
    /// `saturated / elements`, or 0 when no elements were recorded.
    pub saturation_rate: f64,
}

impl Report {
    /// Snapshots the current registry contents under the given tag.
    pub fn capture(tag: impl Into<String>) -> Report {
        let mut report = Report {
            version: SCHEMA_VERSION,
            tag: tag.into(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            series: BTreeMap::new(),
        };
        crate::with_registry(|r| {
            report.counters = r.counters.clone();
            report.gauges = r.gauges.clone();
            report.histograms = r.histograms.clone();
            report.series = r.series.clone();
        });
        report
    }

    /// Per-layer aggregates, in name order.
    pub fn layers(&self) -> Vec<LayerStats> {
        let mut map: BTreeMap<String, LayerStats> = BTreeMap::new();
        fn entry<'m>(map: &'m mut BTreeMap<String, LayerStats>, name: &str) -> &'m mut LayerStats {
            map.entry(name.to_owned()).or_insert_with(|| LayerStats {
                name: name.to_owned(),
                calls: 0,
                forward_ns: 0.0,
                macs: 0,
                bytes: 0,
                elements: 0,
                saturated: 0,
                saturation_rate: 0.0,
            })
        }
        for (key, hist) in &self.histograms {
            if let Some(name) = layer_field(key, "forward_ns") {
                let row = entry(&mut map, name);
                row.calls = hist.count;
                row.forward_ns = hist.sum;
            }
        }
        for (key, &value) in &self.counters {
            for field in ["macs", "bytes", "elements", "saturated"] {
                if let Some(name) = layer_field(key, field) {
                    let row = entry(&mut map, name);
                    match field {
                        "macs" => row.macs = value,
                        "bytes" => row.bytes = value,
                        "elements" => row.elements = value,
                        _ => row.saturated = value,
                    }
                }
            }
        }
        let mut rows: Vec<LayerStats> = map.into_values().collect();
        for row in &mut rows {
            if row.elements > 0 {
                row.saturation_rate = row.saturated as f64 / row.elements as f64;
            }
        }
        rows
    }

    /// Dual-path divergence gauges `(max_err, mean_err)`, if recorded.
    pub fn dual_path(&self) -> Option<(f64, f64)> {
        match (self.gauges.get("dualpath.max_err"), self.gauges.get("dualpath.mean_err")) {
            (Some(&mx), Some(&mean)) => Some((mx, mean)),
            _ => None,
        }
    }

    /// Human-readable multi-line summary.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "profile report [{}]", self.tag);
        let layers = self.layers();
        if !layers.is_empty() {
            let _ = writeln!(
                s,
                "  {:<28} {:>6} {:>12} {:>14} {:>12} {:>8}",
                "layer", "calls", "time_ms", "macs", "bytes", "sat%"
            );
            for l in &layers {
                let _ = writeln!(
                    s,
                    "  {:<28} {:>6} {:>12.3} {:>14} {:>12} {:>8.3}",
                    l.name,
                    l.calls,
                    l.forward_ns / 1e6,
                    l.macs,
                    l.bytes,
                    l.saturation_rate * 100.0
                );
            }
        }
        if let Some((mx, mean)) = self.dual_path() {
            let _ = writeln!(s, "  dual-path divergence: max {mx:.3e} mean {mean:.3e}");
        }
        for (name, hist) in &self.histograms {
            if layer_field(name, "forward_ns").is_some() {
                continue;
            }
            let _ = writeln!(
                s,
                "  hist {:<26} n={} mean={:.1} p50={:.1} p99={:.1} max={:.1}",
                name,
                hist.count,
                hist.mean(),
                hist.quantile(0.5),
                hist.quantile(0.99),
                hist.max
            );
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(s, "  gauge {name} = {value:.6}");
        }
        for (name, points) in &self.series {
            let tail: Vec<String> =
                points.iter().rev().take(4).rev().map(|v| format!("{v:.4}")).collect();
            let _ = writeln!(s, "  series {} ({} pts) ... {}", name, points.len(), tail.join(" "));
        }
        s
    }

    /// Renders the report as a self-contained JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push('{');
        let _ = write!(s, "\"version\":{},\"tag\":{}", self.version, json_str(&self.tag));
        s.push_str(",\"counters\":{");
        push_entries(&mut s, self.counters.iter(), |s, v| {
            let _ = write!(s, "{v}");
        });
        s.push_str("},\"gauges\":{");
        push_entries(&mut s, self.gauges.iter(), |s, v| s.push_str(&json_num(*v)));
        s.push_str("},\"histograms\":{");
        push_entries(&mut s, self.histograms.iter(), |s, h| {
            let _ = write!(
                s,
                "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                h.count,
                json_num(h.sum),
                json_num(h.min),
                json_num(h.max),
                json_num(h.mean()),
                json_num(h.quantile(0.5)),
                json_num(h.quantile(0.9)),
                json_num(h.quantile(0.99)),
            );
        });
        s.push_str("},\"series\":{");
        push_entries(&mut s, self.series.iter(), |s, pts| {
            s.push('[');
            for (i, v) in pts.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&json_num(*v));
            }
            s.push(']');
        });
        s.push_str("},\"layers\":[");
        for (i, l) in self.layers().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":{},\"calls\":{},\"forward_ns\":{},\"macs\":{},\"bytes\":{},\"elements\":{},\"saturated\":{},\"saturation_rate\":{}}}",
                json_str(&l.name),
                l.calls,
                json_num(l.forward_ns),
                l.macs,
                l.bytes,
                l.elements,
                l.saturated,
                json_num(l.saturation_rate),
            );
        }
        s.push_str("],\"dual_path\":");
        match self.dual_path() {
            Some((mx, mean)) => {
                let _ =
                    write!(s, "{{\"max_err\":{},\"mean_err\":{}}}", json_num(mx), json_num(mean));
            }
            None => s.push_str("null"),
        }
        s.push('}');
        s
    }

    /// Writes the JSON rendering to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

/// If `key` is `layer.<name>.<field>` for the given field, returns `<name>`
/// (which may itself contain dots).
fn layer_field<'k>(key: &'k str, field: &str) -> Option<&'k str> {
    let rest = key.strip_prefix("layer.")?;
    let name = rest.strip_suffix(field)?.strip_suffix('.')?;
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

fn push_entries<'a, V: 'a>(
    s: &mut String,
    entries: impl Iterator<Item = (&'a String, &'a V)>,
    mut value: impl FnMut(&mut String, &V),
) {
    for (i, (k, v)) in entries.enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&json_str(k));
        s.push(':');
        value(s, v);
    }
}

/// JSON string literal with escaping for quotes, backslashes and controls.
/// Public so downstream report emitters (e.g. `t2c-lint`) share one
/// escaping implementation.
pub fn json_str(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number literal; non-finite values become `null`.
pub fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Captures the current registry and writes `profile_<tag>.json` under
/// `dir`, returning the written path — or `Ok(None)` when profiling is
/// disabled, so callers can dump unconditionally at the end of a run.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn dump(dir: impl AsRef<Path>, tag: &str) -> std::io::Result<Option<PathBuf>> {
    if !crate::enabled() {
        return Ok(None);
    }
    let path = dir.as_ref().join(format!("profile_{tag}.json"));
    Report::capture(tag).write_json(&path)?;
    Ok(Some(path))
}

/// Checks a JSON report for the [`REQUIRED_KEYS`]; returns the missing
/// ones. A naive substring scan is sufficient because every required key is
/// a top-level field the serializer always emits.
pub fn validate_schema(json: &str) -> Result<(), Vec<String>> {
    let missing: Vec<String> = REQUIRED_KEYS
        .iter()
        .filter(|k| !json.contains(&format!("\"{k}\":")))
        .map(|k| (*k).to_owned())
        .collect();
    if missing.is_empty() {
        Ok(())
    } else {
        Err(missing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        let _g = crate::tests::lock();
        crate::set_enabled(true);
        crate::reset();
        crate::counter_add("layer.conv1.macs", 1000);
        crate::counter_add("layer.conv1.bytes", 256);
        crate::counter_add("layer.conv1.elements", 64);
        crate::counter_add("layer.conv1.saturated", 16);
        crate::record("layer.conv1.forward_ns", 5000.0);
        crate::record("layer.conv1.forward_ns", 7000.0);
        crate::counter_add("layer.stage1.0.conv2.macs", 42);
        crate::gauge_set("dualpath.max_err", 0.01);
        crate::gauge_set("dualpath.mean_err", 0.002);
        crate::series_push("train.loss", 2.5);
        let report = Report::capture("unit");
        crate::set_enabled(false);
        report
    }

    #[test]
    fn layer_rows_aggregate_by_name_including_dotted_names() {
        let report = sample_report();
        let layers = report.layers();
        assert_eq!(layers.len(), 2);
        let conv1 = layers.iter().find(|l| l.name == "conv1").unwrap();
        assert_eq!(conv1.calls, 2);
        assert!((conv1.forward_ns - 12_000.0).abs() < 1e-9);
        assert_eq!((conv1.macs, conv1.bytes, conv1.elements, conv1.saturated), (1000, 256, 64, 16));
        assert!((conv1.saturation_rate - 0.25).abs() < 1e-12);
        assert!(layers.iter().any(|l| l.name == "stage1.0.conv2" && l.macs == 42));
    }

    #[test]
    fn json_report_passes_schema_check() {
        let report = sample_report();
        let json = report.to_json();
        validate_schema(&json).expect("all required keys present");
        for needle in ["\"saturation_rate\":0.25", "\"macs\":1000", "\"forward_ns\":12000"] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert!(json.contains("\"dual_path\":{\"max_err\":0.01,\"mean_err\":0.002}"));
    }

    #[test]
    fn schema_check_reports_missing_keys() {
        let err = validate_schema("{\"version\":1}").unwrap_err();
        assert!(err.contains(&"layers".to_owned()));
        assert!(err.contains(&"dual_path".to_owned()));
        assert!(!err.contains(&"version".to_owned()));
    }

    #[test]
    fn json_escapes_and_non_finite_values() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(f64::INFINITY), "null");
        assert_eq!(json_num(1.5), "1.5");
    }

    #[test]
    fn dump_is_none_when_disabled() {
        let _g = crate::tests::lock();
        crate::set_enabled(false);
        let out = dump(std::env::temp_dir(), "never_written").unwrap();
        assert!(out.is_none());
    }
}
