//! Zero-cost-when-disabled observability for the Torch2Chip stack.
//!
//! The crate is a process-wide metrics registry with four primitive kinds:
//!
//! * **counters** — monotonically increasing `u64` totals (MACs, bytes
//!   moved, elements written, saturation events),
//! * **gauges** — last-write-wins `f64` values (observer ranges, dual-path
//!   error, MAC-array utilization),
//! * **histograms** — streaming log2-bucketed distributions (per-kernel and
//!   per-layer wall time in nanoseconds),
//! * **series** — bounded append-only `f64` sequences (per-epoch loss /
//!   accuracy / gradient-norm / step-time curves).
//!
//! Everything is gated behind the `T2C_PROFILE` environment variable (or an
//! explicit [`set_enabled`] call). The [`enabled`] fast path is a single
//! relaxed atomic load, so an instrumented scope on the disabled path costs
//! one branch — no allocation, no clock read, no lock. This is the contract
//! the tensor kernels rely on to keep their benchmarks honest.
//!
//! A snapshot of the registry is taken with [`report::Report::capture`] and
//! rendered as text or JSON; bench bins dump it under
//! `bench_results/profile_<tag>.json` via [`report::dump`].
//!
//! ```
//! t2c_obs::set_enabled(true);
//! t2c_obs::reset();
//! {
//!     let _t = t2c_obs::Timer::scoped("kernel.demo.time_ns");
//!     t2c_obs::counter_add("kernel.demo.macs", 1024);
//! }
//! let report = t2c_obs::report::Report::capture("doc");
//! assert_eq!(report.counters["kernel.demo.macs"], 1024);
//! assert!(report.histograms.contains_key("kernel.demo.time_ns"));
//! t2c_obs::set_enabled(false);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rate;
pub mod report;

pub use rate::RateWindow;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Tri-state profile flag: 0 = unresolved, 1 = disabled, 2 = enabled.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Cap on the number of points a single series retains (oldest kept).
const SERIES_CAP: usize = 4096;

/// Number of log2 buckets in a streaming histogram; covers `u64` magnitudes.
pub const HIST_BUCKETS: usize = 64;

/// Whether profiling is active.
///
/// Resolution: an explicit [`set_enabled`] call wins; otherwise the
/// `T2C_PROFILE` environment variable is consulted **once** and cached —
/// set (and not `""`/`"0"`/`"false"`/`"off"`) means enabled. After the
/// first call this is a single relaxed atomic load plus one branch, which
/// is the entire cost of every instrumented scope on the disabled path.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => resolve_from_env(),
    }
}

#[cold]
fn resolve_from_env() -> bool {
    let on = std::env::var("T2C_PROFILE").is_ok_and(|v| {
        let v = v.trim().to_ascii_lowercase();
        !(v.is_empty() || v == "0" || v == "false" || v == "off")
    });
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Forces profiling on or off, overriding `T2C_PROFILE`.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Streaming histogram: count/sum/min/max plus log2 magnitude buckets.
#[derive(Debug, Clone)]
pub struct Hist {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// `buckets[i]` counts observations whose integer magnitude has
    /// bit-length `i` (bucket 0 holds values below 1).
    pub buckets: [u64; HIST_BUCKETS],
}

impl Hist {
    fn new() -> Self {
        Hist { count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY, buckets: [0; 64] }
    }

    fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let mag = if v.is_finite() && v > 0.0 { v as u64 } else { 0 };
        let idx = (u64::BITS - mag.leading_zeros()) as usize;
        self.buckets[idx.min(HIST_BUCKETS - 1)] += 1;
    }

    /// Approximate quantile from the log2 buckets, clamped to the exact
    /// observed `[min, max]`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                // Geometric midpoint of bucket i: values in [2^(i-1), 2^i).
                let est = if i == 0 { 0.5 } else { 1.5 * (1u64 << (i - 1)) as f64 };
                return est.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Mean of all observations.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Hist>,
    series: BTreeMap<String, Vec<f64>>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn with_registry(f: impl FnOnce(&mut Registry)) {
    if let Ok(mut reg) = registry().lock() {
        f(&mut reg);
    }
}

/// Adds `delta` to the named counter. No-op (one branch) when disabled.
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if enabled() {
        with_registry(|r| {
            *r.counters.entry(name.to_owned()).or_insert(0) += delta;
        });
    }
}

/// Sets the named gauge. No-op (one branch) when disabled.
#[inline]
pub fn gauge_set(name: &str, value: f64) {
    if enabled() {
        with_registry(|r| {
            r.gauges.insert(name.to_owned(), value);
        });
    }
}

/// Records one observation into the named histogram. No-op when disabled.
#[inline]
pub fn record(name: &str, value: f64) {
    if enabled() {
        with_registry(|r| {
            r.histograms.entry(name.to_owned()).or_insert_with(Hist::new).record(value);
        });
    }
}

/// Appends one point to the named series (capped at [`SERIES_CAP`] points).
/// No-op when disabled.
#[inline]
pub fn series_push(name: &str, value: f64) {
    if enabled() {
        with_registry(|r| {
            let s = r.series.entry(name.to_owned()).or_default();
            if s.len() < SERIES_CAP {
                s.push(value);
            }
        });
    }
}

/// Clears every metric; the enabled flag is untouched.
pub fn reset() {
    with_registry(|r| *r = Registry::default());
}

/// RAII scoped timer: on drop, records the elapsed wall time in nanoseconds
/// into the named histogram.
///
/// When profiling is disabled, construction is a single branch — no clock
/// read, no name materialization, no allocation.
#[must_use = "a timer measures the scope it is bound to; binding to _ drops it immediately"]
pub struct Timer(Option<(String, Instant)>);

impl Timer {
    /// Starts a timer recording into histogram `name`.
    #[inline]
    pub fn scoped(name: impl Into<String>) -> Timer {
        if enabled() {
            Timer(Some((name.into(), Instant::now())))
        } else {
            Timer(None)
        }
    }

    /// Starts a timer whose name is built lazily — the closure only runs
    /// when profiling is enabled, so dynamic names (e.g. per-layer) cost
    /// nothing on the disabled path.
    #[inline]
    pub fn scoped_with(name: impl FnOnce() -> String) -> Timer {
        if enabled() {
            Timer(Some((name(), Instant::now())))
        } else {
            Timer(None)
        }
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some((name, start)) = self.0.take() {
            record(&name, start.elapsed().as_nanos() as f64);
        }
    }
}

/// A 1-in-N sampler for expensive audit paths on hot request flows.
///
/// Production systems cannot afford to re-verify every request, but a
/// *sampled* re-verification turns steady traffic into a continuous
/// silent-corruption canary. `SampledAudit` is the counting half of that
/// pattern: every call to [`SampledAudit::should_sample`] increments an
/// atomic counter, and every `N`-th call returns `true` — the caller then
/// runs its expensive check (e.g. a dual-path divergence re-run) and
/// records the result as a gauge.
///
/// Unlike the metric primitives this is **not** gated on the profile flag:
/// sampling decisions must stay deterministic whether or not a report is
/// being captured. The gauge writes the caller makes remain gated as usual.
///
/// The serving runtime layers a second use on top: when the audited model
/// carries a static quantization-error certificate (DESIGN.md §6.11), the
/// sampled dual-path check also compares observed absolute divergence
/// against the certified bound, turning steady traffic into a soundness
/// canary for the certifier itself (`serve.audit_certificate_violations`).
///
/// ```
/// let audit = t2c_obs::SampledAudit::new(3);
/// let fired: Vec<bool> = (0..6).map(|_| audit.should_sample()).collect();
/// assert_eq!(fired, [true, false, false, true, false, false]);
/// ```
#[derive(Debug)]
pub struct SampledAudit {
    every: u64,
    calls: std::sync::atomic::AtomicU64,
}

impl SampledAudit {
    /// Creates a sampler firing on the 1st, `N+1`-th, `2N+1`-th … call.
    /// `every = 0` is treated as "never sample".
    pub fn new(every: u64) -> Self {
        SampledAudit { every, calls: std::sync::atomic::AtomicU64::new(0) }
    }

    /// Counts one event; `true` when this event is in the 1-in-N sample.
    /// Thread-safe: concurrent callers each observe a distinct ticket.
    pub fn should_sample(&self) -> bool {
        if self.every == 0 {
            return false;
        }
        self.calls.fetch_add(1, Ordering::Relaxed).is_multiple_of(self.every)
    }

    /// Total events counted so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// The configured sampling period.
    pub fn period(&self) -> u64 {
        self.every
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the enabled-flag-sensitive tests; the flag and registry
    /// are process-wide.
    pub(crate) fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_path_records_nothing() {
        let _g = lock();
        set_enabled(false);
        reset();
        counter_add("c", 5);
        gauge_set("g", 1.0);
        record("h", 2.0);
        series_push("s", 3.0);
        let _t = Timer::scoped_with(|| panic!("name closure must not run when disabled"));
        set_enabled(true);
        let rep = report::Report::capture("t");
        set_enabled(false);
        assert!(rep.counters.is_empty() && rep.gauges.is_empty());
        assert!(rep.histograms.is_empty() && rep.series.is_empty());
    }

    #[test]
    fn metrics_accumulate_when_enabled() {
        let _g = lock();
        set_enabled(true);
        reset();
        counter_add("ops.macs", 10);
        counter_add("ops.macs", 32);
        gauge_set("util", 0.5);
        gauge_set("util", 0.75);
        for v in [1.0, 100.0, 10_000.0] {
            record("lat", v);
        }
        series_push("loss", 2.0);
        series_push("loss", 1.0);
        {
            let _t = Timer::scoped("timed");
        }
        let rep = report::Report::capture("t");
        set_enabled(false);
        assert_eq!(rep.counters["ops.macs"], 42);
        assert!((rep.gauges["util"] - 0.75).abs() < 1e-12);
        let h = &rep.histograms["lat"];
        assert_eq!(h.count, 3);
        assert!((h.min - 1.0).abs() < 1e-12 && (h.max - 10_000.0).abs() < 1e-12);
        assert!((h.mean() - 10_101.0 / 3.0).abs() < 1e-9);
        assert_eq!(rep.series["loss"], vec![2.0, 1.0]);
        assert_eq!(rep.histograms["timed"].count, 1);
    }

    #[test]
    fn sampled_audit_fires_one_in_n() {
        let audit = SampledAudit::new(4);
        let fired: Vec<bool> = (0..9).map(|_| audit.should_sample()).collect();
        assert_eq!(fired, [true, false, false, false, true, false, false, false, true]);
        assert_eq!(audit.calls(), 9);
        assert_eq!(audit.period(), 4);
        // every = 0 → never; every = 1 → always.
        let never = SampledAudit::new(0);
        assert!((0..5).all(|_| !never.should_sample()));
        let always = SampledAudit::new(1);
        assert!((0..5).all(|_| always.should_sample()));
    }

    #[test]
    fn sampled_audit_counts_across_threads() {
        let audit = std::sync::Arc::new(SampledAudit::new(10));
        let hits: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let a = audit.clone();
                    s.spawn(move || (0..25).filter(|_| a.should_sample()).count() as u64)
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        // 100 tickets at 1-in-10 → exactly 10 sampled, however the
        // tickets interleave.
        assert_eq!(audit.calls(), 100);
        assert_eq!(hits, 10);
    }

    #[test]
    fn quantiles_stay_within_observed_range() {
        let mut h = Hist::new();
        for v in [10.0, 20.0, 3000.0] {
            h.record(v);
        }
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let p = h.quantile(q);
            assert!((10.0..=3000.0).contains(&p), "q={q} -> {p}");
        }
        assert!(h.quantile(0.5) <= h.quantile(0.99));
    }
}
