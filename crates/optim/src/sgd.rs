use t2c_autograd::Param;
use t2c_tensor::Tensor;

use crate::Optimizer;

/// Stochastic gradient descent with classical momentum and decoupled weight
/// decay — the optimizer the paper's QAT recipes use.
pub struct Sgd {
    params: Vec<Param>,
    velocity: Vec<Tensor<f32>>,
    lr: f32,
    momentum: f32,
    weight_decay: f32,
}

impl Sgd {
    /// Creates plain SGD over `params` with learning rate `lr`.
    pub fn new(params: Vec<Param>, lr: f32) -> Self {
        let velocity = params.iter().map(|p| Tensor::zeros(p.value().dims())).collect();
        Sgd { params, velocity, lr, momentum: 0.0, weight_decay: 0.0 }
    }

    /// Enables classical momentum.
    #[must_use]
    pub fn momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Enables L2 weight decay (added to the gradient).
    #[must_use]
    pub fn weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// The managed parameters.
    pub fn params(&self) -> &[Param] {
        &self.params
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        for (p, v) in self.params.iter().zip(&mut self.velocity) {
            if !p.is_trainable() {
                continue;
            }
            let grad = p.grad();
            let wd = self.weight_decay;
            let value = p.value();
            // g' = g + wd·w
            let g = if wd != 0.0 {
                grad.zip_map(&value, |gi, wi| gi + wd * wi).expect("sgd grad shape")
            } else {
                grad
            };
            if self.momentum != 0.0 {
                *v = v.mul_scalar(self.momentum).add(&g).expect("sgd velocity shape");
                let lr = self.lr;
                p.update(|w, _| w.sub(&v.mul_scalar(lr)).expect("sgd update shape"));
            } else {
                let lr = self.lr;
                p.update(|w, _| w.sub(&g.mul_scalar(lr)).expect("sgd update shape"));
            }
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t2c_autograd::Graph;

    fn quadratic_step(p: &Param) {
        p.zero_grad();
        let g = Graph::new();
        let loss = g.param(p).square().sum_all();
        loss.backward().unwrap();
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let p = Param::new("p", Tensor::from_vec(vec![5.0_f32, -3.0], &[2]).unwrap());
        let mut opt = Sgd::new(vec![p.clone()], 0.1);
        for _ in 0..100 {
            quadratic_step(&p);
            opt.step();
        }
        assert!(p.value().abs_max() < 1e-3);
    }

    #[test]
    fn momentum_accelerates() {
        let run = |mom: f32| {
            let p = Param::new("p", Tensor::from_vec(vec![5.0_f32], &[1]).unwrap());
            let mut opt = Sgd::new(vec![p.clone()], 0.02).momentum(mom);
            for _ in 0..30 {
                quadratic_step(&p);
                opt.step();
            }
            p.value().abs_max()
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let p = Param::new("p", Tensor::from_vec(vec![1.0_f32], &[1]).unwrap());
        let mut opt = Sgd::new(vec![p.clone()], 0.1).weight_decay(0.5);
        // No backward pass: grad is zero, only decay acts.
        opt.step();
        assert!((p.value().as_slice()[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn frozen_params_not_updated() {
        let p = Param::frozen("stats", Tensor::from_vec(vec![1.0_f32], &[1]).unwrap());
        let mut opt = Sgd::new(vec![p.clone()], 1.0);
        p.accumulate_grad(&Tensor::from_vec(vec![1.0], &[1]).unwrap());
        opt.step();
        assert_eq!(p.value().as_slice(), &[1.0]);
    }
}
