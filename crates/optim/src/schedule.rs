//! Learning-rate schedules. All schedules map an epoch (or step) index to a
//! learning rate; trainers call [`LrSchedule::lr_at`] and pass the result to
//! [`crate::Optimizer::set_lr`].

/// A learning-rate schedule.
pub trait LrSchedule {
    /// The learning rate to use at `epoch` (0-based).
    fn lr_at(&self, epoch: usize) -> f32;
}

/// Step decay: multiply by `gamma` after each milestone.
#[derive(Debug, Clone)]
pub struct StepSchedule {
    /// Initial learning rate.
    pub base_lr: f32,
    /// Epochs at which the rate decays.
    pub milestones: Vec<usize>,
    /// Multiplicative decay factor.
    pub gamma: f32,
}

impl LrSchedule for StepSchedule {
    fn lr_at(&self, epoch: usize) -> f32 {
        let decays = self.milestones.iter().filter(|&&m| epoch >= m).count();
        self.base_lr * self.gamma.powi(decays as i32)
    }
}

/// Cosine annealing from `base_lr` to `min_lr` over `total` epochs.
#[derive(Debug, Clone, Copy)]
pub struct CosineSchedule {
    /// Initial learning rate.
    pub base_lr: f32,
    /// Final learning rate.
    pub min_lr: f32,
    /// Schedule length in epochs.
    pub total: usize,
}

impl LrSchedule for CosineSchedule {
    fn lr_at(&self, epoch: usize) -> f32 {
        if self.total == 0 {
            return self.base_lr;
        }
        let t = (epoch.min(self.total) as f32) / self.total as f32;
        self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
    }
}

/// Linear warmup for `warmup` epochs, then cosine annealing — the standard
/// ViT / SSL recipe.
#[derive(Debug, Clone, Copy)]
pub struct WarmupCosine {
    /// Peak learning rate reached after warmup.
    pub base_lr: f32,
    /// Final learning rate.
    pub min_lr: f32,
    /// Warmup length in epochs.
    pub warmup: usize,
    /// Total schedule length in epochs.
    pub total: usize,
}

impl LrSchedule for WarmupCosine {
    fn lr_at(&self, epoch: usize) -> f32 {
        if epoch < self.warmup {
            return self.base_lr * (epoch + 1) as f32 / self.warmup.max(1) as f32;
        }
        CosineSchedule {
            base_lr: self.base_lr,
            min_lr: self.min_lr,
            total: self.total.saturating_sub(self.warmup),
        }
        .lr_at(epoch - self.warmup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_schedule_decays_at_milestones() {
        let s = StepSchedule { base_lr: 1.0, milestones: vec![10, 20], gamma: 0.1 };
        assert_eq!(s.lr_at(0), 1.0);
        assert!((s.lr_at(10) - 0.1).abs() < 1e-6);
        assert!((s.lr_at(25) - 0.01).abs() < 1e-6);
    }

    #[test]
    fn cosine_schedule_endpoints() {
        let s = CosineSchedule { base_lr: 1.0, min_lr: 0.0, total: 100 };
        assert!((s.lr_at(0) - 1.0).abs() < 1e-6);
        assert!(s.lr_at(100) < 1e-6);
        assert!((s.lr_at(50) - 0.5).abs() < 1e-3);
        // Monotone decreasing.
        assert!(s.lr_at(30) > s.lr_at(60));
    }

    #[test]
    fn warmup_cosine_ramps_then_decays() {
        let s = WarmupCosine { base_lr: 1.0, min_lr: 0.0, warmup: 5, total: 50 };
        assert!(s.lr_at(0) < s.lr_at(4));
        assert!((s.lr_at(5) - 1.0).abs() < 1e-3);
        assert!(s.lr_at(49) < 0.05);
    }
}
