use t2c_autograd::Param;
use t2c_tensor::Tensor;

use crate::Optimizer;

/// AdamW: Adam with decoupled weight decay — used by the ViT recipes and
/// the PTQ reconstruction objectives (AdaRound / QDrop block tuning).
pub struct AdamW {
    params: Vec<Param>,
    m: Vec<Tensor<f32>>,
    v: Vec<Tensor<f32>>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u32,
}

impl AdamW {
    /// Creates AdamW with the conventional β = (0.9, 0.999) defaults.
    pub fn new(params: Vec<Param>, lr: f32) -> Self {
        let m = params.iter().map(|p| Tensor::zeros(p.value().dims())).collect();
        let v = params.iter().map(|p| Tensor::zeros(p.value().dims())).collect();
        AdamW { params, m, v, lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0, t: 0 }
    }

    /// Sets the β coefficients.
    #[must_use]
    pub fn betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Enables decoupled weight decay.
    #[must_use]
    pub fn weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// The managed parameters.
    pub fn params(&self) -> &[Param] {
        &self.params
    }
}

impl Optimizer for AdamW {
    fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in self.params.iter().zip(&mut self.m).zip(&mut self.v) {
            if !p.is_trainable() {
                continue;
            }
            let g = p.grad();
            *m = m
                .zip_map(&g, |mi, gi| self.beta1 * mi + (1.0 - self.beta1) * gi)
                .expect("adam m shape");
            *v = v
                .zip_map(&g, |vi, gi| self.beta2 * vi + (1.0 - self.beta2) * gi * gi)
                .expect("adam v shape");
            let lr = self.lr;
            let eps = self.eps;
            let wd = self.weight_decay;
            let mh = m.mul_scalar(1.0 / bc1);
            let vh = v.mul_scalar(1.0 / bc2);
            p.update(|w, _| {
                let step =
                    mh.zip_map(&vh, |mi, vi| mi / (vi.sqrt() + eps)).expect("adam step shape");
                // Decoupled decay: w ← w·(1 − lr·wd) − lr·step
                w.mul_scalar(1.0 - lr * wd).sub(&step.mul_scalar(lr)).expect("adam update shape")
            });
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t2c_autograd::Graph;

    #[test]
    fn adamw_converges_on_quadratic() {
        let p = Param::new("p", Tensor::from_vec(vec![5.0_f32, -2.0], &[2]).unwrap());
        let mut opt = AdamW::new(vec![p.clone()], 0.1);
        for _ in 0..300 {
            p.zero_grad();
            let g = Graph::new();
            g.param(&p).square().sum_all().backward().unwrap();
            opt.step();
        }
        assert!(p.value().abs_max() < 1e-2, "residual {}", p.value().abs_max());
    }

    #[test]
    fn adamw_step_size_bounded_by_lr() {
        // Adam's per-coordinate step is ≈ lr regardless of gradient scale.
        let p = Param::new("p", Tensor::from_vec(vec![0.0_f32], &[1]).unwrap());
        let mut opt = AdamW::new(vec![p.clone()], 0.01);
        p.accumulate_grad(&Tensor::from_vec(vec![1.0e6], &[1]).unwrap());
        opt.step();
        assert!(p.value().abs_max() < 0.011);
    }

    #[test]
    fn decoupled_decay_acts_independently() {
        let p = Param::new("p", Tensor::from_vec(vec![1.0_f32], &[1]).unwrap());
        let mut opt = AdamW::new(vec![p.clone()], 0.1).weight_decay(0.1);
        opt.step(); // zero gradient: only decay
        assert!((p.value().as_slice()[0] - 0.99).abs() < 1e-6);
    }
}
