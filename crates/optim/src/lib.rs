//! # t2c-optim
//!
//! Optimizers (SGD with momentum, AdamW) and learning-rate schedules
//! (step decay, cosine annealing, linear warmup) used by every Torch2Chip
//! trainer — supervised QAT, PTQ reconstruction, sparse training and
//! self-supervised pre-training.
//!
//! ## Example
//!
//! ```
//! use t2c_autograd::{Graph, Param};
//! use t2c_optim::{Optimizer, Sgd};
//! use t2c_tensor::Tensor;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let w = Param::new("w", Tensor::from_vec(vec![4.0_f32], &[1])?);
//! let mut opt = Sgd::new(vec![w.clone()], 0.1).momentum(0.9);
//! for _ in 0..300 {
//!     w.zero_grad();
//!     let g = Graph::new();
//!     let loss = g.param(&w).square().mean_all(); // minimize w²
//!     loss.backward()?;
//!     opt.step();
//! }
//! assert!(w.value().as_slice()[0].abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adam;
mod schedule;
mod sgd;

pub use adam::AdamW;
pub use schedule::{CosineSchedule, LrSchedule, StepSchedule, WarmupCosine};
pub use sgd::Sgd;

use t2c_autograd::Param;

/// A gradient-descent optimizer over a fixed parameter group.
pub trait Optimizer {
    /// Applies one update using the gradients currently accumulated in the
    /// parameters. Does **not** clear gradients; call
    /// [`Optimizer::zero_grad`] (or `Param::zero_grad`) before the next
    /// backward pass.
    fn step(&mut self);

    /// Clears the gradients of every managed parameter.
    fn zero_grad(&self);

    /// Sets the learning rate (used by schedules).
    fn set_lr(&mut self, lr: f32);

    /// The current learning rate.
    fn lr(&self) -> f32;
}

/// Clips the global L2 norm of the gradients of `params` to `max_norm`.
///
/// Returns the pre-clip norm.
pub fn clip_grad_norm(params: &[Param], max_norm: f32) -> f32 {
    let mut total = 0.0f32;
    for p in params {
        if !p.is_trainable() {
            continue;
        }
        let g = p.grad();
        total += g.as_slice().iter().map(|&v| v * v).sum::<f32>();
    }
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            if !p.is_trainable() {
                continue;
            }
            let scaled = p.grad().mul_scalar(scale);
            p.zero_grad();
            p.accumulate_grad(&scaled);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use t2c_tensor::Tensor;

    #[test]
    fn clip_grad_norm_scales_down() {
        let p = Param::new("p", Tensor::zeros(&[2]));
        p.accumulate_grad(&Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap());
        let pre = clip_grad_norm(std::slice::from_ref(&p), 1.0);
        assert!((pre - 5.0).abs() < 1e-5);
        let g = p.grad();
        let norm = (g.as_slice()[0].powi(2) + g.as_slice()[1].powi(2)).sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_grad_norm_leaves_small_grads() {
        let p = Param::new("p", Tensor::zeros(&[1]));
        p.accumulate_grad(&Tensor::from_vec(vec![0.5], &[1]).unwrap());
        clip_grad_norm(std::slice::from_ref(&p), 1.0);
        assert_eq!(p.grad().as_slice(), &[0.5]);
    }
}
