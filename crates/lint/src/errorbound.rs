//! Static quantization-error certification: sound float↔int divergence
//! bounds over [`IntModel`] graphs.
//!
//! A second abstract interpretation next to [`crate::analyze`]: where the
//! interval pass bounds *values*, this pass bounds, per tensor edge, the
//! worst-case divergence `|float_reference − dequant(int_value)|` in that
//! edge's own code units ("steps").
//!
//! **Reference semantics.** The float reference is the family of
//! real-arithmetic evaluations of the *same* graph in which every stored
//! parameter stands for any real within half a unit of its code: weights
//! and biases within ½ of their stored integers, each fixed-point
//! multiplier/bias within half a raw ulp, LUT entries replaced by the
//! exact function values, `round_shift` replaced by exact division, and
//! the input quantizer replaced by exact real division (clamped, not
//! rounded). The certified bound dominates the divergence against *every*
//! member of that family — in particular against the center member the
//! serving runtime's dual-path audit evaluates, which is how the audit
//! doubles as a soundness canary.
//!
//! **Composition.** Per MAC layer and output channel `c` with `K` MACs,
//! incoming error `e_in`, per-tensor input magnitude envelope `|x|` (from
//! the i128 interval analysis) and requantizer `(M_c, B_c, f)`:
//!
//! ```text
//! E_acc  = Σ|w_i|·e_in + ½·K·(|x| + e_in) + ½·[bias]
//! e_out  = ½ + |M_c|·2^-f·E_acc + ½·2^-f·(|acc|_max + E_acc + 1)
//!          + overshoot_c
//! ```
//!
//! `overshoot_c` is the mul/shift↔clamp interaction: how far the mapped
//! worst-case pre-clamp interval leaves the output grid. The int path
//! clamps it away; the unclamped reference keeps it, so it is genuine
//! divergence — and the term that makes a mis-scaled requantizer fail its
//! error budget (rule T2C602) even when the scale-chain heuristic (T2C201)
//! only warns. ReLU and the output clamp are 1-Lipschitz, so they never
//! grow the bound. LUT ops contribute their exact per-entry table error;
//! normalization ops (LayerNorm, softmax) use coarse grid-width bounds
//! that are input-independent and keep every certificate finite.
//!
//! DESIGN.md §6.11 derives each rule and its soundness argument.

use t2c_core::intmodel::{IntNode, IntOp, Src};
use t2c_core::lut::GELU_LIPSCHITZ;
use t2c_core::{FixedScalar, IntModel, MulQuant, QuantSpec};
use t2c_export::{CertifiedError, ExportManifest};
use t2c_obs::report::{json_num, json_str};
use t2c_tensor::Tensor;

use crate::interval::Interval;
use crate::{Diagnostic, LintReport, Rule, Severity};

/// Schema version of `ErrorReport::to_json` documents.
pub const ERROR_SCHEMA_VERSION: u32 = 1;

/// Configuration of a certification run.
#[derive(Debug, Clone, Copy)]
pub struct ErrorBoundConfig {
    /// Maximum admissible certified end-to-end bound, in final-output
    /// quantization steps. `f64::INFINITY` (the default) certifies without
    /// gating: T2C602 never fires and `ErrorReport::pass` only requires a
    /// finite bound.
    pub tolerance_steps: f64,
}

impl Default for ErrorBoundConfig {
    fn default() -> Self {
        ErrorBoundConfig { tolerance_steps: f64::INFINITY }
    }
}

/// The certified bound at one node's output.
#[derive(Debug, Clone)]
pub struct LayerErrorBound {
    /// Node index in execution order.
    pub id: usize,
    /// Layer name.
    pub name: String,
    /// Op label.
    pub op: &'static str,
    /// Cumulative sound bound on `|reference − int|` at this node's
    /// output, in this node's code units. Infinite = uncertifiable.
    pub steps: f64,
    /// The part introduced locally (rounding, parameter half-ulps, table
    /// error, clamp overshoot) rather than propagated from upstream.
    pub local_steps: f64,
    /// `steps` in absolute units, when the graph declares this edge's
    /// scale (Quantize / LUT outputs and their shape-preserving
    /// descendants).
    pub abs: Option<f64>,
    /// Width of the proven output range, used to rank offending layers
    /// (one step means more on a narrow grid).
    pub grid_width: f64,
}

/// A per-layer + end-to-end quantization-error certificate.
#[derive(Debug, Clone)]
pub struct ErrorReport {
    /// Caller-chosen model label.
    pub tag: String,
    /// The tolerance the run was gated against (infinite = report-only).
    pub tolerance_steps: f64,
    /// Per-node bounds, in execution order.
    pub per_layer: Vec<LayerErrorBound>,
    /// Certified bound at the model output, in output quantization steps.
    /// Infinite when any node on the output path is uncertifiable.
    pub end_to_end_steps: f64,
    /// The end-to-end bound in absolute units, when the output scale is
    /// known.
    pub end_to_end_abs: Option<f64>,
}

impl ErrorReport {
    /// `true` when a finite end-to-end bound exists.
    pub fn certified(&self) -> bool {
        self.end_to_end_steps.is_finite()
    }

    /// `true` when the model is certified *and* within tolerance.
    pub fn pass(&self) -> bool {
        self.certified() && self.end_to_end_steps <= self.tolerance_steps
    }

    /// The layer contributing the most local error relative to its grid
    /// width — the one a T2C602 refusal names.
    pub fn worst_layer(&self) -> Option<&LayerErrorBound> {
        self.per_layer.iter().max_by(|a, b| {
            let ra = a.local_steps / a.grid_width.max(1.0);
            let rb = b.local_steps / b.grid_width.max(1.0);
            ra.total_cmp(&rb)
        })
    }

    /// The end-to-end bound in milli-steps, rounded **up** so the stored
    /// claim never under-reports the proven bound; saturates at
    /// `u64::MAX − 1`, with `u64::MAX` reserved for "no finite bound".
    pub fn end_to_end_millisteps(&self) -> u64 {
        millisteps(self.end_to_end_steps)
    }

    /// The manifest section equivalent of this report.
    pub fn to_certified(&self) -> CertifiedError {
        CertifiedError {
            end_to_end_millisteps: self.end_to_end_millisteps(),
            tolerance_millisteps: millisteps(self.tolerance_steps),
            layers: u32::try_from(self.per_layer.len()).unwrap_or(u32::MAX),
        }
    }

    /// Human-readable multi-line rendering.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let verdict = if self.pass() { "pass" } else { "fail" };
        let _ = writeln!(
            s,
            "t2c-errorbound [{}]: end-to-end ≤ {} step(s){} (tolerance {}) — {verdict}",
            self.tag,
            fmt_steps(self.end_to_end_steps),
            self.end_to_end_abs.map_or(String::new(), |a| format!(" = {a:.3e} abs")),
            fmt_steps(self.tolerance_steps),
        );
        for l in &self.per_layer {
            let _ = writeln!(
                s,
                "  #{:<3} {:<12} {:<16} ≤ {:>10} step(s)  (local {})",
                l.id,
                l.name,
                l.op,
                fmt_steps(l.steps),
                fmt_steps(l.local_steps),
            );
        }
        s
    }

    /// JSON rendering with the keys the `verify.sh` schema gate checks:
    /// `version`, `model`, `per_layer`, `end_to_end_steps`, `tolerance`,
    /// `pass`. Non-finite numbers render as `null`.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(1024);
        let _ = write!(
            s,
            "{{\"version\":{ERROR_SCHEMA_VERSION},\"model\":{},\"tolerance\":{},\"end_to_end_steps\":{},\"end_to_end_abs\":{}",
            json_str(&self.tag),
            json_num(self.tolerance_steps),
            json_num(self.end_to_end_steps),
            self.end_to_end_abs.map_or("null".to_owned(), json_num),
        );
        s.push_str(",\"per_layer\":[");
        for (i, l) in self.per_layer.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"id\":{},\"layer\":{},\"op\":{},\"steps\":{},\"local_steps\":{},\"abs\":{}}}",
                l.id,
                json_str(&l.name),
                json_str(l.op),
                json_num(l.steps),
                json_num(l.local_steps),
                l.abs.map_or("null".to_owned(), json_num),
            );
        }
        let _ = write!(s, "],\"pass\": {}}}", self.pass());
        s
    }
}

fn millisteps(steps: f64) -> u64 {
    if !steps.is_finite() {
        return u64::MAX;
    }
    let v = (steps * 1000.0).ceil();
    if v >= (u64::MAX - 1) as f64 {
        u64::MAX - 1
    } else {
        v.max(0.0) as u64
    }
}

fn fmt_steps(v: f64) -> String {
    if !v.is_finite() {
        "∞".to_owned()
    } else if v >= 1e6 {
        format!("{v:.3e}")
    } else {
        format!("{v:.2}")
    }
}

fn maxabs(r: Interval) -> f64 {
    let m = r.lo.unsigned_abs().max(r.hi.unsigned_abs());
    m as f64
}

/// Dataflow state of one tensor edge: value interval (mirroring
/// `analyze`), cumulative error bound, and declared absolute scale when
/// the graph carries one.
#[derive(Debug, Clone)]
struct EState {
    shape: Vec<usize>,
    range: Interval,
    err: f64,
    scale: Option<f64>,
}

/// Runs the quantization-error certifier over `model` and returns the
/// certificate plus the `T2C6xx` findings as a [`LintReport`] (no node
/// summaries — those belong to [`crate::lint_model`]).
pub fn certify_model(
    model: &IntModel,
    input_shape: &[usize],
    cfg: ErrorBoundConfig,
    tag: &str,
) -> (ErrorReport, LintReport) {
    let mut c = Certifier { diags: Vec::new(), layers: Vec::new(), local: 0.0 };

    let input_state = match model.nodes.first().map(|n| &n.op) {
        Some(IntOp::Quantize { scale, spec }) => Some(EState {
            shape: input_shape.to_vec(),
            range: Interval::of_spec(*spec),
            err: 0.5,
            scale: Some(*scale as f64),
        }),
        _ => None,
    };
    if input_state.is_none() {
        c.uncertifiable(
            0,
            "model",
            "the graph does not start with a Quantize node declaring the input grid",
        );
    }

    let mut states: Vec<Option<EState>> = Vec::with_capacity(model.len());
    for (i, node) in model.nodes.iter().enumerate() {
        let operand = |idx: usize| -> Option<EState> {
            match node.inputs.get(idx)? {
                Src::Input => input_state.clone(),
                Src::Node(id) if *id < i => states.get(*id).and_then(Clone::clone),
                Src::Node(_) => None,
            }
        };
        let state = c.certify_op(i, node, operand(0), operand(1), input_state.as_ref());
        let (steps, local, abs, width) = match &state {
            Some(s) => (
                s.err,
                c.take_local(),
                s.scale.map(|sc| s.err * sc),
                (s.range.width().min(i64::MAX as i128)) as f64,
            ),
            None => (f64::INFINITY, f64::INFINITY, None, 1.0),
        };
        c.layers.push(LayerErrorBound {
            id: i,
            name: node.name.clone(),
            op: node.op.label(),
            steps,
            local_steps: local,
            abs,
            grid_width: width,
        });
        states.push(state);
    }

    let end = states.last().and_then(Option::as_ref);
    let end_steps = end.map_or(f64::INFINITY, |s| s.err);
    let end_abs = end.and_then(|s| s.scale.map(|sc| s.err * sc));
    let mut report = ErrorReport {
        tag: tag.to_owned(),
        tolerance_steps: cfg.tolerance_steps,
        per_layer: c.layers,
        end_to_end_steps: end_steps,
        end_to_end_abs: end_abs,
    };
    if model.is_empty() {
        report.end_to_end_steps = f64::INFINITY;
        c.diags.push(Diagnostic::global(
            Rule::Uncertifiable,
            Severity::Error,
            "model",
            "model has no nodes, so there is nothing to certify",
            "push at least a Quantize node",
        ));
    }
    if cfg.tolerance_steps.is_finite() && report.certified() && !report.pass() {
        let worst = report.worst_layer();
        let (wname, wid) = worst.map_or(("model", 0), |l| (l.name.as_str(), l.id));
        let wlocal = worst.map_or(0.0, |l| l.local_steps);
        c.diags.push(Diagnostic::node(
            Rule::ErrorBudgetExceeded,
            Severity::Error,
            wid,
            wname,
            format!(
                "certified end-to-end error bound {} step(s) exceeds the configured tolerance {} — worst contributor is `{wname}` with {} local step(s)",
                fmt_steps(report.end_to_end_steps),
                fmt_steps(cfg.tolerance_steps),
                fmt_steps(wlocal),
            ),
            "re-derive the layer's requantizer from the calibrated scale chain, or raise the tolerance if the budget was optimistic",
        ));
    }
    let lint = LintReport { tag: tag.to_owned(), diagnostics: c.diags, nodes: Vec::new() };
    (report, lint)
}

/// Cross-checks a package manifest's `certified_error` section against a
/// freshly computed certificate of the shipped model (rule T2C605).
pub fn lint_certified(report: &ErrorReport, manifest: &ExportManifest, tag: &str) -> LintReport {
    let mut diags = Vec::new();
    if let Some(cert) = &manifest.certified {
        let fresh = report.end_to_end_millisteps();
        if cert.end_to_end_millisteps < fresh {
            diags.push(Diagnostic::global(
                Rule::ManifestCertifiedMismatch,
                Severity::Error,
                "certified.txt",
                format!(
                    "manifest claims an end-to-end bound of {} millistep(s) but fresh certification proves only {}",
                    cert.end_to_end_millisteps, fresh
                ),
                "re-export the package so the certificate matches the shipped model",
            ));
        }
        if cert.tolerance_millisteps < cert.end_to_end_millisteps {
            diags.push(Diagnostic::global(
                Rule::ManifestCertifiedMismatch,
                Severity::Error,
                "certified.txt",
                format!(
                    "manifest declares tolerance {} millistep(s), below its own certified bound {}",
                    cert.tolerance_millisteps, cert.end_to_end_millisteps
                ),
                "a package must not declare a tolerance its own certificate violates",
            ));
        }
    }
    LintReport { tag: tag.to_owned(), diagnostics: diags, nodes: Vec::new() }
}

struct Certifier {
    diags: Vec<Diagnostic>,
    layers: Vec<LayerErrorBound>,
    // Local error of the node just certified (taken by the driver loop).
    local: f64,
}

impl Certifier {
    fn take_local(&mut self) -> f64 {
        std::mem::replace(&mut self.local, 0.0)
    }

    fn uncertifiable(&mut self, i: usize, name: &str, why: &str) {
        self.diags.push(Diagnostic::node(
            Rule::Uncertifiable,
            Severity::Error,
            i,
            name,
            format!("cannot certify a float↔int divergence bound: {why}"),
            "fix the structural finding lint_model reports for this node, or shrink the accumulator so the overflow proof closes",
        ));
    }

    /// Overshoot of the worst-case pre-clamp interval beyond the output
    /// grid — divergence the int path clamps away but the unclamped
    /// reference keeps.
    fn overshoot(mapped: Interval, spec: QuantSpec) -> f64 {
        let (glo, ghi) = spec.range();
        let under = (glo as i128).saturating_sub(mapped.lo).max(0);
        let over = mapped.hi.saturating_sub(ghi as i128).max(0);
        under.max(over) as f64
    }

    /// T2C604: fires when the multiplier half-ulp term dominates a layer's
    /// local error — the scale chain amplifies quantization error faster
    /// than rounding does.
    fn check_scale_amplification(&mut self, i: usize, name: &str, half_ulp: f64, local: f64) {
        if half_ulp > 1.0 && half_ulp > 0.5 * local {
            self.diags.push(Diagnostic::node(
                Rule::ScaleErrorAmplification,
                Severity::Warn,
                i,
                name,
                format!(
                    "the fixed-point multiplier's half-ulp contributes {} of the layer's {} local error step(s)",
                    fmt_steps(half_ulp),
                    fmt_steps(local)
                ),
                "widen frac_bits so the multiplier resolves finer than the accumulator envelope",
            ));
        }
    }

    /// T2C603: a LUT whose own table/domain error dominates the budget at
    /// its node.
    fn check_lut_domination(&mut self, i: usize, name: &str, lut_local: f64, total: f64) {
        if lut_local > 1.0 && lut_local >= 0.5 * total {
            self.diags.push(Diagnostic::node(
                Rule::LutErrorDominates,
                Severity::Warn,
                i,
                name,
                format!(
                    "LUT error of {} step(s) dominates the {}-step budget at this node",
                    fmt_steps(lut_local),
                    fmt_steps(total)
                ),
                "grow the table or its fractional precision; the rest of the pipeline is already tighter than the table",
            ));
        }
    }

    /// Shared MAC-layer composition for conv/linear (dense or densified):
    /// returns the output range and error, or `None` (with T2C601) when
    /// the accumulator may saturate.
    #[allow(clippy::too_many_arguments)]
    fn mac_error(
        &mut self,
        i: usize,
        name: &str,
        weight: &Tensor<i32>,
        oc: usize,
        x_range: Interval,
        e_in: f64,
        bias: Option<&[i64]>,
        requant: Option<&MulQuant>,
        relu: bool,
    ) -> Option<(Interval, f64)> {
        let ws = weight.as_slice();
        let per = ws.len() / oc.max(1);
        let x_abs = maxabs(x_range);
        let mut out: Option<Interval> = None;
        let mut worst_err = 0.0f64;
        let mut worst_local = 0.0f64;
        let mut worst_half_ulp = 0.0f64;
        for ch in 0..oc {
            // Exact per-channel accumulator interval and partial-sum
            // envelope, mirroring analyze::mac_channels.
            let (mut lo, mut hi) = (0i128, 0i128);
            let (mut env_lo, mut env_hi) = (0i128, 0i128);
            let mut abs_w_sum = 0.0f64;
            for &w in &ws[ch * per..(ch + 1) * per] {
                let a = w as i128 * x_range.lo;
                let b = w as i128 * x_range.hi;
                let (cl, chi) = (a.min(b), a.max(b));
                lo += cl;
                hi += chi;
                env_lo += cl.min(0);
                env_hi += chi.max(0);
                abs_w_sum += w.unsigned_abs() as f64;
            }
            let bv = bias.map_or(0i128, |b| b[ch.min(b.len() - 1)] as i128);
            let fin = Interval::new(lo + bv, hi + bv);
            let env = Interval::new(env_lo + bv.min(0), env_hi + bv.max(0));
            if !fin.fits_i32() || !env.fits_i32() {
                self.uncertifiable(
                    i,
                    name,
                    &format!(
                        "channel {ch} accumulator can reach {} (envelope {}), outside i32 — the saturating MAC array clips by an unbounded amount",
                        fin.union(env),
                        env
                    ),
                );
                return None;
            }
            // Weight half-ulp error amplified by the per-MAC input
            // magnitude envelope, plus the incoming error through |w|.
            let e_acc =
                abs_w_sum * e_in + 0.5 * per as f64 * (x_abs + e_in) + f64::from(bias.is_some());
            let acc_abs = maxabs(fin);
            let (range_ch, err_ch, local_ch, half_ulp) = match requant {
                Some(mq) => {
                    let ci = ch.min(mq.scale_raw.len() - 1);
                    let (mlo, mhi) = mq.map_range(fin.lo as i64, fin.hi as i64, ci);
                    let mut mapped = Interval::new(mlo as i128, mhi as i128);
                    if relu {
                        mapped = mapped.relu();
                    }
                    let ov = Self::overshoot(mapped, mq.out_spec);
                    let e = mq.error_bound_steps(ci, acc_abs, e_acc) + ov;
                    let propagated = mq.scale_abs(ci) * abs_w_sum * e_in;
                    let half_ulp = 0.5 * mq.step() * acc_abs;
                    (mapped.clamp_to(mq.out_spec), e, e - propagated, half_ulp)
                }
                None => (fin, e_acc, e_acc - abs_w_sum * e_in, 0.0),
            };
            out = Some(match out {
                Some(o) => o.union(range_ch),
                None => range_ch,
            });
            if err_ch > worst_err {
                worst_err = err_ch;
                worst_local = local_ch;
                worst_half_ulp = half_ulp;
            }
        }
        self.local = worst_local;
        self.check_scale_amplification(i, name, worst_half_ulp, worst_local);
        Some((out.unwrap_or(Interval::point(0)), worst_err))
    }

    /// One `FixedScalar` requant edge (AddRequant branches, BmmRequant,
    /// Requant): mul/shift error against the half-ulp family plus clamp
    /// overshoot, with the mapped interval computed exactly.
    fn fixed_edge(m: FixedScalar, r: Interval, e_in: f64) -> (Interval, f64) {
        let (lo, hi) = m.map_range(r.lo as i64, r.hi as i64);
        (Interval::new(lo as i128, hi as i128), m.mul_shift_error_bound(maxabs(r), e_in))
    }

    #[allow(clippy::too_many_lines)]
    fn certify_op(
        &mut self,
        i: usize,
        node: &IntNode,
        in0: Option<EState>,
        in1: Option<EState>,
        input_state: Option<&EState>,
    ) -> Option<EState> {
        let name = node.name.clone();
        // Structural problems (dangling/forward sources, arity) are
        // lint_model's to report; here they simply end the certificate.
        for src in &node.inputs {
            if let Src::Node(id) = src {
                if *id >= i {
                    self.uncertifiable(i, &name, "the node reads a dangling or forward source");
                    return None;
                }
            }
        }
        match &node.op {
            IntOp::Quantize { .. } => {
                if i > 0 {
                    // Passthrough of the model input (analyze warns).
                    return input_state.cloned();
                }
                let s = input_state?;
                self.local = s.err;
                Some(s.clone())
            }
            IntOp::Conv2d { weight, bias, spec, requant, relu, weight_spec: _ } => {
                let x = in0?;
                if x.shape.len() != 4 {
                    self.uncertifiable(i, &name, "conv input is not rank 4");
                    return None;
                }
                let (c, h, w) = (x.shape[1], x.shape[2], x.shape[3]);
                let (oc, cg, kh, kw) = (weight.dim(0), weight.dim(1), weight.dim(2), weight.dim(3));
                let g = spec.groups.max(1);
                if cg * g != c || oc % g.max(1) != 0 {
                    self.uncertifiable(i, &name, "weight geometry does not match input channels");
                    return None;
                }
                let (Some(oh), Some(ow)) = (
                    conv_extent(h, kh, spec.stride, spec.padding),
                    conv_extent(w, kw, spec.stride, spec.padding),
                ) else {
                    self.uncertifiable(i, &name, "kernel does not fit the spatial extent");
                    return None;
                };
                let xr = if spec.padding > 0 { x.range.include_zero() } else { x.range };
                let (range, err) = self.mac_error(
                    i,
                    &name,
                    weight,
                    oc,
                    xr,
                    x.err,
                    bias.as_deref(),
                    Some(requant),
                    *relu,
                )?;
                Some(EState { shape: vec![x.shape[0], oc, oh, ow], range, err, scale: None })
            }
            IntOp::Conv2dPacked { weight, bias, spec, requant, relu, weight_spec: _ } => {
                let x = in0?;
                let Ok(dense) = weight.unpack() else {
                    self.uncertifiable(i, &name, "the packed conv weight fails validation");
                    return None;
                };
                if x.shape.len() != 4 {
                    self.uncertifiable(i, &name, "conv input is not rank 4");
                    return None;
                }
                let (h, w) = (x.shape[2], x.shape[3]);
                let (oc, kh, kw) = (dense.dim(0), dense.dim(2), dense.dim(3));
                let (Some(oh), Some(ow)) = (
                    conv_extent(h, kh, spec.stride, spec.padding),
                    conv_extent(w, kw, spec.stride, spec.padding),
                ) else {
                    self.uncertifiable(i, &name, "kernel does not fit the spatial extent");
                    return None;
                };
                let xr = if spec.padding > 0 { x.range.include_zero() } else { x.range };
                let (range, err) = self.mac_error(
                    i,
                    &name,
                    &dense,
                    oc,
                    xr,
                    x.err,
                    bias.as_deref(),
                    Some(requant),
                    *relu,
                )?;
                Some(EState { shape: vec![x.shape[0], oc, oh, ow], range, err, scale: None })
            }
            IntOp::Linear { weight, bias, requant, relu, weight_spec: _ } => {
                let x = in0?;
                self.linear_error(i, &name, weight, bias.as_deref(), requant.as_ref(), *relu, x)
            }
            IntOp::LinearPacked { weight, bias, requant, relu, weight_spec: _ } => {
                let x = in0?;
                let Ok(dense) = weight.unpack() else {
                    self.uncertifiable(i, &name, "the packed linear weight fails validation");
                    return None;
                };
                self.linear_error(i, &name, &dense, bias.as_deref(), requant.as_ref(), *relu, x)
            }
            IntOp::LinearSparse { weight, bias, requant, relu, .. } => {
                let x = in0?;
                if weight.validate().is_err() {
                    self.uncertifiable(i, &name, "the sparse weight fails validation");
                    return None;
                }
                let dense = weight.to_dense();
                self.linear_error(i, &name, &dense, bias.as_deref(), requant.as_ref(), *relu, x)
            }
            IntOp::AddRequant { m_a, m_b, out_spec, relu } => {
                let (a, b) = (in0?, in1?);
                if a.shape != b.shape {
                    self.uncertifiable(i, &name, "branch shapes differ");
                    return None;
                }
                let (ra, ea) = Self::fixed_edge(*m_a, a.range, a.err);
                let (rb, eb) = Self::fixed_edge(*m_b, b.range, b.err);
                let mut mapped = ra + rb;
                if *relu {
                    mapped = mapped.relu();
                }
                let ov = Self::overshoot(mapped, *out_spec);
                let err = ea + eb + ov;
                self.local = err - m_a.magnitude() * a.err - m_b.magnitude() * b.err;
                self.check_scale_amplification(
                    i,
                    &name,
                    0.5 * m_a.format.step() * maxabs(a.range)
                        + 0.5 * m_b.format.step() * maxabs(b.range),
                    self.local,
                );
                Some(EState { shape: a.shape, range: mapped.clamp_to(*out_spec), err, scale: None })
            }
            IntOp::AddConstRequant { value, m, out_spec } => {
                let a = in0?;
                let n: usize = a.shape.iter().skip(1).product();
                if value.numel() == 0 || !n.is_multiple_of(value.numel()) {
                    self.uncertifiable(i, &name, "the constant does not broadcast over the input");
                    return None;
                }
                let (cmin, cmax) = slice_min_max(value.as_slice());
                let sum = a.range + Interval::new(cmin as i128, cmax as i128);
                // The stored constant stands for a real within ½ code.
                let (mapped, e) = Self::fixed_edge(*m, sum, a.err + 0.5);
                let ov = Self::overshoot(mapped, *out_spec);
                let err = e + ov;
                self.local = err - m.magnitude() * a.err;
                Some(EState { shape: a.shape, range: mapped.clamp_to(*out_spec), err, scale: None })
            }
            IntOp::MaxPool2d { spec } => {
                let x = in0?;
                if x.shape.len() != 4 {
                    self.uncertifiable(i, &name, "max_pool input is not rank 4");
                    return None;
                }
                let (Some(oh), Some(ow)) = (
                    conv_extent(x.shape[2], spec.kernel, spec.stride, spec.padding),
                    conv_extent(x.shape[3], spec.kernel, spec.stride, spec.padding),
                ) else {
                    self.uncertifiable(i, &name, "the pooling window does not fit");
                    return None;
                };
                // max over a window is 1-Lipschitz in the ∞-norm.
                Some(EState { shape: vec![x.shape[0], x.shape[1], oh, ow], ..x })
            }
            IntOp::GlobalAvgPool { frac_bits } => {
                let x = in0?;
                if x.shape.len() != 4 {
                    self.uncertifiable(i, &name, "global_avg_pool input is not rank 4");
                    return None;
                }
                let hw = (x.shape[2] * x.shape[3]).max(1);
                let m = (((1i64 << (16 + *frac_bits as i64)) as f64) / hw as f64).round();
                let sum = x.range.scale(hw as i128);
                let product = sum.scale(m as i128);
                if !product.fits_i64() {
                    self.uncertifiable(i, &name, "the pooling product leaves i64");
                    return None;
                }
                let out = Interval::new(
                    round_shift_i128(product.lo, 16),
                    round_shift_i128(product.hi, 16),
                );
                if !out.fits_i32() {
                    self.uncertifiable(i, &name, "the pooled output leaves i32");
                    return None;
                }
                // Sum error ≤ hw·e_in through the multiplier, the
                // reciprocal's rounding (≤ ½ raw) amplified by the sum, and
                // the final rounding shift.
                let err = 0.5 + (m / 65536.0) * hw as f64 * x.err + maxabs(sum) * 0.5 / 65536.0;
                self.local = err - (m / 65536.0) * hw as f64 * x.err;
                Some(EState {
                    shape: vec![x.shape[0], x.shape[1]],
                    range: out,
                    err,
                    scale: x.scale.map(|s| s / f64::from(1u32 << *frac_bits)),
                })
            }
            IntOp::Flatten => {
                let x = in0?;
                if x.shape.is_empty() {
                    self.uncertifiable(i, &name, "flatten input has rank 0");
                    return None;
                }
                let rest: usize = x.shape.iter().skip(1).product();
                Some(EState { shape: vec![x.shape[0], rest], ..x })
            }
            IntOp::PatchToTokens => {
                let x = in0?;
                if x.shape.len() != 4 {
                    self.uncertifiable(i, &name, "patch_to_tokens input is not rank 4");
                    return None;
                }
                Some(EState { shape: vec![x.shape[0], x.shape[2] * x.shape[3], x.shape[1]], ..x })
            }
            IntOp::ConcatToken { token } => {
                let x = in0?;
                if x.shape.len() != 3 || token.numel() != x.shape[2] {
                    self.uncertifiable(i, &name, "the class token does not match the sequence");
                    return None;
                }
                let (tmin, tmax) = slice_min_max(token.as_slice());
                // The stored token stands for a real within ½ code.
                let err = x.err.max(0.5);
                self.local = 0.5;
                Some(EState {
                    shape: vec![x.shape[0], x.shape[1] + 1, x.shape[2]],
                    range: x.range.union(Interval::new(tmin as i128, tmax as i128)),
                    err,
                    scale: x.scale,
                })
            }
            IntOp::TakeToken { index } => {
                let x = in0?;
                if x.shape.len() != 3 || *index >= x.shape[1] {
                    self.uncertifiable(i, &name, "token index out of range");
                    return None;
                }
                Some(EState { shape: vec![x.shape[0], x.shape[2]], ..x })
            }
            IntOp::SplitHeads { heads } => {
                let x = in0?;
                if x.shape.len() != 3 || *heads == 0 || x.shape[2] % heads != 0 {
                    self.uncertifiable(i, &name, "embedding dim does not split by head count");
                    return None;
                }
                Some(EState {
                    shape: vec![x.shape[0] * heads, x.shape[1], x.shape[2] / heads],
                    ..x
                })
            }
            IntOp::MergeHeads { heads } => {
                let x = in0?;
                if x.shape.len() != 3 || *heads == 0 || x.shape[0] % heads != 0 {
                    self.uncertifiable(i, &name, "batch·head extent does not merge by head count");
                    return None;
                }
                Some(EState {
                    shape: vec![x.shape[0] / heads, x.shape[1], x.shape[2] * heads],
                    ..x
                })
            }
            IntOp::BmmRequant { transpose_rhs, m, out_spec } => {
                let (a, b) = (in0?, in1?);
                if a.shape.len() != 3 || b.shape.len() != 3 || a.shape[0] != b.shape[0] {
                    self.uncertifiable(i, &name, "operands are not batched matrices");
                    return None;
                }
                let (k, n_out, k_rhs) = if *transpose_rhs {
                    (a.shape[2], b.shape[1], b.shape[2])
                } else {
                    (a.shape[2], b.shape[2], b.shape[1])
                };
                if k != k_rhs {
                    self.uncertifiable(i, &name, "contraction extents differ");
                    return None;
                }
                let product = a.range * b.range;
                let envelope =
                    Interval::new(product.lo.min(0) * k as i128, product.hi.max(0) * k as i128);
                if !envelope.fits_i32() {
                    self.uncertifiable(
                        i,
                        &name,
                        "the bmm accumulator envelope leaves i32 — the saturating MAC array clips by an unbounded amount",
                    );
                    return None;
                }
                // Both operands are data tensors: error of a product of
                // perturbed factors, summed over the contraction.
                let e_acc =
                    k as f64 * (maxabs(a.range) * b.err + maxabs(b.range) * a.err + a.err * b.err);
                let acc = product.scale(k as i128);
                let (mapped, e) = Self::fixed_edge(*m, acc, e_acc);
                let ov = Self::overshoot(mapped, *out_spec);
                let err = e + ov;
                self.local = err - m.magnitude() * e_acc;
                self.check_scale_amplification(
                    i,
                    &name,
                    0.5 * m.format.step() * maxabs(acc),
                    self.local,
                );
                Some(EState {
                    shape: vec![a.shape[0], a.shape[1], n_out],
                    range: mapped.clamp_to(*out_spec),
                    err,
                    scale: None,
                })
            }
            IntOp::Requant { m, out_spec } => {
                let x = in0?;
                let (mapped, e) = Self::fixed_edge(*m, x.range, x.err);
                let ov = Self::overshoot(mapped, *out_spec);
                let err = e + ov;
                self.local = err - m.magnitude() * x.err;
                self.check_scale_amplification(
                    i,
                    &name,
                    0.5 * m.format.step() * maxabs(x.range),
                    self.local,
                );
                Some(EState { shape: x.shape, range: mapped.clamp_to(*out_spec), err, scale: None })
            }
            IntOp::LayerNorm(ln) => {
                let x = in0?;
                let Some(&d) = x.shape.last() else {
                    self.uncertifiable(i, &name, "layer_norm input has rank 0");
                    return None;
                };
                if ln.gamma_m.len() != d || ln.beta_b.len() != d {
                    self.uncertifiable(
                        i,
                        &name,
                        "gamma/beta lengths do not match the feature axis",
                    );
                    return None;
                }
                // Coarse, input-independent: both the int path and the
                // grid-clamped reference land on the declared output grid,
                // so their divergence is at most the grid width. This also
                // *resets* the incoming error — normalization re-anchors
                // the scale chain.
                let err = ln.out_spec.width() as f64;
                self.local = err;
                Some(EState {
                    shape: x.shape,
                    range: Interval::of_spec(ln.out_spec),
                    err,
                    scale: None,
                })
            }
            IntOp::SoftmaxLut(lut) => {
                let x = in0?;
                if lut.table.is_empty() {
                    self.uncertifiable(i, &name, "the softmax exp table is empty");
                    return None;
                }
                // Probabilities: both the int path and the reference live
                // in [0, qmax] by construction, so the grid width is a
                // sound, input-independent bound (and an error reset).
                let err = lut.out_spec.qmax() as f64;
                self.local = err;
                self.check_lut_domination(i, &name, err, err);
                Some(EState {
                    shape: x.shape,
                    range: Interval::new(0, lut.out_spec.qmax() as i128),
                    err,
                    scale: Some(f64::from(lut.out_scale())),
                })
            }
            IntOp::GeluLut(lut) => {
                let x = in0?;
                let expected = lut.in_spec.width() as usize + 1;
                if lut.table.len() < expected {
                    self.uncertifiable(i, &name, "the GELU table does not cover the input grid");
                    return None;
                }
                let out_scale = f64::from(lut.out_scale.max(f32::MIN_POSITIVE));
                let in_scale = f64::from(lut.in_scale);
                // Exact table error (entries vs the real gelu, clamp
                // included) plus the incoming error and any out-of-domain
                // overhang amplified by the GELU Lipschitz constant.
                let overhang = Self::overshoot(x.range, lut.in_spec);
                let table_steps = lut.max_table_error() / out_scale;
                let amplified = GELU_LIPSCHITZ * (x.err + overhang) * in_scale.abs() / out_scale;
                let err = table_steps + amplified;
                self.local = table_steps + GELU_LIPSCHITZ * overhang * in_scale.abs() / out_scale;
                self.check_lut_domination(i, &name, self.local, err);
                let (tmin, tmax) = slice_min_max(&lut.table);
                Some(EState {
                    shape: x.shape,
                    range: Interval::new(tmin as i128, tmax as i128),
                    err,
                    scale: Some(f64::from(lut.out_scale)),
                })
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn linear_error(
        &mut self,
        i: usize,
        name: &str,
        weight: &Tensor<i32>,
        bias: Option<&[i64]>,
        requant: Option<&MulQuant>,
        relu: bool,
        x: EState,
    ) -> Option<EState> {
        let (out_f, in_f) = (weight.dim(0), weight.dim(1));
        let Some(&last) = x.shape.last() else {
            self.uncertifiable(i, name, "linear input has rank 0");
            return None;
        };
        if x.shape.len() < 2 || x.shape.len() > 3 || last != in_f {
            self.uncertifiable(i, name, "the weight does not match the input shape");
            return None;
        }
        let (range, err) =
            self.mac_error(i, name, weight, out_f, x.range, x.err, bias, requant, relu)?;
        let mut shape = x.shape.clone();
        *shape.last_mut().expect("non-empty") = out_f;
        Some(EState { shape, range, err, scale: None })
    }
}

fn conv_extent(h: usize, k: usize, stride: usize, padding: usize) -> Option<usize> {
    if stride == 0 || k == 0 {
        return None;
    }
    let padded = h + 2 * padding;
    if k > padded {
        return None;
    }
    Some((padded - k) / stride + 1)
}

fn round_shift_i128(v: i128, bits: u8) -> i128 {
    if bits == 0 {
        return v;
    }
    (v + (1i128 << (bits - 1))) >> bits
}

fn slice_min_max(s: &[i32]) -> (i32, i32) {
    let mut it = s.iter();
    let Some(&first) = it.next() else { return (0, 0) };
    it.fold((first, first), |(lo, hi), &v| (lo.min(v), hi.max(v)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use t2c_core::zoo;
    use t2c_core::FixedPointFormat;

    fn ids(report: &LintReport) -> Vec<&str> {
        report.diagnostics.iter().map(|d| d.rule.id()).collect()
    }

    #[test]
    fn tiny_mlp_gets_a_finite_certificate() {
        let (m, dims) = zoo::tiny_mlp();
        let (report, lint) = certify_model(&m, &dims, ErrorBoundConfig::default(), "mlp");
        assert!(report.certified(), "bound must be finite:\n{}", report.to_text());
        assert!(report.pass());
        assert_eq!(lint.error_count(), 0, "{}", lint.to_text());
        assert_eq!(report.per_layer.len(), m.len());
        // Every layer bound is finite and the input quantizer contributes
        // exactly its rounding half-step.
        assert!(report.per_layer.iter().all(|l| l.steps.is_finite()));
        assert!((report.per_layer[0].steps - 0.5).abs() < 1e-9);
        // The input layer has a declared scale, so abs units exist there.
        assert!(report.per_layer[0].abs.is_some());
    }

    #[test]
    fn sparse_and_packed_variants_certify_close_to_dense() {
        let (dense, dims) = zoo::tiny_mlp();
        let (dr, _) = certify_model(&dense, &dims, ErrorBoundConfig::default(), "dense");
        let (pruned, _) = zoo::tiny_mlp_pruned(0.8);
        let (pr, pl) = certify_model(&pruned, &dims, ErrorBoundConfig::default(), "pruned");
        assert!(pr.certified());
        assert_eq!(pl.error_count(), 0);
        // Pruning removes weights, so the pruned bound cannot exceed dense.
        assert!(pr.end_to_end_steps <= dr.end_to_end_steps);
        let (mut packed, _) = zoo::tiny_mlp();
        assert!(packed.prepack() > 0);
        let (kr, kl) = certify_model(&packed, &dims, ErrorBoundConfig::default(), "packed");
        assert_eq!(kl.error_count(), 0);
        // Packing is a layout change: identical certificate.
        assert!((kr.end_to_end_steps - dr.end_to_end_steps).abs() < 1e-9);
    }

    #[test]
    fn mis_scaled_requantizer_blows_the_budget_with_t2c602() {
        let (clean, dims) = zoo::tiny_mlp();
        let (clean_report, _) = certify_model(&clean, &dims, ErrorBoundConfig::default(), "clean");
        let tolerance = clean_report.end_to_end_steps * 1.5;

        let (mut bad, _) = zoo::tiny_mlp();
        if let IntOp::Linear { requant: Some(mq), .. } = &mut bad.nodes[1].op {
            for s in &mut mq.scale_raw {
                *s *= 4;
            }
        } else {
            unreachable!();
        }
        let cfg = ErrorBoundConfig { tolerance_steps: tolerance };
        let (bad_report, bad_lint) = certify_model(&bad, &dims, cfg, "bad");
        assert!(bad_report.certified());
        assert!(bad_report.end_to_end_steps > tolerance, "{}", bad_report.to_text());
        assert!(ids(&bad_lint).contains(&"T2C602"), "got {:?}", ids(&bad_lint));
        let d = bad_lint.diagnostics.iter().find(|d| d.rule == Rule::ErrorBudgetExceeded).unwrap();
        assert!(d.message.contains("fc1"), "must name the offending layer: {}", d.message);
        // The clean model passes the same gate.
        let (ok_report, ok_lint) = certify_model(&clean, &dims, cfg, "clean");
        assert!(ok_report.pass());
        assert_eq!(ok_lint.error_count(), 0);
    }

    #[test]
    fn saturating_accumulator_is_uncertifiable_with_t2c601() {
        use t2c_core::intmodel::Src;
        use t2c_tensor::Tensor;
        let mut m = IntModel::new();
        m.push("input", IntOp::Quantize { scale: 1.0, spec: QuantSpec::unsigned(8) }, vec![]);
        m.push(
            "hot",
            IntOp::Linear {
                weight: Tensor::from_vec(vec![1i32 << 24; 2], &[1, 2]).unwrap(),
                bias: None,
                requant: None,
                relu: false,
                weight_spec: QuantSpec::signed(31),
            },
            vec![Src::Input],
        );
        let (report, lint) = certify_model(&m, &[1, 2], ErrorBoundConfig::default(), "hot");
        assert!(!report.certified());
        assert!(ids(&lint).contains(&"T2C601"), "got {:?}", ids(&lint));
        assert!(!report.pass());
    }

    #[test]
    fn coarse_multiplier_on_wide_accumulator_warns_t2c604() {
        use t2c_core::intmodel::Src;
        use t2c_tensor::Tensor;
        let mut m = IntModel::new();
        m.push("input", IntOp::Quantize { scale: 1.0, spec: QuantSpec::signed(8) }, vec![]);
        // INT(13, 3): step = 1/8, so the half-ulp term over a wide
        // accumulator dwarfs the rounding terms.
        m.push(
            "coarse",
            IntOp::Linear {
                weight: Tensor::from_vec(vec![3i32; 256], &[1, 256]).unwrap(),
                bias: None,
                requant: Some(MulQuant::from_float(
                    &[0.25],
                    &[0.0],
                    FixedPointFormat::int16_frac3(),
                    QuantSpec::signed(16),
                )),
                relu: false,
                weight_spec: QuantSpec::signed(3),
            },
            vec![Src::Input],
        );
        let (report, lint) = certify_model(&m, &[1, 256], ErrorBoundConfig::default(), "coarse");
        assert!(report.certified());
        assert!(ids(&lint).contains(&"T2C604"), "got {:?}", ids(&lint));
    }

    #[test]
    fn manifest_cross_check_fires_t2c605_on_underclaimed_bound() {
        let (m, dims) = zoo::tiny_mlp();
        let (report, _) = certify_model(&m, &dims, ErrorBoundConfig::default(), "mlp");
        let dir = std::env::temp_dir().join(format!("t2c_eb_605_{}", std::process::id()));
        let mut manifest = t2c_export::export_package(&m, &dir).unwrap();
        // An honest certificate passes the cross-check.
        t2c_export::write_certified(&mut manifest, report.to_certified()).unwrap();
        assert_eq!(lint_certified(&report, &manifest, "ok").error_count(), 0);
        // A manifest claiming a tighter bound than certifiable fails.
        let mut lying = manifest.clone();
        lying.certified = Some(CertifiedError {
            end_to_end_millisteps: report.end_to_end_millisteps() / 2,
            tolerance_millisteps: u64::MAX,
            layers: 3,
        });
        let r = lint_certified(&report, &lying, "lie");
        assert!(ids(&r).contains(&"T2C605"), "got {:?}", ids(&r));
        // A tolerance below the manifest's own bound is inconsistent too.
        let mut tight = manifest.clone();
        tight.certified = Some(CertifiedError {
            end_to_end_millisteps: report.end_to_end_millisteps(),
            tolerance_millisteps: report.end_to_end_millisteps().saturating_sub(1),
            layers: 3,
        });
        assert_eq!(lint_certified(&report, &tight, "tight").error_count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn full_zoo_certifies_finitely() {
        for (tag, build) in t2c_core::zoo::zoo() {
            let (model, dims) = build();
            let (report, lint) = certify_model(&model, &dims, ErrorBoundConfig::default(), tag);
            assert!(
                report.certified(),
                "{tag} must receive a finite bound:\n{}\n{}",
                report.to_text(),
                lint.to_text()
            );
            assert_eq!(lint.error_count(), 0, "{tag}: {}", lint.to_text());
        }
    }

    #[test]
    fn json_has_the_gate_keys_and_null_for_infinite() {
        let (m, dims) = zoo::tiny_mlp();
        let (report, _) = certify_model(&m, &dims, ErrorBoundConfig::default(), "mlp");
        let json = report.to_json();
        for key in ["version", "model", "per_layer", "end_to_end_steps", "tolerance", "pass"] {
            assert!(json.contains(&format!("\"{key}\":")), "missing {key} in {json}");
        }
        assert!(json.contains("\"pass\": true"));
        // Infinite tolerance renders as null, keeping the JSON valid.
        assert!(json.contains("\"tolerance\":null"));
    }
}
