//! `t2c-check` — runs the static integer-pipeline verifier over the
//! quickstart/e2e model zoo and each model's exported deployment package.
//!
//! For every model it: trains/calibrates a tiny instance, converts it with
//! `nn2chip`, lints the integer graph (overflow, scale chain,
//! well-formedness, LUT coverage), exports a package and cross-checks the
//! manifest against the graph. Prints a text report per model; with
//! `--json PATH` additionally dumps the combined findings as a JSON report
//! (schema-checked by `scripts/verify.sh`). Exits non-zero when any
//! error-level finding fires.
//!
//! ```sh
//! cargo run --release -p t2c-lint --bin t2c-check -- --json bench_results/t2c_check.json
//! ```

use std::path::PathBuf;

use t2c_core::qmodels::{QMobileNet, QResNet, QViT, QuantFactory};
use t2c_core::trainer::{FpTrainer, PtqPipeline, QatTrainer, TrainConfig};
use t2c_core::{FuseScheme, IntModel, QuantConfig, T2C};
use t2c_data::{SynthVision, SynthVisionConfig};
use t2c_export::export_package;
use t2c_lint::{lint_model, lint_package, validate_schema, LintReport};
use t2c_nn::models::{MobileNetConfig, MobileNetV1, ResNet, ResNetConfig, ViT, ViTConfig};
use t2c_nn::Module;
use t2c_tensor::rng::TensorRng;

/// Builds the quickstart MobileNet: FP train → PTQ → convert.
fn mobilenet_ptq() -> (IntModel, Vec<usize>) {
    let data = SynthVision::generate(&SynthVisionConfig::tiny(3, 16));
    let mut rng = TensorRng::seed_from(9);
    let model = MobileNetV1::new(&mut rng, MobileNetConfig::tiny(3));
    FpTrainer::new(TrainConfig::quick(2)).fit(&model, &data).expect("fp training");
    let qnn = QMobileNet::from_float(&model, &QuantFactory::minmax(QuantConfig::wa(8)));
    PtqPipeline::calibrate(4, 16).run(&qnn, &data).expect("ptq");
    qnn.set_training(false);
    let (chip, _) = T2C::new(&qnn).nn2chip(FuseScheme::PreFuse).expect("conversion");
    let (images, _) = data.test_batch(&[0]);
    (chip, images.dims().to_vec())
}

/// Builds the e2e ResNet: QAT → convert.
fn resnet_qat() -> (IntModel, Vec<usize>) {
    let data = SynthVision::generate(&SynthVisionConfig::tiny(3, 16));
    let mut rng = TensorRng::seed_from(900);
    let model = ResNet::new(&mut rng, ResNetConfig::tiny(data.num_classes()));
    let qnn = QResNet::from_float(&model, &QuantFactory::minmax(QuantConfig::wa(8)));
    QatTrainer::new(TrainConfig::quick(2)).fit(&qnn, &data).expect("qat");
    qnn.set_training(false);
    let (chip, _) = T2C::new(&qnn).nn2chip(FuseScheme::PreFuse).expect("conversion");
    let (images, _) = data.test_batch(&[0]);
    (chip, images.dims().to_vec())
}

/// Builds the e2e ViT: PTQ → convert (exercises LN/softmax/GELU LUT paths).
fn vit_ptq() -> (IntModel, Vec<usize>) {
    let data = SynthVision::generate(&SynthVisionConfig::tiny(2, 10));
    let mut rng = TensorRng::seed_from(911);
    let model = ViT::new(&mut rng, ViTConfig::tiny(data.num_classes()));
    let qnn = QViT::from_float(&model, &QuantFactory::minmax(QuantConfig::vit(8)));
    PtqPipeline::calibrate(3, 10).run(&qnn, &data).expect("ptq");
    qnn.set_training(false);
    let (chip, _) = T2C::new(&qnn).nn2chip(FuseScheme::PreFuse).expect("conversion");
    let (images, _) = data.test_batch(&[0]);
    (chip, images.dims().to_vec())
}

fn check_model(tag: &str, chip: &IntModel, input_shape: &[usize]) -> LintReport {
    let mut report = lint_model(chip, input_shape, tag);
    // Export the deployment package and cross-check the manifest.
    let dir = std::env::temp_dir().join(format!("t2c_check_{}_{tag}", std::process::id()));
    match export_package(chip, &dir) {
        Ok(manifest) => report.merge(lint_package(chip, &manifest, tag)),
        Err(e) => eprintln!("warning: could not export {tag} package for manifest checks: {e}"),
    }
    std::fs::remove_dir_all(&dir).ok();
    report
}

fn main() {
    let mut json_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                let path = args.next().unwrap_or_else(|| {
                    eprintln!("--json needs a file path");
                    std::process::exit(2);
                });
                json_path = Some(PathBuf::from(path));
            }
            "--help" | "-h" => {
                println!("usage: t2c-check [--json PATH]");
                return;
            }
            other => {
                eprintln!("unknown argument `{other}` (usage: t2c-check [--json PATH])");
                std::process::exit(2);
            }
        }
    }

    type ModelBuilder = fn() -> (IntModel, Vec<usize>);
    let zoo: [(&str, ModelBuilder); 3] =
        [("mobilenet-ptq", mobilenet_ptq), ("resnet-qat", resnet_qat), ("vit-ptq", vit_ptq)];

    let mut combined = LintReport { tag: "t2c-check".into(), ..Default::default() };
    for (tag, build) in zoo {
        let (chip, input_shape) = build();
        let report = check_model(tag, &chip, &input_shape);
        print!("{}", report.to_text());
        combined.diagnostics.extend(report.diagnostics);
        // Combined node table: the quickstart model's ranges (the one the
        // docs show); later models contribute findings only.
        if combined.nodes.is_empty() {
            combined.nodes = report.nodes;
        }
    }

    println!(
        "t2c-check total: {} error(s), {} warning(s) across {} model(s) — {}",
        combined.error_count(),
        combined.count(t2c_lint::Severity::Warn),
        zoo.len(),
        combined.verdict(),
    );

    if let Some(path) = json_path {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).expect("create report directory");
            }
        }
        let json = combined.to_json();
        if let Err(missing) = validate_schema(&json) {
            eprintln!("lint report schema check FAILED; missing keys: {missing:?}");
            std::process::exit(1);
        }
        std::fs::write(&path, &json).expect("write JSON report");
        println!("lint report ok: {}", path.display());
    }

    if combined.error_count() > 0 {
        std::process::exit(1);
    }
}
