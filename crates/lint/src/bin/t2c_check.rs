//! `t2c-check` — runs the static integer-pipeline verifier over the
//! quickstart/e2e model zoo and each model's exported deployment package.
//!
//! For every model it: trains/calibrates a tiny instance, converts it with
//! `nn2chip`, lints the integer graph (overflow, scale chain,
//! well-formedness, LUT coverage), exports a package and cross-checks the
//! manifest against the graph. Prints a text report per model; with
//! `--json PATH` additionally dumps the combined findings as a JSON report
//! (schema-checked by `scripts/verify.sh`). Exits non-zero when any
//! error-level finding fires.
//!
//! ```sh
//! cargo run --release -p t2c-lint --bin t2c-check -- --json bench_results/t2c_check.json
//! ```

use std::path::PathBuf;

use t2c_core::IntModel;
use t2c_export::export_package;
use t2c_lint::{lint_model, lint_package, validate_schema, LintReport};

fn check_model(tag: &str, chip: &IntModel, input_shape: &[usize]) -> LintReport {
    let mut report = lint_model(chip, input_shape, tag);
    // Export the deployment package and cross-check the manifest.
    let dir = std::env::temp_dir().join(format!("t2c_check_{}_{tag}", std::process::id()));
    match export_package(chip, &dir) {
        Ok(manifest) => report.merge(lint_package(chip, &manifest, tag)),
        Err(e) => eprintln!("warning: could not export {tag} package for manifest checks: {e}"),
    }
    std::fs::remove_dir_all(&dir).ok();
    report
}

fn main() {
    let mut json_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                let path = args.next().unwrap_or_else(|| {
                    eprintln!("--json needs a file path");
                    std::process::exit(2);
                });
                json_path = Some(PathBuf::from(path));
            }
            "--help" | "-h" => {
                println!("usage: t2c-check [--json PATH]");
                return;
            }
            other => {
                eprintln!("unknown argument `{other}` (usage: t2c-check [--json PATH])");
                std::process::exit(2);
            }
        }
    }

    let zoo = t2c_core::zoo::zoo();
    // Sparse deployment variants: the pruned zoo MLPs exercise the T2C5xx
    // rules end-to-end (graph validation + the manifest's sparse section).
    let sparse_zoo: [(&str, t2c_core::zoo::ZooBuilder); 2] = [
        ("tiny-mlp-sparse", || t2c_core::zoo::tiny_mlp_pruned(0.8)),
        ("tiny-mlp-nm", || t2c_core::zoo::tiny_mlp_nm(2, 4)),
    ];
    let total_models = zoo.len() + sparse_zoo.len();

    let mut combined = LintReport { tag: "t2c-check".into(), ..Default::default() };
    for (tag, build) in zoo.into_iter().chain(sparse_zoo) {
        let (chip, input_shape) = build();
        let report = check_model(tag, &chip, &input_shape);
        print!("{}", report.to_text());
        combined.diagnostics.extend(report.diagnostics);
        // Combined node table: the quickstart model's ranges (the one the
        // docs show); later models contribute findings only.
        if combined.nodes.is_empty() {
            combined.nodes = report.nodes;
        }
    }

    println!(
        "t2c-check total: {} error(s), {} warning(s) across {} model(s) — {}",
        combined.error_count(),
        combined.count(t2c_lint::Severity::Warn),
        total_models,
        combined.verdict(),
    );

    if let Some(path) = json_path {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).expect("create report directory");
            }
        }
        let json = combined.to_json();
        if let Err(missing) = validate_schema(&json) {
            eprintln!("lint report schema check FAILED; missing keys: {missing:?}");
            std::process::exit(1);
        }
        std::fs::write(&path, &json).expect("write JSON report");
        println!("lint report ok: {}", path.display());
    }

    if combined.error_count() > 0 {
        std::process::exit(1);
    }
}
