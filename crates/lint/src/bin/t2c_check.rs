//! `t2c-check` — runs the static integer-pipeline verifier over the
//! quickstart/e2e model zoo and each model's exported deployment package.
//!
//! For every model it: trains/calibrates a tiny instance, converts it with
//! `nn2chip`, lints the integer graph (overflow, scale chain,
//! well-formedness, LUT coverage), exports a package and cross-checks the
//! manifest against the graph. Prints a text report per model; with
//! `--json PATH` additionally dumps the combined findings as a JSON report
//! (schema-checked by `scripts/verify.sh`). Exits non-zero when any
//! error-level finding fires.
//!
//! With `--error-bound PATH` it additionally runs the quantization-error
//! certifier (DESIGN.md §6.11) over every model: each gets a sound
//! per-layer + end-to-end `|float_reference − dequant(int)|` bound, the
//! certificate is round-tripped through the package manifest's
//! `certified_error` section and cross-checked (T2C605), and the combined
//! certificates land at PATH as JSON. `--tolerance STEPS` turns the
//! certifier into a gate (T2C602) instead of a report.
//!
//! ```sh
//! cargo run --release -p t2c-lint --bin t2c-check -- --json bench_results/t2c_check.json
//! cargo run --release -p t2c-lint --bin t2c-check -- --error-bound bench_results/error_bound.json
//! ```

use std::path::PathBuf;

use t2c_core::IntModel;
use t2c_export::{export_package, read_package, write_certified};
use t2c_lint::{
    certify_model, lint_certified, lint_model, lint_package, validate_schema, ErrorBoundConfig,
    LintReport,
};

fn check_model(tag: &str, chip: &IntModel, input_shape: &[usize]) -> LintReport {
    let mut report = lint_model(chip, input_shape, tag);
    // Export the deployment package and cross-check the manifest.
    let dir = std::env::temp_dir().join(format!("t2c_check_{}_{tag}", std::process::id()));
    match export_package(chip, &dir) {
        Ok(manifest) => report.merge(lint_package(chip, &manifest, tag)),
        Err(e) => eprintln!("warning: could not export {tag} package for manifest checks: {e}"),
    }
    std::fs::remove_dir_all(&dir).ok();
    report
}

/// Certifies one model, round-trips the certificate through the package
/// manifest and cross-checks the stored claim (T2C605). Returns the
/// report JSON and whether any error-level finding fired.
fn certify_one(
    tag: &str,
    chip: &IntModel,
    input_shape: &[usize],
    cfg: ErrorBoundConfig,
) -> (String, bool) {
    let (report, mut lint) = certify_model(chip, input_shape, cfg, tag);
    print!("{}", report.to_text());
    let dir = std::env::temp_dir().join(format!("t2c_cert_{}_{tag}", std::process::id()));
    match export_package(chip, &dir) {
        Ok(mut manifest) => {
            if let Err(e) = write_certified(&mut manifest, report.to_certified()) {
                eprintln!("warning: could not store {tag} certificate: {e}");
            }
            match read_package(&dir) {
                Ok((_, reread)) => lint.merge(lint_certified(&report, &reread, tag)),
                Err(e) => eprintln!("warning: could not re-read {tag} package: {e}"),
            }
        }
        Err(e) => eprintln!("warning: could not export {tag} package for certification: {e}"),
    }
    std::fs::remove_dir_all(&dir).ok();
    if !lint.diagnostics.is_empty() {
        print!("{}", lint.to_text());
    }
    let failed = lint.error_count() > 0 || !report.pass();
    (report.to_json(), failed)
}

fn main() {
    let mut json_path: Option<PathBuf> = None;
    let mut error_bound_path: Option<PathBuf> = None;
    let mut tolerance_steps = f64::INFINITY;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                let path = args.next().unwrap_or_else(|| {
                    eprintln!("--json needs a file path");
                    std::process::exit(2);
                });
                json_path = Some(PathBuf::from(path));
            }
            "--error-bound" => {
                let path = args.next().unwrap_or_else(|| {
                    eprintln!("--error-bound needs a file path");
                    std::process::exit(2);
                });
                error_bound_path = Some(PathBuf::from(path));
            }
            "--tolerance" => {
                let raw = args.next().unwrap_or_else(|| {
                    eprintln!("--tolerance needs a step count");
                    std::process::exit(2);
                });
                tolerance_steps = raw.parse().unwrap_or_else(|_| {
                    eprintln!("--tolerance: `{raw}` is not a number");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!("usage: t2c-check [--json PATH] [--error-bound PATH] [--tolerance STEPS]");
                return;
            }
            other => {
                eprintln!(
                    "unknown argument `{other}` (usage: t2c-check [--json PATH] [--error-bound PATH] [--tolerance STEPS])"
                );
                std::process::exit(2);
            }
        }
    }

    let zoo = t2c_core::zoo::zoo();
    // Sparse deployment variants: the pruned zoo MLPs exercise the T2C5xx
    // rules end-to-end (graph validation + the manifest's sparse section).
    let sparse_zoo: [(&str, t2c_core::zoo::ZooBuilder); 2] = [
        ("tiny-mlp-sparse", || t2c_core::zoo::tiny_mlp_pruned(0.8)),
        ("tiny-mlp-nm", || t2c_core::zoo::tiny_mlp_nm(2, 4)),
    ];
    let total_models = zoo.len() + sparse_zoo.len();
    let models: Vec<(&str, t2c_core::zoo::ZooBuilder)> =
        zoo.into_iter().chain(sparse_zoo).collect();

    let mut combined = LintReport { tag: "t2c-check".into(), ..Default::default() };
    for (tag, build) in &models {
        let (chip, input_shape) = build();
        let report = check_model(tag, &chip, &input_shape);
        print!("{}", report.to_text());
        combined.diagnostics.extend(report.diagnostics);
        // Combined node table: the quickstart model's ranges (the one the
        // docs show); later models contribute findings only.
        if combined.nodes.is_empty() {
            combined.nodes = report.nodes;
        }
    }

    println!(
        "t2c-check total: {} error(s), {} warning(s) across {} model(s) — {}",
        combined.error_count(),
        combined.count(t2c_lint::Severity::Warn),
        total_models,
        combined.verdict(),
    );

    if let Some(path) = json_path {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).expect("create report directory");
            }
        }
        let json = combined.to_json();
        if let Err(missing) = validate_schema(&json) {
            eprintln!("lint report schema check FAILED; missing keys: {missing:?}");
            std::process::exit(1);
        }
        std::fs::write(&path, &json).expect("write JSON report");
        println!("lint report ok: {}", path.display());
    }

    let mut cert_failed = false;
    if let Some(path) = error_bound_path {
        let cfg = ErrorBoundConfig { tolerance_steps };
        let mut model_docs = Vec::with_capacity(models.len());
        for (tag, build) in &models {
            let (chip, input_shape) = build();
            let (doc, failed) = certify_one(tag, &chip, &input_shape, cfg);
            cert_failed |= failed;
            model_docs.push(doc);
        }
        let doc = format!(
            "{{\"version\":1,\"tolerance\":{},\"models\":[{}],\"pass\": {}}}",
            if tolerance_steps.is_finite() { tolerance_steps.to_string() } else { "null".into() },
            model_docs.join(","),
            !cert_failed,
        );
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).expect("create report directory");
            }
        }
        std::fs::write(&path, &doc).expect("write error-bound report");
        println!(
            "t2c-errorbound total: {} model(s) certified — {}",
            total_models,
            if cert_failed { "fail" } else { "pass" },
        );
        println!("error-bound report ok: {}", path.display());
    }

    if combined.error_count() > 0 || cert_failed {
        std::process::exit(1);
    }
}
