//! Interval dataflow over [`IntModel`] graphs.
//!
//! The analysis walks the topologically ordered op list once, carrying a
//! per-node [`State`]: the inferred output shape, the exact value interval
//! of the output codes, and the declared grid when the op clamps onto one.
//! All interval arithmetic is done in `i128`, mirrors the hardware
//! datapath op for op (`round_shift`, per-MAC `i32` saturation envelopes,
//! bias broadcast), and is **sound**: if a rule does not fire, the proven
//! property holds for *every* input on the declared input grid.

use std::collections::BTreeSet;

use t2c_core::intmodel::{IntNode, IntOp, LayerNormInt, Src};
use t2c_core::lut::{GeluLut, SoftmaxLut};
use t2c_core::{FixedScalar, IntModel, MulQuant, QuantSpec};
use t2c_tensor::{SparseError, Tensor};

use crate::interval::Interval;
use crate::{Diagnostic, LintReport, Rule, Severity};

/// Overshoot beyond this many grid widths escalates a scale-chain finding
/// from "worst-case saturation risk" (Warn) to "multiplier/shift mismatch"
/// (Error). Calibrated models legitimately carry worst-case overshoot of a
/// few grid widths; a shift that is off by even a few bits lands orders of
/// magnitude outside.
pub const SCALE_CHAIN_ERROR_FACTOR: i128 = 64;

/// Per-node analysis result surfaced in reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSummary {
    /// Node index in execution order.
    pub id: usize,
    /// Layer name.
    pub name: String,
    /// Op label ([`IntOp::label`]).
    pub op: &'static str,
    /// Inferred output shape (empty when inference failed upstream).
    pub shape: Vec<usize>,
    /// Proven lower bound of the output codes (saturated to `i64`).
    pub lo: i64,
    /// Proven upper bound of the output codes (saturated to `i64`).
    pub hi: i64,
}

/// Dataflow state of one tensor edge.
#[derive(Debug, Clone)]
struct State {
    shape: Vec<usize>,
    range: Interval,
    spec: Option<QuantSpec>,
}

fn sat_i64(v: i128) -> i64 {
    v.clamp(i64::MIN as i128, i64::MAX as i128) as i64
}

fn round_shift_i128(v: i128, bits: u8) -> i128 {
    if bits == 0 {
        return v;
    }
    (v + (1i128 << (bits - 1))) >> bits
}

/// Runs the full static verification pass over `model`, assuming the
/// model input has shape `input_shape` (batch included) and spans the
/// entire grid declared by the leading `Quantize` node.
pub fn lint_model(model: &IntModel, input_shape: &[usize], tag: &str) -> LintReport {
    let mut ctx = Ctx { diags: Vec::new() };
    let mut states: Vec<Option<State>> = Vec::with_capacity(model.len());

    if model.is_empty() {
        ctx.push(Diagnostic::global(
            Rule::MissingQuantize,
            Severity::Error,
            "model",
            "model has no nodes",
            "push at least a Quantize node",
        ));
        return ctx.into_report(tag, model, &states);
    }

    let input_state = match model.nodes.first().map(|n| &n.op) {
        Some(IntOp::Quantize { spec, .. }) => Some(State {
            shape: input_shape.to_vec(),
            range: Interval::of_spec(*spec),
            spec: Some(*spec),
        }),
        _ => {
            ctx.push(Diagnostic::node(
                Rule::MissingQuantize,
                Severity::Error,
                0,
                model.nodes[0].name.clone(),
                format!("first node is `{}`, not `quantize`", model.nodes[0].op.label()),
                "IntModel::run requires a leading Quantize node declaring the input grid",
            ));
            None
        }
    };

    for (i, node) in model.nodes.iter().enumerate() {
        // -- source well-formedness -----------------------------------
        let mut sources_ok = true;
        for src in &node.inputs {
            if let Src::Node(id) = src {
                if *id >= model.len() {
                    sources_ok = false;
                    ctx.push(Diagnostic::node(
                        Rule::DanglingSrc,
                        Severity::Error,
                        i,
                        node.name.clone(),
                        format!("reads Src::Node({id}) but the graph has {} nodes", model.len()),
                        "point the input at an existing, earlier node",
                    ));
                } else if *id >= i {
                    sources_ok = false;
                    ctx.push(Diagnostic::node(
                        Rule::ForwardSrc,
                        Severity::Error,
                        i,
                        node.name.clone(),
                        format!("reads Src::Node({id}), which executes at or after position {i}"),
                        "IntModel graphs are topologically ordered; reference earlier nodes only",
                    ));
                }
            }
        }
        let arity = node.op.arity();
        if node.inputs.len() < arity {
            sources_ok = false;
            ctx.push(Diagnostic::node(
                Rule::MissingOperand,
                Severity::Error,
                i,
                node.name.clone(),
                format!(
                    "op `{}` needs {arity} operand(s), {} listed",
                    node.op.label(),
                    node.inputs.len()
                ),
                "list every operand in IntNode::inputs",
            ));
        }

        // Resolve operand states (cloned; shapes are tiny).
        let operand = |idx: usize| -> Option<State> {
            match node.inputs.get(idx)? {
                Src::Input => input_state.clone(),
                Src::Node(id) if *id < i => states.get(*id).and_then(Clone::clone),
                Src::Node(_) => None,
            }
        };

        let state = if sources_ok {
            ctx.analyze_op(i, node, operand(0), operand(1), input_state.as_ref())
        } else {
            None
        };
        states.push(state);
    }

    // -- reachability --------------------------------------------------
    let consumed: BTreeSet<usize> = model
        .nodes
        .iter()
        .flat_map(|n| n.inputs.iter())
        .filter_map(|s| match s {
            Src::Node(id) => Some(*id),
            Src::Input => None,
        })
        .collect();
    // Node 0 is the Quantize entry whose output downstream nodes read as
    // `Src::Input`, so it is reachable by construction.
    for (i, node) in model.nodes.iter().enumerate() {
        if i > 0 && i + 1 < model.len() && !consumed.contains(&i) {
            ctx.push(Diagnostic::node(
                Rule::UnreachableNode,
                Severity::Warn,
                i,
                node.name.clone(),
                "output is never consumed and this is not the model output".to_owned(),
                "remove the node or wire its output into the graph",
            ));
        }
    }

    ctx.into_report(tag, model, &states)
}

struct Ctx {
    diags: Vec<Diagnostic>,
}

impl Ctx {
    fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    fn into_report(self, tag: &str, model: &IntModel, states: &[Option<State>]) -> LintReport {
        let nodes = model
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let st = states.get(i).and_then(Option::as_ref);
                NodeSummary {
                    id: i,
                    name: n.name.clone(),
                    op: n.op.label(),
                    shape: st.map(|s| s.shape.clone()).unwrap_or_default(),
                    lo: st.map_or(0, |s| sat_i64(s.range.lo)),
                    hi: st.map_or(0, |s| sat_i64(s.range.hi)),
                }
            })
            .collect();
        LintReport { tag: tag.to_owned(), diagnostics: self.diags, nodes }
    }

    fn shape_err(&mut self, i: usize, name: &str, msg: String, hint: &str) {
        self.push(Diagnostic::node(Rule::ShapeMismatch, Severity::Error, i, name, msg, hint));
    }

    /// Per-`FixedScalar` representability checks (T2C202 / T2C203).
    fn fixed_scalar_check(&mut self, i: usize, name: &str, m: FixedScalar, what: &str) {
        if m.raw == 0 {
            self.push(Diagnostic::node(
                Rule::ZeroMultiplier,
                Severity::Warn,
                i,
                name,
                format!("{what} multiplier quantized to zero in {}", m.format),
                "increase frac_bits (the scale underflows the fractional width)",
            ));
        } else if m.raw.unsigned_abs() < 8 {
            self.push(Diagnostic::node(
                Rule::LowPrecisionScale,
                Severity::Warn,
                i,
                name,
                format!(
                    "{what} multiplier raw value {} keeps fewer than 3 significant bits in {}",
                    m.raw, m.format
                ),
                "widen frac_bits so the scale retains usable precision",
            ));
        }
    }

    /// Scale-chain consistency for one mapped interval (T2C201). Returns
    /// the grid-clamped output interval.
    fn scale_chain(
        &mut self,
        i: usize,
        name: &str,
        mapped: Interval,
        spec: QuantSpec,
        what: &str,
    ) -> Interval {
        let (glo, ghi) = spec.range();
        let (glo, ghi) = (glo as i128, ghi as i128);
        if mapped.lo < glo || mapped.hi > ghi {
            let overshoot = (glo - mapped.lo).max(mapped.hi - ghi).max(0);
            let disjoint = mapped.hi < glo || mapped.lo > ghi;
            let gross = disjoint || overshoot > SCALE_CHAIN_ERROR_FACTOR * spec.width() as i128;
            let severity = if gross { Severity::Error } else { Severity::Warn };
            let message = if disjoint {
                format!("{what} maps the producer range to {mapped}, entirely outside {spec} [{glo}, {ghi}]")
            } else {
                format!(
                    "{what} maps the worst-case producer range to {mapped}, overshooting {spec} [{glo}, {ghi}] by {overshoot} code(s)"
                )
            };
            self.push(Diagnostic::node(
                Rule::ScaleChain,
                severity,
                i,
                name,
                message,
                if gross {
                    "the fixed-point multiplier/shift does not match the scale chain; re-derive it from S_in/S_out"
                } else {
                    "worst-case inputs saturate; recalibrate the producer range or widen the output grid"
                },
            ));
        }
        mapped.clamp_to(spec)
    }

    /// Requantizer checks over per-channel accumulator intervals
    /// (T2C102/T2C103/T2C201/T2C202/T2C203). Returns the union of the
    /// per-channel clamped outputs.
    fn requant(
        &mut self,
        i: usize,
        name: &str,
        mq: &MulQuant,
        acc: &[Interval],
        relu: bool,
    ) -> Interval {
        let headroom = mq.bias_headroom();
        for (ci, &b) in mq.bias_raw.iter().enumerate() {
            if b.abs() > headroom {
                self.push(Diagnostic::node(
                    Rule::BiasHeadroom,
                    Severity::Error,
                    i,
                    name,
                    format!(
                        "MulQuant bias_raw[{ci}] = {b} exceeds the accumulator headroom ±{headroom} for {}",
                        mq.format
                    ),
                    "rebuild the requantizer with MulQuant::from_float (it clamps biases to headroom)",
                ));
            }
        }
        for (ci, &sr) in mq.scale_raw.iter().enumerate() {
            let m = FixedScalar { raw: sr, format: mq.format };
            self.fixed_scalar_check(i, name, m, &format!("MulQuant channel {ci}"));
        }
        // Worst mapped interval across channels, pre-clamp; checked once
        // so a 512-channel layer produces one finding, not 512.
        let mut worst: Option<Interval> = None;
        let mut out: Option<Interval> = None;
        for (ch, &a) in acc.iter().enumerate() {
            let ci = ch.min(mq.scale_raw.len() - 1);
            let bias = mq.bias_raw[ci.min(mq.bias_raw.len() - 1)] as i128;
            let full = Interval::new(
                (a.lo * mq.scale_raw[ci] as i128).min(a.hi * mq.scale_raw[ci] as i128) + bias,
                (a.lo * mq.scale_raw[ci] as i128).max(a.hi * mq.scale_raw[ci] as i128) + bias,
            );
            if !full.fits_i64() {
                self.push(Diagnostic::node(
                    Rule::WideProductOverflow,
                    Severity::Error,
                    i,
                    name,
                    format!("requant product acc·M + B spans {full}, outside i64 (channel {ch})"),
                    "shrink the accumulator range or the multiplier magnitude",
                ));
                continue;
            }
            let mut mapped = Interval::new(
                round_shift_i128(full.lo, mq.format.frac_bits),
                round_shift_i128(full.hi, mq.format.frac_bits),
            );
            if relu {
                mapped = mapped.relu();
            }
            worst = Some(match worst {
                Some(w) => w.union(mapped),
                None => mapped,
            });
            out = Some(match out {
                Some(o) => o.union(mapped.clamp_to(mq.out_spec)),
                None => mapped.clamp_to(mq.out_spec),
            });
        }
        if let Some(w) = worst {
            self.scale_chain(i, name, w, mq.out_spec, "MulQuant");
        }
        out.unwrap_or_else(|| Interval::of_spec(mq.out_spec))
    }

    /// Per-output-channel accumulator intervals for a conv/linear weight
    /// tensor against a per-tensor input interval. Returns
    /// `(final, envelope)` pairs: `final` is the exact end-of-sum
    /// interval (bias included), `envelope` additionally bounds every
    /// partial sum, which is what the per-MAC saturating kernel clips on.
    #[allow(clippy::type_complexity, clippy::too_many_arguments)]
    fn mac_channels(
        &mut self,
        i: usize,
        name: &str,
        weight: &Tensor<i32>,
        oc: usize,
        x: Interval,
        bias: Option<&[i64]>,
        weight_spec: QuantSpec,
    ) -> Vec<(Interval, Interval)> {
        let ws = weight.as_slice();
        let per = ws.len() / oc.max(1);
        if let Some((min, max)) = ws.iter().fold(None, |mm: Option<(i32, i32)>, &w| {
            Some(mm.map_or((w, w), |(lo, hi)| (lo.min(w), hi.max(w))))
        }) {
            if !weight_spec.contains(min as i64) || !weight_spec.contains(max as i64) {
                self.push(Diagnostic::node(
                    Rule::WeightOffGrid,
                    Severity::Error,
                    i,
                    name,
                    format!(
                        "weight codes span [{min}, {max}], outside the declared {weight_spec} grid"
                    ),
                    "fix weight_spec or re-quantize the weights onto the declared grid",
                ));
            }
        }
        if let Some(b) = bias {
            if b.len() != oc && b.len() != 1 {
                self.push(Diagnostic::node(
                    Rule::ShapeMismatch,
                    Severity::Warn,
                    i,
                    name,
                    format!("bias has {} entries for {oc} output channels", b.len()),
                    "match the bias length to the output channel count (the runtime broadcasts the last entry)",
                ));
            }
        }
        let mut per_ch = Vec::with_capacity(oc);
        for c in 0..oc {
            let (mut lo, mut hi) = (0i128, 0i128);
            let (mut env_lo, mut env_hi) = (0i128, 0i128);
            for &w in &ws[c * per..(c + 1) * per] {
                let a = w as i128 * x.lo;
                let b = w as i128 * x.hi;
                let (cl, ch) = (a.min(b), a.max(b));
                lo += cl;
                hi += ch;
                env_lo += cl.min(0);
                env_hi += ch.max(0);
            }
            let bv = bias.map_or(0i128, |b| b[c.min(b.len() - 1)] as i128);
            per_ch.push((
                Interval::new(lo + bv, hi + bv),
                Interval::new(env_lo + bv.min(0), env_hi + bv.max(0)),
            ));
        }
        per_ch
    }

    /// Emits T2C101 if any channel's saturation envelope (partial sums
    /// plus bias) can leave `i32`. Reports the single worst channel.
    fn acc_overflow(&mut self, i: usize, name: &str, per_ch: &[(Interval, Interval)]) -> bool {
        let worst = per_ch
            .iter()
            .enumerate()
            .filter(|(_, (f, e))| !f.fits_i32() || !e.fits_i32())
            .max_by_key(|(_, (f, e))| f.union(*e).width());
        if let Some((ch, (f, e))) = worst {
            self.push(Diagnostic::node(
                Rule::AccOverflow,
                Severity::Error,
                i,
                name,
                format!(
                    "channel {ch} accumulator can reach {} (partial-sum envelope {}), outside i32 — the saturating MAC array silently clips",
                    f.union(*e),
                    e
                ),
                "reduce MAC count per output, weight magnitude or input bit width so the proof closes",
            ));
            return true;
        }
        false
    }

    #[allow(clippy::too_many_lines)]
    fn analyze_op(
        &mut self,
        i: usize,
        node: &IntNode,
        in0: Option<State>,
        in1: Option<State>,
        input_state: Option<&State>,
    ) -> Option<State> {
        let name = node.name.clone();
        match &node.op {
            IntOp::Quantize { spec, .. } => {
                if i > 0 {
                    self.push(Diagnostic::node(
                        Rule::MissingQuantize,
                        Severity::Warn,
                        i,
                        &name,
                        "Quantize after position 0 acts as a passthrough of the model input"
                            .to_owned(),
                        "quantize exactly once, at the graph entry",
                    ));
                    return input_state.cloned();
                }
                input_state.cloned().map(|s| State { spec: Some(*spec), ..s })
            }
            IntOp::Conv2d { weight, bias, spec, requant, relu, weight_spec } => {
                let x = in0?;
                self.conv_body(
                    i,
                    &name,
                    weight,
                    bias.as_deref(),
                    spec,
                    requant,
                    *relu,
                    *weight_spec,
                    x,
                )
            }
            IntOp::Conv2dPacked { weight, bias, spec, requant, relu, weight_spec } => {
                let x = in0?;
                // Structural integrity first: a panel layout that disagrees
                // with its own geometry (or carries non-zero padding) would
                // make the packed kernel compute garbage.
                if let Err(e) = weight.validate() {
                    self.push(Diagnostic::node(
                        Rule::ShapeMismatch,
                        Severity::Error,
                        i,
                        &name,
                        format!("packed conv weight fails validation: {e}"),
                        "re-pack the layer with IntModel::prepack — the panel layout must \
                         describe the dense weight exactly",
                    ));
                    return None;
                }
                // The packed kernel is bit-identical to the dense path, so
                // the dense expansion carries the exact intervals.
                let dense = weight.unpack().ok()?;
                self.conv_body(
                    i,
                    &name,
                    &dense,
                    bias.as_deref(),
                    spec,
                    requant,
                    *relu,
                    *weight_spec,
                    x,
                )
            }
            IntOp::Linear { weight, bias, requant, relu, weight_spec } => {
                let x = in0?;
                self.linear_body(
                    i,
                    &name,
                    weight,
                    bias.as_deref(),
                    requant.as_ref(),
                    *relu,
                    *weight_spec,
                    x,
                )
            }
            IntOp::LinearSparse { weight, bias, requant, relu, weight_spec, declared_sparsity } => {
                let x = in0?;
                // Structural integrity first: a mask that disagrees with
                // the payload means the skip-zero kernel computes garbage,
                // so nothing downstream is worth analyzing.
                if let Err(e) = weight.validate() {
                    let (rule, hint) = match &e {
                        SparseError::Mask(_) => (
                            Rule::SparseMaskMismatch,
                            "re-pack the layer with SparseMat::from_dense — mask and row \
                             pointers must describe the stored payload exactly",
                        ),
                        SparseError::NmConstraint(_) => (
                            Rule::NmConstraintViolation,
                            "re-prune so every group of m keeps at most n survivors, then \
                             re-pack with SparseMat::from_dense_nm",
                        ),
                    };
                    self.push(Diagnostic::node(
                        rule,
                        Severity::Error,
                        i,
                        &name,
                        format!("{e}"),
                        hint,
                    ));
                    return None;
                }
                let actual = weight.sparsity();
                if (actual - declared_sparsity).abs() > 0.01 {
                    self.push(Diagnostic::node(
                        Rule::SparsityMismatch,
                        Severity::Error,
                        i,
                        &name,
                        format!(
                            "declares {declared_sparsity:.4} sparsity but stores {} of {} slots (actual {actual:.4})",
                            weight.stored(),
                            weight.rows * weight.cols
                        ),
                        "recompute declared_sparsity from the packed layout (IntModel::sparsify keeps them in sync)",
                    ));
                }
                // The skip-zero kernel is bit-identical to the masked-dense
                // path, so the dense expansion carries the exact intervals.
                let dense = weight.to_dense();
                self.linear_body(
                    i,
                    &name,
                    &dense,
                    bias.as_deref(),
                    requant.as_ref(),
                    *relu,
                    *weight_spec,
                    x,
                )
            }
            IntOp::LinearPacked { weight, bias, requant, relu, weight_spec } => {
                let x = in0?;
                if let Err(e) = weight.validate() {
                    self.push(Diagnostic::node(
                        Rule::ShapeMismatch,
                        Severity::Error,
                        i,
                        &name,
                        format!("packed linear weight fails validation: {e}"),
                        "re-pack the layer with IntModel::prepack — the panel layout must \
                         describe the dense weight exactly",
                    ));
                    return None;
                }
                // Bit-identical to dense, so analyze the dense expansion.
                let dense = weight.unpack().ok()?;
                self.linear_body(
                    i,
                    &name,
                    &dense,
                    bias.as_deref(),
                    requant.as_ref(),
                    *relu,
                    *weight_spec,
                    x,
                )
            }
            IntOp::AddRequant { m_a, m_b, out_spec, relu } => {
                let (a, b) = (in0?, in1?);
                if a.shape != b.shape {
                    self.shape_err(
                        i,
                        &name,
                        format!("branch shapes {:?} vs {:?} differ", a.shape, b.shape),
                        "residual adds need identical operand shapes",
                    );
                    return None;
                }
                self.fixed_scalar_check(i, &name, *m_a, "branch-a");
                self.fixed_scalar_check(i, &name, *m_b, "branch-b");
                let mut mapped = a.range.map_fixed(*m_a) + b.range.map_fixed(*m_b);
                if *relu {
                    mapped = mapped.relu();
                }
                let out = self.scale_chain(i, &name, mapped, *out_spec, "add_requant");
                Some(State { shape: a.shape, range: out, spec: Some(*out_spec) })
            }
            IntOp::AddConstRequant { value, m, out_spec } => {
                let a = in0?;
                let n: usize = a.shape.iter().skip(1).product();
                if value.numel() == 0 || !n.is_multiple_of(value.numel()) {
                    self.shape_err(
                        i,
                        &name,
                        format!(
                            "constant with {} element(s) does not broadcast over input {:?}",
                            value.numel(),
                            a.shape
                        ),
                        "the constant must tile the non-batch extent exactly",
                    );
                    return None;
                }
                self.fixed_scalar_check(i, &name, *m, "const-add");
                let (cmin, cmax) = slice_min_max(value.as_slice());
                let sum = a.range + Interval::new(cmin as i128, cmax as i128);
                let mapped = sum.map_fixed(*m);
                let out = self.scale_chain(i, &name, mapped, *out_spec, "add_const_requant");
                Some(State { shape: a.shape, range: out, spec: Some(*out_spec) })
            }
            IntOp::MaxPool2d { spec } => {
                let x = in0?;
                if x.shape.len() != 4 {
                    self.shape_err(
                        i,
                        &name,
                        format!("max_pool input must be rank 4, got {:?}", x.shape),
                        "feed an [N, C, H, W] tensor",
                    );
                    return None;
                }
                let (Some(oh), Some(ow)) = (
                    conv_extent(x.shape[2], spec.kernel, spec.stride, spec.padding),
                    conv_extent(x.shape[3], spec.kernel, spec.stride, spec.padding),
                ) else {
                    self.shape_err(
                        i,
                        &name,
                        format!(
                            "pool kernel {} stride {} padding {} does not fit {}x{}",
                            spec.kernel, spec.stride, spec.padding, x.shape[2], x.shape[3]
                        ),
                        "shrink the window",
                    );
                    return None;
                };
                Some(State { shape: vec![x.shape[0], x.shape[1], oh, ow], ..x })
            }
            IntOp::GlobalAvgPool { frac_bits } => {
                let x = in0?;
                if x.shape.len() != 4 {
                    self.shape_err(
                        i,
                        &name,
                        format!("global_avg_pool input must be rank 4, got {:?}", x.shape),
                        "feed an [N, C, H, W] tensor",
                    );
                    return None;
                }
                let hw = (x.shape[2] * x.shape[3]).max(1);
                // The runtime's fixed-point 2^(16+frac)/(H·W) multiplier.
                let m = (((1i64 << (16 + *frac_bits as i64)) as f64) / hw as f64).round() as i128;
                let sum = x.range.scale(hw as i128);
                let product =
                    Interval::new((sum.lo * m).min(sum.hi * m), (sum.lo * m).max(sum.hi * m));
                if !product.fits_i64() {
                    self.push(Diagnostic::node(
                        Rule::WideProductOverflow,
                        Severity::Error,
                        i,
                        &name,
                        format!("pooling product sum·m spans {product}, outside i64"),
                        "reduce the pooled extent or the retained fractional bits",
                    ));
                    return None;
                }
                let out = Interval::new(
                    round_shift_i128(product.lo, 16),
                    round_shift_i128(product.hi, 16),
                );
                if !out.fits_i32() {
                    self.push(Diagnostic::node(
                        Rule::AccOverflow,
                        Severity::Error,
                        i,
                        &name,
                        format!("pooled output range {out} does not fit i32"),
                        "lower frac_bits",
                    ));
                }
                Some(State {
                    shape: vec![x.shape[0], x.shape[1]],
                    range: out,
                    spec: if *frac_bits == 0 { x.spec } else { None },
                })
            }
            IntOp::Flatten => {
                let x = in0?;
                if x.shape.is_empty() {
                    self.shape_err(i, &name, "flatten input has rank 0".into(), "feed a batch");
                    return None;
                }
                let n = x.shape[0];
                let rest: usize = x.shape.iter().skip(1).product();
                Some(State { shape: vec![n, rest], ..x })
            }
            IntOp::PatchToTokens => {
                let x = in0?;
                if x.shape.len() != 4 {
                    self.shape_err(
                        i,
                        &name,
                        format!("patch_to_tokens input must be rank 4, got {:?}", x.shape),
                        "feed the [N, D, h, w] patch grid",
                    );
                    return None;
                }
                Some(State { shape: vec![x.shape[0], x.shape[2] * x.shape[3], x.shape[1]], ..x })
            }
            IntOp::ConcatToken { token } => {
                let x = in0?;
                if x.shape.len() != 3 || token.numel() != x.shape[2] {
                    self.shape_err(
                        i,
                        &name,
                        format!(
                            "token with {} element(s) does not match sequence {:?}",
                            token.numel(),
                            x.shape
                        ),
                        "the class token must match the embedding dim of an [N, L, D] sequence",
                    );
                    return None;
                }
                let (tmin, tmax) = slice_min_max(token.as_slice());
                if let Some(spec) = x.spec {
                    if !spec.contains(tmin as i64) || !spec.contains(tmax as i64) {
                        self.push(Diagnostic::node(
                            Rule::WeightOffGrid,
                            Severity::Warn,
                            i,
                            &name,
                            format!("class token codes span [{tmin}, {tmax}], outside the stream's {spec} grid"),
                            "quantize the token at the sequence's scale and grid",
                        ));
                    }
                }
                Some(State {
                    shape: vec![x.shape[0], x.shape[1] + 1, x.shape[2]],
                    range: x.range.union(Interval::new(tmin as i128, tmax as i128)),
                    spec: x.spec,
                })
            }
            IntOp::TakeToken { index } => {
                let x = in0?;
                if x.shape.len() != 3 || *index >= x.shape[1] {
                    self.shape_err(
                        i,
                        &name,
                        format!("token index {index} out of range for {:?}", x.shape),
                        "take_token needs an [N, L, D] input with index < L",
                    );
                    return None;
                }
                Some(State { shape: vec![x.shape[0], x.shape[2]], ..x })
            }
            IntOp::SplitHeads { heads } => {
                let x = in0?;
                if x.shape.len() != 3 || *heads == 0 || x.shape[2] % heads != 0 {
                    self.shape_err(
                        i,
                        &name,
                        format!("cannot split {:?} into {heads} head(s)", x.shape),
                        "the embedding dim must divide evenly by the head count",
                    );
                    return None;
                }
                Some(State { shape: vec![x.shape[0] * heads, x.shape[1], x.shape[2] / heads], ..x })
            }
            IntOp::MergeHeads { heads } => {
                let x = in0?;
                if x.shape.len() != 3 || *heads == 0 || x.shape[0] % heads != 0 {
                    self.shape_err(
                        i,
                        &name,
                        format!("cannot merge {:?} from {heads} head(s)", x.shape),
                        "the batch·head extent must divide evenly by the head count",
                    );
                    return None;
                }
                Some(State { shape: vec![x.shape[0] / heads, x.shape[1], x.shape[2] * heads], ..x })
            }
            IntOp::BmmRequant { transpose_rhs, m, out_spec } => {
                let (a, b) = (in0?, in1?);
                if a.shape.len() != 3 || b.shape.len() != 3 || a.shape[0] != b.shape[0] {
                    self.shape_err(
                        i,
                        &name,
                        format!(
                            "bmm operands {:?} and {:?} are not batched matrices",
                            a.shape, b.shape
                        ),
                        "both operands must be rank 3 with matching batch",
                    );
                    return None;
                }
                let (k, n_out, k_rhs) = if *transpose_rhs {
                    (a.shape[2], b.shape[1], b.shape[2])
                } else {
                    (a.shape[2], b.shape[2], b.shape[1])
                };
                if k != k_rhs {
                    self.shape_err(
                        i,
                        &name,
                        format!(
                            "inner dims differ: lhs {:?} vs rhs {:?} (transpose_rhs={transpose_rhs})",
                            a.shape, b.shape
                        ),
                        "match the contraction extents",
                    );
                    return None;
                }
                let product = a.range * b.range;
                let envelope =
                    Interval::new(product.lo.min(0) * k as i128, product.hi.max(0) * k as i128);
                if !envelope.fits_i32() {
                    self.push(Diagnostic::node(
                        Rule::AccOverflow,
                        Severity::Error,
                        i,
                        &name,
                        format!(
                            "bmm accumulator envelope {envelope} over {k} MACs leaves i32 — the saturating MAC array silently clips"
                        ),
                        "reduce the contraction length or operand bit widths",
                    ));
                }
                self.fixed_scalar_check(i, &name, *m, "bmm");
                let acc = product.scale(k as i128);
                let mapped = acc.map_fixed(*m);
                let out = self.scale_chain(i, &name, mapped, *out_spec, "bmm_requant");
                Some(State {
                    shape: vec![a.shape[0], a.shape[1], n_out],
                    range: out,
                    spec: Some(*out_spec),
                })
            }
            IntOp::Requant { m, out_spec } => {
                let x = in0?;
                self.fixed_scalar_check(i, &name, *m, "requant");
                let mapped = x.range.map_fixed(*m);
                let out = self.scale_chain(i, &name, mapped, *out_spec, "requant");
                Some(State { shape: x.shape, range: out, spec: Some(*out_spec) })
            }
            IntOp::LayerNorm(ln) => self.layer_norm(i, &name, ln, in0),
            IntOp::SoftmaxLut(lut) => self.softmax_lut(i, &name, lut, in0),
            IntOp::GeluLut(lut) => self.gelu_lut(i, &name, lut, in0),
        }
    }

    /// The shared dense analysis for `Conv2d` and (after unpacking)
    /// `Conv2dPacked`: shape inference, per-channel accumulator intervals,
    /// overflow proof and requantizer checks.
    #[allow(clippy::too_many_arguments)]
    fn conv_body(
        &mut self,
        i: usize,
        name: &str,
        weight: &Tensor<i32>,
        bias: Option<&[i64]>,
        spec: &t2c_tensor::ops::Conv2dSpec,
        requant: &MulQuant,
        relu: bool,
        weight_spec: QuantSpec,
        x: State,
    ) -> Option<State> {
        if x.shape.len() != 4 {
            self.shape_err(
                i,
                name,
                format!("conv2d input must be rank 4, got {:?}", x.shape),
                "feed an [N, C, H, W] tensor",
            );
            return None;
        }
        let (c, h, w) = (x.shape[1], x.shape[2], x.shape[3]);
        let (oc, cg, kh, kw) = (weight.dim(0), weight.dim(1), weight.dim(2), weight.dim(3));
        let g = spec.groups.max(1);
        if cg * g != c || oc % g != 0 {
            self.shape_err(
                i,
                name,
                format!(
                    "weight [{oc}, {cg}, {kh}, {kw}] with {g} group(s) does not match {c} input channels"
                ),
                "weight dim 1 must be C/groups and OC divisible by groups",
            );
            return None;
        }
        let (Some(oh), Some(ow)) = (
            conv_extent(h, kh, spec.stride, spec.padding),
            conv_extent(w, kw, spec.stride, spec.padding),
        ) else {
            self.shape_err(
                i,
                name,
                format!(
                    "kernel {kh}x{kw} stride {} padding {} does not fit input {h}x{w}",
                    spec.stride, spec.padding
                ),
                "shrink the kernel or add padding",
            );
            return None;
        };
        let xr = if spec.padding > 0 { x.range.include_zero() } else { x.range };
        let per_ch = self.mac_channels(i, name, weight, oc, xr, bias, weight_spec);
        self.acc_overflow(i, name, &per_ch);
        if mq_channel_mismatch(requant, oc) {
            self.push(Diagnostic::node(
                Rule::ShapeMismatch,
                Severity::Warn,
                i,
                name,
                format!(
                    "requantizer carries {} channel(s) for {oc} output channels",
                    requant.channels()
                ),
                "use 1 (per-tensor) or OC requantizer channels",
            ));
        }
        let finals: Vec<Interval> = per_ch.iter().map(|(f, _)| *f).collect();
        let out = self.requant(i, name, requant, &finals, relu);
        Some(State {
            shape: vec![x.shape[0], oc, oh, ow],
            range: out,
            spec: Some(requant.out_spec),
        })
    }

    /// The shared dense analysis for `Linear` and (after densifying)
    /// `LinearSparse`: shape inference, per-channel accumulator intervals,
    /// overflow proof and requantizer checks.
    #[allow(clippy::too_many_arguments)]
    fn linear_body(
        &mut self,
        i: usize,
        name: &str,
        weight: &Tensor<i32>,
        bias: Option<&[i64]>,
        requant: Option<&MulQuant>,
        relu: bool,
        weight_spec: QuantSpec,
        x: State,
    ) -> Option<State> {
        let (out_f, in_f) = (weight.dim(0), weight.dim(1));
        let Some(&last) = x.shape.last() else {
            self.shape_err(i, name, "linear input has rank 0".into(), "feed [N, IN]");
            return None;
        };
        if x.shape.len() < 2 || x.shape.len() > 3 || last != in_f {
            self.shape_err(
                i,
                name,
                format!("weight [{out_f}, {in_f}] does not match input {:?}", x.shape),
                "linear expects [N, IN] or [N, L, IN] with IN matching the weight",
            );
            return None;
        }
        let per_ch = self.mac_channels(i, name, weight, out_f, x.range, bias, weight_spec);
        self.acc_overflow(i, name, &per_ch);
        let finals: Vec<Interval> = per_ch.iter().map(|(f, _)| *f).collect();
        let mut shape = x.shape.clone();
        *shape.last_mut().expect("non-empty") = out_f;
        match requant {
            Some(mq) => {
                if mq_channel_mismatch(mq, out_f) {
                    self.push(Diagnostic::node(
                        Rule::ShapeMismatch,
                        Severity::Warn,
                        i,
                        name,
                        format!(
                            "requantizer carries {} channel(s) for {out_f} output features",
                            mq.channels()
                        ),
                        "use 1 (per-tensor) or OUT requantizer channels",
                    ));
                }
                let out = self.requant(i, name, mq, &finals, relu);
                Some(State { shape, range: out, spec: Some(mq.out_spec) })
            }
            None => {
                let range =
                    finals.iter().copied().reduce(Interval::union).unwrap_or(Interval::point(0));
                Some(State { shape, range, spec: None })
            }
        }
    }

    fn layer_norm(
        &mut self,
        i: usize,
        name: &str,
        ln: &LayerNormInt,
        in0: Option<State>,
    ) -> Option<State> {
        let x = in0?;
        let Some(&d) = x.shape.last() else {
            self.shape_err(i, name, "layer_norm input has rank 0".into(), "feed a feature axis");
            return None;
        };
        if ln.gamma_m.len() != d || ln.beta_b.len() != d {
            self.shape_err(
                i,
                name,
                format!(
                    "gamma/beta lengths {}/{} do not match the {d}-wide feature axis",
                    ln.gamma_m.len(),
                    ln.beta_b.len()
                ),
                "provide one gamma multiplier and beta bias per feature",
            );
            return None;
        }
        Some(State {
            shape: x.shape,
            range: Interval::of_spec(ln.out_spec),
            spec: Some(ln.out_spec),
        })
    }

    fn softmax_lut(
        &mut self,
        i: usize,
        name: &str,
        lut: &SoftmaxLut,
        in0: Option<State>,
    ) -> Option<State> {
        let x = in0?;
        if lut.table.is_empty() {
            self.push(Diagnostic::node(
                Rule::LutDomainGap,
                Severity::Error,
                i,
                name,
                "softmax exp table is empty".to_owned(),
                "build the table with at least one entry",
            ));
            return None;
        }
        let spread = x.range.width();
        if spread > (lut.table.len() - 1) as i128 {
            self.push(Diagnostic::node(
                Rule::LutRangeTruncated,
                Severity::Warn,
                i,
                name,
                format!(
                    "scores can sit {spread} codes below the row max but the exp table covers {}; the tail flattens to ≈0",
                    lut.table.len() - 1
                ),
                "grow table_size to cover the producer's score spread",
            ));
        }
        Some(State {
            shape: x.shape,
            range: Interval::new(0, lut.out_spec.qmax() as i128),
            spec: Some(lut.out_spec),
        })
    }

    fn gelu_lut(
        &mut self,
        i: usize,
        name: &str,
        lut: &GeluLut,
        in0: Option<State>,
    ) -> Option<State> {
        let x = in0?;
        let expected = lut.in_spec.width() as usize + 1;
        if lut.table.len() < expected {
            self.push(Diagnostic::node(
                Rule::LutDomainGap,
                Severity::Error,
                i,
                name,
                format!(
                    "GELU table has {} entries but the {} input grid needs {expected}; codes above {} index out of bounds",
                    lut.table.len(),
                    lut.in_spec,
                    lut.in_spec.qmin() as i128 + lut.table.len() as i128 - 1
                ),
                "rebuild the table with GeluLut::build over the full input grid",
            ));
            return None;
        }
        if !x.range.within(lut.in_spec) {
            self.push(Diagnostic::node(
                Rule::LutRangeTruncated,
                Severity::Warn,
                i,
                name,
                format!(
                    "producer range {} exceeds the table's {} domain; out-of-domain codes clamp to the edge entries",
                    x.range, lut.in_spec
                ),
                "requantize the producer onto the table's input grid",
            ));
        }
        let (tmin, tmax) = slice_min_max(&lut.table);
        Some(State {
            shape: x.shape,
            range: Interval::new(tmin as i128, tmax as i128),
            spec: Some(lut.out_spec),
        })
    }
}

fn mq_channel_mismatch(mq: &MulQuant, oc: usize) -> bool {
    let ch = mq.channels();
    ch != 1 && ch != oc
}

fn conv_extent(h: usize, k: usize, stride: usize, padding: usize) -> Option<usize> {
    if stride == 0 || k == 0 {
        return None;
    }
    let padded = h + 2 * padding;
    if k > padded {
        return None;
    }
    Some((padded - k) / stride + 1)
}

fn slice_min_max(s: &[i32]) -> (i32, i32) {
    let mut it = s.iter();
    let Some(&first) = it.next() else { return (0, 0) };
    it.fold((first, first), |(lo, hi), &v| (lo.min(v), hi.max(v)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use t2c_core::FixedPointFormat;
    use t2c_tensor::ops::Conv2dSpec;

    fn quantize(spec: QuantSpec) -> IntOp {
        IntOp::Quantize { scale: 1.0, spec }
    }

    fn unit_requant(out_spec: QuantSpec) -> MulQuant {
        MulQuant::from_float(&[1.0], &[0.0], FixedPointFormat::int16_frac12(), out_spec)
    }

    /// 4-bit input, one 1x1 weight of +1, identity requant: every range is
    /// exact and every check closes.
    fn clean_conv_model() -> IntModel {
        let mut m = IntModel::new();
        m.push("input", quantize(QuantSpec::unsigned(4)), vec![]);
        m.push(
            "conv1",
            IntOp::Conv2d {
                weight: Tensor::from_vec(vec![1i32], &[1, 1, 1, 1]).unwrap(),
                bias: None,
                spec: Conv2dSpec::new(1, 0),
                requant: unit_requant(QuantSpec::unsigned(4)),
                relu: false,
                weight_spec: QuantSpec::signed(4),
            },
            vec![Src::Input],
        );
        m
    }

    fn ids(report: &LintReport) -> Vec<&str> {
        report.diagnostics.iter().map(|d| d.rule.id()).collect()
    }

    #[test]
    fn clean_model_has_no_findings() {
        let report = lint_model(&clean_conv_model(), &[1, 1, 4, 4], "clean");
        assert!(report.is_clean(), "unexpected findings:\n{}", report.to_text());
        assert_eq!(report.verdict(), "pass");
        // Range metadata: conv output is exactly the 4-bit grid image.
        assert_eq!(report.nodes[1].shape, vec![1, 1, 4, 4]);
        assert_eq!((report.nodes[1].lo, report.nodes[1].hi), (0, 15));
    }

    #[test]
    fn injected_accumulator_overflow_fires_t2c101() {
        let mut m = IntModel::new();
        m.push("input", quantize(QuantSpec::unsigned(8)), vec![]);
        // One 1x1 weight of 2^24: acc can reach 255·2^24 ≈ 4.3e9 > i32::MAX.
        m.push(
            "conv_hot",
            IntOp::Conv2d {
                weight: Tensor::from_vec(vec![1i32 << 24], &[1, 1, 1, 1]).unwrap(),
                bias: None,
                spec: Conv2dSpec::new(1, 0),
                requant: unit_requant(QuantSpec::unsigned(8)),
                relu: false,
                weight_spec: QuantSpec::signed(31),
            },
            vec![Src::Input],
        );
        let report = lint_model(&m, &[1, 1, 2, 2], "overflow");
        assert!(ids(&report).contains(&"T2C101"), "got {:?}", ids(&report));
        assert_eq!(report.verdict(), "fail");
    }

    #[test]
    fn injected_shift_mismatch_fires_t2c201_error() {
        let mut m = clean_conv_model();
        // Corrupt the requantizer: same format label, but the raw multiplier
        // is 128x what the scale chain needs (a frac_bits bookkeeping slip).
        if let IntOp::Conv2d { requant, .. } = &mut m.nodes[1].op {
            requant.scale_raw = vec![4096 * 128];
        } else {
            unreachable!();
        }
        let report = lint_model(&m, &[1, 1, 4, 4], "shift");
        let hit = report
            .diagnostics
            .iter()
            .find(|d| d.rule == Rule::ScaleChain)
            .expect("scale-chain finding");
        assert_eq!(hit.rule.id(), "T2C201");
        assert_eq!(hit.severity, Severity::Error);
        assert_eq!(report.verdict(), "fail");
    }

    #[test]
    fn residual_saturation_risk_is_a_warning_not_an_error() {
        let mut m = clean_conv_model();
        // 2x the exact multiplier: overshoots the grid by one width —
        // plausible for a calibrated model, so Warn, and the verdict stays
        // "pass" while is_clean() goes false.
        if let IntOp::Conv2d { requant, .. } = &mut m.nodes[1].op {
            requant.scale_raw = vec![4096 * 2];
        } else {
            unreachable!();
        }
        let report = lint_model(&m, &[1, 1, 4, 4], "warn");
        let hit = report
            .diagnostics
            .iter()
            .find(|d| d.rule == Rule::ScaleChain)
            .expect("scale-chain finding");
        assert_eq!(hit.severity, Severity::Warn);
        assert_eq!(report.verdict(), "pass");
        assert!(!report.is_clean());
    }

    #[test]
    fn injected_dangling_src_fires_t2c002() {
        let mut m = clean_conv_model();
        m.nodes[1].inputs = vec![Src::Node(7)];
        let report = lint_model(&m, &[1, 1, 4, 4], "dangling");
        assert!(ids(&report).contains(&"T2C002"), "got {:?}", ids(&report));
        assert_eq!(report.verdict(), "fail");
    }

    #[test]
    fn forward_reference_fires_t2c003() {
        let mut m = clean_conv_model();
        m.nodes[1].inputs = vec![Src::Node(1)];
        let report = lint_model(&m, &[1, 1, 4, 4], "forward");
        assert!(ids(&report).contains(&"T2C003"), "got {:?}", ids(&report));
    }

    #[test]
    fn missing_operand_fires_t2c004() {
        let mut m = clean_conv_model();
        m.nodes[1].inputs = vec![];
        let report = lint_model(&m, &[1, 1, 4, 4], "arity");
        assert!(ids(&report).contains(&"T2C004"), "got {:?}", ids(&report));
    }

    #[test]
    fn injected_gelu_lut_gap_fires_t2c301() {
        let mut m = IntModel::new();
        m.push("input", quantize(QuantSpec::signed(8)), vec![]);
        // The signed-8 grid has 256 codes; a 100-entry table leaves the top
        // 156 codes indexing out of bounds at runtime.
        m.push(
            "gelu",
            IntOp::GeluLut(GeluLut {
                table: vec![0i32; 100],
                in_spec: QuantSpec::signed(8),
                in_scale: 0.05,
                out_spec: QuantSpec::signed(8),
                out_scale: 0.05,
            }),
            vec![Src::Input],
        );
        let report = lint_model(&m, &[1, 8], "lut-gap");
        let hit =
            report.diagnostics.iter().find(|d| d.rule == Rule::LutDomainGap).expect("LUT finding");
        assert_eq!(hit.rule.id(), "T2C301");
        assert_eq!(hit.severity, Severity::Error);
        assert_eq!(report.verdict(), "fail");
    }

    #[test]
    fn full_gelu_table_is_accepted() {
        let mut m = IntModel::new();
        m.push("input", quantize(QuantSpec::signed(8)), vec![]);
        m.push(
            "gelu",
            IntOp::GeluLut(GeluLut::build(QuantSpec::signed(8), 0.05, QuantSpec::signed(8), 0.05)),
            vec![Src::Input],
        );
        let report = lint_model(&m, &[1, 8], "lut-ok");
        assert!(report.is_clean(), "unexpected findings:\n{}", report.to_text());
    }

    #[test]
    fn unreachable_node_fires_t2c006() {
        let mut m = clean_conv_model();
        // A second conv reading the input whose output nobody consumes;
        // push the real output last so conv1 stays reachable.
        let orphan = m.nodes[1].clone();
        m.nodes.insert(1, orphan);
        m.nodes[1].name = "orphan".into();
        m.nodes[2].inputs = vec![Src::Input];
        let report = lint_model(&m, &[1, 1, 4, 4], "orphan");
        let hit = report
            .diagnostics
            .iter()
            .find(|d| d.rule == Rule::UnreachableNode)
            .expect("unreachable finding");
        assert_eq!(hit.rule.id(), "T2C006");
        assert_eq!(hit.layer, "orphan");
        assert_eq!(hit.severity, Severity::Warn);
    }

    #[test]
    fn not_starting_with_quantize_fires_t2c001() {
        let mut m = IntModel::new();
        m.push("flat", IntOp::Flatten, vec![Src::Input]);
        let report = lint_model(&m, &[1, 3, 4, 4], "no-quant");
        assert!(ids(&report).contains(&"T2C001"), "got {:?}", ids(&report));
        assert_eq!(report.verdict(), "fail");
    }

    #[test]
    fn oversized_bias_fires_t2c102() {
        let mut m = clean_conv_model();
        if let IntOp::Conv2d { requant, .. } = &mut m.nodes[1].op {
            requant.bias_raw = vec![i64::MAX / 2];
        } else {
            unreachable!();
        }
        let report = lint_model(&m, &[1, 1, 4, 4], "bias");
        assert!(ids(&report).contains(&"T2C102"), "got {:?}", ids(&report));
    }

    fn sparse_linear_model(weight: t2c_tensor::SparseMat, declared: f32) -> IntModel {
        let mut m = IntModel::new();
        m.push("input", quantize(QuantSpec::signed(4)), vec![]);
        m.push(
            "fc_sparse",
            IntOp::LinearSparse {
                weight,
                bias: None,
                requant: None,
                relu: false,
                weight_spec: QuantSpec::signed(2),
                declared_sparsity: declared,
            },
            vec![Src::Input],
        );
        m
    }

    fn sparse_weight() -> t2c_tensor::SparseMat {
        let dense = Tensor::from_fn(&[2, 8], |i| i32::from(i % 2 == 0));
        t2c_tensor::SparseMat::from_dense(&dense).unwrap()
    }

    #[test]
    fn clean_sparse_linear_has_no_findings() {
        let w = sparse_weight();
        let declared = w.sparsity();
        let report = lint_model(&sparse_linear_model(w, declared), &[1, 8], "sparse-ok");
        assert!(report.is_clean(), "unexpected findings:\n{}", report.to_text());
        assert_eq!(report.nodes[1].shape, vec![1, 2]);
        // 4 surviving weights of +1 against the signed-4 grid [-8, 7].
        assert_eq!((report.nodes[1].lo, report.nodes[1].hi), (-32, 28));
    }

    #[test]
    fn corrupted_sparse_payload_fires_t2c501() {
        let mut w = sparse_weight();
        w.vals.pop();
        let declared = 0.5;
        let report = lint_model(&sparse_linear_model(w, declared), &[1, 8], "sparse-mask");
        let hit = report
            .diagnostics
            .iter()
            .find(|d| d.rule == Rule::SparseMaskMismatch)
            .expect("mask finding");
        assert_eq!(hit.rule.id(), "T2C501");
        assert_eq!(hit.severity, Severity::Error);
        assert_eq!(report.verdict(), "fail");
    }

    #[test]
    fn broken_nm_constraint_fires_t2c502() {
        let dense = Tensor::from_vec(vec![1, 0, 2, 0, 0, 3, 0, 4], &[2, 4]).unwrap();
        let mut w = t2c_tensor::SparseMat::from_dense_nm(&dense, 2, 4).unwrap();
        if let t2c_tensor::SparseEncoding::Nm { n, .. } = &mut w.encoding {
            *n = 0;
        }
        let report = lint_model(&sparse_linear_model(w, 0.5), &[1, 4], "sparse-nm");
        let hit = report
            .diagnostics
            .iter()
            .find(|d| d.rule == Rule::NmConstraintViolation)
            .expect("nm finding");
        assert_eq!(hit.rule.id(), "T2C502");
        assert_eq!(hit.severity, Severity::Error);
        assert_eq!(report.verdict(), "fail");
    }

    #[test]
    fn declared_sparsity_drift_fires_t2c503() {
        let w = sparse_weight();
        let declared = w.sparsity() + 0.2;
        let report = lint_model(&sparse_linear_model(w, declared), &[1, 8], "sparse-drift");
        let hit = report
            .diagnostics
            .iter()
            .find(|d| d.rule == Rule::SparsityMismatch)
            .expect("sparsity finding");
        assert_eq!(hit.rule.id(), "T2C503");
        assert_eq!(hit.severity, Severity::Error);
        // The structural analysis still runs: shape and ranges are derived
        // from the (valid) layout even though the declaration drifted.
        assert_eq!(report.nodes[1].shape, vec![1, 2]);
        assert_eq!(report.verdict(), "fail");
    }

    #[test]
    fn softmax_truncated_tail_is_a_warning() {
        let mut m = IntModel::new();
        m.push("input", quantize(QuantSpec::signed(8)), vec![]);
        m.push(
            "softmax",
            IntOp::SoftmaxLut(SoftmaxLut::build(0.1, QuantSpec::unsigned(8), 32, 15)),
            vec![Src::Input],
        );
        let report = lint_model(&m, &[1, 4, 8], "softmax");
        let hit = report
            .diagnostics
            .iter()
            .find(|d| d.rule == Rule::LutRangeTruncated)
            .expect("truncation finding");
        assert_eq!(hit.rule.id(), "T2C302");
        assert_eq!(hit.severity, Severity::Warn);
        assert_eq!(report.verdict(), "pass");
    }
}
