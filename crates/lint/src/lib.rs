//! # t2c-lint — static integer-pipeline verifier
//!
//! Torch2Chip's promise is that the extracted integer-only path is
//! *correct by construction*: weights, scales and [`t2c_core::MulQuant`]
//! requantizers are fused so the hardware path matches the fake-quant path
//! bit for bit. This crate proves the load-bearing parts of that promise
//! **statically**, before anything reaches an RTL testbench:
//!
//! 1. **Interval dataflow** ([`analyze`]) — per-tensor (and, through
//!    conv/linear accumulators, per-channel) value ranges are propagated
//!    from the declared [`t2c_core::QuantSpec`] grids through every
//!    [`t2c_core::intmodel::IntOp`], proving the wide accumulators never
//!    leave `i32` and every `MulQuant` bias stays inside accumulator
//!    headroom.
//! 2. **Scale-chain consistency** — each requantizer's fixed-point
//!    multiply/shift must map the producer's worst-case output range into
//!    the consumer's declared grid; gross mismatches (a wrong shift) are
//!    errors, residual worst-case saturation risk is a warning.
//! 3. **Graph well-formedness** — dangling or forward `Src` references,
//!    arity and shape inference across all ops, unreachable nodes, LUT
//!    domain coverage for the softmax/GELU tables.
//! 4. **Export cross-checks** ([`manifest`]) — an
//!    [`t2c_export::ExportManifest`] must agree with the analyzed graph on
//!    node names, element counts and bit widths.
//! 5. **Quantization-error certification** ([`errorbound`]) — a second
//!    abstract interpretation propagates a *sound* bound on
//!    `|float_reference − dequant(int_value)|` per tensor, yielding a
//!    per-layer and end-to-end [`ErrorReport`] plus the `T2C6xx` rule
//!    family; `t2c-serve` gates admission on it and the runtime dual-path
//!    audit doubles as its soundness canary.
//!
//! Every finding is a [`Diagnostic`] carrying a stable [`Rule`] id, a
//! [`Severity`], the layer name and a fix hint. The `t2c-check` binary
//! runs the pass over the quickstart/e2e models and their exported
//! packages, emits text and JSON reports and exits non-zero on
//! error-level findings — `scripts/verify.sh` runs it as the
//! model-correctness gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod errorbound;
pub mod interval;
pub mod manifest;

use std::fmt;

pub use analyze::{lint_model, NodeSummary};
pub use errorbound::{
    certify_model, lint_certified, ErrorBoundConfig, ErrorReport, LayerErrorBound,
};
pub use interval::Interval;
pub use manifest::lint_package;

use t2c_obs::report::{json_num, json_str};

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational note; never gates anything.
    Info,
    /// Worst-case hazard (e.g. saturation under adversarial inputs) that a
    /// calibrated model may legitimately carry. Gates [`LintReport::
    /// is_clean`] but not the `t2c-check` exit code.
    Warn,
    /// Provable malfunction: overflow, a panic path, a broken scale chain
    /// or an export mismatch. Gates the `t2c-check` exit code.
    Error,
}

impl Severity {
    /// Lower-case label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The stable rule identifiers of the static verifier.
///
/// Numbering groups: `T2C0xx` graph well-formedness, `T2C1xx` integer
/// overflow proofs, `T2C2xx` scale-chain consistency, `T2C3xx` LUT domain
/// coverage, `T2C4xx` export cross-checks, `T2C5xx` sparse-layout
/// integrity, `T2C6xx` quantization-error certification. DESIGN.md §6.7
/// documents what each rule proves and its severity policy (§6.11 for the
/// error-certification family).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// T2C001 — the graph must start with a `Quantize` node.
    MissingQuantize,
    /// T2C002 — a `Src::Node` index points past the end of the graph.
    DanglingSrc,
    /// T2C003 — a `Src::Node` index points at itself or a later node.
    ForwardSrc,
    /// T2C004 — a node lists fewer operands than its op consumes.
    MissingOperand,
    /// T2C005 — shape inference failed (rank, extent or parameter-length
    /// mismatch).
    ShapeMismatch,
    /// T2C006 — a node's output is never consumed and it is not the model
    /// output.
    UnreachableNode,
    /// T2C101 — a conv/linear/bmm accumulator (or pooling sum) can leave
    /// `i32`, so the saturating MAC array would silently clip.
    AccOverflow,
    /// T2C102 — a `MulQuant` bias exceeds the accumulator headroom cap the
    /// requantizer epilogue supports.
    BiasHeadroom,
    /// T2C103 — the requantization product `acc·M + B` (or a pooling
    /// product) can leave `i64`.
    WideProductOverflow,
    /// T2C201 — the requantizer's multiply/shift does not map the
    /// producer's range into the output grid (error when grossly off,
    /// warning for residual worst-case saturation).
    ScaleChain,
    /// T2C202 — a fixed-point multiplier quantized to zero: the channel's
    /// output collapses to its bias.
    ZeroMultiplier,
    /// T2C203 — a fixed-point multiplier retains fewer than 3 significant
    /// bits; the fractional width is too small for the requested scale.
    LowPrecisionScale,
    /// T2C204 — weight codes lie outside the declared weight grid, so the
    /// declared bit width under-reports storage and range metadata.
    WeightOffGrid,
    /// T2C301 — a LUT does not cover its declared input domain (a GELU
    /// table shorter than the input grid is an out-of-bounds panic at
    /// runtime).
    LutDomainGap,
    /// T2C302 — producer codes can fall outside the LUT's covered domain
    /// and are clamped/truncated (softmax tail, GELU input clamp).
    LutRangeTruncated,
    /// T2C401 — manifest node list disagrees with the graph (missing or
    /// unknown weight entries).
    ManifestNodeMismatch,
    /// T2C402 — a manifest element count disagrees with the weight tensor.
    ManifestCountMismatch,
    /// T2C403 — a manifest bit width disagrees with the declared weight
    /// grid.
    ManifestWidthMismatch,
    /// T2C501 — a sparse weight's mask/row-pointer structure disagrees
    /// with its packed payload (or the manifest's sparse section disagrees
    /// with the graph's layout), so the skip-zero kernel would read the
    /// wrong values.
    SparseMaskMismatch,
    /// T2C502 — an N:M-encoded weight violates its declared structural
    /// constraint (bad pattern, per-group slot count, or group offsets).
    NmConstraintViolation,
    /// T2C503 — a sparse layer's declared sparsity disagrees with the
    /// actual stored-slot fraction, so size/speedup accounting derived
    /// from the declaration is wrong.
    SparsityMismatch,
    /// T2C601 — the error certifier cannot bound a node's float↔int
    /// divergence (analysis failed upstream, or a saturating accumulator
    /// makes the divergence unbounded), so no end-to-end certificate
    /// exists.
    Uncertifiable,
    /// T2C602 — the certified end-to-end error bound exceeds the
    /// configured tolerance; the message names the worst-contributing
    /// layer.
    ErrorBudgetExceeded,
    /// T2C603 — a LUT's local error (table entries plus domain clamping)
    /// dominates the error budget at its node.
    LutErrorDominates,
    /// T2C604 — the half-ulp of a fixed-point multiplier, amplified by the
    /// accumulator envelope, dominates a layer's local error: the scale
    /// chain amplifies quantization error faster than rounding does.
    ScaleErrorAmplification,
    /// T2C605 — a package manifest's `certified_error` section is
    /// inconsistent with the bound freshly certified from the model it
    /// ships.
    ManifestCertifiedMismatch,
}

impl Rule {
    /// The stable `T2Cxxx` identifier.
    pub fn id(self) -> &'static str {
        match self {
            Rule::MissingQuantize => "T2C001",
            Rule::DanglingSrc => "T2C002",
            Rule::ForwardSrc => "T2C003",
            Rule::MissingOperand => "T2C004",
            Rule::ShapeMismatch => "T2C005",
            Rule::UnreachableNode => "T2C006",
            Rule::AccOverflow => "T2C101",
            Rule::BiasHeadroom => "T2C102",
            Rule::WideProductOverflow => "T2C103",
            Rule::ScaleChain => "T2C201",
            Rule::ZeroMultiplier => "T2C202",
            Rule::LowPrecisionScale => "T2C203",
            Rule::WeightOffGrid => "T2C204",
            Rule::LutDomainGap => "T2C301",
            Rule::LutRangeTruncated => "T2C302",
            Rule::ManifestNodeMismatch => "T2C401",
            Rule::ManifestCountMismatch => "T2C402",
            Rule::ManifestWidthMismatch => "T2C403",
            Rule::SparseMaskMismatch => "T2C501",
            Rule::NmConstraintViolation => "T2C502",
            Rule::SparsityMismatch => "T2C503",
            Rule::Uncertifiable => "T2C601",
            Rule::ErrorBudgetExceeded => "T2C602",
            Rule::LutErrorDominates => "T2C603",
            Rule::ScaleErrorAmplification => "T2C604",
            Rule::ManifestCertifiedMismatch => "T2C605",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One finding of the static verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: Rule,
    /// How bad it is.
    pub severity: Severity,
    /// Graph node index the finding anchors to, when node-scoped.
    pub node: Option<usize>,
    /// Layer name (or package artifact) the finding belongs to.
    pub layer: String,
    /// What is wrong, with the concrete numbers.
    pub message: String,
    /// How to fix it.
    pub hint: String,
}

impl Diagnostic {
    /// Builds a node-scoped diagnostic.
    pub fn node(
        rule: Rule,
        severity: Severity,
        node: usize,
        layer: impl Into<String>,
        message: impl Into<String>,
        hint: impl Into<String>,
    ) -> Self {
        Diagnostic {
            rule,
            severity,
            node: Some(node),
            layer: layer.into(),
            message: message.into(),
            hint: hint.into(),
        }
    }

    /// Builds a model- or package-scoped diagnostic.
    pub fn global(
        rule: Rule,
        severity: Severity,
        layer: impl Into<String>,
        message: impl Into<String>,
        hint: impl Into<String>,
    ) -> Self {
        Diagnostic {
            rule,
            severity,
            node: None,
            layer: layer.into(),
            message: message.into(),
            hint: hint.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let at = match self.node {
            Some(i) => format!("#{i} "),
            None => String::new(),
        };
        write!(
            f,
            "{:<5} {} {at}{}: {} (hint: {})",
            self.severity.label().to_uppercase(),
            self.rule,
            self.layer,
            self.message,
            self.hint
        )
    }
}

/// Top-level JSON keys every `t2c-check` report contains;
/// `scripts/verify.sh` and the schema unit test both check this list.
pub const REQUIRED_KEYS: [&str; 6] = ["version", "tag", "summary", "findings", "nodes", "verdict"];

/// Lint report schema version embedded in every JSON dump.
pub const SCHEMA_VERSION: u32 = 1;

/// The result of a lint pass: findings plus the per-node range metadata
/// the interval analysis derived.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Caller-chosen label (model name, package path, ...).
    pub tag: String,
    /// All findings, in graph order.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-node analysis summaries (name, op label, shape, value range).
    pub nodes: Vec<NodeSummary>,
}

impl LintReport {
    /// Number of findings at the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == severity).count()
    }

    /// Number of error-level findings — the `t2c-check` exit-code gate.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// `true` when the pass produced **no warnings and no errors**. A clean
    /// model is statically proven never to saturate a requantizer for any
    /// input on the declared grids — the property the static/dynamic
    /// agreement suite checks.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.iter().all(|d| d.severity == Severity::Info)
    }

    /// Merges another report's findings (e.g. package checks) into this
    /// one.
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
        if self.nodes.is_empty() {
            self.nodes = other.nodes;
        }
    }

    /// The one-word verdict: `pass` (no errors) or `fail`.
    pub fn verdict(&self) -> &'static str {
        if self.error_count() == 0 {
            "pass"
        } else {
            "fail"
        }
    }

    /// Human-readable multi-line rendering.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "t2c-lint [{}]: {} node(s), {} error(s), {} warning(s), {} info — {}",
            self.tag,
            self.nodes.len(),
            self.error_count(),
            self.count(Severity::Warn),
            self.count(Severity::Info),
            self.verdict(),
        );
        for d in &self.diagnostics {
            let _ = writeln!(s, "  {d}");
        }
        s
    }

    /// Renders the report as a self-contained JSON document with the
    /// [`REQUIRED_KEYS`] top-level fields (same string/number encoding as
    /// the `t2c-obs` profile reports).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(2048);
        let _ = write!(s, "{{\"version\":{SCHEMA_VERSION},\"tag\":{}", json_str(&self.tag));
        let _ = write!(
            s,
            ",\"summary\":{{\"errors\":{},\"warnings\":{},\"infos\":{}}}",
            self.error_count(),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        );
        s.push_str(",\"findings\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"rule\":{},\"severity\":{},\"node\":{},\"layer\":{},\"message\":{},\"hint\":{}}}",
                json_str(d.rule.id()),
                json_str(d.severity.label()),
                d.node.map_or("null".to_owned(), |n| n.to_string()),
                json_str(&d.layer),
                json_str(&d.message),
                json_str(&d.hint),
            );
        }
        s.push_str("],\"nodes\":[");
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let shape =
                n.shape.iter().map(std::string::ToString::to_string).collect::<Vec<_>>().join(",");
            let _ = write!(
                s,
                "{{\"id\":{},\"name\":{},\"op\":{},\"shape\":[{shape}],\"lo\":{},\"hi\":{}}}",
                n.id,
                json_str(&n.name),
                json_str(n.op),
                json_num(n.lo as f64),
                json_num(n.hi as f64),
            );
        }
        let _ = write!(s, "],\"verdict\":{}}}", json_str(self.verdict()));
        s
    }
}

/// Checks a JSON lint report for the [`REQUIRED_KEYS`]; returns the
/// missing ones. A substring scan suffices because every required key is a
/// top-level field the serializer always emits.
pub fn validate_schema(json: &str) -> Result<(), Vec<String>> {
    let missing: Vec<String> = REQUIRED_KEYS
        .iter()
        .filter(|k| !json.contains(&format!("\"{k}\":")))
        .map(|k| (*k).to_owned())
        .collect();
    if missing.is_empty() {
        Ok(())
    } else {
        Err(missing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LintReport {
        LintReport {
            tag: "unit".into(),
            diagnostics: vec![
                Diagnostic::node(
                    Rule::AccOverflow,
                    Severity::Error,
                    3,
                    "conv1",
                    "accumulator range [-6e9, 6e9] exceeds i32",
                    "reduce weight magnitude or widen the accumulator",
                ),
                Diagnostic::global(
                    Rule::UnreachableNode,
                    Severity::Warn,
                    "dead",
                    "output never consumed",
                    "remove the node",
                ),
            ],
            nodes: vec![NodeSummary {
                id: 0,
                name: "input".into(),
                op: "quantize",
                shape: vec![1, 3, 8, 8],
                lo: -128,
                hi: 127,
            }],
        }
    }

    #[test]
    fn counts_and_verdict() {
        let r = sample();
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.count(Severity::Warn), 1);
        assert!(!r.is_clean());
        assert_eq!(r.verdict(), "fail");
        let clean = LintReport { tag: "ok".into(), ..Default::default() };
        assert!(clean.is_clean());
        assert_eq!(clean.verdict(), "pass");
    }

    #[test]
    fn json_passes_schema_and_contains_findings() {
        let json = sample().to_json();
        validate_schema(&json).expect("schema");
        assert!(json.contains("\"rule\":\"T2C101\""));
        assert!(json.contains("\"severity\":\"error\""));
        assert!(json.contains("\"verdict\":\"fail\""));
        assert!(json.contains("\"shape\":[1,3,8,8]"));
    }

    #[test]
    fn schema_check_reports_missing_keys() {
        let err = validate_schema("{\"version\":1}").unwrap_err();
        assert!(err.contains(&"findings".to_owned()));
        assert!(err.contains(&"verdict".to_owned()));
        assert!(!err.contains(&"version".to_owned()));
    }

    #[test]
    fn text_rendering_lists_rule_ids() {
        let text = sample().to_text();
        assert!(text.contains("T2C101"));
        assert!(text.contains("ERROR"));
        assert!(text.contains("conv1"));
        assert!(text.contains("fail"));
    }

    #[test]
    fn rule_ids_are_unique_and_stable() {
        let all = [
            Rule::MissingQuantize,
            Rule::DanglingSrc,
            Rule::ForwardSrc,
            Rule::MissingOperand,
            Rule::ShapeMismatch,
            Rule::UnreachableNode,
            Rule::AccOverflow,
            Rule::BiasHeadroom,
            Rule::WideProductOverflow,
            Rule::ScaleChain,
            Rule::ZeroMultiplier,
            Rule::LowPrecisionScale,
            Rule::WeightOffGrid,
            Rule::LutDomainGap,
            Rule::LutRangeTruncated,
            Rule::ManifestNodeMismatch,
            Rule::ManifestCountMismatch,
            Rule::ManifestWidthMismatch,
            Rule::SparseMaskMismatch,
            Rule::NmConstraintViolation,
            Rule::SparsityMismatch,
            Rule::Uncertifiable,
            Rule::ErrorBudgetExceeded,
            Rule::LutErrorDominates,
            Rule::ScaleErrorAmplification,
            Rule::ManifestCertifiedMismatch,
        ];
        let mut ids: Vec<&str> = all.iter().map(|r| r.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len(), "duplicate rule id");
    }
}
