//! Export cross-checks: an [`ExportManifest`] must agree with the
//! analyzed graph on which nodes carry weights, how many codes each
//! weight memory holds, and the bit width the hex images were packed at.

use std::collections::BTreeMap;

use t2c_core::intmodel::IntOp;
use t2c_core::IntModel;
use t2c_export::ExportManifest;

use crate::{Diagnostic, LintReport, Rule, Severity};

/// Cross-checks `manifest` against `model` and returns the findings as a
/// [`LintReport`] (no node summaries — merge into an [`crate::lint_model`]
/// report for those).
///
/// Rules: `T2C401` node-list disagreement, `T2C402` element-count
/// disagreement, `T2C403` bit-width disagreement, `T2C501` sparse layout
/// disagreement (the manifest's sparse section must mirror the graph's
/// compressed layers exactly).
pub fn lint_package(model: &IntModel, manifest: &ExportManifest, tag: &str) -> LintReport {
    let mut diags = Vec::new();

    // What the graph says should be in the package: every weighted node.
    // Sparse layers contribute their *stored* slot count — the hex image
    // holds only the packed payload.
    let mut expected: BTreeMap<&str, (usize, u8)> = BTreeMap::new();
    let mut expected_sparse: BTreeMap<&str, (String, usize, usize)> = BTreeMap::new();
    for node in &model.nodes {
        match &node.op {
            IntOp::Conv2d { weight, weight_spec, .. }
            | IntOp::Linear { weight, weight_spec, .. } => {
                expected.insert(node.name.as_str(), (weight.numel(), weight_spec.bits));
            }
            // Packed layers export their dense expansion (the panel layout
            // is a runtime representation, not an interchange format), so
            // the manifest must account for the full logical element count.
            IntOp::Conv2dPacked { weight, weight_spec, .. } => {
                expected.insert(node.name.as_str(), (weight.logical_numel(), weight_spec.bits));
            }
            IntOp::LinearPacked { weight, weight_spec, .. } => {
                expected.insert(node.name.as_str(), (weight.logical_numel(), weight_spec.bits));
            }
            IntOp::LinearSparse { weight, weight_spec, .. } => {
                expected.insert(node.name.as_str(), (weight.stored(), weight_spec.bits));
                expected_sparse.insert(
                    node.name.as_str(),
                    (weight.layout_label(), weight.stored(), weight.rows * weight.cols),
                );
            }
            _ => {}
        }
    }

    for (name, path, count, bits) in &manifest.hex_files {
        match expected.remove(name.as_str()) {
            None => diags.push(Diagnostic::global(
                Rule::ManifestNodeMismatch,
                Severity::Error,
                name.clone(),
                format!(
                    "manifest lists weight memory {} for a node the graph does not declare weights for",
                    path.display()
                ),
                "regenerate the package from the current model",
            )),
            Some((numel, wbits)) => {
                if *count != numel {
                    diags.push(Diagnostic::global(
                        Rule::ManifestCountMismatch,
                        Severity::Error,
                        name.clone(),
                        format!(
                            "manifest records {count} weight code(s) but the graph tensor holds {numel}"
                        ),
                        "regenerate the package; the weight tensor changed after export",
                    ));
                }
                if *bits != wbits {
                    diags.push(Diagnostic::global(
                        Rule::ManifestWidthMismatch,
                        Severity::Error,
                        name.clone(),
                        format!(
                            "hex images were packed at int{bits} but the graph declares an int{wbits} weight grid"
                        ),
                        "re-export so the memory images match the declared weight_spec",
                    ));
                }
            }
        }
    }

    for (name, (numel, bits)) in expected {
        diags.push(Diagnostic::global(
            Rule::ManifestNodeMismatch,
            Severity::Error,
            name,
            format!(
                "graph node carries {numel} int{bits} weight code(s) but the manifest has no memory image for it"
            ),
            "regenerate the package from the current model",
        ));
    }

    // Sparse section: every compressed layer in the graph must appear with
    // the same layout and slot accounting, and vice versa.
    for entry in &manifest.sparse {
        match expected_sparse.remove(entry.node.as_str()) {
            None => diags.push(Diagnostic::global(
                Rule::ManifestNodeMismatch,
                Severity::Error,
                entry.node.clone(),
                "manifest sparse section lists a node the graph does not hold a sparse layer for"
                    .to_owned(),
                "regenerate the package from the current model",
            )),
            Some((layout, stored, total)) => {
                if entry.stored != stored || entry.total != total {
                    diags.push(Diagnostic::global(
                        Rule::ManifestCountMismatch,
                        Severity::Error,
                        entry.node.clone(),
                        format!(
                            "manifest records {}/{} stored slots but the graph layout packs {stored}/{total}",
                            entry.stored, entry.total
                        ),
                        "regenerate the package; the sparse layout changed after export",
                    ));
                }
                if entry.layout != layout {
                    diags.push(Diagnostic::global(
                        Rule::SparseMaskMismatch,
                        Severity::Error,
                        entry.node.clone(),
                        format!(
                            "manifest declares layout `{}` but the graph weight is `{layout}`",
                            entry.layout
                        ),
                        "regenerate the package so the manifest mirrors the packed encoding",
                    ));
                }
            }
        }
    }
    for (name, (layout, stored, total)) in expected_sparse {
        diags.push(Diagnostic::global(
            Rule::ManifestNodeMismatch,
            Severity::Error,
            name,
            format!(
                "graph holds a `{layout}` sparse layer ({stored}/{total} slots) absent from the manifest sparse section"
            ),
            "regenerate the package from the current model",
        ));
    }

    LintReport { tag: tag.to_owned(), diagnostics: diags, nodes: Vec::new() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use t2c_core::intmodel::Src;
    use t2c_core::{FixedPointFormat, IntModel, MulQuant, QuantSpec};
    use t2c_tensor::ops::Conv2dSpec;
    use t2c_tensor::Tensor;

    fn tiny_model() -> IntModel {
        let mut m = IntModel::new();
        m.push("input", IntOp::Quantize { scale: 1.0, spec: QuantSpec::unsigned(8) }, vec![]);
        m.push(
            "conv1",
            IntOp::Conv2d {
                weight: Tensor::from_vec(vec![1i32; 8 * 3 * 3 * 3], &[8, 3, 3, 3]).unwrap(),
                bias: None,
                spec: Conv2dSpec::new(1, 1),
                requant: MulQuant::from_float(
                    &[0.01],
                    &[0.0],
                    FixedPointFormat::int16_frac12(),
                    QuantSpec::unsigned(8),
                ),
                relu: true,
                weight_spec: QuantSpec::signed(4),
            },
            vec![Src::Input],
        );
        m
    }

    fn manifest_for(entries: Vec<(String, PathBuf, usize, u8)>) -> ExportManifest {
        ExportManifest {
            root: PathBuf::from("pkg"),
            model_file: PathBuf::from("pkg/model.t2cm"),
            hex_files: entries,
            sparse: Vec::new(),
            certified: None,
            total_bytes: 0,
        }
    }

    fn sparse_model() -> IntModel {
        let dense = t2c_tensor::Tensor::from_fn(&[2, 8], |i| i32::from(i % 4 == 0));
        let weight = t2c_tensor::SparseMat::from_dense(&dense).unwrap();
        let mut m = IntModel::new();
        m.push("input", IntOp::Quantize { scale: 1.0, spec: QuantSpec::signed(4) }, vec![]);
        let declared = weight.sparsity();
        m.push(
            "fc_sparse",
            IntOp::LinearSparse {
                weight,
                bias: None,
                requant: None,
                relu: false,
                weight_spec: QuantSpec::signed(2),
                declared_sparsity: declared,
            },
            vec![Src::Input],
        );
        m
    }

    #[test]
    fn agreeing_manifest_is_clean() {
        let model = tiny_model();
        let mf = manifest_for(vec![(
            "conv1".into(),
            PathBuf::from("pkg/hex/001_conv1.hex"),
            8 * 3 * 3 * 3,
            4,
        )]);
        let report = lint_package(&model, &mf, "unit");
        assert!(report.is_clean(), "unexpected findings: {}", report.to_text());
    }

    #[test]
    fn missing_and_unknown_entries_fire_t2c401() {
        let model = tiny_model();
        // Unknown node in the manifest, and conv1 absent.
        let mf =
            manifest_for(vec![("ghost".into(), PathBuf::from("pkg/hex/009_ghost.hex"), 10, 4)]);
        let report = lint_package(&model, &mf, "unit");
        let ids: Vec<&str> = report.diagnostics.iter().map(|d| d.rule.id()).collect();
        assert_eq!(ids, vec!["T2C401", "T2C401"]);
        assert_eq!(report.error_count(), 2);
    }

    #[test]
    fn agreeing_sparse_manifest_is_clean() {
        let model = sparse_model();
        let mut mf = manifest_for(vec![(
            "fc_sparse".into(),
            PathBuf::from("pkg/hex/001_fc_sparse.hex"),
            4, // 4 stored non-zeros out of 16
            2,
        )]);
        mf.sparse.push(t2c_export::SparseEntry {
            node: "fc_sparse".into(),
            layout: "bitmask".into(),
            stored: 4,
            total: 16,
        });
        let report = lint_package(&model, &mf, "unit");
        assert!(report.is_clean(), "unexpected findings: {}", report.to_text());
    }

    #[test]
    fn sparse_section_disagreements_fire_t2c402_and_t2c501() {
        let model = sparse_model();
        let mut mf = manifest_for(vec![(
            "fc_sparse".into(),
            PathBuf::from("pkg/hex/001_fc_sparse.hex"),
            4,
            2,
        )]);
        mf.sparse.push(t2c_export::SparseEntry {
            node: "fc_sparse".into(),
            layout: "2:4".into(), // graph packs a bitmask
            stored: 7,            // wrong slot count
            total: 16,
        });
        let report = lint_package(&model, &mf, "unit");
        let ids: Vec<&str> = report.diagnostics.iter().map(|d| d.rule.id()).collect();
        assert!(ids.contains(&"T2C402"), "got {ids:?}");
        assert!(ids.contains(&"T2C501"), "got {ids:?}");
    }

    #[test]
    fn missing_sparse_section_fires_t2c401() {
        let model = sparse_model();
        // Hex image present but no sparse entry at all.
        let mf = manifest_for(vec![(
            "fc_sparse".into(),
            PathBuf::from("pkg/hex/001_fc_sparse.hex"),
            4,
            2,
        )]);
        let report = lint_package(&model, &mf, "unit");
        let ids: Vec<&str> = report.diagnostics.iter().map(|d| d.rule.id()).collect();
        assert_eq!(ids, vec!["T2C401"]);
    }

    #[test]
    fn count_and_width_mismatches_fire_t2c402_t2c403() {
        let model = tiny_model();
        let mf = manifest_for(vec![(
            "conv1".into(),
            PathBuf::from("pkg/hex/001_conv1.hex"),
            7, // wrong count
            8, // wrong width
        )]);
        let report = lint_package(&model, &mf, "unit");
        let ids: Vec<&str> = report.diagnostics.iter().map(|d| d.rule.id()).collect();
        assert!(ids.contains(&"T2C402"), "got {ids:?}");
        assert!(ids.contains(&"T2C403"), "got {ids:?}");
    }
}
