//! Closed integer intervals in `i128` — wide enough that the analysis
//! arithmetic itself can never overflow while reasoning about `i32`
//! accumulators and `i64` requantization products.

use t2c_core::{FixedScalar, QuantSpec};

/// A closed interval `[lo, hi]` of integer codes or accumulator values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Smallest contained value.
    pub lo: i128,
    /// Largest contained value.
    pub hi: i128,
}

impl Interval {
    /// The interval containing both arguments. Endpoints are ordered, so
    /// a swapped call site yields `[hi, lo]` reinterpreted as `[lo, hi]`
    /// instead of an inverted interval that poisons every downstream
    /// min/max.
    pub fn new(lo: i128, hi: i128) -> Self {
        Interval { lo: lo.min(hi), hi: lo.max(hi) }
    }

    /// The single-point interval `[v, v]`.
    pub fn point(v: i128) -> Self {
        Interval { lo: v, hi: v }
    }

    /// The representable range of a quantization grid.
    pub fn of_spec(spec: QuantSpec) -> Self {
        let (lo, hi) = spec.range();
        Interval { lo: lo as i128, hi: hi as i128 }
    }

    /// Smallest interval containing both operands.
    pub fn union(self, other: Interval) -> Interval {
        Interval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Shifts both endpoints by a constant.
    pub fn offset(self, v: i128) -> Interval {
        Interval { lo: self.lo + v, hi: self.hi + v }
    }

    /// Exact image under multiplication by `k` (e.g. a MAC count). A
    /// negative `k` reflects the interval, so the endpoints swap.
    pub fn scale(self, k: i128) -> Interval {
        let (a, b) = (self.lo * k, self.hi * k);
        Interval { lo: a.min(b), hi: a.max(b) }
    }

    /// Extends the interval to contain zero (zero-padding contributes
    /// zeros to convolution windows).
    pub fn include_zero(self) -> Interval {
        Interval { lo: self.lo.min(0), hi: self.hi.max(0) }
    }

    /// Intersection with a grid, mirroring the runtime output clamp.
    pub fn clamp_to(self, spec: QuantSpec) -> Interval {
        let (lo, hi) = spec.range();
        Interval {
            lo: self.lo.clamp(lo as i128, hi as i128),
            hi: self.hi.clamp(lo as i128, hi as i128),
        }
    }

    /// Applies the integer ReLU (`max(0, ·)`) to both endpoints.
    pub fn relu(self) -> Interval {
        Interval { lo: self.lo.max(0), hi: self.hi.max(0) }
    }

    /// `hi − lo`.
    pub fn width(self) -> i128 {
        self.hi - self.lo
    }

    /// `true` when every contained value fits an `i32`.
    pub fn fits_i32(self) -> bool {
        self.lo >= i32::MIN as i128 && self.hi <= i32::MAX as i128
    }

    /// `true` when every contained value fits an `i64`.
    pub fn fits_i64(self) -> bool {
        self.lo >= i64::MIN as i128 && self.hi <= i64::MAX as i128
    }

    /// `true` when the interval lies inside the grid.
    pub fn within(self, spec: QuantSpec) -> bool {
        let (lo, hi) = spec.range();
        self.lo >= lo as i128 && self.hi <= hi as i128
    }

    /// Image under a fixed-point multiply/shift, exactly as the hardware
    /// computes it. Caller must have proven the interval fits `i64`
    /// (in practice: fits `i32`, the accumulator width).
    pub fn map_fixed(self, m: FixedScalar) -> Interval {
        debug_assert!(self.fits_i64());
        let (lo, hi) = m.map_range(self.lo as i64, self.hi as i64);
        Interval { lo: lo as i128, hi: hi as i128 }
    }
}

impl std::ops::Add for Interval {
    type Output = Interval;

    /// Exact interval sum.
    fn add(self, other: Interval) -> Interval {
        Interval { lo: self.lo + other.lo, hi: self.hi + other.hi }
    }
}

impl std::ops::Mul for Interval {
    type Output = Interval;

    /// Exact interval product (min/max over the four endpoint products).
    fn mul(self, other: Interval) -> Interval {
        let products =
            [self.lo * other.lo, self.lo * other.hi, self.hi * other.lo, self.hi * other.hi];
        Interval {
            lo: *products.iter().min().expect("non-empty"),
            hi: *products.iter().max().expect("non-empty"),
        }
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t2c_core::FixedPointFormat;

    #[test]
    fn spec_ranges_and_clamp() {
        let i = Interval::of_spec(QuantSpec::signed(8));
        assert_eq!((i.lo, i.hi), (-128, 127));
        let big = Interval::new(-1000, 1000);
        let c = big.clamp_to(QuantSpec::unsigned(4));
        assert_eq!((c.lo, c.hi), (0, 15));
        assert!(c.within(QuantSpec::unsigned(4)));
        assert!(!big.within(QuantSpec::unsigned(4)));
    }

    #[test]
    fn products_cover_sign_combinations() {
        let a = Interval::new(-3, 5);
        let b = Interval::new(-7, 2);
        let p = a * b;
        // extremes: 5·−7 = −35 and −3·−7 = 21
        assert_eq!((p.lo, p.hi), (-35, 21));
    }

    #[test]
    fn map_fixed_matches_scalar_mul_shift() {
        let m = FixedPointFormat::int16_frac12().quantize(0.37);
        let i = Interval::new(-5000, 9000);
        let mapped = i.map_fixed(m);
        assert_eq!(mapped.lo, m.mul_shift(-5000) as i128);
        assert_eq!(mapped.hi, m.mul_shift(9000) as i128);
        // A negative multiplier flips the endpoints.
        let neg = FixedPointFormat::int16_frac12().quantize(-0.5);
        let flipped = i.map_fixed(neg);
        assert_eq!(flipped.lo, neg.mul_shift(9000) as i128);
        assert_eq!(flipped.hi, neg.mul_shift(-5000) as i128);
    }

    #[test]
    fn relu_and_zero_extension() {
        assert_eq!(Interval::new(-4, 9).relu(), Interval::new(0, 9));
        assert_eq!(Interval::new(3, 9).include_zero(), Interval::new(0, 9));
        assert_eq!(Interval::new(-4, -1).include_zero(), Interval::new(-4, 0));
    }

    #[test]
    fn new_orders_swapped_endpoints() {
        assert_eq!(Interval::new(9, -4), Interval::new(-4, 9));
        assert_eq!(Interval::new(5, 5), Interval::point(5));
        // A swapped construction must still behave under every query.
        let i = Interval::new(100, -100);
        assert_eq!((i.lo, i.hi), (-100, 100));
        assert_eq!(i.width(), 200);
        assert!(i.include_zero() == i);
    }

    #[test]
    fn scale_is_exact_for_negative_factors() {
        let i = Interval::new(-2, 7);
        assert_eq!(i.scale(3), Interval::new(-6, 21));
        // Negative factor reflects: [-2, 7]·−3 = [-21, 6], not [6, -21].
        let r = i.scale(-3);
        assert_eq!((r.lo, r.hi), (-21, 6));
        assert_eq!(i.scale(0), Interval::point(0));
        // Agrees with exact interval multiplication by a point.
        assert_eq!(i.scale(-3), i * Interval::point(-3));
    }

    #[test]
    fn width_fit_checks() {
        assert!(Interval::new(i32::MIN as i128, i32::MAX as i128).fits_i32());
        assert!(!Interval::new(0, i32::MAX as i128 + 1).fits_i32());
        assert!(!Interval::new(0, i64::MAX as i128 + 1).fits_i64());
        assert_eq!(Interval::new(-2, 6).width(), 8);
    }
}
