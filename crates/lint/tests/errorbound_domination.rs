//! Property test: the static quantization-error certificate dominates the
//! divergence an actual dual-path run observes (DESIGN.md §6.11).
//!
//! A hand-written real-arithmetic interpreter evaluates the *center* of
//! the reference family the certifier reasons about — stored integer
//! parameters taken at face value, `round_shift` replaced by exact
//! division, the input quantizer replaced by exact (clamped, unrounded)
//! division, and the output clamp applied. That member's divergence from
//! the integer path must sit under the certified end-to-end bound for
//! every zoo MLP variant (dense, pruned, N:M, prepacked), every random
//! input, and independent of kernel thread count.

use proptest::prelude::*;
use t2c_core::intmodel::{IntOp, Src};
use t2c_core::{IntModel, MulQuant};
use t2c_lint::{certify_model, ErrorBoundConfig};
use t2c_tensor::{with_threads, Tensor};

/// Real-arithmetic requantization: exact division instead of the rounding
/// shift, same ReLU-before-clamp order as `MulQuant::apply_scalar`.
fn reference_requant(mq: &MulQuant, acc: f64, ch: usize, relu: bool) -> f64 {
    let i = ch.min(mq.scale_raw.len() - 1);
    let b = mq.bias_raw[i.min(mq.bias_raw.len() - 1)] as f64;
    let mut v = (acc * f64::from(mq.scale_raw[i]) + b) / f64::from(1u32 << mq.format.frac_bits);
    if relu {
        v = v.max(0.0);
    }
    v.clamp(f64::from(mq.out_spec.qmin()), f64::from(mq.out_spec.qmax()))
}

/// Evaluates the MLP-shaped graph (`Quantize` → requantized MAC layers →
/// raw-accumulator head) in real arithmetic. Panics on any other op so
/// the test fails loudly if the zoo builders grow.
fn reference_run(model: &IntModel, x: &Tensor<f32>) -> Vec<f64> {
    let mut v: Vec<f64> = Vec::new();
    for (i, node) in model.nodes.iter().enumerate() {
        assert!(
            i == 0 || node.inputs == vec![Src::Node(i - 1)],
            "the zoo MLPs are straight-line graphs"
        );
        v = match &node.op {
            IntOp::Quantize { scale, spec } => x
                .as_slice()
                .iter()
                .map(|&f| {
                    (f64::from(f) / f64::from(*scale))
                        .clamp(f64::from(spec.qmin()), f64::from(spec.qmax()))
                })
                .collect(),
            IntOp::Linear { weight, bias, requant, relu, .. } => {
                mac(weight, bias.as_deref(), requant.as_ref(), *relu, &v)
            }
            IntOp::LinearSparse { weight, bias, requant, relu, .. } => {
                mac(&weight.to_dense(), bias.as_deref(), requant.as_ref(), *relu, &v)
            }
            IntOp::LinearPacked { weight, bias, requant, relu, .. } => {
                mac(&weight.unpack().unwrap(), bias.as_deref(), requant.as_ref(), *relu, &v)
            }
            other => panic!("reference interpreter does not model {}", other.label()),
        };
    }
    v
}

fn mac(
    weight: &Tensor<i32>,
    bias: Option<&[i64]>,
    requant: Option<&MulQuant>,
    relu: bool,
    x: &[f64],
) -> Vec<f64> {
    let (out_f, in_f) = (weight.dim(0), weight.dim(1));
    assert_eq!(x.len(), in_f);
    let ws = weight.as_slice();
    (0..out_f)
        .map(|o| {
            let mut acc = 0.0f64;
            for (i, &xi) in x.iter().enumerate() {
                acc += f64::from(ws[o * in_f + i]) * xi;
            }
            acc += bias.map_or(0.0, |b| b[o.min(b.len() - 1)] as f64);
            match requant {
                Some(mq) => reference_requant(mq, acc, o, relu),
                None => acc,
            }
        })
        .collect()
}

fn variant(idx: usize) -> (&'static str, IntModel, Vec<usize>) {
    match idx {
        0 => {
            let (m, d) = t2c_core::zoo::tiny_mlp();
            ("dense", m, d)
        }
        1 => {
            let (m, d) = t2c_core::zoo::tiny_mlp_pruned(0.8);
            ("pruned", m, d)
        }
        2 => {
            let (m, d) = t2c_core::zoo::tiny_mlp_nm(2, 4);
            ("nm", m, d)
        }
        _ => {
            let (mut m, d) = t2c_core::zoo::tiny_mlp();
            assert!(m.prepack() > 0, "tiny_mlp must have packable layers");
            ("prepacked", m, d)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn certified_bound_dominates_observed_divergence(
        seed in 0u64..1_000_000,
        variant_idx in 0usize..4,
        four_threads in any::<bool>(),
    ) {
        let threads = if four_threads { 4 } else { 1 };
        let (tag, model, dims) = variant(variant_idx);
        let (report, lint) = certify_model(&model, &dims, ErrorBoundConfig::default(), tag);
        prop_assert!(
            report.certified(),
            "{tag} must get a finite certificate:\n{}",
            lint.to_text()
        );

        // Deterministic pseudo-random input covering the grid and a bit
        // beyond it (the reference clamps exactly like the int path).
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let x = Tensor::from_fn(&dims, |_| {
            state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
            ((state >> 33) as f64 / f64::from(1u32 << 31) - 1.0) as f32 * 8.0
        });

        let served = with_threads(threads, || model.run(&x)).unwrap();
        let reference = reference_run(&model, &x);
        prop_assert_eq!(reference.len(), served.numel());

        let worst = reference
            .iter()
            .zip(served.as_slice())
            .fold(0.0f64, |m, (&r, &s)| m.max((r - f64::from(s)).abs()));
        prop_assert!(
            worst <= report.end_to_end_steps + 1e-6,
            "{tag}: observed divergence {worst} exceeds certified bound {} (threads {threads})",
            report.end_to_end_steps
        );
    }
}
