//! Bias saturation agreement: the runtime `add_channel_bias` epilogue
//! saturates to the `i32` rails (it models the accumulator register of a
//! saturating MAC array), and the T2C101 accumulator-overflow proof is the
//! static counterpart. The contract this file pins down:
//!
//! * lint **clean** ⇒ the runtime result is the *exact* integer sum, even
//!   within a few hundred codes of `i32::MAX` (a wrapping add would go
//!   negative here — the original bug);
//! * lint **T2C101 error** ⇒ the runtime clips to the rail instead of
//!   wrapping, so the static verdict describes the real failure mode.

use t2c_core::intmodel::{IntOp, Src};
use t2c_core::{IntModel, QuantSpec};
use t2c_lint::{lint_model, Rule};
use t2c_tensor::Tensor;

/// Identity 1×1 linear layer with a raw (un-requantized) output, so the
/// model output *is* the accumulator + bias.
fn biased_linear(bias: i64) -> IntModel {
    let mut m = IntModel::new();
    m.push("input", IntOp::Quantize { scale: 1.0, spec: QuantSpec::signed(8) }, vec![]);
    m.push(
        "fc",
        IntOp::Linear {
            weight: Tensor::from_vec(vec![1i32], &[1, 1]).unwrap(),
            bias: Some(vec![bias]),
            requant: None,
            relu: false,
            weight_spec: QuantSpec::signed(8),
        },
        vec![Src::Input],
    );
    m
}

#[test]
fn near_max_bias_is_exact_when_the_lint_verdict_is_clean() {
    // Worst case over the signed-8 grid: 127 + (i32::MAX - 200) < i32::MAX,
    // so the overflow proof closes and the lint admits the model.
    let bias = i64::from(i32::MAX) - 200;
    let model = biased_linear(bias);
    let report = lint_model(&model, &[1, 1], "near-max-bias");
    assert_eq!(report.error_count(), 0, "proof must close:\n{}", report.to_text());

    let x = Tensor::from_vec(vec![100.0f32], &[1, 1]).unwrap();
    let out = model.run(&x).unwrap();
    // A wrapping i32 add would land near i32::MIN; the saturating epilogue
    // must return the exact sum the interval analysis proved reachable.
    assert_eq!(out.as_slice(), &[i32::MAX - 100]);
}

#[test]
fn overflowing_bias_is_flagged_statically_and_clips_at_runtime() {
    // The bias alone exceeds i32: statically this must fail the T2C101
    // accumulator proof, and dynamically the epilogue must clip to the
    // rail — never wrap.
    let bias = i64::from(i32::MAX) + 1_000;
    let model = biased_linear(bias);
    let report = lint_model(&model, &[1, 1], "overflowing-bias");
    assert!(
        report.diagnostics.iter().any(|d| d.rule == Rule::AccOverflow),
        "overflowing bias must trip T2C101:\n{}",
        report.to_text()
    );

    let x = Tensor::from_vec(vec![5.0f32], &[1, 1]).unwrap();
    let out = model.run(&x).unwrap();
    assert_eq!(out.as_slice(), &[i32::MAX], "saturate at the rail, never wrap");
}
