//! Static/dynamic agreement: a model `t2c-lint` passes as **clean** (no
//! warnings, no errors) is statically proven never to saturate a
//! requantizer — so the runtime `mulquant.saturated` observability counter
//! must stay at zero for *any* input spanning the full declared activation
//! grid. Randomized conv models + randomized full-range inputs check that
//! the interval analysis really is sound against the deployed kernels.

use proptest::prelude::*;
use t2c_core::intmodel::{IntOp, Src};
use t2c_core::{FixedPointFormat, IntModel, MulQuant, QuantSpec};
use t2c_lint::lint_model;
use t2c_tensor::ops::Conv2dSpec;
use t2c_tensor::Tensor;

const IN_SPEC: QuantSpec = QuantSpec { bits: 4, signed: false };
const SPATIAL: usize = 4;

fn conv_model(weights: Vec<i32>, shape: [usize; 4], scale: f32, relu: bool) -> IntModel {
    let mut m = IntModel::new();
    m.push("input", IntOp::Quantize { scale: 1.0, spec: IN_SPEC }, vec![]);
    m.push(
        "conv",
        IntOp::Conv2d {
            weight: Tensor::from_vec(weights, &shape).unwrap(),
            bias: None,
            spec: Conv2dSpec::new(1, 0),
            requant: MulQuant::from_float(
                &[scale],
                &[0.0],
                FixedPointFormat::int16_frac12(),
                QuantSpec::unsigned(8),
            ),
            relu,
            weight_spec: QuantSpec::signed(4),
        },
        vec![Src::Input],
    );
    m
}

/// Runs `model` on input codes (already on the 4-bit grid) and returns the
/// runtime saturation count the requantizer epilogue observed.
fn saturated_after_run(model: &IntModel, codes: &[i32], dims: &[usize]) -> u64 {
    let x = Tensor::from_vec(codes.iter().map(|&c| c as f32).collect(), dims).unwrap();
    t2c_obs::set_enabled(true);
    t2c_obs::reset();
    model.run(&x).expect("clean model must run");
    let report = t2c_obs::report::Report::capture("static_dynamic");
    t2c_obs::set_enabled(false);
    report.counters.get("mulquant.saturated").copied().unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn clean_models_never_saturate_at_runtime(
        oc in 1usize..3,
        ic in 1usize..3,
        k in 1usize..3,
        weight_codes in proptest::collection::vec(-7i32..8, 2 * 2 * 2 * 2),
        input_codes in proptest::collection::vec(0i32..16, 2 * 2 * SPATIAL * SPATIAL),
        scale_milli in 1u32..500,
        relu in any::<bool>(),
    ) {
        let weights: Vec<i32> =
            (0..oc * ic * k * k).map(|i| weight_codes[i % weight_codes.len()]).collect();
        let model = conv_model(weights, [oc, ic, k, k], scale_milli as f32 / 1000.0, relu);
        let dims = [2, ic, SPATIAL, SPATIAL];
        let report = lint_model(&model, &dims, "prop");
        prop_assert_eq!(report.error_count(), 0, "random models stay well-formed:\n{}", report.to_text());
        if report.is_clean() {
            // Force both grid endpoints into the batch so the runtime sweep
            // genuinely spans the declared activation range.
            let mut codes: Vec<i32> =
                (0..dims.iter().product()).map(|i| input_codes[i % input_codes.len()]).collect();
            codes[0] = 15;
            codes[1] = 0;
            let saturated = saturated_after_run(&model, &codes, &dims);
            prop_assert_eq!(
                saturated, 0,
                "lint said clean but the runtime clipped {} output(s):\n{}",
                saturated, report.to_text()
            );
        }
    }
}

/// Deterministic anchor for the property: an exactly-scaled requantizer is
/// clean and never clips, while a 2x-overdriven one is flagged (Warn) and
/// really does clip at runtime — the warning is not noise.
#[test]
fn exact_scale_is_clean_and_overdrive_is_flagged_and_clips() {
    // One 1x1 weight of +7: acc spans [0, 105]; 255/105 maps it exactly.
    let dims = [1, 1, SPATIAL, SPATIAL];
    let sweep: Vec<i32> = (0..16).collect();

    let clean = conv_model(vec![7], [1, 1, 1, 1], 255.0 / 105.0, false);
    let report = lint_model(&clean, &dims, "exact");
    assert!(report.is_clean(), "exact scaling must be clean:\n{}", report.to_text());
    assert_eq!(saturated_after_run(&clean, &sweep, &dims), 0);

    let hot = conv_model(vec![7], [1, 1, 1, 1], 2.0 * 255.0 / 105.0, false);
    let report = lint_model(&hot, &dims, "hot");
    assert!(!report.is_clean(), "2x overdrive must be flagged");
    assert_eq!(report.error_count(), 0, "plausible saturation is a warning, not an error");
    assert!(
        saturated_after_run(&hot, &sweep, &dims) > 0,
        "the flagged model must actually clip on a full-grid sweep"
    );
}
