//! Certificates survive plan compilation (DESIGN.md §6.13): lowering an
//! `IntModel` into a fused [`t2c_core::ExecPlan`] must not move a single
//! lint finding or error-bound figure. The plan borrows the graph and
//! leaves it untouched, so the static verdicts are compared byte for byte
//! on their JSON dumps — and because the planned path is bit-identical to
//! the interpreter, a certificate proven on the graph bounds the planned
//! execution too. The final test demonstrates exactly that: the observed
//! integer outputs of the plan equal the interpreter's, so the certified
//! end-to-end bound applies verbatim to planned serving.

use t2c_core::{zoo, Arena, IntModel};
use t2c_lint::{certify_model, lint_model, ErrorBoundConfig};
use t2c_tensor::rng::TensorRng;

fn fixtures() -> Vec<(String, IntModel, Vec<usize>)> {
    let (dense, dims) = zoo::tiny_mlp();
    let (pruned, pdims) = zoo::tiny_mlp_pruned(0.8);
    let (nm, ndims) = zoo::tiny_mlp_nm(2, 4);
    let mut prepacked = dense.clone();
    prepacked.prepack();
    vec![
        ("mlp-dense".into(), dense, dims.clone()),
        ("mlp-pruned".into(), pruned, pdims),
        ("mlp-nm".into(), nm, ndims),
        ("mlp-prepacked".into(), prepacked, dims),
    ]
}

#[test]
fn lint_findings_are_identical_before_and_after_compilation() {
    for (tag, model, dims) in fixtures() {
        let before = lint_model(&model, &dims, &tag).to_json();
        let plan = model.compile(&dims).unwrap_or_else(|e| panic!("{tag}: compile: {e}"));
        assert!(plan.fused_nodes() > 0, "{tag}: expected fused conv/linear chains");
        let after = lint_model(&model, &dims, &tag).to_json();
        assert_eq!(before, after, "{tag}: compilation moved a lint finding");
    }
}

#[test]
fn error_bound_certificates_are_identical_before_and_after_compilation() {
    let cfg = ErrorBoundConfig::default();
    for (tag, model, dims) in fixtures() {
        let (cert_before, lint_before) = certify_model(&model, &dims, cfg, &tag);
        let plan = model.compile(&dims).unwrap_or_else(|e| panic!("{tag}: compile: {e}"));
        let (cert_after, lint_after) = certify_model(&model, &dims, cfg, &tag);
        assert_eq!(
            cert_before.to_json(),
            cert_after.to_json(),
            "{tag}: compilation moved the error certificate"
        );
        assert_eq!(
            lint_before.to_json(),
            lint_after.to_json(),
            "{tag}: compilation moved the certifier's lint findings"
        );
        assert!(cert_after.certified(), "{tag}: zoo MLPs certify with a finite bound");
        // The bound is stated against interpreter semantics; it covers the
        // plan because the plan's integer outputs are the interpreter's.
        let mut arena = Arena::new();
        for seed in [11u64, 12, 13] {
            let x = TensorRng::seed_from(seed).uniform(&dims, -1.0, 1.0);
            let want = model.run(&x).expect("interpreter run");
            let got = plan.run(&x, &mut arena).expect("planned run");
            assert_eq!(got.as_slice(), want.as_slice(), "{tag}: planned logits diverge");
        }
    }
}
