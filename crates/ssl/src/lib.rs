//! # t2c-ssl
//!
//! Self-supervised pre-training (paper §3.3) — the alternative to
//! supervised pre-training that industry toolkits (OpenVINO, AIMET) do not
//! offer, and the source of Table 4's transfer-learning gains.
//!
//! The method is the paper's adopted recipe: correlation-based contrastive
//! learning (Barlow Twins, Zbontar et al. 2021) plus the lightweight-model
//! **cross-distillation (XD)** objective of Meng et al. 2023 (paper
//! Eq. 16):
//!
//! ```text
//! L_XD = Σᵢ (1 − C_ii) + λ Σᵢ Σ_{j≠i} C_ij²
//! ```
//!
//! where `C` is the cross-correlation between the batch-normalized latent
//! embeddings of two augmented views. The XD term is applied
//! asymmetrically (each view distills from the *detached* other view),
//! following the cross-distillation idea of the original at the scale this
//! reproduction runs at; `DESIGN.md` records the simplification.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod loss;
mod trainer;

pub use loss::{barlow_loss, cross_correlation, xd_loss};
pub use trainer::{Encoder, FineTuner, ProjectionHead, SslConfig, SslMethod, SslTrainer};

/// Convenience alias for this crate's `Result`.
pub type Result<T> = std::result::Result<T, t2c_tensor::TensorError>;
