use t2c_autograd::{Graph, Param, Var};
use t2c_data::{Augment, AugmentConfig, BatchIter, SynthVision};
use t2c_nn::layers::Linear;
use t2c_nn::models::MobileNetV1;
use t2c_nn::Module;
use t2c_optim::LrSchedule;
use t2c_optim::{clip_grad_norm, Optimizer, Sgd, WarmupCosine};
use t2c_tensor::rng::TensorRng;

use crate::{barlow_loss, xd_loss, Result};

/// A vision backbone that produces pooled feature vectors — the interface
/// the SSL trainer pre-trains.
pub trait Encoder: Module {
    /// Maps an image batch `[N, C, H, W]` to features `[N, F]`.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch.
    fn features(&self, x: &Var) -> Result<Var>;

    /// Feature width `F`.
    fn feature_dim(&self) -> usize;
}

impl Encoder for MobileNetV1 {
    fn features(&self, x: &Var) -> Result<Var> {
        MobileNetV1::features(self, x)
    }

    fn feature_dim(&self) -> usize {
        MobileNetV1::feature_dim(self)
    }
}

/// The 2-layer projection head mapping encoder features to the embedding
/// space where the correlation losses act.
pub struct ProjectionHead {
    fc1: Linear,
    fc2: Linear,
}

impl ProjectionHead {
    /// Creates a head `F → hidden → out`.
    pub fn new(rng: &mut TensorRng, in_dim: usize, hidden: usize, out: usize) -> Self {
        ProjectionHead {
            fc1: Linear::new(rng, "proj.fc1", in_dim, hidden, true),
            fc2: Linear::new(rng, "proj.fc2", hidden, out, true),
        }
    }

    /// Projects features to embeddings.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch.
    pub fn project(&self, f: &Var) -> Result<Var> {
        self.fc2.forward(&self.fc1.forward(f)?.relu())
    }

    /// The head's parameters.
    pub fn params(&self) -> Vec<Param> {
        let mut out = self.fc1.params();
        out.extend(self.fc2.params());
        out
    }
}

/// Which SSL objective to optimize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SslMethod {
    /// Barlow Twins only.
    Barlow,
    /// Barlow Twins + symmetric cross-distillation (the paper's "XD").
    BarlowXd,
}

/// SSL pre-training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SslConfig {
    /// Pre-training epochs.
    pub epochs: usize,
    /// Batch size (correlation statistics need reasonably large batches).
    pub batch: usize,
    /// Peak learning rate.
    pub lr: f32,
    /// Weight decay.
    pub weight_decay: f32,
    /// Barlow off-diagonal weight λ.
    pub lambda: f32,
    /// XD term weight μ.
    pub mu: f32,
    /// Projection hidden width.
    pub proj_hidden: usize,
    /// Embedding dimensionality.
    pub proj_dim: usize,
    /// Seed for augmentation and shuffling.
    pub seed: u64,
}

impl SslConfig {
    /// A quick recipe for the synthetic datasets (tuned so the SSL-then-
    /// fine-tune pipeline beats supervised-from-scratch on small
    /// downstream tasks, the paper's Table 4 shape).
    pub fn quick(epochs: usize) -> Self {
        SslConfig {
            epochs,
            batch: 64,
            lr: 0.1,
            weight_decay: 1e-4,
            lambda: 5e-3,
            mu: 1.0,
            proj_hidden: 128,
            proj_dim: 32,
            seed: 42,
        }
    }
}

/// The self-supervised trainer (`TRAINER["ssl"]` in the paper's registry).
pub struct SslTrainer {
    /// Hyperparameters.
    pub config: SslConfig,
    /// Objective.
    pub method: SslMethod,
}

impl SslTrainer {
    /// Creates the trainer.
    pub fn new(config: SslConfig, method: SslMethod) -> Self {
        SslTrainer { config, method }
    }

    /// Pre-trains `encoder` on unlabeled two-view batches; returns the
    /// per-epoch mean loss.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch inside the encoder.
    pub fn fit<E: Encoder + ?Sized>(&self, encoder: &E, data: &SynthVision) -> Result<Vec<f32>> {
        let cfg = self.config;
        let mut rng = TensorRng::seed_from(cfg.seed ^ 0x55AA);
        let head =
            ProjectionHead::new(&mut rng, encoder.feature_dim(), cfg.proj_hidden, cfg.proj_dim);
        let mut params = encoder.params();
        params.extend(head.params());
        let mut opt = Sgd::new(params.clone(), cfg.lr).momentum(0.9).weight_decay(cfg.weight_decay);
        let schedule = WarmupCosine {
            base_lr: cfg.lr,
            min_lr: cfg.lr * 0.01,
            warmup: (cfg.epochs / 10).max(1),
            total: cfg.epochs,
        };
        let mut augment = Augment::new(AugmentConfig::ssl(), cfg.seed);
        encoder.set_training(true);
        let mut history = Vec::with_capacity(cfg.epochs);
        for epoch in 0..cfg.epochs {
            opt.set_lr(schedule.lr_at(epoch));
            let mut loss_sum = 0.0;
            let mut batches = 0;
            for (images, _labels) in BatchIter::train(data, cfg.batch, cfg.seed + epoch as u64) {
                // Two independently augmented views of the same batch.
                let view_a = augment.apply_batch(&images);
                let view_b = augment.apply_batch(&images);
                let g = Graph::new();
                let za = head.project(&encoder.features(&g.leaf(view_a))?)?;
                let zb = head.project(&encoder.features(&g.leaf(view_b))?)?;
                let mut loss = barlow_loss(&za, &zb, cfg.lambda)?;
                if self.method == SslMethod::BarlowXd {
                    let xd = xd_loss(&za, &zb, cfg.lambda)?.add(&xd_loss(&zb, &za, cfg.lambda)?)?;
                    loss = loss.add(&xd.mul_scalar(cfg.mu))?;
                }
                opt.zero_grad();
                loss.backward()?;
                clip_grad_norm(&params, 5.0);
                opt.step();
                loss_sum += loss.tensor().item();
                batches += 1;
            }
            history.push(loss_sum / batches.max(1) as f32);
        }
        Ok(history)
    }
}

/// Supervised fine-tuning of a pre-trained encoder on a downstream task
/// with a fresh classification head (the transfer step of Table 4).
pub struct FineTuner {
    /// Epochs of fine-tuning.
    pub epochs: usize,
    /// Batch size.
    pub batch: usize,
    /// Learning rate.
    pub lr: f32,
    /// Shuffle/augmentation seed.
    pub seed: u64,
}

impl FineTuner {
    /// A quick fine-tuning recipe.
    pub fn quick(epochs: usize) -> Self {
        FineTuner { epochs, batch: 32, lr: 0.02, seed: 17 }
    }

    /// Fine-tunes encoder + new head; returns `(head, final accuracy)`.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch inside the encoder.
    pub fn fit<E: Encoder + ?Sized>(
        &self,
        encoder: &E,
        num_classes: usize,
        data: &SynthVision,
    ) -> Result<(Linear, f32)> {
        let mut rng = TensorRng::seed_from(self.seed);
        let head = Linear::new(&mut rng, "ft_head", encoder.feature_dim(), num_classes, true);
        let mut params = encoder.params();
        params.extend(head.params());
        let mut opt = Sgd::new(params.clone(), self.lr).momentum(0.9).weight_decay(5e-4);
        let mut augment = Augment::new(AugmentConfig::standard(), self.seed);
        encoder.set_training(true);
        for epoch in 0..self.epochs {
            for (images, labels) in BatchIter::train(data, self.batch, self.seed + epoch as u64) {
                let images = augment.apply_batch(&images);
                let g = Graph::new();
                let logits = head.forward(&encoder.features(&g.leaf(images))?)?;
                let loss = logits.cross_entropy_logits(&labels)?;
                opt.zero_grad();
                loss.backward()?;
                clip_grad_norm(&params, 5.0);
                opt.step();
            }
        }
        // Evaluate.
        encoder.set_training(false);
        let mut correct = 0usize;
        let mut total = 0usize;
        for (images, labels) in BatchIter::test(data, self.batch) {
            let g = Graph::new();
            let preds = head.forward(&encoder.features(&g.leaf(images))?)?.value().argmax_rows()?;
            correct += preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
            total += labels.len();
        }
        encoder.set_training(true);
        Ok((head, correct as f32 / total.max(1) as f32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t2c_data::SynthVisionConfig;
    use t2c_nn::models::MobileNetConfig;

    #[test]
    fn ssl_loss_decreases_over_training() {
        let data = SynthVision::generate(&SynthVisionConfig::tiny(4, 24));
        let mut rng = TensorRng::seed_from(0);
        let encoder = MobileNetV1::new(&mut rng, MobileNetConfig::tiny(4));
        let trainer = SslTrainer::new(SslConfig::quick(4), SslMethod::BarlowXd);
        let history = trainer.fit(&encoder, &data).unwrap();
        assert!(history.len() == 4);
        assert!(
            history.last().unwrap() < history.first().unwrap(),
            "loss should decrease: {history:?}"
        );
        assert!(history.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn finetune_after_ssl_beats_random_encoder() {
        let up = SynthVision::generate(&SynthVisionConfig::tiny(4, 24));
        let down = SynthVision::generate(&SynthVisionConfig::tiny(3, 24));
        // SSL-pretrained encoder.
        let mut rng = TensorRng::seed_from(1);
        let encoder = MobileNetV1::new(&mut rng, MobileNetConfig::tiny(4));
        SslTrainer::new(SslConfig::quick(4), SslMethod::BarlowXd).fit(&encoder, &up).unwrap();
        let (_, acc_ssl) = FineTuner::quick(3).fit(&encoder, 3, &down).unwrap();
        assert!(acc_ssl > 0.3, "ssl transfer acc {acc_ssl}");
    }

    #[test]
    fn projection_head_shapes() {
        let mut rng = TensorRng::seed_from(2);
        let head = ProjectionHead::new(&mut rng, 8, 16, 4);
        let g = Graph::new();
        let z = head.project(&g.leaf(t2c_tensor::Tensor::ones(&[5, 8]))).unwrap();
        assert_eq!(z.dims(), vec![5, 4]);
        assert_eq!(head.params().len(), 4);
    }
}
