//! Correlation-based self-supervised objectives.

use t2c_autograd::Var;
use t2c_tensor::Tensor;

use crate::Result;

/// Standardizes each embedding dimension over the batch:
/// `(z − μ₀)/σ₀` with statistics along axis 0 — differentiable.
fn batch_standardize(z: &Var) -> Result<Var> {
    let mean = z.mean_axis(0)?; // [1, D]
    let centered = z.sub(&mean)?;
    let var = centered.square().mean_axis(0)?; // biased, [1, D]
    let std = var.add_scalar(1e-5).sqrt();
    centered.div(&std)
}

/// The `[D, D]` cross-correlation matrix `C = ẑᵀ ẑ̃ / N` between two
/// batch-standardized embedding matrices `[N, D]`.
///
/// # Errors
///
/// Returns an error if shapes disagree.
pub fn cross_correlation(z1: &Var, z2: &Var) -> Result<Var> {
    let n = z1.dims()[0] as f32;
    let z1n = batch_standardize(z1)?;
    let z2n = batch_standardize(z2)?;
    Ok(z1n.transpose()?.matmul(&z2n)?.mul_scalar(1.0 / n))
}

fn eye_masks(d: usize, g: &t2c_autograd::Graph) -> (Var, Var) {
    let eye = Tensor::from_fn(&[d, d], |i| if i / d == i % d { 1.0 } else { 0.0 });
    let off = eye.map(|v| 1.0 - v);
    (g.leaf(eye), g.leaf(off))
}

/// Barlow-Twins loss: `Σᵢ (1 − C_ii)² + λ·Σ_{i≠j} C_ij²`.
///
/// # Errors
///
/// Returns an error if the embeddings' shapes disagree.
pub fn barlow_loss(z1: &Var, z2: &Var, lambda: f32) -> Result<Var> {
    let c = cross_correlation(z1, z2)?;
    let d = c.dims()[0];
    let (eye, off) = eye_masks(d, &z1.graph_handle());
    // on-diagonal: (C_ii − 1)²; masks zero-out the complementary entries.
    let on = c.sub(&eye)?.mul(&eye)?.square().sum_all();
    let off_term = c.mul(&off)?.square().sum_all();
    on.add(&off_term.mul_scalar(lambda))
}

/// The cross-distillation loss of Eq. 16: linear on-diagonal alignment
/// `Σᵢ (1 − C_ii)` plus the quadratic redundancy term. The second operand
/// acts as the (detached) teacher.
///
/// # Errors
///
/// Returns an error if the embeddings' shapes disagree.
pub fn xd_loss(z_student: &Var, z_teacher: &Var, lambda: f32) -> Result<Var> {
    let c = cross_correlation(z_student, &z_teacher.detach())?;
    let d = c.dims()[0];
    let (eye, off) = eye_masks(d, &z_student.graph_handle());
    // Σᵢ (1 − C_ii) = D − trace(C)
    let trace = c.mul(&eye)?.sum_all();
    let on = trace.neg().add_scalar(d as f32);
    let off_term = c.mul(&off)?.square().sum_all();
    on.add(&off_term.mul_scalar(lambda))
}

#[cfg(test)]
mod tests {
    use super::*;
    use t2c_autograd::Graph;
    use t2c_tensor::rng::TensorRng;

    #[test]
    fn correlation_of_identical_views_is_identityish() {
        let mut rng = TensorRng::seed_from(1);
        let z = rng.normal(&[64, 8], 0.0, 1.0);
        let g = Graph::new();
        let z1 = g.leaf(z.clone());
        let z2 = g.leaf(z);
        let c = cross_correlation(&z1, &z2).unwrap().tensor();
        for i in 0..8 {
            assert!((c.at(&[i, i]) - 1.0).abs() < 0.05, "diag {i}: {}", c.at(&[i, i]));
        }
    }

    #[test]
    fn barlow_loss_zero_for_perfectly_aligned_decorrelated() {
        // Independent standardized dimensions + identical views ⇒ C ≈ I.
        let mut rng = TensorRng::seed_from(2);
        let z = rng.normal(&[256, 4], 0.0, 1.0);
        let g = Graph::new();
        let loss = barlow_loss(&g.leaf(z.clone()), &g.leaf(z), 5e-3).unwrap();
        assert!(loss.tensor().item() < 0.1, "loss {}", loss.tensor().item());
    }

    #[test]
    fn barlow_loss_penalizes_redundant_dimensions() {
        // Duplicate dimensions ⇒ large off-diagonal correlation.
        let mut rng = TensorRng::seed_from(3);
        let base = rng.normal(&[128, 1], 0.0, 1.0);
        let dup = Tensor::from_fn(&[128, 4], |i| base.as_slice()[i / 4]);
        let indep = rng.normal(&[128, 4], 0.0, 1.0);
        let g = Graph::new();
        let redundant =
            barlow_loss(&g.leaf(dup.clone()), &g.leaf(dup), 5e-3).unwrap().tensor().item();
        let g2 = Graph::new();
        let clean =
            barlow_loss(&g2.leaf(indep.clone()), &g2.leaf(indep), 5e-3).unwrap().tensor().item();
        assert!(redundant > clean, "redundant {redundant} vs clean {clean}");
    }

    #[test]
    fn xd_loss_teacher_receives_no_gradient() {
        let mut rng = TensorRng::seed_from(4);
        let g = Graph::new();
        let student = g.leaf(rng.normal(&[32, 4], 0.0, 1.0));
        let teacher = g.leaf(rng.normal(&[32, 4], 0.0, 1.0));
        let loss = xd_loss(&student, &teacher, 5e-3).unwrap();
        loss.backward().unwrap();
        assert!(student.grad().is_some());
        assert!(teacher.grad().is_none(), "teacher must be detached");
    }

    #[test]
    fn losses_are_finite_and_positive_for_random_views() {
        let mut rng = TensorRng::seed_from(5);
        let g = Graph::new();
        let z1 = g.leaf(rng.normal(&[64, 8], 0.0, 1.0));
        let z2 = g.leaf(rng.normal(&[64, 8], 0.0, 1.0));
        let b = barlow_loss(&z1, &z2, 5e-3).unwrap().tensor().item();
        let x = xd_loss(&z1, &z2, 5e-3).unwrap().tensor().item();
        assert!(b.is_finite() && b > 0.0);
        assert!(x.is_finite() && x > 0.0);
    }
}
