//! `loadgen` — closed-loop load generator for the `t2c-serve` runtime.
//!
//! Sweeps micro-batch × client-concurrency settings over the in-process
//! serving handle and records throughput, latency percentiles and batch
//! amortization into `bench_results/serve_loadgen.json`. The headline
//! check runs **device-paced** (`ServerConfig::pace_batch_ns`, the
//! `cluster_loadgen` convention): each batch dispatch is held to a fixed
//! service time modeling one invocation of an attached accelerator
//! board, and `max_batch=16` must then deliver at least 2× the
//! throughput of `max_batch=1` on the zoo MLP at 32-way concurrency
//! (ceiling 16×). The gate used to run unpaced — amortizing the
//! interpreter's per-dispatch weight repack was worth 2× of raw host
//! compute — but admission now compiles an execution plan (weights
//! packed once, arena-backed intermediates), which made the batch-1
//! baseline ~3× faster and left only noise-level host fixed costs for
//! batching to amortize. Pacing restores a deterministic measurement of
//! the win batching exists for: fewer invocations of a device whose
//! per-dispatch cost does not shrink with smarter host code. The
//! unpaced sweep is still measured and recorded as telemetry.
//!
//! ```sh
//! cargo run --release -p t2c-bench --bin loadgen            # full sweep + zoo
//! cargo run --release -p t2c-bench --bin loadgen -- --quick # MLP sweep only
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use t2c_serve::{BatchConfig, ModelRegistry, Server, ServerConfig};
use t2c_tensor::Tensor;

/// Fixed per-batch device service time for the paced gate configs —
/// the same figure `cluster_loadgen` paces its replicas to (one
/// invocation of an attached accelerator board per coalesced batch).
const PACE_BATCH_NS: u64 = 1_000_000;

/// One measured configuration.
struct RunResult {
    model: String,
    max_batch: usize,
    pace_batch_ns: u64,
    concurrency: usize,
    requests: usize,
    completed: u64,
    errors: u64,
    rejected_busy: u64,
    deadline_exceeded: u64,
    wall_ns: u64,
    throughput_rps: f64,
    p50_ns: u64,
    p99_ns: u64,
    mean_batch_rows: f64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs one closed-loop configuration: `concurrency` client threads each
/// issue `requests / concurrency` sequential in-process requests.
fn run_config(
    registry: &Arc<ModelRegistry>,
    model: &str,
    max_batch: usize,
    concurrency: usize,
    requests: usize,
    pace_batch_ns: u64,
) -> RunResult {
    let admitted = registry.get(model).expect("model admitted");
    let cfg = ServerConfig {
        batch: BatchConfig { max_batch, max_delay_ns: 200_000, queue_cap: 4096 },
        workers: 2,
        pace_batch_ns,
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(registry), cfg);
    let handle = server.handle();
    let per_thread = requests.div_ceil(concurrency);
    // Pre-generate every request payload outside the timed region so the
    // measurement is the serving path, not the load generator's own input
    // synthesis and quantization.
    let payloads: Vec<Vec<Tensor<i32>>> = (0..concurrency)
        .map(|t| {
            (0..per_thread)
                .map(|r| {
                    let salt = t * per_thread + r;
                    let x = Tensor::from_fn(admitted.input_dims(), |i| {
                        ((i * 131 + salt * 29) % 255) as f32 * 0.004 - 0.5
                    });
                    admitted.quantize(&x)
                })
                .collect()
        })
        .collect();
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(requests));
    let errors = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for batch in payloads {
            let handle = handle.clone();
            let admitted = &admitted;
            let latencies = &latencies;
            let errors = &errors;
            scope.spawn(move || {
                let mut mine = Vec::with_capacity(per_thread);
                for codes in batch {
                    let t0 = Instant::now();
                    match handle.infer(admitted.name(), codes) {
                        Ok(_) => mine.push(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(0)),
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                latencies.lock().unwrap().extend(mine);
            });
        }
    });
    let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let stats = server.shutdown();
    let mut lat = latencies.into_inner().unwrap();
    lat.sort_unstable();
    let throughput = stats.completed as f64 / (wall_ns as f64 / 1e9);
    RunResult {
        model: model.to_string(),
        max_batch,
        pace_batch_ns,
        concurrency,
        requests: per_thread * concurrency,
        completed: stats.completed,
        errors: errors.into_inner(),
        rejected_busy: stats.rejected_busy,
        deadline_exceeded: stats.deadline_exceeded,
        wall_ns,
        throughput_rps: throughput,
        p50_ns: percentile(&lat, 50.0),
        p99_ns: percentile(&lat, 99.0),
        mean_batch_rows: stats.mean_batch_rows(),
    }
}

fn json_row(r: &RunResult) -> String {
    format!(
        "    {{\"model\": \"{}\", \"max_batch\": {}, \"pace_batch_ns\": {}, \"concurrency\": {}, \
         \"requests\": {}, \
         \"completed\": {}, \"errors\": {}, \"rejected_busy\": {}, \"deadline_exceeded\": {}, \
         \"wall_ns\": {}, \"throughput_rps\": {:.2}, \"p50_ns\": {}, \"p99_ns\": {}, \
         \"mean_batch_rows\": {:.3}}}",
        r.model,
        r.max_batch,
        r.pace_batch_ns,
        r.concurrency,
        r.requests,
        r.completed,
        r.errors,
        r.rejected_busy,
        r.deadline_exceeded,
        r.wall_ns,
        r.throughput_rps,
        r.p50_ns,
        r.p99_ns,
        r.mean_batch_rows
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let registry = Arc::new(ModelRegistry::new());
    let (mlp, mlp_dims) = t2c_core::zoo::tiny_mlp();
    registry.admit("tiny-mlp", mlp, &mlp_dims).expect("tiny_mlp passes the lint gate");

    println!("| model | max_batch | pace µs | conc | reqs | rps | p50 µs | p99 µs | rows/batch |");
    println!("|---|---|---|---|---|---|---|---|---|");
    let mut results: Vec<RunResult> = Vec::new();
    let mut show = |r: RunResult| {
        println!(
            "| {} | {} | {:.0} | {} | {} | {:.0} | {:.0} | {:.0} | {:.2} |",
            r.model,
            r.max_batch,
            r.pace_batch_ns as f64 / 1e3,
            r.concurrency,
            r.requests,
            r.throughput_rps,
            r.p50_ns as f64 / 1e3,
            r.p99_ns as f64 / 1e3,
            r.mean_batch_rows
        );
        results.push(r);
    };

    // The host-compute sweep: batch × concurrency on the MLP (telemetry,
    // not gated — with admission-compiled plans the host fixed costs are
    // too small for an unpaced batching floor to be stable).
    for &concurrency in &[8usize, 32] {
        for &max_batch in &[1usize, 4, 16] {
            show(run_config(&registry, "tiny-mlp", max_batch, concurrency, 2048, 0));
        }
    }

    // The gated pair: device-paced batch amortization (see module doc).
    show(run_config(&registry, "tiny-mlp", 1, 32, 1024, PACE_BATCH_NS));
    show(run_config(&registry, "tiny-mlp", 16, 32, 1024, PACE_BATCH_NS));

    // One pass per trained zoo model (admission through the lint gate is
    // part of what this measures end to end).
    if !quick {
        for (tag, build) in t2c_core::zoo::zoo() {
            let (model, dims) = build();
            registry.admit(tag, model, &dims).expect("zoo model passes the lint gate");
            show(run_config(&registry, tag, 8, 8, 64, 0));
        }
    }

    let b1 = results
        .iter()
        .find(|r| r.model == "tiny-mlp" && r.max_batch == 1 && r.pace_batch_ns > 0)
        .expect("paced baseline config present");
    let b16 = results
        .iter()
        .find(|r| r.model == "tiny-mlp" && r.max_batch == 16 && r.pace_batch_ns > 0)
        .expect("paced batched config present");
    let speedup = b16.throughput_rps / b1.throughput_rps.max(1e-9);
    let pass =
        speedup >= 2.0 && results.iter().all(|r| r.errors == 0 && r.completed == r.requests as u64);
    println!(
        "\nmlp batching speedup (max_batch 16 vs 1 @ conc 32, device-paced): {speedup:.2}x — {}",
        if pass { "pass" } else { "FAIL" }
    );

    let created = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let rows: Vec<String> = results.iter().map(json_row).collect();
    let json = format!
("{{\n  \"version\": 1,\n  \"bench\": \"serve_loadgen\",\n  \"created_unix\": {created},\n  \"gate_pace_batch_ns\": {PACE_BATCH_NS},\n  \"configs\": [\n{}\n  ],\n  \"mlp_speedup_b16_vs_b1\": {speedup:.3},\n  \"pass\": {pass}\n}}\n",
        rows.join(",\n"));
    std::fs::create_dir_all("bench_results").expect("create bench_results");
    let path = "bench_results/serve_loadgen.json";
    std::fs::write(path, json).expect("write loadgen report");
    println!("loadgen report: {path}");
    if !pass {
        std::process::exit(1);
    }
}
