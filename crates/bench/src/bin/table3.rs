//! **Table 3** — sparse training composed with PTQ: the pruned zeros
//! survive as raw zeros in the deployed integer model.
//!
//! Paper rows: GraNet 80% and N:M = 2:4, each PTQ-quantized to 8/8 and
//! 4/4 on the ImageNet-like task. Shape: sparsity carries into the integer
//! export unchanged; accuracy cost grows from 8/8 to 4/4; 2:4 (50%) costs
//! less than 80% unstructured. Bonus column: zero-skipping accelerator
//! speed-up, the hardware payoff §2.2 motivates.
//!
//! ```sh
//! cargo run --release -p t2c-bench --bin table3
//! ```

use t2c_accel::{Accelerator, AcceleratorConfig};
use t2c_bench::{fmt_acc, row};
use t2c_core::qmodels::{QResNet, QuantFactory};
use t2c_core::trainer::{evaluate_int, FpTrainer, PtqPipeline, TrainConfig};
use t2c_core::{FuseScheme, QuantConfig, T2C};
use t2c_data::{SynthVision, SynthVisionConfig};
use t2c_nn::models::{ResNet, ResNetConfig};
use t2c_nn::Module;
use t2c_sparse::{prunable_weights, GraNetPruner, NmPruner, SparseTrainer, SparseTrainerConfig};
use t2c_tensor::rng::TensorRng;

fn sparse_then_ptq(model: &ResNet, data: &SynthVision, bits: u8) -> (f32, f32, f64) {
    let qnn = QResNet::from_float(model, &QuantFactory::minmax(QuantConfig::wa(bits)));
    PtqPipeline::calibrate(8, 32).run(&qnn, data).expect("ptq");
    qnn.set_training(false);
    let (chip, report) = T2C::new(&qnn).nn2chip(FuseScheme::auto(bits)).expect("convert");
    let acc = evaluate_int(&chip, data, 32).expect("eval");
    // Zero-skipping speed-up on the simulated accelerator.
    let dims = [1usize, 3, 16, 16];
    let dense = Accelerator::new(chip.clone(), AcceleratorConfig::dense16x16())
        .trace(&dims)
        .expect("trace");
    let skip =
        Accelerator::new(chip, AcceleratorConfig::sparse16x16()).trace(&dims).expect("trace");
    let speedup = dense.total_cycles() as f64 / skip.total_cycles().max(1) as f64;
    (acc, report.sparsity, speedup)
}

fn main() {
    let data = SynthVision::generate(&SynthVisionConfig::imagenet_like(48));
    println!("# Table 3 — sparse + low-precision ResNet on SynthImageNet\n");
    let epochs = 30;
    let classes = data.num_classes();

    // Dense FP baseline.
    let mut rng = TensorRng::seed_from(301);
    let dense = ResNet::new(&mut rng, ResNetConfig::resnet20(classes).scaled(0.5));
    let fp = FpTrainer::new(TrainConfig::quick(epochs)).fit(&dense, &data).expect("fp").best_acc();
    println!("dense FP32 baseline: {:.2}%\n", fp * 100.0);
    row(&[
        "Method".into(),
        "Target".into(),
        "W/A".into(),
        "Int sparsity".into(),
        "Acc (Δ)".into(),
        "Zero-skip speedup".into(),
    ]);
    row(&(0..6).map(|_| "---".to_string()).collect::<Vec<_>>());

    // ---- GraNet 80% -------------------------------------------------------
    let mut rng = TensorRng::seed_from(302);
    let granet_model = ResNet::new(&mut rng, ResNetConfig::resnet20(classes).scaled(0.5));
    let mut pruner = GraNetPruner::new(prunable_weights(&granet_model), 0.8);
    SparseTrainer::new(SparseTrainerConfig::quick(epochs))
        .fit(&granet_model, &mut pruner, &data)
        .expect("granet");
    for bits in [8u8, 4] {
        let (acc, sparsity, speedup) = sparse_then_ptq(&granet_model, &data, bits);
        row(&[
            "GraNet".into(),
            "80%".into(),
            format!("{bits}/{bits}"),
            format!("{:.0}%", sparsity * 100.0),
            fmt_acc(acc, fp),
            format!("{speedup:.2}×"),
        ]);
    }

    // ---- N:M = 2:4 ---------------------------------------------------------
    let mut rng = TensorRng::seed_from(303);
    let nm_model = ResNet::new(&mut rng, ResNetConfig::resnet20(classes).scaled(0.5));
    let mut pruner = NmPruner::new(prunable_weights(&nm_model), 2, 4);
    SparseTrainer::new(SparseTrainerConfig::quick(epochs))
        .fit(&nm_model, &mut pruner, &data)
        .expect("nm");
    assert!(pruner.masks_satisfy_constraint(), "2:4 constraint must hold after training");
    for bits in [8u8, 4] {
        let (acc, sparsity, speedup) = sparse_then_ptq(&nm_model, &data, bits);
        row(&[
            "N:M = 2:4".into(),
            "50%".into(),
            format!("{bits}/{bits}"),
            format!("{:.0}%", sparsity * 100.0),
            fmt_acc(acc, fp),
            format!("{speedup:.2}×"),
        ]);
    }
    println!("\nShape check: sparsity survives into the integer export; 2:4 costs less than 80%; 4/4 costs more than 8/8.");
}
