//! `gemm-pack` — the prepacked serving-path gate.
//!
//! Benchmarks the cache-blocked packed integer GEMM against the dense
//! serving path across the GEMM shapes the zoo's serving traffic covers,
//! from a single-sample MLP call (1×256×128) up to a batched transformer
//! block (64×1024×1024). The dense side measures what `IntOp::Linear`
//! actually pays per call — the `[out, in]` weight transpose *plus* the
//! naive saturating matmul — because eliminating that per-call weight
//! transformation is precisely what prepacking buys the serving runtime.
//! The packed side pays its panel repacking once, outside the timed
//! region, exactly like `ModelRegistry` does at admission.
//!
//! Both kernels are bit-identical by construction (per-MAC saturating
//! accumulation in ascending k order); every measured shape re-checks
//! that. Gates on the packed path delivering at least 1.5× the dense
//! serving path at the largest shape. Results land in
//! `bench_results/gemm_pack.json`; exits non-zero when the gate fails —
//! `scripts/verify.sh` runs it with `T2C_THREADS=4`.
//!
//! ```sh
//! T2C_THREADS=4 cargo run --release -p t2c-bench --bin gemm_pack
//! ```

use std::time::Instant;

use t2c_tensor::{matmul_i32_sat_packed, PackedMat, Tensor};

/// Timing repetitions (median-of); two extra warmup runs precede them.
const REPS: usize = 9;
/// The gated shape: the largest serving GEMM in the sweep.
const GATE_SHAPE: (usize, usize, usize) = (64, 1024, 1024);
/// Speedup floor at the gated shape.
const FLOOR: f64 = 1.5;

struct ShapeResult {
    m: usize,
    k: usize,
    n: usize,
    dense_ns: u64,
    packed_ns: u64,
    speedup: f64,
    bit_identical: bool,
}

fn median_ns<F: FnMut()>(mut f: F) -> u64 {
    for _ in 0..2 {
        f();
    }
    let mut times: Vec<u64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            f();
            u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn measure(m: usize, k: usize, n: usize) -> ShapeResult {
    // Activation codes on the int8 grid, weights [n, k] in the Linear
    // layer's [OUT, IN] orientation.
    let x = Tensor::from_fn(&[m, k], |i| ((i * 37) % 255) as i32 - 127);
    let w = Tensor::from_fn(&[n, k], |i| ((i * 53) % 15) as i32 - 7);
    let packed = PackedMat::from_weight(&w).expect("rank-2 weight packs");

    let dense_out = x.matmul_i(&w.transpose().expect("rank-2")).expect("conforming shapes");
    let packed_out = matmul_i32_sat_packed(&x, &packed).expect("valid panels");
    let bit_identical = dense_out.as_slice() == packed_out.as_slice();

    // Dense serving path: per-call transpose + naive saturating matmul —
    // the exact sequence `IntOp::Linear::execute` runs per request.
    let dense_ns = median_ns(|| {
        let wt = w.transpose().expect("rank-2");
        std::hint::black_box(x.matmul_i(&wt).expect("conforming shapes"));
    });
    // Packed serving path: the panels were built at admission.
    let packed_ns = median_ns(|| {
        std::hint::black_box(matmul_i32_sat_packed(&x, &packed).expect("valid panels"));
    });
    let speedup = dense_ns as f64 / packed_ns.max(1) as f64;
    let r = ShapeResult { m, k, n, dense_ns, packed_ns, speedup, bit_identical };
    println!(
        "| {}x{}x{} | {:.2} | {:.2} | {:.2}x | {} |",
        r.m,
        r.k,
        r.n,
        r.dense_ns as f64 / 1e6,
        r.packed_ns as f64 / 1e6,
        r.speedup,
        if r.bit_identical { "bit-identical" } else { "MISMATCH" }
    );
    r
}

fn json_row(r: &ShapeResult) -> String {
    format!(
        "    {{\"m\": {}, \"k\": {}, \"n\": {}, \"dense_ns\": {}, \"packed_ns\": {}, \
         \"speedup\": {:.3}, \"bit_identical\": {}}}",
        r.m, r.k, r.n, r.dense_ns, r.packed_ns, r.speedup, r.bit_identical
    )
}

fn main() {
    println!(
        "gemm-pack: packed panels vs dense serving path ({} host thread(s))",
        t2c_tensor::num_threads()
    );
    println!("| m x k x n | dense ms | packed ms | speedup | identity |");
    println!("|---|---|---|---|---|");
    let shapes = [(1usize, 256usize, 128usize), (16, 256, 128), (64, 512, 512), GATE_SHAPE];
    let results: Vec<ShapeResult> = shapes.iter().map(|&(m, k, n)| measure(m, k, n)).collect();

    let gate =
        results.iter().find(|r| (r.m, r.k, r.n) == GATE_SHAPE).expect("gate shape is in the sweep");
    let all_identical = results.iter().all(|r| r.bit_identical);
    let pass = gate.speedup >= FLOOR && all_identical;
    println!(
        "\npacked speedup at {}x{}x{}: {:.2}x (floor {FLOOR:.2}x) — {}",
        GATE_SHAPE.0,
        GATE_SHAPE.1,
        GATE_SHAPE.2,
        gate.speedup,
        if pass { "pass" } else { "FAIL" }
    );

    let created = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let rows: Vec<String> = results.iter().map(json_row).collect();
    let json = format!(
        "{{\n  \"version\": 1,\n  \"bench\": \"gemm_pack\",\n  \"created_unix\": {created},\n  \"threads\": {},\n  \"shapes\": [\n{}\n  ],\n  \"gate_speedup\": {:.3},\n  \"pass\": {pass}\n}}\n",
        t2c_tensor::num_threads(),
        rows.join(",\n"),
        gate.speedup,
    );
    std::fs::create_dir_all("bench_results").expect("create bench_results");
    let path = "bench_results/gemm_pack.json";
    std::fs::write(path, json).expect("write gemm pack report");
    println!("gemm pack report: {path}");
    if !pass {
        std::process::exit(1);
    }
}
