//! **Figure 3** — the Dual-Path train→infer→deploy flow, and the §3.2
//! fusion claim: pre-fusing with unified scaling is fine at 8 bits and
//! *unstable below*, while channel-wise MulQuant scaling holds.
//!
//! Sweeps weight/activation bit width × fusion scheme with **per-tensor**
//! (unified) weight scales and reports integer accuracy plus the maximum
//! divergence between the fake-quant training path and the deployed
//! integer path.
//!
//! ```sh
//! cargo run --release -p t2c-bench --bin fig3_dualpath
//! ```

use t2c_bench::{dump_profile, row};
use t2c_core::fuse::BnParams;
use t2c_core::qmodels::{QMobileNet, QuantFactory};
use t2c_core::trainer::{
    dual_path_divergence, evaluate, evaluate_int, FpTrainer, PtqPipeline, TrainConfig,
};
use t2c_core::{FuseScheme, QuantConfig, T2C};
use t2c_data::{BatchIter, SynthVision, SynthVisionConfig};
use t2c_nn::models::{MobileNetConfig, MobileNetV1};
use t2c_nn::Module;
use t2c_tensor::rng::TensorRng;

fn main() {
    // MobileNet's depthwise BatchNorms develop the widest per-channel γ*
    // spread — exactly the regime where the paper says pre-fusing breaks
    // below 8 bits (§3.2, citing PROFIT).
    let mut dcfg = SynthVisionConfig::cifar100_like(32);
    dcfg.noise = 0.9;
    dcfg.shift_max = 4;
    let data = SynthVision::generate(&dcfg);
    let mut rng = TensorRng::seed_from(501);
    let mut cfg = MobileNetConfig::tiny(data.num_classes());
    cfg.width_mult = 2.0;
    let model = MobileNetV1::new(&mut rng, cfg);
    let fp = FpTrainer::new(TrainConfig::quick(30)).fit(&model, &data).expect("fp");
    println!("# Figure 3 — Dual-Path consistency and fusion-scheme stability\n");
    println!(
        "FP32 baseline: {:.2}%  (weights use unified per-tensor scales below)",
        fp.best_acc() * 100.0
    );
    // Report the BN γ* spread driving the effect.
    let mut worst_spread = 0.0f32;
    for b in model.blocks() {
        for bn in [b.bn1(), b.bn2()] {
            let gs = BnParams::from_layer(bn).gamma_star();
            let max = gs.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let min = gs.iter().fold(f32::INFINITY, |m, &v| m.min(v.abs().max(1e-6)));
            worst_spread = worst_spread.max(max / min);
        }
    }
    println!("worst per-layer γ* spread (max/min): {worst_spread:.1}×\n");
    row(&[
        "W/A bits".into(),
        "Scheme".into(),
        "fake-quant acc".into(),
        "integer acc".into(),
        "max |int − fake| logit".into(),
    ]);
    row(&(0..5).map(|_| "---".to_string()).collect::<Vec<_>>());

    for bits in [8u8, 6, 4, 3] {
        // Unified (per-tensor) weight scaling exposes the pre-fuse
        // instability the paper describes.
        let mut cfg = QuantConfig::wa(bits);
        cfg.per_channel = false;
        let qnn = QMobileNet::from_float(&model, &QuantFactory::minmax(cfg));
        PtqPipeline::calibrate(8, 32).run(&qnn, &data).expect("ptq");
        qnn.set_training(false);
        let fake = evaluate(&qnn, &data, 32).expect("fake eval");
        for scheme in [FuseScheme::PreFuse, FuseScheme::ChannelWise] {
            let (chip, _) = T2C::new(&qnn).nn2chip(scheme).expect("convert");
            let int = evaluate_int(&chip, &data, 32).expect("int eval");
            // Divergence between the two paths on one test batch: the
            // max-abs-normalized logit gap (see `dual_path_divergence`).
            let (images, _) = BatchIter::test(&data, 32).next().expect("batch");
            let (max_div, _mean_div) =
                dual_path_divergence(&qnn, &chip, &images).expect("divergence");
            row(&[
                format!("{bits}/{bits}"),
                format!("{scheme:?}"),
                format!("{:.2}%", fake * 100.0),
                format!("{:.2}%", int * 100.0),
                format!("{max_div:.3}"),
            ]);
        }
    }
    println!("\nShape check: both schemes match at 8 bits; below 8 bits PreFuse (unified scaling)");
    println!("degrades while ChannelWise tracks the fake-quant path (paper §3.2, Eq. 14 vs 15).");
    dump_profile("fig3_dualpath");
}
