//! **Figure 4** — the integer-only Vision Transformer: LUT softmax, LUT
//! GELU and integer LayerNorm, with an ablation over LUT size (the
//! user-customizable knob the paper highlights against I-ViT's
//! shift-based approximation).
//!
//! ```sh
//! cargo run --release -p t2c-bench --bin fig4_vit
//! ```

use t2c_bench::row;
use t2c_core::intmodel::IntOp;
use t2c_core::lut::SoftmaxLut;
use t2c_core::qmodels::{QViT, QuantFactory};
use t2c_core::trainer::{evaluate, evaluate_int, QatTrainer, TrainConfig};
use t2c_core::{FuseScheme, QuantConfig, QuantSpec, T2C};
use t2c_data::{SynthVision, SynthVisionConfig};
use t2c_nn::models::{ViT, ViTConfig};
use t2c_nn::Module;
use t2c_tensor::rng::TensorRng;
use t2c_tensor::Tensor;

fn main() {
    let data = SynthVision::generate(&SynthVisionConfig::cifar10_like(32));
    let mut rng = TensorRng::seed_from(601);
    let model = ViT::new(&mut rng, ViTConfig::tiny(data.num_classes()));
    let qnn = QViT::from_float(&model, &QuantFactory::rcf(QuantConfig::vit(8)));
    let history = QatTrainer::new(TrainConfig::quick(30)).fit(&qnn, &data).expect("qat");
    qnn.set_training(false);
    let fake = evaluate(&qnn, &data, 32).expect("fake eval");
    println!("# Figure 4 — integer-only ViT with LUT non-linearities\n");
    println!(
        "QAT (fake-quant path): best {:.2}%, final {:.2}%\n",
        history.best_acc() * 100.0,
        fake * 100.0
    );

    let (chip, report) = T2C::new(&qnn).nn2chip(FuseScheme::PreFuse).expect("convert");
    println!(
        "deployed: {} integer ops, {:.4} MB (includes LUTs and integer LN parameters)\n",
        report.num_nodes,
        report.size_mb()
    );

    // ---- LUT-size ablation -------------------------------------------------
    row(&[
        "softmax LUT entries".into(),
        "worst prob error vs float".into(),
        "integer accuracy".into(),
    ]);
    row(&(0..3).map(|_| "---".to_string()).collect::<Vec<_>>());
    // Reference scores to measure per-row softmax fidelity.
    let mut score_rng = TensorRng::seed_from(602);
    let ref_scores_f = score_rng.normal(&[64, 17], 0.0, 2.0);
    for entries in [16usize, 64, 256, 1024] {
        // Rebuild every softmax node with the requested table size.
        let mut variant = chip.clone();
        let mut worst = 0.0f32;
        for node in &mut variant.nodes {
            if let IntOp::SoftmaxLut(lut) = &mut node.op {
                let rebuilt =
                    SoftmaxLut::build(lut.in_scale, QuantSpec::unsigned(8), entries, lut.frac_bits);
                // Fidelity on reference scores at this node's input scale.
                let scores_q = ref_scores_f.map(|v| (v / rebuilt.in_scale).round() as i32);
                let probs_q = rebuilt.apply(&scores_q);
                let float_probs = scores_q
                    .to_f32()
                    .mul_scalar(rebuilt.in_scale)
                    .softmax_lastdim()
                    .expect("softmax");
                for (q, f) in probs_q.as_slice().iter().zip(float_probs.as_slice()) {
                    worst = worst.max((*q as f32 / 255.0 - f).abs());
                }
                *lut = rebuilt;
            }
        }
        let acc = evaluate_int(&variant, &data, 32).expect("int eval");
        row(&[format!("{entries}"), format!("{worst:.4}"), format!("{:.2}%", acc * 100.0)]);
    }
    println!("\nShape check: accuracy saturates once the LUT covers the score range;");
    println!("tiny LUTs flatten the attention distribution and cost accuracy.");

    // ---- Verify a LUT GELU exists and integer path ≈ fake path -------------
    let int_acc = evaluate_int(&chip, &data, 32).expect("int eval");
    let geli = chip.nodes.iter().filter(|n| matches!(n.op, IntOp::GeluLut(_))).count();
    let lns = chip.nodes.iter().filter(|n| matches!(n.op, IntOp::LayerNorm(_))).count();
    println!(
        "\nfull-size LUTs: integer {:.2}% vs fake-quant {:.2}% ({} GELU LUTs, {} integer LayerNorms)",
        int_acc * 100.0,
        fake * 100.0,
        geli,
        lns
    );
    let _ = Tensor::<f32>::zeros(&[1]);
}
