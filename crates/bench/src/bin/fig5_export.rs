//! **Figure 5** — automated, versatile parameter extraction: the same
//! integer model exported as a binary model file, hexadecimal RTL memory
//! images, binary text and decimal dumps; every format verified
//! bit-exact and the package replayed on the accelerator simulator.
//!
//! ```sh
//! cargo run --release -p t2c-bench --bin fig5_export
//! ```

use t2c_accel::{Accelerator, AcceleratorConfig};
use t2c_bench::row;
use t2c_core::qmodels::{QResNet, QuantFactory};
use t2c_core::trainer::{FpTrainer, PtqPipeline, TrainConfig};
use t2c_core::{FuseScheme, QuantConfig, T2C};
use t2c_data::{SynthVision, SynthVisionConfig};
use t2c_export::{export_package, verify_package};
use t2c_nn::models::{ResNet, ResNetConfig};
use t2c_nn::Module;
use t2c_tensor::rng::TensorRng;

fn main() {
    let data = SynthVision::generate(&SynthVisionConfig::cifar10_like(32));
    let mut rng = TensorRng::seed_from(701);
    let model = ResNet::new(&mut rng, ResNetConfig::tiny(data.num_classes()));
    FpTrainer::new(TrainConfig::quick(20)).fit(&model, &data).expect("fp");
    let qnn = QResNet::from_float(&model, &QuantFactory::minmax(QuantConfig::wa(4)));
    PtqPipeline::calibrate(8, 32).run(&qnn, &data).expect("ptq");
    qnn.set_training(false);
    let (chip, report) = T2C::new(&qnn).nn2chip(FuseScheme::ChannelWise).expect("convert");
    println!("# Figure 5 — export formats and RTL-style verification\n");
    println!(
        "model: {} integer ops, {:.4} MB packed, {:.0}% weight sparsity\n",
        report.num_nodes,
        report.size_mb(),
        report.sparsity * 100.0
    );

    let dir = std::env::temp_dir().join("t2c_fig5_pkg");
    let manifest = export_package(&chip, &dir).expect("export");
    row(&["artifact".into(), "count / size".into(), "consumer".into()]);
    row(&(0..3).map(|_| "---".to_string()).collect::<Vec<_>>());
    row(&[
        "model.t2cm (binary, checksummed)".into(),
        format!("{} bytes", std::fs::metadata(&manifest.model_file).map_or(0, |m| m.len())),
        "accelerator simulator / integer runtime".into(),
    ]);
    row(&[
        "hex/*.hex ($readmemh)".into(),
        format!("{} memory images", manifest.hex_files.len()),
        "RTL testbench".into(),
    ]);
    row(&[
        "bin/*.mem ($readmemb)".into(),
        format!("{} memory images", manifest.hex_files.len()),
        "RTL testbench".into(),
    ]);
    row(&[
        "dec/*.txt".into(),
        format!("{} dumps", manifest.hex_files.len()),
        "human inspection / scripts".into(),
    ]);
    println!("\ntotal package: {} bytes at {}\n", manifest.total_bytes, manifest.root.display());

    // Round-trip verification of every artifact.
    verify_package(&manifest).expect("package verification");
    println!("verify_package: every artifact decodes bit-exact ✓");

    // Replay the reloaded package on the simulated accelerator.
    let accel = Accelerator::from_package(&dir, AcceleratorConfig::dense16x16()).expect("load");
    let (images, _) = data.test_batch(&[0, 1, 2, 3, 4, 5, 6, 7]);
    let trace = accel.verify_against(&chip, &images).expect("bit-exact replay");
    println!("accelerator replay: bit-exact ✓\n");
    row(&["layer".into(), "MACs".into(), "cycles".into(), "weight bytes".into()]);
    row(&(0..4).map(|_| "---".to_string()).collect::<Vec<_>>());
    for layer in &trace.layers {
        row(&[
            layer.name.clone(),
            layer.macs.to_string(),
            layer.cycles.to_string(),
            layer.weight_bytes.to_string(),
        ]);
    }
    println!(
        "\ntotal: {} MACs, {} cycles, {} bytes moved",
        trace.total_macs(),
        trace.total_cycles(),
        trace.total_traffic()
    );
    std::fs::remove_dir_all(&dir).ok();
}
