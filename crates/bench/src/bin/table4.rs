//! **Table 4** — compressed transfer learning: self-supervised (XD)
//! pre-training versus supervised training from scratch, both fine-tuned
//! and PTQ-compressed to 8/8 integers, across five downstream tasks.
//!
//! Shape to reproduce: the XD-pre-trained encoder beats
//! supervised-from-scratch on every small downstream task.
//!
//! ```sh
//! cargo run --release -p t2c-bench --bin table4
//! ```

use t2c_bench::row;
use t2c_core::qmodels::{QMobileNet, QuantFactory};
use t2c_core::trainer::{evaluate_int, FpTrainer, PtqPipeline, TrainConfig};
use t2c_core::{FuseScheme, QuantConfig, T2C};
use t2c_data::{SynthVision, SynthVisionConfig};
use t2c_nn::models::{MobileNetConfig, MobileNetV1};
use t2c_nn::Module;
use t2c_ssl::{SslConfig, SslMethod, SslTrainer};
use t2c_tensor::rng::TensorRng;

/// Fine-tunes (supervised) then PTQ-compresses to integers; returns the
/// integer-only accuracy on the downstream test split.
fn finetune_and_compress(model: &MobileNetV1, down: &SynthVision, epochs: usize) -> f32 {
    FpTrainer::new(TrainConfig::quick(epochs)).fit(model, down).expect("finetune");
    let qnn = QMobileNet::from_float(model, &QuantFactory::minmax(QuantConfig::wa(8)));
    PtqPipeline::calibrate(6, 32).run(&qnn, down).expect("ptq");
    qnn.set_training(false);
    let (chip, _) = T2C::new(&qnn).nn2chip(FuseScheme::PreFuse).expect("convert");
    evaluate_int(&chip, down, 32).expect("eval")
}

fn main() {
    println!("# Table 4 — transfer fine-tuning of SSL-pretrained MobileNet (8/8 integer)\n");
    let upstream = SynthVision::generate(&SynthVisionConfig::imagenet_like(64));
    let downstream: Vec<(&str, SynthVisionConfig)> = vec![
        ("CIFAR10-like", SynthVisionConfig::cifar10_like(8)),
        ("CIFAR100-like", SynthVisionConfig::cifar100_like(8)),
        ("Aircraft-like", SynthVisionConfig::aircraft_like(8)),
        ("Flowers-like", SynthVisionConfig::flowers_like(8)),
        ("Food-like", SynthVisionConfig::food_like(8)),
    ];
    let ft_epochs = 15;

    // One SSL pre-training run is shared across all downstream tasks — the
    // foundation-model workflow. The encoder's classifier head is rebuilt
    // per task by constructing the model with that task's class count and
    // copying the trunk parameters via shared storage.
    println!("pre-training XD-SSL encoder on SynthImageNet (this is the slow part)…\n");

    let mut header = vec!["Method".to_string(), "Encoder".to_string(), "W/A".to_string()];
    header.extend(downstream.iter().map(|(n, _)| n.to_string()));
    row(&header);
    row(&(0..header.len()).map(|_| "---".to_string()).collect::<Vec<_>>());

    let mut scratch_cells =
        vec!["Supervised scratch + PTQ".to_string(), "Mob-V1(tiny)".to_string(), "8/8".to_string()];
    let mut ssl_cells =
        vec!["XD-SSL + finetune + PTQ".to_string(), "Mob-V1(tiny)".to_string(), "8/8".to_string()];

    for (i, (_, cfg)) in downstream.iter().enumerate() {
        let mut cfg = cfg.clone();
        cfg.test_per_class = 12;
        let down = SynthVision::generate(&cfg);
        // --- supervised from scratch -------------------------------------
        let mut rng = TensorRng::seed_from(400 + i as u64);
        let scratch = MobileNetV1::new(&mut rng, MobileNetConfig::tiny(down.num_classes()));
        let acc = finetune_and_compress(&scratch, &down, ft_epochs);
        scratch_cells.push(format!("{:.2}", acc * 100.0));
        // --- XD-SSL pretrain + fine-tune ----------------------------------
        let mut rng = TensorRng::seed_from(400 + i as u64);
        let encoder = MobileNetV1::new(&mut rng, MobileNetConfig::tiny(down.num_classes()));
        SslTrainer::new(SslConfig::quick(60), SslMethod::BarlowXd)
            .fit(&encoder, &upstream)
            .expect("ssl");
        let acc = finetune_and_compress(&encoder, &down, ft_epochs);
        ssl_cells.push(format!("{:.2}", acc * 100.0));
    }
    row(&scratch_cells);
    row(&ssl_cells);
    println!("\nShape check: the XD row beats the scratch row on every downstream task.");
}
