//! Profiling smoke test — exercises every instrumented subsystem on a tiny
//! model and validates the emitted report against the required schema.
//!
//! Unlike the table/figure harnesses this binary force-enables profiling,
//! so it works without `T2C_PROFILE=1` (setting it is still fine). Exits
//! non-zero if the report is missing any required key — `scripts/verify.sh`
//! runs it as the observability gate.
//!
//! ```sh
//! cargo run --release -p t2c-bench --bin profile_smoke
//! ```

use t2c_accel::{Accelerator, AcceleratorConfig};
use t2c_core::qmodels::{QMobileNet, QuantFactory};
use t2c_core::trainer::{dual_path_divergence, evaluate_int, FpTrainer, PtqPipeline, TrainConfig};
use t2c_core::{FuseScheme, QuantConfig, T2C};
use t2c_data::{BatchIter, SynthVision, SynthVisionConfig};
use t2c_nn::models::{MobileNetConfig, MobileNetV1};
use t2c_nn::Module;
use t2c_tensor::rng::TensorRng;

fn main() {
    t2c_obs::set_enabled(true);

    // Tiny end-to-end pipeline: FP train → PTQ → convert → integer eval →
    // dual-path check → accelerator replay. Each stage feeds the registry.
    let data = SynthVision::generate(&SynthVisionConfig::tiny(3, 16));
    let mut rng = TensorRng::seed_from(9);
    let model = MobileNetV1::new(&mut rng, MobileNetConfig::tiny(3));
    let fp = FpTrainer::new(TrainConfig::quick(2)).fit(&model, &data).expect("fp training");
    println!("fp acc: {:.2}%", fp.final_acc() * 100.0);

    let qnn = QMobileNet::from_float(&model, &QuantFactory::minmax(QuantConfig::wa(8)));
    PtqPipeline::calibrate(4, 16).run(&qnn, &data).expect("ptq");
    qnn.set_training(false);
    let (chip, _) = T2C::new(&qnn).nn2chip(FuseScheme::PreFuse).expect("conversion");
    let int_acc = evaluate_int(&chip, &data, 16).expect("integer evaluation");
    let (images, _) = BatchIter::test(&data, 16).next().expect("test batch");
    let (max_err, mean_err) = dual_path_divergence(&qnn, &chip, &images).expect("divergence");
    println!("int acc: {:.2}%  dual-path err max {max_err:.4} mean {mean_err:.4}", int_acc * 100.0);

    let accel = Accelerator::new(chip, AcceleratorConfig::dense16x16());
    let (_, trace) = accel.run(&images).expect("accelerator replay");
    println!("accel utilization: {:.3}", trace.utilization(&accel.config()));

    let report = t2c_obs::report::Report::capture("profile_smoke");
    println!("\n{}", report.to_text());
    let path = t2c_obs::report::dump("bench_results", "smoke")
        .expect("profile dump")
        .expect("profiling is force-enabled");
    let json = std::fs::read_to_string(&path).expect("read report back");
    if let Err(missing) = t2c_obs::report::validate_schema(&json) {
        eprintln!("profile schema check FAILED; missing keys: {missing:?}");
        std::process::exit(1);
    }
    println!("profile report ok: {}", path.display());
}
