//! **Ablation** — the fixed-point budget of the MulQuant scale words
//! (DESIGN.md §6.5): integer accuracy as a function of the total scale-word
//! width, with automatic fractional placement, against the naive fixed
//! INT(4,12) placement the paper's table header suggests.
//!
//! ```sh
//! cargo run --release -p t2c-bench --bin ablation_fixedpoint
//! ```

use t2c_bench::row;
use t2c_core::qmodels::{QResNet, QuantFactory};
use t2c_core::trainer::{evaluate, evaluate_int, FpTrainer, PtqPipeline, TrainConfig};
use t2c_core::{FixedPointFormat, FuseScheme, QuantConfig, T2C};
use t2c_data::{SynthVision, SynthVisionConfig};
use t2c_nn::models::{ResNet, ResNetConfig};
use t2c_nn::Module;
use t2c_tensor::rng::TensorRng;

fn main() {
    let data = SynthVision::generate(&SynthVisionConfig::imagenet_like(48));
    let mut rng = TensorRng::seed_from(801);
    let model = ResNet::new(&mut rng, ResNetConfig::resnet20(data.num_classes()).scaled(0.5));
    let fp = FpTrainer::new(TrainConfig::quick(30)).fit(&model, &data).expect("fp");
    println!("# Ablation — MulQuant scale-word budget (8/8 PTQ, auto fractional width)\n");
    println!("FP32 baseline: {:.2}%\n", fp.best_acc() * 100.0);
    row(&["scale-word bits".into(), "placement".into(), "integer acc".into()]);
    row(&(0..3).map(|_| "---".to_string()).collect::<Vec<_>>());

    // Reference fake-quant accuracy (independent of the fixed-point budget).
    let reference = {
        let qnn = QResNet::from_float(&model, &QuantFactory::minmax(QuantConfig::wa(8)));
        PtqPipeline::calibrate(8, 32).run(&qnn, &data).expect("ptq");
        qnn.set_training(false);
        evaluate(&qnn, &data, 32).expect("fake eval")
    };

    for total_bits in [6u8, 8, 10, 12, 16, 24] {
        // Auto placement at this budget: int16_frac12-style configs only
        // carry the *total* width; `auto` picks frac per layer.
        let mut cfg = QuantConfig::wa(8);
        cfg.fixed = FixedPointFormat { int_bits: 1, frac_bits: total_bits - 1 };
        let qnn = QResNet::from_float(&model, &QuantFactory::minmax(cfg));
        PtqPipeline::calibrate(8, 32).run(&qnn, &data).expect("ptq");
        qnn.set_training(false);
        let (chip, _) = T2C::new(&qnn).nn2chip(FuseScheme::PreFuse).expect("convert");
        let acc = evaluate_int(&chip, &data, 32).expect("eval");
        row(&[format!("{total_bits}"), "auto".into(), format!("{:.2}%", acc * 100.0)]);
    }
    println!("\nfake-quant reference (no fixed-point error): {:.2}%", reference * 100.0);
    println!("Shape check: accuracy saturates at the reference by ~12–16 scale-word bits;");
    println!("starving the scale words starves the whole integer pipeline.");
}
