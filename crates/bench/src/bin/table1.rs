//! **Table 1** — PTQ toolkit comparison on the ImageNet-like task.
//!
//! Paper rows: AIMET/AdaRound 8/8 (float scales), OpenVINO/MinMax 8/8
//! (float scales), Torch2Chip/QDrop 4/4 and 8/8 (INT16 fixed-point scales).
//! Shape to reproduce: every 8/8 method sits ≈ at the FP baseline; QDrop
//! keeps most of the accuracy even at 4/4; T2C rows do it with integer-only
//! scale/bias words.
//!
//! ```sh
//! cargo run --release -p t2c-bench --bin table1
//! ```

use t2c_bench::{dump_profile, fmt_acc, ptq_int_accuracy, row};
use t2c_core::qmodels::{QResNet, QuantFactory};
use t2c_core::trainer::{FpTrainer, PtqPipeline, TrainConfig};
use t2c_core::{FixedPointFormat, FuseScheme, QuantConfig};
use t2c_data::{SynthVision, SynthVisionConfig};
use t2c_nn::models::{ResNet, ResNetConfig};
use t2c_nn::Module;
use t2c_tensor::rng::TensorRng;

/// A 31-bit fixed-point budget ≈ float-precision rescale factors — the
/// "Scale and Bias: Float" rows of the paper.
fn float_like(mut cfg: QuantConfig) -> QuantConfig {
    cfg.fixed = FixedPointFormat { int_bits: 1, frac_bits: 30 };
    cfg
}

fn main() {
    let data = SynthVision::generate(&SynthVisionConfig::imagenet_like(48));
    let mut rng = TensorRng::seed_from(101);
    let model = ResNet::new(&mut rng, ResNetConfig::resnet20(data.num_classes()).scaled(0.5));
    println!(
        "# Table 1 — PTQ comparison (SynthImageNet, ResNet-20×0.5, {} params)\n",
        model.num_trainable()
    );
    let fp = FpTrainer::new(TrainConfig::quick(30)).fit(&model, &data).expect("fp training");
    println!("FP32 baseline: {:.2}%\n", fp.final_acc() * 100.0);
    row(&["Toolkit".into(), "Method".into(), "W/A".into(), "Scale+Bias".into(), "Acc (Δ)".into()]);
    row(&["---".into(), "---".into(), "---".into(), "---".into(), "---".into()]);

    let batch = 32;
    // --- AIMET-like: AdaRound, float-precision scales -------------------
    let qnn = QResNet::from_float(&model, &QuantFactory::adaround(float_like(QuantConfig::wa(8))));
    let (acc, _) = ptq_int_accuracy(
        &qnn,
        &data,
        PtqPipeline::reconstruct(8, batch, 60),
        FuseScheme::PreFuse,
        batch,
    );
    row(&[
        "AIMET-like".into(),
        "AdaRound".into(),
        "8/8".into(),
        "Float".into(),
        fmt_acc(acc, fp.final_acc()),
    ]);

    // --- OpenVINO-like: MinMax, float-precision scales -------------------
    let qnn = QResNet::from_float(&model, &QuantFactory::minmax(float_like(QuantConfig::wa(8))));
    let (acc, _) =
        ptq_int_accuracy(&qnn, &data, PtqPipeline::calibrate(8, batch), FuseScheme::PreFuse, batch);
    row(&[
        "OpenVINO-like".into(),
        "MinMax".into(),
        "8/8".into(),
        "Float".into(),
        fmt_acc(acc, fp.final_acc()),
    ]);

    // --- Torch2Chip: QDrop at 4/4 and 8/8, INT16 fixed-point -------------
    for bits in [4u8, 8] {
        let qnn = QResNet::from_float(&model, &QuantFactory::qdrop(QuantConfig::wa(bits), 0.5, 17));
        let (acc, report) = ptq_int_accuracy(
            &qnn,
            &data,
            PtqPipeline::reconstruct(8, batch, 60),
            FuseScheme::auto(bits),
            batch,
        );
        row(&[
            "Torch2Chip (ours)".into(),
            "QDrop".into(),
            format!("{bits}/{bits}"),
            "INT16".into(),
            fmt_acc(acc, fp.final_acc()),
        ]);
        let _ = report;
    }
    println!("\nShape check: all 8/8 ≈ FP; T2C 4/4 within a few points with integer-only scales.");
    dump_profile("table1");
}
