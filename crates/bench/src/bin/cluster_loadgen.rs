//! `cluster_loadgen` — closed-loop load generator for the `t2c-cluster`
//! scale-out tier.
//!
//! Sweeps replica counts over the in-process cluster on the zoo MLP at
//! 32-way client concurrency and records throughput scaling into
//! `bench_results/cluster_loadgen.json`. Two headline checks:
//!
//! 1. **Scale-out**: 4 replicas must deliver at least 2.5× the
//!    throughput of 1 replica.
//! 2. **Losslessness**: a replica killed mid-run must lose zero
//!    admitted requests — queued work drains, racing work re-routes.
//!
//! **`device_paced: true`** — this host is a single-CPU machine, so raw
//! host-side compute cannot scale with replica count. Each replica's
//! runtime is therefore paced (`ServerConfig::pace_batch_ns`) to model a
//! fixed-rate attached accelerator: every batch occupies its replica's
//! device for a fixed minimum service time, exactly one batch at a time
//! per replica. Pacing sleeps overlap across replicas, so throughput
//! honestly multiplies with replica count the way independent
//! accelerator boards would — which is the deployment this tier exists
//! for. The routed results themselves are still computed exactly and are
//! checked against direct execution.
//!
//! ```sh
//! cargo run --release -p t2c-bench --bin cluster_loadgen
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use t2c_cluster::{Cluster, ClusterConfig, RouterConfig};
use t2c_serve::{BatchConfig, ModelRegistry, ServerConfig};
use t2c_tensor::Tensor;

/// Fixed per-batch device service time (1 ms → 4 rows/ms/replica at
/// `max_batch = 4`). The batch size is half the per-replica client
/// cohort at the largest sweep point (32 clients / 4 replicas = 8), so
/// every scale point keeps enough arrival slack to fill its batches and
/// the sweep measures replication, not batch-fill luck.
const PACE_BATCH_NS: u64 = 1_000_000;
const MAX_BATCH: usize = 4;
const CONCURRENCY: usize = 32;

/// One measured configuration.
struct RunResult {
    replicas: usize,
    concurrency: usize,
    requests: usize,
    completed: u64,
    errors: u64,
    retries: u64,
    hedges: u64,
    wall_ns: u64,
    throughput_rps: f64,
    p50_ns: u64,
    p99_ns: u64,
    killed_replica: bool,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs one closed-loop configuration: `CONCURRENCY` client threads each
/// issue `requests / CONCURRENCY` sequential routed requests. With
/// `kill_mid_run`, one replica is killed while the run is in flight.
fn run_config(replicas: usize, requests: usize, kill_mid_run: bool) -> RunResult {
    let cfg = ClusterConfig {
        replicas,
        // Replication = replica count: the one benched model lives on
        // every replica, so added replicas add serving capacity.
        router: RouterConfig { replication: replicas, ..RouterConfig::default() },
        server: ServerConfig {
            // The batch window matches the device cycle: dispatching a
            // partial batch costs a full pace interval, so waiting up to
            // one interval for the batch to fill is always worth it.
            batch: BatchConfig {
                max_batch: MAX_BATCH,
                max_delay_ns: PACE_BATCH_NS,
                queue_cap: 4096,
            },
            workers: 1,
            pace_batch_ns: PACE_BATCH_NS,
            ..ServerConfig::default()
        },
        ..ClusterConfig::default()
    };
    let cluster = Cluster::start(cfg);
    let (model, dims) = t2c_core::zoo::tiny_mlp();
    // A reference admission for quantization and the expected output.
    let reference = ModelRegistry::new();
    let admitted = reference.admit("ref", model.clone(), &dims).expect("reference admission");
    cluster.deploy("tiny-mlp", model, &dims).expect("cluster deploy");

    let per_thread = requests.div_ceil(CONCURRENCY);
    // Pre-generate payloads and their expected outputs outside the timed
    // region; every routed result is checked for exactness.
    let payloads: Vec<Vec<(Tensor<i32>, Vec<i32>)>> = (0..CONCURRENCY)
        .map(|t| {
            (0..per_thread)
                .map(|r| {
                    let salt = t * per_thread + r;
                    let x = Tensor::from_fn(admitted.input_dims(), |i| {
                        ((i * 131 + salt * 29) % 255) as f32 * 0.004 - 0.5
                    });
                    let codes = admitted.quantize(&x);
                    let direct = admitted.model().run_quantized(&codes).expect("direct run");
                    (codes, direct.as_slice().to_vec())
                })
                .collect()
        })
        .collect();
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(requests));
    let errors = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for batch in payloads {
            let cluster = cluster.clone();
            let latencies = &latencies;
            let errors = &errors;
            scope.spawn(move || {
                let mut mine = Vec::with_capacity(per_thread);
                for (codes, direct) in batch {
                    let t0 = Instant::now();
                    match cluster.infer("tiny-mlp", codes) {
                        Ok(out) if out.as_slice() == &direct[..] => {
                            mine.push(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(0));
                        }
                        _ => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                latencies.lock().unwrap().extend(mine);
            });
        }
        if kill_mid_run {
            let cluster = cluster.clone();
            scope.spawn(move || {
                // Land the kill squarely inside the run (the paced run
                // takes well over 100 ms).
                std::thread::sleep(Duration::from_millis(40));
                assert!(cluster.kill_replica(1), "kill target must be live");
            });
        }
    });
    let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    if std::env::var_os("CLUSTER_LOADGEN_DEBUG").is_some() {
        for (id, s) in cluster.replica_stats() {
            eprintln!(
                "debug: replica {id}: completed {} batches {} rows/batch {:.2}",
                s.completed,
                s.batches,
                s.mean_batch_rows()
            );
        }
    }
    let stats = cluster.shutdown();
    let mut lat = latencies.into_inner().unwrap();
    lat.sort_unstable();
    RunResult {
        replicas,
        concurrency: CONCURRENCY,
        requests: per_thread * CONCURRENCY,
        completed: lat.len() as u64,
        errors: errors.into_inner(),
        retries: stats.retries,
        hedges: stats.hedges,
        wall_ns,
        throughput_rps: lat.len() as f64 / (wall_ns as f64 / 1e9),
        p50_ns: percentile(&lat, 50.0),
        p99_ns: percentile(&lat, 99.0),
        killed_replica: kill_mid_run,
    }
}

fn json_row(r: &RunResult) -> String {
    format!(
        "    {{\"replicas\": {}, \"concurrency\": {}, \"requests\": {}, \"completed\": {}, \
         \"errors\": {}, \"retries\": {}, \"hedges\": {}, \"wall_ns\": {}, \
         \"throughput_rps\": {:.2}, \"p50_ns\": {}, \"p99_ns\": {}, \"killed_replica\": {}}}",
        r.replicas,
        r.concurrency,
        r.requests,
        r.completed,
        r.errors,
        r.retries,
        r.hedges,
        r.wall_ns,
        r.throughput_rps,
        r.p50_ns,
        r.p99_ns,
        r.killed_replica
    )
}

fn main() {
    println!("| replicas | conc | reqs | rps | p50 µs | p99 µs | retries | hedges | kill |");
    println!("|---|---|---|---|---|---|---|---|---|");
    let mut results: Vec<RunResult> = Vec::new();
    let mut show = |r: RunResult| {
        println!(
            "| {} | {} | {} | {:.0} | {:.0} | {:.0} | {} | {} | {} |",
            r.replicas,
            r.concurrency,
            r.requests,
            r.throughput_rps,
            r.p50_ns as f64 / 1e3,
            r.p99_ns as f64 / 1e3,
            r.retries,
            r.hedges,
            r.killed_replica
        );
        results.push(r);
    };

    for &replicas in &[1usize, 2, 4] {
        show(run_config(replicas, 2048, false));
    }
    // The lossless-kill run: longer, with a replica killed in flight.
    show(run_config(4, 4096, true));

    let base = results.iter().find(|r| r.replicas == 1).expect("1-replica baseline");
    let four =
        results.iter().find(|r| r.replicas == 4 && !r.killed_replica).expect("4-replica run");
    let scaleout = four.throughput_rps / base.throughput_rps.max(1e-9);
    let kill = results.iter().find(|r| r.killed_replica).expect("kill run");
    let kill_lost = kill.requests as u64 - kill.completed + kill.errors;
    let all_exact = results.iter().all(|r| r.errors == 0 && r.completed == r.requests as u64);
    let pass = scaleout >= 2.5 && kill_lost == 0 && all_exact;
    println!(
        "\ncluster scale-out (4 replicas vs 1 @ conc {CONCURRENCY}): {scaleout:.2}x, \
         kill-run lost requests: {kill_lost} — {}",
        if pass { "pass" } else { "FAIL" }
    );

    let created = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let rows: Vec<String> = results.iter().map(json_row).collect();
    let json = format!(
        "{{\n  \"version\": 1,\n  \"bench\": \"cluster_loadgen\",\n  \"created_unix\": {created},\n  \
         \"device_paced\": true,\n  \"pace_batch_ns\": {PACE_BATCH_NS},\n  \"configs\": [\n{}\n  ],\n  \
         \"scaleout_4v1\": {scaleout:.3},\n  \"kill_lost_requests\": {kill_lost},\n  \"pass\": {pass}\n}}\n",
        rows.join(",\n")
    );
    std::fs::create_dir_all("bench_results").expect("create bench_results");
    let path = "bench_results/cluster_loadgen.json";
    std::fs::write(path, json).expect("write cluster loadgen report");
    println!("cluster loadgen report: {path}");
    if !pass {
        std::process::exit(1);
    }
}
