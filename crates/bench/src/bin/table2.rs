//! **Table 2** — the CIFAR-like QAT/PTQ method zoo, each row ending in a
//! deployed integer-only model with its packed size.
//!
//! Protocol follows the paper: every QAT row trains **from scratch** with
//! the same epoch budget as its architecture's FP32 baseline (the paper
//! uses 200 epochs on real CIFAR; we use 45 on the synthetic substrate).
//! PTQ rows start from the FP baseline weights.
//!
//! Paper rows: SAWB+PACT 2/2 & 4/4 (ResNet-20), RCF 4/4 & 8/8 (ResNet-18),
//! RCF 8/8 (ViT-7), PROFIT 4/4 & 8/8 (MobileNet-V1), AdaRound PTQ 8/8
//! (MobileNet-V1), PyTorch-native-style PTQ 8/8 (float scales).
//! Shape: accuracy degrades gracefully with bit width; model size scales
//! with bits; the customizable INT16 pipeline matches the float-scale
//! PyTorch-style baseline.
//!
//! ```sh
//! cargo run --release -p t2c-bench --bin table2
//! ```

use t2c_bench::{fmt_acc, ptq_int_accuracy, row};
use t2c_core::qmodels::{QMobileNet, QResNet, QViT, QuantFactory, QuantModel};
use t2c_core::trainer::{evaluate_int, FpTrainer, PtqPipeline, QatTrainer, TrainConfig};
use t2c_core::{FixedPointFormat, FuseScheme, QuantConfig, T2C};
use t2c_data::{SynthVision, SynthVisionConfig};
use t2c_nn::models::{MobileNetConfig, MobileNetV1, ResNet, ResNetConfig, ViT, ViTConfig};
use t2c_nn::Module;
use t2c_tensor::rng::TensorRng;

const EPOCHS: usize = 45;
const BATCH: usize = 32;

struct Row {
    method: &'static str,
    model: &'static str,
    mode: &'static str,
    bits: u8,
    params: usize,
    acc: f32,
    fp: f32,
    size_mb: f64,
}

fn print_row(r: &Row) {
    row(&[
        r.method.into(),
        r.model.into(),
        r.mode.into(),
        format!("{}/{}", r.bits, r.bits),
        format!("{:.3}M", r.params as f64 / 1e6),
        fmt_acc(r.acc, r.fp),
        format!("{:.4} MB", r.size_mb),
    ]);
}

fn resnet20(classes: usize) -> ResNet {
    let mut rng = TensorRng::seed_from(211);
    ResNet::new(&mut rng, ResNetConfig::resnet20(classes).scaled(0.25))
}

fn resnet18(classes: usize) -> ResNet {
    let mut rng = TensorRng::seed_from(212);
    ResNet::new(&mut rng, ResNetConfig::resnet18(classes).scaled(0.125))
}

fn vit(classes: usize) -> ViT {
    let mut rng = TensorRng::seed_from(213);
    ViT::new(&mut rng, ViTConfig::tiny(classes))
}

fn mobilenet(classes: usize) -> MobileNetV1 {
    let mut rng = TensorRng::seed_from(214);
    let mut cfg = MobileNetConfig::tiny(classes);
    cfg.width_mult = 2.0;
    MobileNetV1::new(&mut rng, cfg)
}

/// From-scratch QAT on a fresh quantized twin; returns integer accuracy
/// and packed model size.
fn qat_row<M: QuantModel>(qnn: &M, data: &SynthVision, bits: u8, profit: bool) -> (f32, f64) {
    let mut trainer = QatTrainer::new(TrainConfig::quick(EPOCHS));
    if profit {
        trainer = trainer.with_profit();
    }
    trainer.fit(qnn, data).expect("qat");
    qnn.set_training(false);
    let (chip, report) = T2C::new(qnn).nn2chip(FuseScheme::auto(bits)).expect("convert");
    (evaluate_int(&chip, data, BATCH).expect("eval"), report.size_mb())
}

fn main() {
    let data = SynthVision::generate(&SynthVisionConfig::cifar10_like(48));
    println!(
        "# Table 2 — integer-only DNNs on SynthCIFAR (all QAT from scratch, {EPOCHS} epochs)\n"
    );
    row(&[
        "Method".into(),
        "Model".into(),
        "Train".into(),
        "W/A".into(),
        "#Params".into(),
        "Acc (Δ vs FP)".into(),
        "Model Size".into(),
    ]);
    row(&(0..7).map(|_| "---".to_string()).collect::<Vec<_>>());
    let classes = data.num_classes();
    let cfg = TrainConfig::quick(EPOCHS);

    // ---- FP baselines, fresh model per architecture ----------------------
    let fp20 = FpTrainer::new(cfg).fit(&resnet20(classes), &data).expect("fp20").best_acc();
    let fp18 = FpTrainer::new(cfg).fit(&resnet18(classes), &data).expect("fp18").best_acc();
    let fp_vit = FpTrainer::new(cfg).fit(&vit(classes), &data).expect("fpvit").best_acc();
    let mob_fp_model = mobilenet(classes);
    let fp_mob = FpTrainer::new(cfg).fit(&mob_fp_model, &data).expect("fpmob").best_acc();

    // ---- SAWB + PACT QAT from scratch on ResNet-20 ------------------------
    for bits in [2u8, 4] {
        let model = resnet20(classes);
        let qnn = QResNet::from_float(&model, &QuantFactory::sawb_pact(QuantConfig::wa(bits)));
        let (acc, size) = qat_row(&qnn, &data, bits, false);
        print_row(&Row {
            method: "SAWB+PACT",
            model: "ResNet-20(×¼)",
            mode: "QAT",
            bits,
            params: model.num_trainable(),
            acc,
            fp: fp20,
            size_mb: size,
        });
    }

    // ---- RCF QAT from scratch on ResNet-18 --------------------------------
    for bits in [4u8, 8] {
        let model = resnet18(classes);
        let qnn = QResNet::from_float(&model, &QuantFactory::rcf(QuantConfig::wa(bits)));
        let (acc, size) = qat_row(&qnn, &data, bits, false);
        print_row(&Row {
            method: "RCF",
            model: "ResNet-18(×⅛)",
            mode: "QAT",
            bits,
            params: model.num_trainable(),
            acc,
            fp: fp18,
            size_mb: size,
        });
    }

    // ---- RCF QAT from scratch on ViT ---------------------------------------
    {
        let model = vit(classes);
        let qnn = QViT::from_float(&model, &QuantFactory::rcf(QuantConfig::vit(8)));
        let (acc, size) = qat_row(&qnn, &data, 8, false);
        print_row(&Row {
            method: "RCF",
            model: "ViT-tiny",
            mode: "QAT",
            bits: 8,
            params: model.num_trainable(),
            acc,
            fp: fp_vit,
            size_mb: size,
        });
    }

    // ---- PROFIT QAT from scratch on MobileNet ------------------------------
    for bits in [4u8, 8] {
        let model = mobilenet(classes);
        let qnn = QMobileNet::from_float(&model, &QuantFactory::lsq(QuantConfig::wa(bits)));
        let (acc, size) = qat_row(&qnn, &data, bits, true);
        print_row(&Row {
            method: "PROFIT(+LSQ)",
            model: "MobileNet-V1(×2)",
            mode: "QAT",
            bits,
            params: model.num_trainable(),
            acc,
            fp: fp_mob,
            size_mb: size,
        });
    }

    // ---- AdaRound PTQ on the FP-trained MobileNet --------------------------
    {
        let qnn =
            QMobileNet::from_float(&mob_fp_model, &QuantFactory::adaround(QuantConfig::wa(8)));
        let (acc, report) = ptq_int_accuracy(
            &qnn,
            &data,
            PtqPipeline::reconstruct(8, BATCH, 60),
            FuseScheme::PreFuse,
            BATCH,
        );
        print_row(&Row {
            method: "AdaRound",
            model: "MobileNet-V1(×2)",
            mode: "PTQ",
            bits: 8,
            params: mob_fp_model.num_trainable(),
            acc,
            fp: fp_mob,
            size_mb: report.size_mb(),
        });
    }

    // ---- PyTorch-native-style PTQ (per-tensor, float scales) ---------------
    {
        let mut cfg = QuantConfig::wa(8);
        cfg.per_channel = false;
        cfg.fixed = FixedPointFormat { int_bits: 1, frac_bits: 30 };
        let qnn = QMobileNet::from_float(&mob_fp_model, &QuantFactory::minmax(cfg));
        let (acc, report) = ptq_int_accuracy(
            &qnn,
            &data,
            PtqPipeline::calibrate(8, BATCH),
            FuseScheme::PreFuse,
            BATCH,
        );
        print_row(&Row {
            method: "PyTorch-style",
            model: "MobileNet-V1(×2)",
            mode: "PTQ",
            bits: 8,
            params: mob_fp_model.num_trainable(),
            acc,
            fp: fp_mob,
            size_mb: report.size_mb(),
        });
    }
    println!(
        "\nShape check: 8-bit rows ≈ FP; sub-8-bit QAT degrades gracefully; size scales with bits."
    );
}
