//! `plan-speedup` — the compiled-execution-plan deployment gate.
//!
//! Benchmarks [`t2c_core::ExecPlan`] (fused GEMM epilogues + arena-backed
//! intermediates, compiled once at admission) against the plain
//! `IntModel::run_quantized` interpreter on the zoo MLP, single-threaded,
//! end to end. The gate demands three properties at once:
//!
//! 1. **speedup ≥ 1.3×** — fusion skips the materialized i32
//!    intermediates and the per-call weight packing the interpreter pays;
//! 2. **zero steady-state heap allocations** — measured for real with a
//!    counting global allocator wrapped around the system allocator: after
//!    one warm-up call sizes the arena and the output vector, repeated
//!    `run_quantized_into` calls must not allocate a single time;
//! 3. **bit identity** — planned and interpreted logits agree exactly.
//!
//! Results land in `bench_results/plan_speedup.json`; exits non-zero when
//! any gate fails — `scripts/verify.sh` runs it as the plan gate.
//!
//! ```sh
//! cargo run --release -p t2c-bench --bin plan_speedup
//! ```

// The counting allocator is the measurement instrument for gate (2); a
// `GlobalAlloc` impl is necessarily unsafe.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use t2c_core::{zoo, Arena};
use t2c_tensor::{with_threads, Tensor};

/// System allocator with an allocation-event odometer. `alloc` and
/// `realloc` both count (a realloc that moves is exactly the kind of
/// hidden traffic the zero-alloc gate exists to catch); `dealloc` does
/// not — freeing is not acquiring.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Batch height of the timed end-to-end runs.
const BATCH: usize = 16;
/// Timing repetitions (median-of); two extra warmup runs precede them.
const REPS: usize = 11;
/// Steady-state iterations the allocation odometer watches.
const STEADY_ITERS: u64 = 100;
/// The deployment gate: planned end-to-end over interpreted, 1 thread.
const GATE_SPEEDUP: f64 = 1.3;

fn median_ns<F: FnMut()>(mut f: F) -> u64 {
    for _ in 0..2 {
        f();
    }
    let mut times: Vec<u64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            f();
            u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn main() {
    let (model, dims) = zoo::tiny_mlp();
    let mut in_dims = dims.clone();
    in_dims[0] = BATCH;
    // Signed-8 codes straight into the graph: both paths treat the leading
    // Quantize node as a pass-through on pre-quantized input.
    let x = Tensor::from_fn(&in_dims, |i| ((i * 37) % 255) as i32 - 127);

    let plan = model.compile(&dims).expect("zoo MLP compiles");
    let mut arena = Arena::new();
    let mut out: Vec<i32> = Vec::new();

    let (unplanned_ns, planned_ns, bit_identical, steady_allocs) = with_threads(1, || {
        let want = model.run_quantized(&x).expect("interpreter run");
        plan.run_quantized_into(&x, &mut arena, &mut out).expect("planned run");
        let identical = want.as_slice() == out.as_slice();

        let unplanned_ns = median_ns(|| {
            std::hint::black_box(model.run_quantized(&x).expect("interpreter run"));
        });
        let planned_ns = median_ns(|| {
            plan.run_quantized_into(&x, &mut arena, &mut out).expect("planned run");
            std::hint::black_box(&out);
        });

        // The odometer run: arena and output vector are warm, so the only
        // permissible count is zero. Any stray Vec inside the step loop
        // shows up here as a hard failure.
        let before = ALLOCS.load(Ordering::Relaxed);
        for _ in 0..STEADY_ITERS {
            plan.run_quantized_into(&x, &mut arena, &mut out).expect("planned run");
            std::hint::black_box(&out);
        }
        let steady = ALLOCS.load(Ordering::Relaxed) - before;
        (unplanned_ns, planned_ns, identical, steady)
    });

    let speedup = unplanned_ns as f64 / planned_ns.max(1) as f64;
    let pass = speedup >= GATE_SPEEDUP && bit_identical && steady_allocs == 0;

    println!("| path | ms/batch ({BATCH} rows) |");
    println!("|---|---|");
    println!("| interpreter | {:.3} |", unplanned_ns as f64 / 1e6);
    println!("| compiled plan | {:.3} |", planned_ns as f64 / 1e6);
    println!(
        "\nplan speedup: {:.2}x (floor {GATE_SPEEDUP:.2}x), steady allocs: {} / {} iters, \
         arena: {} bytes, fused nodes: {}, {} — {}",
        speedup,
        steady_allocs,
        STEADY_ITERS,
        plan.arena_bytes(),
        plan.fused_nodes(),
        if bit_identical { "bit-identical" } else { "MISMATCH" },
        if pass { "pass" } else { "FAIL" }
    );

    let created = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let json = format!(
        "{{\n  \"version\": 1,\n  \"bench\": \"plan_speedup\",\n  \"created_unix\": {created},\n  \
         \"threads\": 1,\n  \"batch\": {BATCH},\n  \"unplanned_ns\": {unplanned_ns},\n  \
         \"planned_ns\": {planned_ns},\n  \"speedup\": {speedup:.3},\n  \
         \"bit_identical\": {bit_identical},\n  \"steady_allocs\": {steady_allocs},\n  \
         \"arena_bytes\": {},\n  \"fused_nodes\": {},\n  \"gate_speedup\": {GATE_SPEEDUP},\n  \
         \"pass\": {pass}\n}}\n",
        plan.arena_bytes(),
        plan.fused_nodes(),
    );
    std::fs::create_dir_all("bench_results").expect("create bench_results");
    let path = "bench_results/plan_speedup.json";
    std::fs::write(path, json).expect("write plan speedup report");
    println!("plan speedup report: {path}");
    if !pass {
        std::process::exit(1);
    }
}
