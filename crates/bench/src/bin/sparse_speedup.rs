//! `sparse-speedup` — the skip-zero deployment gate.
//!
//! Benchmarks the compressed sparse integer kernel against the dense
//! saturating matmul on the zoo MLP's fc1 layer (128×256) at the two
//! deployment sparsity points the paper's pruning recipes produce:
//! 80% unstructured (bitmask layout) and 2:4 structured (dedicated N:M
//! layout). Both kernels are bit-identical by construction (the per-MAC
//! saturating accumulator makes zero products no-ops); this binary
//! re-checks that on every measured run and additionally at the full-model
//! level, then gates on the skip-zero kernel delivering at least 1.5× the
//! dense throughput at both points (the 2:4 ceiling is 2.0×, so 1.5×
//! requires the batch-blocked kernel's per-MAC cost to stay within ~33%
//! of dense). Results land in
//! `bench_results/sparse_speedup.json`; exits non-zero when the gate
//! fails — `scripts/verify.sh` runs it as the sparse-deployment gate.
//!
//! ```sh
//! cargo run --release -p t2c-bench --bin sparse_speedup
//! ```

use std::time::Instant;

use t2c_core::intmodel::IntOp;
use t2c_core::IntModel;
use t2c_tensor::{matmul_sparse_i, SparseMat, Tensor};

/// Timed batch height for the kernel measurements.
const BATCH: usize = 256;
/// Timing repetitions (median-of); two extra warmup runs precede them.
const REPS: usize = 9;

struct ConfigResult {
    model: &'static str,
    layout: String,
    sparsity: f64,
    dense_ns: u64,
    sparse_ns: u64,
    speedup: f64,
    bit_identical: bool,
}

fn median_ns<F: FnMut()>(mut f: F) -> u64 {
    for _ in 0..2 {
        f();
    }
    let mut times: Vec<u64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            f();
            u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Rebuilds the dense twin of a sparsified model: every `LinearSparse`
/// node expanded back to a masked-dense `Linear` with identical codes.
fn densified(m: &IntModel) -> IntModel {
    let mut d = m.clone();
    for node in &mut d.nodes {
        if let IntOp::LinearSparse { weight, bias, requant, relu, weight_spec, .. } = &node.op {
            node.op = IntOp::Linear {
                weight: weight.to_dense(),
                bias: bias.clone(),
                requant: requant.clone(),
                relu: *relu,
                weight_spec: *weight_spec,
            };
        }
    }
    d
}

fn fc1_weight(m: &IntModel) -> &SparseMat {
    let IntOp::LinearSparse { weight, .. } = &m.nodes[1].op else {
        panic!("zoo sparse MLP must carry a compressed fc1");
    };
    weight
}

fn measure(model: &'static str, m: &IntModel, floor: f64) -> ConfigResult {
    let sp = fc1_weight(m);
    let dense = sp.to_dense();
    // Pre-transpose outside the timed region: the deployed dense path pays
    // this per call, so excluding it is conservative for the sparse side.
    let wt = dense.transpose().expect("rank-2 weight");
    let xc = Tensor::from_fn(&[BATCH, sp.cols], |i| ((i * 37) % 255) as i32 - 127);

    let dense_out = xc.matmul_i(&wt).expect("conforming shapes");
    let sparse_out = matmul_sparse_i(&xc, sp).expect("valid packed layout");
    let kernel_identical = dense_out.as_slice() == sparse_out.as_slice();

    // Full-model check: the compressed graph and its masked-dense twin
    // must agree on every output bit.
    let dense_model = densified(m);
    let xf = Tensor::from_fn(&[16, sp.cols], |i| ((i * 53) % 200) as f32 * 0.01 - 1.0);
    let model_identical =
        m.run(&xf).unwrap().as_slice() == dense_model.run(&xf).unwrap().as_slice();

    let dense_ns = median_ns(|| {
        std::hint::black_box(xc.matmul_i(&wt).expect("conforming shapes"));
    });
    let sparse_ns = median_ns(|| {
        std::hint::black_box(matmul_sparse_i(&xc, sp).expect("valid packed layout"));
    });
    let speedup = dense_ns as f64 / sparse_ns.max(1) as f64;
    let r = ConfigResult {
        model,
        layout: sp.layout_label(),
        sparsity: f64::from(sp.sparsity()),
        dense_ns,
        sparse_ns,
        speedup,
        bit_identical: kernel_identical && model_identical,
    };
    println!(
        "| {} | {} | {:.3} | {:.2} | {:.2} | {:.2}x (floor {floor:.2}x) | {} |",
        r.model,
        r.layout,
        r.sparsity,
        r.dense_ns as f64 / 1e6,
        r.sparse_ns as f64 / 1e6,
        r.speedup,
        if r.bit_identical { "bit-identical" } else { "MISMATCH" }
    );
    r
}

fn json_row(r: &ConfigResult) -> String {
    format!(
        "    {{\"model\": \"{}\", \"layout\": \"{}\", \"sparsity\": {:.4}, \
         \"dense_ns\": {}, \"sparse_ns\": {}, \"speedup\": {:.3}, \"bit_identical\": {}}}",
        r.model, r.layout, r.sparsity, r.dense_ns, r.sparse_ns, r.speedup, r.bit_identical
    )
}

fn main() {
    println!("| model | layout | sparsity | dense ms | sparse ms | speedup | identity |");
    println!("|---|---|---|---|---|---|---|");
    let (pruned, _) = t2c_core::zoo::tiny_mlp_pruned(0.8);
    let (nm, _) = t2c_core::zoo::tiny_mlp_nm(2, 4);
    let unstructured = measure("tiny-mlp-pruned80", &pruned, 1.5);
    let structured = measure("tiny-mlp-2of4", &nm, 1.5);

    let pass = unstructured.speedup >= 1.5
        && structured.speedup >= 1.5
        && unstructured.bit_identical
        && structured.bit_identical;
    println!(
        "\nskip-zero speedup: {:.2}x @ 80% unstructured, {:.2}x @ 2:4 — {}",
        unstructured.speedup,
        structured.speedup,
        if pass { "pass" } else { "FAIL" }
    );

    let created = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let rows = [json_row(&unstructured), json_row(&structured)];
    let json = format!(
        "{{\n  \"version\": 1,\n  \"bench\": \"sparse_speedup\",\n  \"created_unix\": {created},\n  \"configs\": [\n{}\n  ],\n  \"unstructured_speedup\": {:.3},\n  \"nm_speedup\": {:.3},\n  \"pass\": {pass}\n}}\n",
        rows.join(",\n"),
        unstructured.speedup,
        structured.speedup,
    );
    std::fs::create_dir_all("bench_results").expect("create bench_results");
    let path = "bench_results/sparse_speedup.json";
    std::fs::write(path, json).expect("write sparse speedup report");
    println!("sparse speedup report: {path}");
    if !pass {
        std::process::exit(1);
    }
}
