//! **Ablation** — activation-range observers (MinMax vs EMA vs percentile)
//! under PTQ at 8 and 4 bits: the calibration knob every hardware team
//! tunes first.
//!
//! ```sh
//! cargo run --release -p t2c-bench --bin ablation_observers
//! ```

use t2c_bench::row;
use t2c_core::qmodels::{QResNet, QuantFactory};
use t2c_core::trainer::{evaluate_int, FpTrainer, PtqPipeline, TrainConfig};
use t2c_core::{FuseScheme, ObserverKind, QuantConfig, T2C};
use t2c_data::{SynthVision, SynthVisionConfig};
use t2c_nn::models::{ResNet, ResNetConfig};
use t2c_nn::Module;
use t2c_tensor::rng::TensorRng;

fn main() {
    let data = SynthVision::generate(&SynthVisionConfig::imagenet_like(48));
    let mut rng = TensorRng::seed_from(802);
    let model = ResNet::new(&mut rng, ResNetConfig::resnet20(data.num_classes()).scaled(0.5));
    let fp = FpTrainer::new(TrainConfig::quick(30)).fit(&model, &data).expect("fp");
    println!("# Ablation — activation observers under PTQ\n");
    println!("FP32 baseline: {:.2}%\n", fp.best_acc() * 100.0);
    row(&["observer".into(), "W/A".into(), "integer acc".into()]);
    row(&(0..3).map(|_| "---".to_string()).collect::<Vec<_>>());

    let observers: Vec<(&str, ObserverKind)> = vec![
        ("minmax (running)", ObserverKind::MinMax),
        ("ema 0.95", ObserverKind::Ema { momentum: 0.95 }),
        ("ema 0.7", ObserverKind::Ema { momentum: 0.7 }),
        ("percentile 99.9%", ObserverKind::Percentile { fraction: 0.999 }),
        ("percentile 99%", ObserverKind::Percentile { fraction: 0.99 }),
    ];
    for bits in [8u8, 4] {
        for (name, kind) in &observers {
            let mut cfg = QuantConfig::wa(bits);
            cfg.observer = *kind;
            let qnn = QResNet::from_float(&model, &QuantFactory::minmax(cfg));
            PtqPipeline::calibrate(8, 32).run(&qnn, &data).expect("ptq");
            qnn.set_training(false);
            let (chip, _) = T2C::new(&qnn).nn2chip(FuseScheme::auto(bits)).expect("convert");
            let acc = evaluate_int(&chip, &data, 32).expect("eval");
            row(&[name.to_string(), format!("{bits}/{bits}"), format!("{:.2}%", acc * 100.0)]);
        }
    }
    println!("\nShape check: observer choice barely matters at 8 bits and decides 4-bit accuracy");
    println!("(percentile clipping trades outlier coverage for resolution).");
}
