//! Shared plumbing for the table/figure harness binaries.
//!
//! Each paper table/figure has one binary (`table1` … `table4`,
//! `fig3_dualpath`, `fig4_vit`, `fig5_export`) that trains the relevant
//! models on the synthetic substrate and prints the same rows/series the
//! paper reports. `EXPERIMENTS.md` records paper-vs-measured for each.

#![forbid(unsafe_code)]

use t2c_core::qmodels::QuantModel;
use t2c_core::trainer::{dual_path_divergence, evaluate_int, PtqPipeline};
use t2c_core::{FuseScheme, T2C};
use t2c_data::{BatchIter, SynthVision};

/// Formats an accuracy and its delta against a baseline the way the
/// paper's tables do: `74.40 (-1.60)`.
pub fn fmt_acc(acc: f32, baseline: f32) -> String {
    format!("{:.2} ({:+.2})", acc * 100.0, (acc - baseline) * 100.0)
}

/// Runs the standard PTQ-convert-evaluate tail shared by several tables:
/// calibrate (and optionally reconstruct), convert with `scheme`, and
/// return `(integer accuracy, conversion report)`.
///
/// # Panics
///
/// Panics on pipeline errors — harness binaries want loud failures.
pub fn ptq_int_accuracy<M: QuantModel>(
    qnn: &M,
    data: &SynthVision,
    pipeline: PtqPipeline,
    scheme: FuseScheme,
    batch: usize,
) -> (f32, t2c_core::ConversionReport) {
    pipeline.run(qnn, data).expect("ptq pipeline");
    qnn.set_training(false);
    let (chip, report) = T2C::new(qnn).nn2chip(scheme).expect("conversion");
    let acc = evaluate_int(&chip, data, batch).expect("integer evaluation");
    if t2c_obs::enabled() {
        // One test batch through both paths so the profile report carries
        // the dual-path divergence gauges.
        if let Some((images, _)) = BatchIter::test(data, batch).next() {
            let _ = dual_path_divergence(qnn, &chip, &images);
        }
    }
    (acc, report)
}

/// Writes the current profile registry to
/// `bench_results/profile_<tag>.json` when `T2C_PROFILE` is on; silent
/// no-op otherwise. Harness binaries call this once before exiting.
pub fn dump_profile(tag: &str) {
    match t2c_obs::report::dump("bench_results", tag) {
        Ok(Some(path)) => println!("\nprofile report: {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("profile dump failed: {e}"),
    }
}

/// Prints a Markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_acc_matches_paper_style() {
        assert_eq!(fmt_acc(0.744, 0.76), "74.40 (-1.60)");
        assert_eq!(fmt_acc(0.7596, 0.76), "75.96 (-0.04)");
    }
}
