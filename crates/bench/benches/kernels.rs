//! Criterion microbenches: the float (training-path) kernels against their
//! integer (inference-path) twins — the computational argument for
//! deploying integer models.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use t2c_tensor::ops::{conv2d, conv2d_i32, Conv2dSpec};
use t2c_tensor::rng::TensorRng;
use t2c_tensor::{with_threads, Tensor};

fn bench_conv(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(1);
    let x_f = rng.normal(&[4, 16, 16, 16], 0.0, 1.0);
    let w_f = rng.normal(&[32, 16, 3, 3], 0.0, 0.1);
    let x_i = x_f.map(|v| (v * 50.0) as i32);
    let w_i = w_f.map(|v| (v * 500.0) as i32);
    let spec = Conv2dSpec::new(1, 1);
    let mut group = c.benchmark_group("conv2d");
    group.sample_size(20);
    group.bench_function("f32 (training path)", |b| {
        b.iter(|| conv2d(black_box(&x_f), black_box(&w_f), None, spec).unwrap());
    });
    group.bench_function("i32 (inference path)", |b| {
        b.iter(|| conv2d_i32(black_box(&x_i), black_box(&w_i), None, spec).unwrap());
    });
    // A 75%-sparse weight tensor exercises the zero-skip fast path in the
    // integer kernel.
    let w_sparse = Tensor::from_fn(w_i.dims(), |i| if i % 4 == 0 { w_i.as_slice()[i] } else { 0 });
    group.bench_function("i32 sparse 75% (zero-skip)", |b| {
        b.iter(|| conv2d_i32(black_box(&x_i), black_box(&w_sparse), None, spec).unwrap());
    });
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(2);
    let a_f = rng.normal(&[128, 128], 0.0, 1.0);
    let b_f = rng.normal(&[128, 128], 0.0, 1.0);
    let a_i = a_f.map(|v| (v * 50.0) as i32);
    let b_i = b_f.map(|v| (v * 50.0) as i32);
    let mut group = c.benchmark_group("matmul_128");
    group.sample_size(30);
    group.bench_function("f32", |b| b.iter(|| a_f.matmul(black_box(&b_f)).unwrap()));
    group.bench_function("i32", |b| b.iter(|| a_i.matmul_i(black_box(&b_i)).unwrap()));
    group.finish();
}

/// Thread-count sweep over the parallel hot path. Results are bit-identical
/// at every setting (see `crates/tensor/tests/parallel_identity.rs`); this
/// measures the wall-clock effect alone.
fn bench_thread_sweep(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(3);
    let a_f = rng.normal(&[256, 256], 0.0, 1.0);
    let b_f = rng.normal(&[256, 256], 0.0, 1.0);
    let x_f = rng.normal(&[8, 16, 16, 16], 0.0, 1.0);
    let w_f = rng.normal(&[32, 16, 3, 3], 0.0, 0.1);
    let x_i = x_f.map(|v| (v * 50.0) as i32);
    let w_i = w_f.map(|v| (v * 500.0) as i32);
    let spec = Conv2dSpec::new(1, 1);
    let mut group = c.benchmark_group("thread_sweep");
    group.sample_size(20);
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(&format!("matmul_256 f32 t={threads}"), |b| {
            b.iter(|| with_threads(threads, || a_f.matmul(black_box(&b_f)).unwrap()));
        });
        group.bench_function(&format!("conv2d f32 t={threads}"), |b| {
            b.iter(|| {
                with_threads(threads, || conv2d(black_box(&x_f), black_box(&w_f), None, spec))
                    .unwrap()
            });
        });
        group.bench_function(&format!("conv2d i32 t={threads}"), |b| {
            b.iter(|| {
                with_threads(threads, || conv2d_i32(black_box(&x_i), black_box(&w_i), None, spec))
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_conv, bench_matmul, bench_thread_sweep);
criterion_main!(benches);
