//! Criterion microbenches: quantizer training paths (the per-step cost a
//! user's custom algorithm adds to QAT) and the MulQuant requantizer.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use t2c_autograd::Graph;
use t2c_core::quantizer::{
    ActQuantizer, LsqWeight, MinMaxAct, MinMaxWeight, PactAct, RcfWeight, SawbWeight,
    WeightQuantizer,
};
use t2c_core::{MulQuant, ObserverKind, QuantSpec};
use t2c_tensor::rng::TensorRng;
use t2c_tensor::Tensor;

fn bench_weight_train_paths(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(3);
    let w0 = rng.normal(&[64, 32, 3, 3], 0.0, 0.1);
    let spec = QuantSpec::signed(4);
    let quantizers: Vec<(&str, Box<dyn WeightQuantizer>)> = vec![
        ("minmax_per_channel", Box::new(MinMaxWeight::new(spec, true))),
        ("minmax_per_tensor", Box::new(MinMaxWeight::new(spec, false))),
        ("sawb", Box::new(SawbWeight::new(spec))),
        ("rcf", Box::new(RcfWeight::new("b", spec))),
        ("lsq", Box::new(LsqWeight::new("b", spec))),
    ];
    let mut group = c.benchmark_group("weight_fake_quant_64x32x3x3");
    group.sample_size(20);
    for (name, q) in &quantizers {
        q.calibrate(&w0);
        group.bench_function(name, |b| {
            b.iter(|| {
                let g = Graph::new();
                let w = g.leaf(w0.clone());
                black_box(q.train_path(&w).unwrap().tensor())
            });
        });
    }
    group.finish();
}

fn bench_act_paths(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(4);
    let x0 = rng.normal(&[8, 32, 16, 16], 0.5, 1.0).relu();
    let spec = QuantSpec::unsigned(8);
    let quantizers: Vec<(&str, Box<dyn ActQuantizer>)> = vec![
        ("minmax_ema", Box::new(MinMaxAct::new(spec, ObserverKind::Ema { momentum: 0.95 }))),
        ("pact", Box::new(PactAct::new("b", spec))),
    ];
    let mut group = c.benchmark_group("act_fake_quant_8x32x16x16");
    group.sample_size(20);
    for (name, q) in &quantizers {
        q.observe(&x0);
        group.bench_function(name, |b| {
            b.iter(|| {
                let g = Graph::new();
                let x = g.leaf(x0.clone());
                black_box(q.train_path(&x).unwrap().tensor())
            });
        });
    }
    group.finish();
}

fn bench_mulquant(c: &mut Criterion) {
    let acc = Tensor::from_fn(&[8, 64, 16, 16], |i| (i as i32 % 4001) - 2000);
    let per_tensor = MulQuant::from_float_auto(&[0.003], &[1.0], 16, QuantSpec::unsigned(8));
    let scales: Vec<f32> = (0..64).map(|i| 0.001 + i as f32 * 1e-5).collect();
    let biases: Vec<f32> = (0..64).map(|i| i as f32 * 0.01).collect();
    let per_channel = MulQuant::from_float_auto(&scales, &biases, 16, QuantSpec::unsigned(8));
    let mut group = c.benchmark_group("mulquant_8x64x16x16");
    group.sample_size(30);
    group.bench_function("per_tensor", |b| b.iter(|| per_tensor.apply(black_box(&acc), 1, true)));
    group.bench_function("per_channel", |b| b.iter(|| per_channel.apply(black_box(&acc), 1, true)));
    group.finish();
}

criterion_group!(benches, bench_weight_train_paths, bench_act_paths, bench_mulquant);
criterion_main!(benches);
