//! Criterion microbenches for the deployment stage: LUT non-linearities
//! versus their float references, model-file serialization, and integer
//! LayerNorm.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use t2c_core::intmodel::{IntOp, LayerNormInt, Src};
use t2c_core::lut::{GeluLut, SoftmaxLut};
use t2c_core::{FixedPointFormat, IntModel, MulQuant, QuantSpec};
use t2c_export::{read_intmodel, write_intmodel};
use t2c_tensor::ops::Conv2dSpec;
use t2c_tensor::rng::TensorRng;
use t2c_tensor::Tensor;

fn bench_softmax(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(5);
    let scores_f = rng.normal(&[64, 65], 0.0, 2.0);
    let scores_q = scores_f.map(|v| (v / 0.05).round() as i32);
    let lut = SoftmaxLut::build(0.05, QuantSpec::unsigned(8), 512, 15);
    let mut group = c.benchmark_group("softmax_64x65");
    group.sample_size(50);
    group.bench_function("float reference", |b| {
        b.iter(|| black_box(&scores_f).softmax_lastdim().unwrap());
    });
    group.bench_function("integer LUT", |b| b.iter(|| lut.apply(black_box(&scores_q))));
    group.finish();
}

fn bench_gelu(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(6);
    let x_f = rng.normal(&[64, 256], 0.0, 1.5);
    let x_q = x_f.map(|v| ((v / 0.05).round() as i32).clamp(-127, 127));
    let lut = GeluLut::build(QuantSpec::signed(8), 0.05, QuantSpec::signed(8), 0.05);
    let mut group = c.benchmark_group("gelu_64x256");
    group.sample_size(50);
    group.bench_function("float reference", |b| b.iter(|| black_box(&x_f).gelu()));
    group.bench_function("integer LUT", |b| b.iter(|| lut.apply(black_box(&x_q))));
    group.finish();
}

fn bench_layernorm_int(c: &mut Criterion) {
    let d = 128;
    let ln = LayerNormInt {
        gamma_m: vec![1200; d],
        beta_b: vec![0; d],
        frac: 12,
        shift: 6,
        out_spec: QuantSpec::signed(8),
    };
    let x = Tensor::from_fn(&[64, d], |i| (i as i32 % 201) - 100);
    c.bench_function("layernorm_int_64x128", |b| b.iter(|| ln.apply(black_box(&x))));
}

fn sample_model() -> IntModel {
    let mut m = IntModel::new();
    m.push("input", IntOp::Quantize { scale: 0.05, spec: QuantSpec::signed(8) }, vec![]);
    let mut prev = 0usize;
    for i in 0..8 {
        let id = m.push(
            format!("conv{i}"),
            IntOp::Conv2d {
                weight: Tensor::from_fn(&[16, 16, 3, 3], |j| ((i * 31 + j) as i32 % 15) - 7),
                bias: None,
                spec: Conv2dSpec::new(1, 1),
                requant: MulQuant::from_float_auto(
                    &[0.004; 16],
                    &[0.1; 16],
                    16,
                    QuantSpec::unsigned(8),
                ),
                relu: true,
                weight_spec: QuantSpec::signed(4),
            },
            vec![Src::Node(prev)],
        );
        prev = id;
    }
    m
}

fn bench_serialization(c: &mut Criterion) {
    let model = sample_model();
    let bytes = write_intmodel(&model);
    let mut group = c.benchmark_group("t2cm_serialization");
    group.sample_size(50);
    group.bench_function("write", |b| b.iter(|| write_intmodel(black_box(&model))));
    group.bench_function("read+verify", |b| b.iter(|| read_intmodel(black_box(&bytes)).unwrap()));
    group.finish();
    let _ = FixedPointFormat::default();
}

criterion_group!(benches, bench_softmax, bench_gelu, bench_layernorm_int, bench_serialization);
criterion_main!(benches);
