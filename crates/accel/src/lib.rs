//! # t2c-accel
//!
//! A behavioural simulator for the *prototype hardware accelerator* the
//! paper deploys to. The original work hands its exported parameters to an
//! RTL testbench on ASIC/FPGA; this crate closes the same loop in
//! simulation:
//!
//! 1. [`Accelerator::from_package`] loads a deployment package written by
//!    `t2c-export` (the `.t2cm` integer model — the artifact RTL
//!    verification would consume),
//! 2. [`Accelerator::run`] executes it with integer-only arithmetic on a
//!    configurable output-stationary MAC-array timing model, producing
//!    both the outputs and an [`ExecutionTrace`] (per-layer MACs, cycles,
//!    memory traffic),
//! 3. [`Accelerator::verify_against`] checks bit-exactness against the
//!    toolkit's golden integer reference.
//!
//! The timing model supports **zero-skipping** (computation skipping on
//! sparse weights) so the sparsity experiments can report cycle savings —
//! the hardware motivation in paper §2.2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod sim;

pub use sim::{Accelerator, AcceleratorConfig, ExecutionTrace, LayerTrace};

use std::fmt;

/// Errors from loading or running the simulated accelerator.
#[derive(Debug)]
pub enum AccelError {
    /// The deployment package could not be loaded.
    Export(t2c_export::ExportError),
    /// An execution error inside the integer graph.
    Tensor(t2c_tensor::TensorError),
    /// The accelerator output diverged from the golden reference.
    Mismatch {
        /// First differing flat index.
        index: usize,
        /// Accelerator value.
        got: i32,
        /// Golden value.
        expected: i32,
    },
}

impl fmt::Display for AccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelError::Export(e) => write!(f, "package error: {e}"),
            AccelError::Tensor(e) => write!(f, "execution error: {e}"),
            AccelError::Mismatch { index, got, expected } => {
                write!(f, "output mismatch at {index}: accelerator {got} vs golden {expected}")
            }
        }
    }
}

impl std::error::Error for AccelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AccelError::Export(e) => Some(e),
            AccelError::Tensor(e) => Some(e),
            AccelError::Mismatch { .. } => None,
        }
    }
}

impl From<t2c_export::ExportError> for AccelError {
    fn from(e: t2c_export::ExportError) -> Self {
        AccelError::Export(e)
    }
}

impl From<t2c_tensor::TensorError> for AccelError {
    fn from(e: t2c_tensor::TensorError) -> Self {
        AccelError::Tensor(e)
    }
}

/// Convenience alias for this crate's `Result`.
pub type Result<T> = std::result::Result<T, AccelError>;
