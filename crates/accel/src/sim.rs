use std::path::Path;

use t2c_core::intmodel::IntOp;
use t2c_core::IntModel;
use t2c_tensor::Tensor;

use crate::{AccelError, Result};

/// Microarchitectural parameters of the simulated accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceleratorConfig {
    /// MAC-array rows (output channels map here).
    pub pe_rows: usize,
    /// MAC-array columns (output pixels / batch map here).
    pub pe_cols: usize,
    /// Skip multiply-accumulates on zero weights (sparse acceleration).
    pub zero_skipping: bool,
    /// SRAM word width in bytes (for traffic accounting).
    pub sram_word_bytes: usize,
    /// Energy per 8-bit MAC in picojoules (prototype-node ballpark).
    pub energy_per_mac_pj: f64,
    /// Energy per byte of SRAM traffic in picojoules.
    pub energy_per_byte_pj: f64,
}

impl AcceleratorConfig {
    /// A 16×16 dense array — a typical prototype-scale configuration
    /// (energy numbers are 28 nm-class ballparks: 0.2 pJ/MAC, 1 pJ/byte).
    pub fn dense16x16() -> Self {
        AcceleratorConfig {
            pe_rows: 16,
            pe_cols: 16,
            zero_skipping: false,
            sram_word_bytes: 8,
            energy_per_mac_pj: 0.2,
            energy_per_byte_pj: 1.0,
        }
    }

    /// The same array with zero-skipping enabled.
    pub fn sparse16x16() -> Self {
        AcceleratorConfig { zero_skipping: true, ..Self::dense16x16() }
    }
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        Self::dense16x16()
    }
}

/// Per-layer execution accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerTrace {
    /// Node name.
    pub name: String,
    /// Useful multiply-accumulates performed.
    pub macs: u64,
    /// Estimated array cycles.
    pub cycles: u64,
    /// Weight bytes streamed from SRAM.
    pub weight_bytes: u64,
    /// Activation bytes moved.
    pub activation_bytes: u64,
}

/// A whole-network execution trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutionTrace {
    /// One entry per executed node (compute nodes only).
    pub layers: Vec<LayerTrace>,
}

impl ExecutionTrace {
    /// Total cycles across layers.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Total useful MACs across layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Total memory traffic in bytes.
    pub fn total_traffic(&self) -> u64 {
        self.layers.iter().map(|l| l.weight_bytes + l.activation_bytes).sum()
    }

    /// Energy estimate in nanojoules under the given configuration's
    /// per-MAC / per-byte costs.
    pub fn energy_nj(&self, config: &AcceleratorConfig) -> f64 {
        (self.total_macs() as f64 * config.energy_per_mac_pj
            + self.total_traffic() as f64 * config.energy_per_byte_pj)
            / 1000.0
    }

    /// Array utilization: useful MACs over issued MAC slots
    /// (`cycles · rows · cols`).
    pub fn utilization(&self, config: &AcceleratorConfig) -> f64 {
        let slots = self.total_cycles() as f64 * (config.pe_rows * config.pe_cols) as f64;
        if slots == 0.0 {
            0.0
        } else {
            (self.total_macs() as f64 / slots).min(1.0)
        }
    }
}

/// The simulated accelerator: an integer model plus a timing model.
#[derive(Debug, Clone)]
pub struct Accelerator {
    model: IntModel,
    config: AcceleratorConfig,
}

impl Accelerator {
    /// Wraps an in-memory integer model.
    pub fn new(model: IntModel, config: AcceleratorConfig) -> Self {
        Accelerator { model, config }
    }

    /// Loads the `.t2cm` model from a deployment package directory — the
    /// same artifact an RTL testbench would consume.
    ///
    /// # Errors
    ///
    /// Returns an error if the package is unreadable or corrupt.
    pub fn from_package(dir: &Path, config: AcceleratorConfig) -> Result<Self> {
        let bytes = std::fs::read(dir.join("model.t2cm")).map_err(t2c_export::ExportError::from)?;
        let model = t2c_export::read_intmodel(&bytes)?;
        Ok(Accelerator { model, config })
    }

    /// The loaded integer model.
    pub fn model(&self) -> &IntModel {
        &self.model
    }

    /// The array configuration.
    pub fn config(&self) -> AcceleratorConfig {
        self.config
    }

    /// Executes a float input batch: returns integer logits and the
    /// execution trace.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is malformed.
    pub fn run(&self, x: &Tensor<f32>) -> Result<(Tensor<i32>, ExecutionTrace)> {
        let out = self.model.run(x)?;
        let trace = self.trace(x.dims())?;
        if t2c_obs::enabled() {
            t2c_obs::gauge_set("accel.mac_utilization", trace.utilization(&self.config));
            t2c_obs::counter_add("accel.macs", trace.total_macs());
            t2c_obs::counter_add("accel.cycles", trace.total_cycles());
            t2c_obs::counter_add("accel.traffic_bytes", trace.total_traffic());
        }
        Ok((out, trace))
    }

    /// Like [`Accelerator::run`], but with the host worker count pinned to
    /// `threads` while the MAC-array replay executes. Logits are
    /// bit-identical to [`Accelerator::run`] at every setting — the host
    /// thread count is a simulation-speed knob, never a numerics knob.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is malformed.
    pub fn run_with_threads(
        &self,
        x: &Tensor<f32>,
        threads: usize,
    ) -> Result<(Tensor<i32>, ExecutionTrace)> {
        t2c_tensor::with_threads(threads, || self.run(x))
    }

    /// Computes the timing trace for a given input shape without executing
    /// the datapath (shapes are propagated symbolically).
    ///
    /// # Errors
    ///
    /// Returns an error if shapes cannot be propagated.
    pub fn trace(&self, input_dims: &[usize]) -> Result<ExecutionTrace> {
        let cfg = self.config;
        let mut shapes: Vec<Vec<usize>> = Vec::with_capacity(self.model.nodes.len());
        let mut trace = ExecutionTrace::default();
        for node in &self.model.nodes {
            let in_shape = |i: usize| -> Vec<usize> {
                match node.inputs.get(i) {
                    Some(t2c_core::intmodel::Src::Input) | None => input_dims.to_vec(),
                    Some(t2c_core::intmodel::Src::Node(id)) => shapes[*id].clone(),
                }
            };
            let out_shape: Vec<usize> = match &node.op {
                IntOp::Quantize { .. } => input_dims.to_vec(),
                IntOp::Conv2d { weight, spec, weight_spec, .. } => {
                    let xin = in_shape(0);
                    let (n, _c, h, w) = (xin[0], xin[1], xin[2], xin[3]);
                    let k = weight.dim(2);
                    let oh = spec.out_extent(h, k).map_err(AccelError::Tensor)?;
                    let ow = spec.out_extent(w, k).map_err(AccelError::Tensor)?;
                    let oc = weight.dim(0);
                    let cg = weight.dim(1);
                    let nz = weight.numel() - weight.count_zeros();
                    let macs_dense = (n * oc * oh * ow * cg * k * k) as u64;
                    let macs = if cfg.zero_skipping {
                        // Useful MACs scale with the non-zero fraction.
                        (macs_dense as f64 * nz as f64 / weight.numel().max(1) as f64) as u64
                    } else {
                        macs_dense
                    };
                    let tiles =
                        (oc.div_ceil(cfg.pe_rows) * (n * oh * ow).div_ceil(cfg.pe_cols)) as u64;
                    let inner = if cfg.zero_skipping {
                        // Per-tile depth shrinks with weight density.
                        (((cg * k * k) as f64) * nz as f64 / weight.numel().max(1) as f64).ceil()
                            as u64
                    } else {
                        (cg * k * k) as u64
                    };
                    trace.layers.push(LayerTrace {
                        name: node.name.clone(),
                        macs,
                        cycles: tiles * inner.max(1),
                        weight_bytes: (nz * weight_spec.bits as usize).div_ceil(8) as u64,
                        activation_bytes: (xin.iter().product::<usize>() + n * oc * oh * ow) as u64,
                    });
                    vec![n, oc, oh, ow]
                }
                IntOp::Conv2dPacked { weight, spec, weight_spec, .. } => {
                    // Prepacking is a host-side layout change: the MAC
                    // array sees the same dense schedule, so the trace is
                    // identical to the equivalent `Conv2d` node.
                    let xin = in_shape(0);
                    let (n, _c, h, w) = (xin[0], xin[1], xin[2], xin[3]);
                    let k = weight.kh;
                    let oh = spec.out_extent(h, k).map_err(AccelError::Tensor)?;
                    let ow = spec.out_extent(w, k).map_err(AccelError::Tensor)?;
                    let (oc, cg) = (weight.oc, weight.cg);
                    let numel = weight.logical_numel();
                    let nz = numel - weight.count_zeros();
                    let macs_dense = (n * oc * oh * ow * cg * k * k) as u64;
                    let macs = if cfg.zero_skipping {
                        (macs_dense as f64 * nz as f64 / numel.max(1) as f64) as u64
                    } else {
                        macs_dense
                    };
                    let tiles =
                        (oc.div_ceil(cfg.pe_rows) * (n * oh * ow).div_ceil(cfg.pe_cols)) as u64;
                    let inner = if cfg.zero_skipping {
                        (((cg * k * k) as f64) * nz as f64 / numel.max(1) as f64).ceil() as u64
                    } else {
                        (cg * k * k) as u64
                    };
                    trace.layers.push(LayerTrace {
                        name: node.name.clone(),
                        macs,
                        cycles: tiles * inner.max(1),
                        weight_bytes: (nz * weight_spec.bits as usize).div_ceil(8) as u64,
                        activation_bytes: (xin.iter().product::<usize>() + n * oc * oh * ow) as u64,
                    });
                    vec![n, oc, oh, ow]
                }
                IntOp::Linear { weight, weight_spec, .. } => {
                    let xin = in_shape(0);
                    let rows: usize = xin[..xin.len() - 1].iter().product();
                    let din = xin[xin.len() - 1];
                    let dout = weight.dim(0);
                    let nz = weight.numel() - weight.count_zeros();
                    let macs_dense = (rows * dout * din) as u64;
                    let macs = if cfg.zero_skipping {
                        (macs_dense as f64 * nz as f64 / weight.numel().max(1) as f64) as u64
                    } else {
                        macs_dense
                    };
                    let tiles = (dout.div_ceil(cfg.pe_rows) * rows.div_ceil(cfg.pe_cols)) as u64;
                    let inner = if cfg.zero_skipping {
                        ((din as f64) * nz as f64 / weight.numel().max(1) as f64).ceil() as u64
                    } else {
                        din as u64
                    };
                    trace.layers.push(LayerTrace {
                        name: node.name.clone(),
                        macs,
                        cycles: tiles * inner.max(1),
                        weight_bytes: (nz * weight_spec.bits as usize).div_ceil(8) as u64,
                        activation_bytes: (rows * (din + dout)) as u64,
                    });
                    let mut out = xin.clone();
                    *out.last_mut().expect("non-empty shape") = dout;
                    out
                }
                IntOp::LinearPacked { weight, weight_spec, .. } => {
                    // Same dense-equivalent accounting as `Linear`: the
                    // panel layout only changes host memory traversal.
                    let xin = in_shape(0);
                    let rows: usize = xin[..xin.len() - 1].iter().product();
                    let din = weight.k;
                    let dout = weight.n;
                    let numel = weight.logical_numel();
                    let nz = numel - weight.count_zeros();
                    let macs_dense = (rows * dout * din) as u64;
                    let macs = if cfg.zero_skipping {
                        (macs_dense as f64 * nz as f64 / numel.max(1) as f64) as u64
                    } else {
                        macs_dense
                    };
                    let tiles = (dout.div_ceil(cfg.pe_rows) * rows.div_ceil(cfg.pe_cols)) as u64;
                    let inner = if cfg.zero_skipping {
                        ((din as f64) * nz as f64 / numel.max(1) as f64).ceil() as u64
                    } else {
                        din as u64
                    };
                    trace.layers.push(LayerTrace {
                        name: node.name.clone(),
                        macs,
                        cycles: tiles * inner.max(1),
                        weight_bytes: (nz * weight_spec.bits as usize).div_ceil(8) as u64,
                        activation_bytes: (rows * (din + dout)) as u64,
                    });
                    let mut out = xin.clone();
                    *out.last_mut().expect("non-empty shape") = dout;
                    out
                }
                IntOp::LinearSparse { weight, weight_spec, .. } => {
                    // A compressed layer skips zeros by construction: only
                    // the stored slots are fetched and multiplied, whether
                    // or not the array's zero-skipping gate is on.
                    let xin = in_shape(0);
                    let rows: usize = xin[..xin.len() - 1].iter().product();
                    let din = xin[xin.len() - 1];
                    let dout = weight.rows;
                    let stored = weight.stored();
                    let total = (weight.rows * weight.cols).max(1);
                    let tiles = (dout.div_ceil(cfg.pe_rows) * rows.div_ceil(cfg.pe_cols)) as u64;
                    let inner = ((din as f64) * stored as f64 / total as f64).ceil() as u64;
                    trace.layers.push(LayerTrace {
                        name: node.name.clone(),
                        macs: (rows * stored) as u64,
                        cycles: tiles * inner.max(1),
                        weight_bytes: (stored * weight_spec.bits as usize).div_ceil(8) as u64,
                        activation_bytes: (rows * (din + dout)) as u64,
                    });
                    let mut out = xin.clone();
                    *out.last_mut().expect("non-empty shape") = dout;
                    out
                }
                IntOp::BmmRequant { transpose_rhs, .. } => {
                    let a = in_shape(0);
                    let b = in_shape(1);
                    let (bs, m, k) = (a[0], a[1], a[2]);
                    let n2 = if *transpose_rhs { b[1] } else { b[2] };
                    let macs = (bs * m * k * n2) as u64;
                    trace.layers.push(LayerTrace {
                        name: node.name.clone(),
                        macs,
                        cycles: (bs as u64)
                            * (m.div_ceil(cfg.pe_rows) * n2.div_ceil(cfg.pe_cols)) as u64
                            * k as u64,
                        weight_bytes: 0,
                        activation_bytes: (a.iter().product::<usize>()
                            + b.iter().product::<usize>())
                            as u64,
                    });
                    vec![bs, m, n2]
                }
                IntOp::AddRequant { .. } => in_shape(0),
                IntOp::AddConstRequant { .. } => in_shape(0),
                IntOp::MaxPool2d { spec } => {
                    let xin = in_shape(0);
                    let oh = (xin[2] + 2 * spec.padding - spec.kernel) / spec.stride + 1;
                    let ow = (xin[3] + 2 * spec.padding - spec.kernel) / spec.stride + 1;
                    vec![xin[0], xin[1], oh, ow]
                }
                IntOp::GlobalAvgPool { .. } => {
                    let xin = in_shape(0);
                    vec![xin[0], xin[1]]
                }
                IntOp::Flatten => {
                    let xin = in_shape(0);
                    vec![xin[0], xin[1..].iter().product()]
                }
                IntOp::PatchToTokens => {
                    let xin = in_shape(0);
                    vec![xin[0], xin[2] * xin[3], xin[1]]
                }
                IntOp::ConcatToken { .. } => {
                    let xin = in_shape(0);
                    vec![xin[0], xin[1] + 1, xin[2]]
                }
                IntOp::TakeToken { .. } => {
                    let xin = in_shape(0);
                    vec![xin[0], xin[2]]
                }
                IntOp::SplitHeads { heads } => {
                    let xin = in_shape(0);
                    vec![xin[0] * heads, xin[1], xin[2] / heads]
                }
                IntOp::MergeHeads { heads } => {
                    let xin = in_shape(0);
                    vec![xin[0] / heads, xin[1], xin[2] * heads]
                }
                IntOp::Requant { .. }
                | IntOp::LayerNorm(_)
                | IntOp::SoftmaxLut(_)
                | IntOp::GeluLut(_) => in_shape(0),
            };
            shapes.push(out_shape);
        }
        Ok(trace)
    }

    /// Runs the accelerator and checks every output element against the
    /// golden integer reference (normally the same `IntModel` executed by
    /// `t2c-core`, or a freshly converted model before export).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Mismatch`] at the first diverging element.
    pub fn verify_against(&self, golden: &IntModel, x: &Tensor<f32>) -> Result<ExecutionTrace> {
        let (out, trace) = self.run(x)?;
        let expect = golden.run(x)?;
        for (i, (&got, &expected)) in out.as_slice().iter().zip(expect.as_slice()).enumerate() {
            if got != expected {
                return Err(AccelError::Mismatch { index: i, got, expected });
            }
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t2c_core::intmodel::Src;
    use t2c_core::{FixedPointFormat, MulQuant, QuantSpec};
    use t2c_tensor::ops::Conv2dSpec;

    fn model(weight: Tensor<i32>) -> IntModel {
        let mut m = IntModel::new();
        m.push("input", IntOp::Quantize { scale: 0.1, spec: QuantSpec::signed(8) }, vec![]);
        m.push(
            "conv",
            IntOp::Conv2d {
                weight,
                bias: None,
                spec: Conv2dSpec::new(1, 1),
                requant: MulQuant::from_float(
                    &[0.25],
                    &[0.0],
                    FixedPointFormat::int16_frac12(),
                    QuantSpec::signed(8),
                ),
                relu: false,
                weight_spec: QuantSpec::signed(8),
            },
            vec![Src::Node(0)],
        );
        m.push("gap", IntOp::GlobalAvgPool { frac_bits: 4 }, vec![Src::Node(1)]);
        m
    }

    #[test]
    fn accelerator_matches_golden_reference() {
        let m = model(Tensor::from_fn(&[4, 2, 3, 3], |i| (i as i32 % 9) - 4));
        let accel = Accelerator::new(m.clone(), AcceleratorConfig::dense16x16());
        let x = Tensor::from_fn(&[2, 2, 6, 6], |i| (i as f32) * 0.01 - 0.3);
        let trace = accel.verify_against(&m, &x).unwrap();
        assert!(trace.total_cycles() > 0);
        assert!(trace.total_macs() > 0);
    }

    #[test]
    fn replay_is_bit_identical_across_thread_counts() {
        let m = model(Tensor::from_fn(&[4, 2, 3, 3], |i| (i as i32 % 9) - 4));
        let accel = Accelerator::new(m, AcceleratorConfig::dense16x16());
        let x = Tensor::from_fn(&[2, 2, 6, 6], |i| (i as f32) * 0.01 - 0.3);
        let (base, _) = accel.run_with_threads(&x, 1).unwrap();
        for threads in [2, 4, 8] {
            let (out, _) = accel.run_with_threads(&x, threads).unwrap();
            assert_eq!(out.as_slice(), base.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn zero_skipping_reduces_cycles_on_sparse_weights() {
        // 75% zero weights.
        let w = Tensor::from_fn(&[4, 2, 3, 3], |i| if i % 4 == 0 { 3 } else { 0 });
        let m = model(w);
        let x = Tensor::from_fn(&[1, 2, 8, 8], |i| (i as f32) * 0.01);
        let dense = Accelerator::new(m.clone(), AcceleratorConfig::dense16x16());
        let sparse = Accelerator::new(m, AcceleratorConfig::sparse16x16());
        let (_, dt) = dense.run(&x).unwrap();
        let (st_out, st) = sparse.run(&x).unwrap();
        let (dt_out, _) = dense.run(&x).unwrap();
        // Identical results…
        assert_eq!(st_out.as_slice(), dt_out.as_slice());
        // …but fewer cycles.
        assert!(
            st.total_cycles() * 3 < dt.total_cycles() * 2,
            "sparse {} vs dense {}",
            st.total_cycles(),
            dt.total_cycles()
        );
    }

    #[test]
    fn bigger_array_fewer_cycles() {
        let m = model(Tensor::from_fn(&[32, 2, 3, 3], |i| (i as i32 % 5) - 2));
        let small = Accelerator::new(
            m.clone(),
            AcceleratorConfig { pe_rows: 4, pe_cols: 4, ..AcceleratorConfig::dense16x16() },
        );
        let big = Accelerator::new(
            m,
            AcceleratorConfig { pe_rows: 32, pe_cols: 32, ..AcceleratorConfig::dense16x16() },
        );
        let dims = [1usize, 2, 8, 8];
        assert!(
            big.trace(&dims).unwrap().total_cycles() < small.trace(&dims).unwrap().total_cycles()
        );
    }

    #[test]
    fn energy_and_utilization_reported() {
        let m = model(Tensor::from_fn(&[4, 2, 3, 3], |i| (i as i32 % 9) - 4));
        let cfg = AcceleratorConfig::dense16x16();
        let accel = Accelerator::new(m, cfg);
        let trace = accel.trace(&[1, 2, 8, 8]).unwrap();
        assert!(trace.energy_nj(&cfg) > 0.0);
        let util = trace.utilization(&cfg);
        assert!((0.0..=1.0).contains(&util), "utilization {util}");
        // Zero-skipping lowers MAC energy on sparse weights.
        let sparse_w = Tensor::from_fn(&[4, 2, 3, 3], |i| if i % 4 == 0 { 3 } else { 0 });
        let skip_cfg = AcceleratorConfig::sparse16x16();
        let skip = Accelerator::new(model(sparse_w), skip_cfg);
        let skip_trace = skip.trace(&[1, 2, 8, 8]).unwrap();
        assert!(skip_trace.energy_nj(&skip_cfg) < trace.energy_nj(&cfg));
    }

    #[test]
    fn mismatch_detected() {
        let m = model(Tensor::from_fn(&[4, 2, 3, 3], |i| (i as i32 % 9) - 4));
        let mut tampered = m.clone();
        if let IntOp::Conv2d { weight, .. } = &mut tampered.nodes[1].op {
            weight.as_mut_slice()[0] += 1;
        }
        let accel = Accelerator::new(tampered, AcceleratorConfig::dense16x16());
        let x = Tensor::from_fn(&[1, 2, 6, 6], |i| (i as f32) * 0.02);
        assert!(matches!(accel.verify_against(&m, &x), Err(AccelError::Mismatch { .. })));
    }

    #[test]
    fn from_package_round_trip() {
        let dir = std::env::temp_dir().join(format!("t2c_accel_{}", std::process::id()));
        let m = model(Tensor::from_fn(&[4, 2, 3, 3], |i| (i as i32 % 9) - 4));
        t2c_export::export_package(&m, &dir).unwrap();
        let accel = Accelerator::from_package(&dir, AcceleratorConfig::dense16x16()).unwrap();
        let x = Tensor::from_fn(&[1, 2, 6, 6], |i| (i as f32) * 0.02);
        accel.verify_against(&m, &x).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
