use t2c_autograd::Param;
use t2c_tensor::Tensor;

/// A weight pruner over a fixed parameter group.
///
/// Pruners maintain one binary mask per parameter. [`Pruner::step`] is
/// called once per optimizer step with training progress in `[0, 1]`;
/// implementations decide when to update their masks. [`Pruner::apply`]
/// zeroes the masked weights in place (called after every optimizer step
/// so pruned weights stay dead).
pub trait Pruner {
    /// Algorithm name, for reports.
    fn name(&self) -> &'static str;

    /// Advances the schedule; `progress` is `completed/total` steps.
    fn step(&mut self, progress: f32);

    /// Zeroes masked weights in place.
    fn apply(&self);

    /// Current achieved sparsity over the managed parameters.
    fn sparsity(&self) -> f32 {
        let (zeros, total) = self.mask_stats();
        if total == 0 {
            0.0
        } else {
            zeros as f32 / total as f32
        }
    }

    /// `(masked, total)` element counts.
    fn mask_stats(&self) -> (usize, usize);
}

fn masked_counts(masks: &[Tensor<f32>]) -> (usize, usize) {
    let zeros = masks.iter().map(|m| m.as_slice().iter().filter(|&&v| v == 0.0).count()).sum();
    let total = masks.iter().map(Tensor::numel).sum();
    (zeros, total)
}

/// Indices of the `k` smallest magnitudes in `mags`.
///
/// Selection is by sorted position (an index budget), not by comparing
/// against a threshold magnitude: with duplicated magnitudes at the cut —
/// ubiquitous after quantization — a threshold compare keeps or drops
/// *every* tied element and can overshoot arbitrarily (all-equal weights
/// collapse to sparsity 1.0 regardless of target). The sort is stable, so
/// ties are broken by element index and exactly `k` elements are chosen.
fn smallest_k(mags: &[f32], k: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..mags.len()).collect();
    order.sort_by(|&a, &b| mags[a].partial_cmp(&mags[b]).unwrap_or(std::cmp::Ordering::Equal));
    order.truncate(k.min(mags.len()));
    order
}

/// Elements per reduction row — everything one output channel multiplies
/// against (the flattened trailing axes: `in` for a `[out, in]` linear,
/// `ic·kh·kw` for a conv). N:M groups are formed within these rows,
/// matching how the im2col/linear kernels consume the weights; a group
/// must never straddle two output channels. Rank-0/1 tensors are a single
/// row.
fn nm_row_len(dims: &[usize], numel: usize) -> usize {
    if dims.len() < 2 || dims[0] == 0 {
        numel.max(1)
    } else {
        (numel / dims[0]).max(1)
    }
}

fn apply_masks(params: &[Param], masks: &[Tensor<f32>]) {
    for (p, m) in params.iter().zip(masks) {
        p.modify_value(|w| {
            for (wi, &mi) in w.as_mut_slice().iter_mut().zip(m.as_slice()) {
                *wi *= mi;
            }
        });
    }
}

/// Keeps the `1 − sparsity` largest-magnitude weights globally across the
/// whole parameter group.
pub struct MagnitudePruner {
    params: Vec<Param>,
    masks: Vec<Tensor<f32>>,
    target: f32,
    /// One-shot latch for [`Pruner::step`]. An explicit flag rather than
    /// `sparsity() == 0.0`: on tiny params the target can round to zero
    /// pruned elements, and a sparsity check would re-fire every step.
    pruned: bool,
}

impl MagnitudePruner {
    /// Creates the pruner over `params` with the final `target` sparsity
    /// in `[0, 1)`.
    pub fn new(params: Vec<Param>, target: f32) -> Self {
        let masks = params.iter().map(|p| Tensor::ones(p.value().dims())).collect();
        MagnitudePruner { params, masks, target, pruned: false }
    }

    /// Whether the one-shot prune in [`Pruner::step`] has fired.
    pub fn has_pruned(&self) -> bool {
        self.pruned
    }

    /// Recomputes masks so that exactly `round(total · sparsity)` of the
    /// globally smallest-magnitude weights are zeroed (ties broken by
    /// element index, so the budget is never overshot).
    pub fn prune_to(&mut self, sparsity: f32) {
        let mags: Vec<f32> =
            self.params.iter().flat_map(|p| p.value().into_vec()).map(f32::abs).collect();
        if mags.is_empty() {
            return;
        }
        let k = (mags.len() as f32 * sparsity).round() as usize;
        let mut dead = vec![false; mags.len()];
        for i in smallest_k(&mags, k) {
            dead[i] = true;
        }
        let mut offset = 0usize;
        for (p, m) in self.params.iter().zip(&mut self.masks) {
            let dims = p.value().dims().to_vec();
            *m = Tensor::from_fn(&dims, |j| if dead[offset + j] { 0.0 } else { 1.0 });
            offset += m.numel();
        }
    }
}

impl Pruner for MagnitudePruner {
    fn name(&self) -> &'static str {
        "magnitude"
    }

    fn step(&mut self, progress: f32) {
        // One-shot: prune at the end of a warm-up third, then keep masks.
        if progress >= 0.3 && !self.pruned {
            self.pruned = true;
            self.prune_to(self.target);
        }
    }

    fn apply(&self) {
        apply_masks(&self.params, &self.masks);
    }

    fn mask_stats(&self) -> (usize, usize) {
        masked_counts(&self.masks)
    }
}

/// Gradual magnitude pruning with gradient-based regrowth, on the cubic
/// Zhu–Gupta sparsity schedule `s(t) = s_f·(1 − (1 − t)³)`.
pub struct GraNetPruner {
    params: Vec<Param>,
    masks: Vec<Tensor<f32>>,
    final_sparsity: f32,
    /// Fraction of the pruned budget regrown by gradient magnitude at each
    /// mask update.
    regrow_fraction: f32,
    /// Fraction of training kept fully dense before pruning starts.
    warmup: f32,
    /// Fraction of training after which the schedule saturates (leaving a
    /// stable fine-tuning tail at the final sparsity).
    ramp_end: f32,
    updates: usize,
}

impl GraNetPruner {
    /// Creates the pruner with the paper's defaults: 10% regrowth, 20%
    /// dense warm-up, sparsity ramp finishing at 70% of training.
    pub fn new(params: Vec<Param>, final_sparsity: f32) -> Self {
        let masks = params.iter().map(|p| Tensor::ones(p.value().dims())).collect();
        GraNetPruner {
            params,
            masks,
            final_sparsity,
            regrow_fraction: 0.1,
            warmup: 0.2,
            ramp_end: 0.7,
            updates: 0,
        }
    }

    /// The cubic schedule value at `progress ∈ [0, 1]`: dense through the
    /// warm-up, then `s_f·(1 − (1 − t̂)³)` over the ramp.
    pub fn scheduled_sparsity(&self, progress: f32) -> f32 {
        let t = progress.clamp(0.0, 1.0);
        if t <= self.warmup {
            return 0.0;
        }
        let t_hat = ((t - self.warmup) / (self.ramp_end - self.warmup).max(1e-6)).min(1.0);
        self.final_sparsity * (1.0 - (1.0 - t_hat).powi(3))
    }

    fn update_masks(&mut self, sparsity: f32) {
        // 1) Magnitude-prune each layer to slightly beyond the target
        //    (per-layer budgets: a global budget can dead-end whole
        //    layers in narrow networks)…
        let over = (sparsity + self.regrow_fraction * sparsity).min(0.99);
        let mut total_elems = 0usize;
        for (p, m) in self.params.iter().zip(&mut self.masks) {
            let w = p.value();
            let mags: Vec<f32> = w.as_slice().iter().map(|v| v.abs()).collect();
            if mags.is_empty() {
                continue;
            }
            total_elems += mags.len();
            let k = (mags.len() as f32 * over).round() as usize;
            let mut mask = Tensor::<f32>::ones(w.dims());
            for i in smallest_k(&mags, k) {
                mask.as_mut_slice()[i] = 0.0;
            }
            *m = mask;
        }
        // 2) …then regrow the highest-|gradient| pruned weights back.
        let budget = ((over - sparsity).max(0.0) * total_elems as f32) as usize;
        if budget == 0 {
            return;
        }
        let mut candidates: Vec<(f32, usize, usize)> = Vec::new();
        for (pi, (p, m)) in self.params.iter().zip(&self.masks).enumerate() {
            let g = p.grad();
            for (j, (&mask, &grad)) in m.as_slice().iter().zip(g.as_slice()).enumerate() {
                if mask == 0.0 {
                    candidates.push((grad.abs(), pi, j));
                }
            }
        }
        candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        for &(_, pi, j) in candidates.iter().take(budget) {
            self.masks[pi].as_mut_slice()[j] = 1.0;
        }
        self.updates += 1;
    }
}

impl Pruner for GraNetPruner {
    fn name(&self) -> &'static str {
        "granet"
    }

    fn step(&mut self, progress: f32) {
        let target = self.scheduled_sparsity(progress);
        // Batched mask updates (5% sparsity increments): recomputing masks
        // every step churns the surviving set and stalls learning.
        if target > self.sparsity() + 0.05
            || (target >= self.final_sparsity - 1e-6 && self.sparsity() < target - 0.01)
        {
            self.update_masks(target);
        }
    }

    fn apply(&self) {
        apply_masks(&self.params, &self.masks);
    }

    fn mask_stats(&self) -> (usize, usize) {
        masked_counts(&self.masks)
    }
}

/// N:M structured fine-grained sparsity: within every group of `m`
/// consecutive weights along each row of the fastest axis, only the `n`
/// largest magnitudes survive.
pub struct NmPruner {
    params: Vec<Param>,
    masks: Vec<Tensor<f32>>,
    n: usize,
    m: usize,
}

impl NmPruner {
    /// Creates an N:M pruner (e.g. `n = 2`, `m = 4`).
    ///
    /// # Panics
    ///
    /// Panics if `n > m` or `m == 0`.
    pub fn new(params: Vec<Param>, n: usize, m: usize) -> Self {
        assert!(m > 0 && n <= m, "invalid N:M = {n}:{m}");
        let masks = params.iter().map(|p| Tensor::ones(p.value().dims())).collect();
        NmPruner { params, masks, n, m }
    }

    /// The structural sparsity `1 − n/m`.
    pub fn structural_sparsity(&self) -> f32 {
        1.0 - self.n as f32 / self.m as f32
    }

    /// Recomputes every mask from the current weights.
    ///
    /// Groups are formed **within each row** of the fastest axis: the
    /// hardware contract is per-row N:M, so a group must never straddle a
    /// row boundary even when the row length is not a multiple of `m`.
    /// The trailing partial group of a row (length `len < m`) keeps its
    /// `min(n, len)` largest magnitudes.
    pub fn update_masks(&mut self) {
        for (p, mask) in self.params.iter().zip(&mut self.masks) {
            let w = p.value();
            let mut m = Tensor::<f32>::ones(w.dims());
            let ws = w.as_slice();
            let ms = m.as_mut_slice();
            let row_len = nm_row_len(w.dims(), ws.len());
            for row_start in (0..ws.len()).step_by(row_len) {
                let row_end = (row_start + row_len).min(ws.len());
                for group in (row_start..row_end).step_by(self.m) {
                    let end = (group + self.m).min(row_end);
                    let mut idx: Vec<usize> = (group..end).collect();
                    idx.sort_by(|&a, &b| {
                        ws[b].abs().partial_cmp(&ws[a].abs()).unwrap_or(std::cmp::Ordering::Equal)
                    });
                    for &i in idx.iter().skip(self.n) {
                        ms[i] = 0.0;
                    }
                }
            }
            *mask = m;
        }
    }

    /// Verifies the per-row N:M constraint on every mask (test/audit
    /// helper).
    pub fn masks_satisfy_constraint(&self) -> bool {
        self.masks.iter().all(|m| {
            let row_len = nm_row_len(m.dims(), m.numel());
            m.as_slice().chunks(row_len).all(|row| {
                row.chunks(self.m).all(|g| g.iter().filter(|&&v| v != 0.0).count() <= self.n)
            })
        })
    }
}

impl Pruner for NmPruner {
    fn name(&self) -> &'static str {
        "n:m"
    }

    fn step(&mut self, progress: f32) {
        // Refresh masks periodically after a dense warm-up.
        if progress >= 0.25 {
            self.update_masks();
        }
    }

    fn apply(&self) {
        apply_masks(&self.params, &self.masks);
    }

    fn mask_stats(&self) -> (usize, usize) {
        masked_counts(&self.masks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t2c_tensor::rng::TensorRng;

    fn param(rng: &mut TensorRng, n: usize) -> Param {
        Param::new("w", rng.normal(&[n], 0.0, 1.0))
    }

    #[test]
    fn magnitude_pruner_hits_target() {
        let mut rng = TensorRng::seed_from(1);
        let p = param(&mut rng, 1000);
        let mut pruner = MagnitudePruner::new(vec![p.clone()], 0.8);
        pruner.prune_to(0.8);
        pruner.apply();
        let zeros = p.value().as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!((zeros as f32 / 1000.0 - 0.8).abs() < 0.02, "zeros {zeros}");
        assert!((pruner.sparsity() - 0.8).abs() < 0.02);
    }

    #[test]
    fn magnitude_pruner_keeps_largest() {
        let p = Param::new("w", Tensor::from_vec(vec![0.1, -5.0, 0.2, 3.0], &[4]).unwrap());
        let mut pruner = MagnitudePruner::new(vec![p.clone()], 0.5);
        pruner.prune_to(0.5);
        pruner.apply();
        assert_eq!(p.value().as_slice(), &[0.0, -5.0, 0.0, 3.0]);
    }

    #[test]
    fn granet_schedule_is_cubic_and_monotone() {
        let mut rng = TensorRng::seed_from(2);
        let pruner = GraNetPruner::new(vec![param(&mut rng, 10)], 0.8);
        assert_eq!(pruner.scheduled_sparsity(0.0), 0.0);
        assert!((pruner.scheduled_sparsity(1.0) - 0.8).abs() < 1e-6);
        let mut prev = 0.0;
        for i in 0..=10 {
            let s = pruner.scheduled_sparsity(i as f32 / 10.0);
            assert!(s >= prev);
            prev = s;
        }
    }

    #[test]
    fn granet_regrows_high_gradient_weights() {
        let mut rng = TensorRng::seed_from(3);
        let p = param(&mut rng, 200);
        // Gradients concentrated on the first half.
        let grad = Tensor::from_fn(&[200], |i| if i < 100 { 10.0 } else { 0.0 });
        p.accumulate_grad(&grad);
        let mut pruner = GraNetPruner::new(vec![p.clone()], 0.5);
        pruner.step(1.0);
        pruner.apply();
        assert!(pruner.sparsity() > 0.4, "sparsity {}", pruner.sparsity());
    }

    #[test]
    fn nm_pruner_enforces_constraint() {
        let mut rng = TensorRng::seed_from(4);
        let p = param(&mut rng, 64);
        let mut pruner = NmPruner::new(vec![p.clone()], 2, 4);
        pruner.update_masks();
        pruner.apply();
        assert!(pruner.masks_satisfy_constraint());
        assert!((pruner.sparsity() - 0.5).abs() < 1e-6);
        // Every group of 4 has exactly 2 non-zeros in the weights too.
        for g in p.value().as_slice().chunks(4) {
            assert_eq!(g.iter().filter(|&&v| v != 0.0).count(), 2);
        }
    }

    #[test]
    #[should_panic(expected = "invalid N:M")]
    fn nm_rejects_bad_config() {
        let _ = NmPruner::new(vec![], 5, 4);
    }

    #[test]
    fn tied_weights_prune_to_exact_budget() {
        // Every magnitude equal: a threshold compare would zero all or
        // none; the index budget zeroes exactly half.
        let p = Param::new("w", Tensor::from_vec(vec![1.0; 10], &[10]).unwrap());
        let mut pruner = MagnitudePruner::new(vec![p.clone()], 0.5);
        pruner.prune_to(0.5);
        pruner.apply();
        assert!((pruner.sparsity() - 0.5).abs() < 1e-6, "sparsity {}", pruner.sparsity());
        let zeros = p.value().as_slice().iter().filter(|&&v| v == 0.0).count();
        assert_eq!(zeros, 5);
    }

    #[test]
    fn granet_tied_weights_do_not_collapse() {
        let p = Param::new("w", Tensor::from_vec(vec![1.0; 100], &[100]).unwrap());
        p.accumulate_grad(&Tensor::zeros(&[100]));
        let mut pruner = GraNetPruner::new(vec![p.clone()], 0.5);
        pruner.step(1.0);
        pruner.apply();
        let s = pruner.sparsity();
        assert!((s - 0.5).abs() < 0.05, "tied weights collapsed to sparsity {s}");
    }

    #[test]
    fn magnitude_step_latches_once_even_when_budget_rounds_to_zero() {
        // 4 elements at target 0.05: the budget rounds to zero pruned
        // elements, so a `sparsity() == 0.0` latch would re-fire forever.
        let p = Param::new("w", Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap());
        let mut pruner = MagnitudePruner::new(vec![p], 0.05);
        assert!(!pruner.has_pruned());
        pruner.step(0.1);
        assert!(!pruner.has_pruned(), "must not fire during warm-up");
        pruner.step(0.5);
        assert!(pruner.has_pruned());
        assert_eq!(pruner.sparsity(), 0.0);
        pruner.step(0.9);
        assert!(pruner.has_pruned(), "latch must stay set");
    }

    #[test]
    fn nm_groups_do_not_straddle_rows() {
        // [3, 6] with m = 4: each row is one full group plus a 2-wide
        // trailing partial group. Flat grouping would straddle rows.
        let p = Param::new("w", Tensor::from_fn(&[3, 6], |i| (i + 1) as f32));
        let mut pruner = NmPruner::new(vec![p.clone()], 2, 4);
        pruner.update_masks();
        pruner.apply();
        assert!(pruner.masks_satisfy_constraint());
        // Magnitudes increase along each row: the full group keeps its
        // last two elements, the 2-wide tail keeps both.
        let expect: Vec<f32> =
            (0..18).map(|i| if i % 6 < 2 { 0.0 } else { (i + 1) as f32 }).collect();
        assert_eq!(p.value().as_slice(), expect.as_slice());
        // Per-row check: every in-row group of 4 has at most 2 survivors.
        for row in p.value().as_slice().chunks(6) {
            for g in row.chunks(4) {
                assert!(g.iter().filter(|&&v| v != 0.0).count() <= 2);
            }
        }
    }

    #[test]
    fn pruned_weights_stay_dead_after_apply() {
        let p = Param::new("w", Tensor::from_vec(vec![1.0, 0.01, 2.0, 0.02], &[4]).unwrap());
        let mut pruner = MagnitudePruner::new(vec![p.clone()], 0.5);
        pruner.prune_to(0.5);
        pruner.apply();
        // Simulate an optimizer reviving weights...
        p.set_value(Tensor::from_vec(vec![1.0, 9.0, 2.0, 9.0], &[4]).unwrap());
        pruner.apply();
        assert_eq!(p.value().as_slice(), &[1.0, 0.0, 2.0, 0.0]);
    }
}
