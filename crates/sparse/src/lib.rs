//! # t2c-sparse
//!
//! User-customizable weight sparsification (paper §2.2 / §4.3).
//!
//! Torch2Chip's position is that pruning must *compose* with quantization:
//! the sparse weights are stored as **raw zero values in the integer
//! model**, not as a side-channel binary mask over full-precision weights.
//! This crate provides the pruners and the sparse trainer; the zeros
//! survive `t2c-core`'s symmetric quantization (0 always maps to code 0)
//! and show up in the exported integer files, which
//! `IntModel::weight_sparsity` audits.
//!
//! Pruners:
//!
//! * [`MagnitudePruner`] — global element-wise magnitude pruning
//!   (Han et al., 2016), one-shot at a target sparsity.
//! * [`GraNetPruner`] — gradual magnitude pruning on the cubic
//!   Zhu–Gupta schedule with gradient-based regrowth (the paper's
//!   "GraNet" sparse-training rows).
//! * [`NmPruner`] — N:M structured fine-grained sparsity (Zhou et al.,
//!   2021): in every group of `m` consecutive weights along the input
//!   dimension at most `n` survive (2:4 in Table 3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pruner;
mod trainer;

pub use pruner::{GraNetPruner, MagnitudePruner, NmPruner, Pruner};
pub use trainer::{prunable_weights, SparseTrainer, SparseTrainerConfig};

/// Convenience alias for this crate's `Result`.
pub type Result<T> = std::result::Result<T, t2c_tensor::TensorError>;
