use t2c_autograd::Graph;
use t2c_data::{Augment, AugmentConfig, BatchIter, SynthVision};
use t2c_nn::Module;
use t2c_optim::{clip_grad_norm, CosineSchedule, LrSchedule, Optimizer, Sgd};

use crate::{Pruner, Result};

/// Hyperparameters for sparse training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseTrainerConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Batch size.
    pub batch: usize,
    /// Peak learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Shuffle/augmentation seed.
    pub seed: u64,
}

impl SparseTrainerConfig {
    /// A quick recipe for the synthetic datasets.
    pub fn quick(epochs: usize) -> Self {
        SparseTrainerConfig {
            epochs,
            batch: 32,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 5e-4,
            seed: 42,
        }
    }
}

/// Parameters worth pruning: conv/linear weights only (rank > 1),
/// trainable, excluding depthwise filters (whose 9-weight kernels are
/// conventionally left dense).
pub fn prunable_weights(model: &dyn Module) -> Vec<t2c_autograd::Param> {
    model
        .params()
        .into_iter()
        .filter(|p| {
            let v = p.value();
            v.rank() > 1 && p.is_trainable() && (v.rank() != 4 || v.dim(1) > 1)
        })
        .collect()
}

/// Supervised training with a pruner in the loop ("sparse training from
/// scratch with gradually increased sparsity", paper §4.3).
///
/// After every optimizer step the pruner's schedule advances and the masks
/// are re-applied, so pruned weights receive updates but are zeroed before
/// the next forward — the standard sparse-training dynamics.
pub struct SparseTrainer {
    /// Hyperparameters.
    pub config: SparseTrainerConfig,
}

impl SparseTrainer {
    /// Creates the trainer.
    pub fn new(config: SparseTrainerConfig) -> Self {
        SparseTrainer { config }
    }

    /// Trains `model` with `pruner` in the loop; returns per-epoch
    /// `(loss, accuracy, sparsity)` records.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatches inside the model.
    pub fn fit(
        &self,
        model: &dyn Module,
        pruner: &mut dyn Pruner,
        data: &SynthVision,
    ) -> Result<Vec<(f32, f32, f32)>> {
        let cfg = self.config;
        let params = model.params();
        let mut opt =
            Sgd::new(params.clone(), cfg.lr).momentum(cfg.momentum).weight_decay(cfg.weight_decay);
        let schedule = CosineSchedule { base_lr: cfg.lr, min_lr: cfg.lr * 0.01, total: cfg.epochs };
        let mut augment = Augment::new(AugmentConfig::standard(), cfg.seed);
        let steps_per_epoch = data.train_len().div_ceil(cfg.batch);
        let total_steps = (cfg.epochs * steps_per_epoch).max(1);
        let mut history = Vec::with_capacity(cfg.epochs);
        let mut step = 0usize;
        model.set_training(true);
        for epoch in 0..cfg.epochs {
            opt.set_lr(schedule.lr_at(epoch));
            let mut loss_sum = 0.0;
            let mut batches = 0;
            for (images, labels) in BatchIter::train(data, cfg.batch, cfg.seed + epoch as u64) {
                let images = augment.apply_batch(&images);
                let g = Graph::new();
                let logits = model.forward(&g.leaf(images))?;
                let loss = logits.cross_entropy_logits(&labels)?;
                opt.zero_grad();
                loss.backward()?;
                clip_grad_norm(&params, 5.0);
                // The pruner may need gradients (GraNet regrowth), so the
                // schedule advances between backward and the mask apply.
                pruner.step(step as f32 / total_steps as f32);
                opt.step();
                pruner.apply();
                loss_sum += loss.tensor().item();
                batches += 1;
                step += 1;
            }
            // Evaluate with masks applied.
            model.set_training(false);
            let mut correct = 0usize;
            let mut total = 0usize;
            for (images, labels) in BatchIter::test(data, cfg.batch) {
                let g = Graph::new();
                let preds = model.forward(&g.leaf(images))?.value().argmax_rows()?;
                correct += preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
                total += labels.len();
            }
            model.set_training(true);
            history.push((
                loss_sum / batches.max(1) as f32,
                correct as f32 / total.max(1) as f32,
                pruner.sparsity(),
            ));
        }
        Ok(history)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraNetPruner, NmPruner};
    use t2c_data::SynthVisionConfig;
    use t2c_nn::models::{ResNet, ResNetConfig};
    use t2c_tensor::rng::TensorRng;

    #[test]
    fn granet_training_reaches_target_sparsity_and_learns() {
        let data = SynthVision::generate(&SynthVisionConfig::tiny(3, 32));
        let mut rng = TensorRng::seed_from(0);
        let model = ResNet::new(&mut rng, ResNetConfig::tiny(3));
        let mut pruner = GraNetPruner::new(prunable_weights(&model), 0.7);
        let history = SparseTrainer::new(SparseTrainerConfig::quick(10))
            .fit(&model, &mut pruner, &data)
            .unwrap();
        let (_, acc, sparsity) = *history.last().unwrap();
        assert!(sparsity > 0.55, "sparsity {sparsity}");
        assert!(acc > 0.5, "accuracy {acc}");
    }

    #[test]
    fn nm_training_keeps_constraint() {
        let data = SynthVision::generate(&SynthVisionConfig::tiny(3, 16));
        let mut rng = TensorRng::seed_from(0);
        let model = ResNet::new(&mut rng, ResNetConfig::tiny(3));
        let mut pruner = NmPruner::new(prunable_weights(&model), 2, 4);
        SparseTrainer::new(SparseTrainerConfig::quick(3)).fit(&model, &mut pruner, &data).unwrap();
        assert!(pruner.masks_satisfy_constraint());
        assert!((pruner.sparsity() - 0.5).abs() < 0.01);
    }
}
