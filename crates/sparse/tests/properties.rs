//! Property-based tests: structural sparsity invariants.

use proptest::prelude::*;
use t2c_autograd::Param;
use t2c_sparse::{MagnitudePruner, NmPruner, Pruner};
use t2c_tensor::Tensor;

fn weight_param(values: Vec<f32>) -> Param {
    let n = values.len();
    Param::new("w", Tensor::from_vec(values, &[n]).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn nm_constraint_holds_for_any_weights(
        raw in proptest::collection::vec(-1000i32..1000, 64),
        n in 1usize..4,
    ) {
        let m = 4usize;
        let p = weight_param(raw.iter().map(|&v| v as f32 / 100.0).collect());
        let mut pruner = NmPruner::new(vec![p.clone()], n, m);
        pruner.update_masks();
        pruner.apply();
        prop_assert!(pruner.masks_satisfy_constraint());
        // The surviving weights per group are the n largest magnitudes.
        let w = p.value();
        for g in w.as_slice().chunks(m) {
            let nonzero = g.iter().filter(|&&v| v != 0.0).count();
            prop_assert!(nonzero <= n);
        }
        prop_assert!((pruner.sparsity() - (1.0 - n as f32 / m as f32)).abs() < 1e-6);
    }

    #[test]
    fn magnitude_pruner_sparsity_close_to_target(
        raw in proptest::collection::vec(-10_000i32..10_000, 200..400),
        target_pct in 10u32..90,
    ) {
        // Distinct-ish magnitudes so the threshold cut is clean.
        let target = target_pct as f32 / 100.0;
        let p = weight_param(raw.iter().enumerate()
            .map(|(i, &v)| v as f32 + i as f32 * 1e-3).collect());
        let mut pruner = MagnitudePruner::new(vec![p.clone()], target);
        pruner.prune_to(target);
        pruner.apply();
        prop_assert!((pruner.sparsity() - target).abs() < 0.05,
            "target {target}, got {}", pruner.sparsity());
    }

    #[test]
    fn pruned_weights_never_resurrect(
        raw in proptest::collection::vec(-1000i32..1000, 32),
    ) {
        let p = weight_param(raw.iter().map(|&v| v as f32 / 10.0).collect());
        let mut pruner = NmPruner::new(vec![p.clone()], 2, 4);
        pruner.update_masks();
        pruner.apply();
        let zero_idx: Vec<usize> = p
            .value()
            .as_slice()
            .iter()
            .enumerate()
            .filter(|(_, &v)| v == 0.0)
            .map(|(i, _)| i)
            .collect();
        // Simulate an optimizer writing junk into every weight…
        p.modify_value(|w| {
            for v in w.as_mut_slice() {
                *v += 42.0;
            }
        });
        // …masks bring the pruned ones back to zero.
        pruner.apply();
        let w = p.value();
        for &i in &zero_idx {
            prop_assert_eq!(w.as_slice()[i], 0.0);
        }
    }
}
