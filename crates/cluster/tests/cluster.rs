//! End-to-end cluster tests: rolling updates under fire, replica kills
//! without losing admitted work, and hedged-request plumbing.
//!
//! Time-sensitive routing state is driven by an injected `FakeClock`
//! shared by the router and every replica runtime; assertions never
//! sleep to "wait for" cluster state.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use t2c_cluster::{Cluster, ClusterConfig, HedgeConfig, RouterConfig};
use t2c_core::IntModel;
use t2c_serve::{BatchConfig, FakeClock, ModelRegistry, ServerConfig};
use t2c_tensor::Tensor;

/// A cluster config that dispatches every request immediately (batch of
/// one) so a frozen FakeClock never strands rows in a partial batch.
fn immediate_config(replicas: usize, hedge: HedgeConfig) -> ClusterConfig {
    ClusterConfig {
        replicas,
        router: RouterConfig { replication: 2, hedge, ..RouterConfig::default() },
        server: ServerConfig {
            batch: BatchConfig { max_batch: 1, max_delay_ns: 0, queue_cap: 256 },
            workers: 1,
            ..ServerConfig::default()
        },
        ..ClusterConfig::default()
    }
}

fn no_hedge() -> HedgeConfig {
    HedgeConfig { min_samples: u64::MAX, default_delay_ns: 0, ..HedgeConfig::default() }
}

/// Quantizes a deterministic ramp with the model's own input grid and
/// returns `(codes, direct_output)`.
fn codes_and_direct(model: &IntModel, dims: &[usize]) -> (Tensor<i32>, Vec<i32>) {
    let reference = ModelRegistry::new();
    let admitted = reference.admit("ref", model.clone(), dims).expect("reference admission");
    let x = Tensor::from_fn(dims, |i| (i as f32) * 0.013 - 0.4);
    let codes = admitted.quantize(&x);
    let direct = admitted.model().run_quantized(&codes).expect("direct run");
    (codes, direct.as_slice().to_vec())
}

#[test]
fn rolling_updates_refuse_zero_requests_while_flipping() {
    let clock = Arc::new(FakeClock::new(1));
    let cluster =
        Cluster::start_with_clock(immediate_config(4, no_hedge()), Arc::<FakeClock>::clone(&clock));

    // Version chain: the base MLP, then progressively sparser prunes.
    let (v1, dims) = t2c_core::zoo::tiny_mlp();
    let updates: Vec<(IntModel, Vec<usize>)> =
        [0.5f32, 0.6, 0.7, 0.8, 0.9].iter().map(|&s| t2c_core::zoo::tiny_mlp_pruned(s)).collect();
    let (codes, direct_v1) = codes_and_direct(&v1, &dims);
    let mut allowed: Vec<Vec<i32>> = vec![direct_v1];
    for (m, d) in &updates {
        allowed.push(codes_and_direct(m, d).1);
    }
    cluster.deploy("mlp", v1, &dims).expect("deploy v1");

    // Hammer the route from four client threads while the main thread
    // flips through five versions. Every single request must resolve
    // with some version's exact output — zero refusals, zero errors.
    let stop = Arc::new(AtomicBool::new(false));
    let mut clients = Vec::new();
    for _ in 0..4 {
        let cluster = cluster.clone();
        let codes = codes.clone();
        let allowed = allowed.clone();
        let stop = Arc::clone(&stop);
        clients.push(std::thread::spawn(move || {
            let mut served = 0u64;
            while !stop.load(Ordering::Acquire) {
                let out = cluster.infer("mlp", codes.clone()).expect("no refusals during flips");
                let out = out.as_slice().to_vec();
                assert!(allowed.contains(&out), "output matches no deployed version: {out:?}");
                served += 1;
            }
            served
        }));
    }
    for (i, (model, _)) in updates.iter().enumerate() {
        // Tick the shared clock so each flip happens at a distinct
        // instant, and give the clients a few scheduling quanta of real
        // time to land requests astride the flip.
        clock.advance(1_000_000);
        std::thread::sleep(std::time::Duration::from_millis(20));
        cluster.update("mlp", model.clone()).expect("rolling update");
        assert_eq!(cluster.version("mlp"), Some(i as u64 + 2), "version advances per flip");
    }
    std::thread::sleep(std::time::Duration::from_millis(20));
    stop.store(true, Ordering::Release);
    let served: u64 = clients.into_iter().map(|t| t.join().expect("client thread")).sum();
    let stats = cluster.shutdown();
    assert!(served > 0, "clients must actually exercise the flips");
    assert_eq!(stats.completed, served, "every admitted request resolved exactly once");
}

#[test]
fn killing_a_replica_mid_stream_loses_no_admitted_requests() {
    let clock = Arc::new(FakeClock::new(1));
    let cluster =
        Cluster::start_with_clock(immediate_config(4, no_hedge()), Arc::<FakeClock>::clone(&clock));
    let (model, dims) = t2c_core::zoo::tiny_mlp();
    let (codes, direct) = codes_and_direct(&model, &dims);
    cluster.deploy("mlp", model, &dims).expect("deploy");

    let stop = Arc::new(AtomicBool::new(false));
    let mut clients = Vec::new();
    for _ in 0..4 {
        let cluster = cluster.clone();
        let codes = codes.clone();
        let direct = direct.clone();
        let stop = Arc::clone(&stop);
        clients.push(std::thread::spawn(move || {
            let mut served = 0u64;
            while !stop.load(Ordering::Acquire) {
                let out = cluster.infer("mlp", codes.clone()).expect("kill must not lose requests");
                assert_eq!(out.as_slice(), &direct[..]);
                served += 1;
            }
            served
        }));
    }
    std::thread::sleep(std::time::Duration::from_millis(20));
    // Kill two of the four replicas mid-stream; the survivors re-admit
    // the model (consistent-hash re-placement) and requests re-route.
    assert!(cluster.kill_replica(0), "replica 0 starts live");
    std::thread::sleep(std::time::Duration::from_millis(20));
    assert!(cluster.kill_replica(2), "replica 2 starts live");
    assert!(!cluster.kill_replica(2), "double-kill reports the replica gone");
    std::thread::sleep(std::time::Duration::from_millis(20));
    stop.store(true, Ordering::Release);
    let served: u64 = clients.into_iter().map(|t| t.join().expect("client thread")).sum();
    let stats = cluster.stats();
    assert!(served > 0);
    assert_eq!(stats.live_replicas, 2, "two replicas survive");
    assert_eq!(stats.completed, served, "drained + re-routed, nothing lost");
    cluster.shutdown();
}

#[test]
fn hedged_requests_fire_and_first_response_wins() {
    // An aggressive 1ns default hedge delay makes effectively every
    // request hedge; with replication 2 the duplicate lands on the other
    // holder. Results must stay exact and singular.
    let clock = Arc::new(FakeClock::new(1));
    let hedge = HedgeConfig {
        min_samples: u64::MAX,
        default_delay_ns: 1,
        min_delay_ns: 1,
        ..HedgeConfig::default()
    };
    let cluster =
        Cluster::start_with_clock(immediate_config(4, hedge), Arc::<FakeClock>::clone(&clock));
    let (model, dims) = t2c_core::zoo::tiny_mlp();
    let (codes, direct) = codes_and_direct(&model, &dims);
    cluster.deploy("mlp", model, &dims).expect("deploy");

    for _ in 0..50 {
        let out = cluster.infer("mlp", codes.clone()).expect("hedged request resolves");
        assert_eq!(out.as_slice(), &direct[..]);
    }
    let stats = cluster.shutdown();
    assert_eq!(stats.completed, 50);
    assert!(stats.hedges > 0, "the 1ns delay must have fired hedges, got {stats:?}");
    assert!(stats.hedge_wins <= stats.hedges);
}

#[test]
fn cluster_stats_and_catalog_reporting() {
    let cluster = Cluster::start(immediate_config(3, no_hedge()));
    let (model, dims) = t2c_core::zoo::tiny_mlp();
    cluster.deploy("mlp", model.clone(), &dims).expect("deploy");
    assert_eq!(cluster.models(), vec!["mlp".to_string()]);
    assert_eq!(cluster.version("mlp"), Some(1));
    assert!(cluster.version("ghost").is_none());
    // Duplicate deploys are refused; updates of unknown models are refused.
    assert!(cluster.deploy("mlp", model.clone(), &dims).is_err());
    assert!(cluster.update("ghost", model).is_err());
    assert_eq!(cluster.stats().live_replicas, 3);
    let stats = cluster.shutdown();
    assert_eq!(stats.live_replicas, 0, "shutdown drains every replica");
    // Shutdown is idempotent.
    let again = cluster.shutdown();
    assert_eq!(again.live_replicas, 0);
}
