//! Property-based tests: consistent-hash placement invariants.
//!
//! Placement must be a pure function of model name + ring membership,
//! and membership changes must reshuffle placements *boundedly* — these
//! are the properties that make rolling membership changes cheap (at
//! most one model copy moves per placement per membership event).

use proptest::prelude::*;
use t2c_cluster::HashRing;

/// Builds a ring over the given replica ids (deduplicated by the ring).
fn ring_of(ids: &[usize], vnodes: usize) -> HashRing {
    let mut ring = HashRing::new(vnodes);
    for &id in ids {
        ring.add_replica(id);
    }
    ring
}

/// True when `survivors` appear in `after` in the same relative order.
fn order_preserved(survivors: &[usize], after: &[usize]) -> bool {
    let positions: Vec<usize> =
        survivors.iter().filter_map(|s| after.iter().position(|a| a == s)).collect();
    positions.len() == survivors.len() && positions.windows(2).all(|w| w[0] < w[1])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn placement_is_deterministic_and_distinct(
        ids in proptest::collection::vec(0usize..32, 1..10),
        model_seed in 0u32..1000,
        r in 1usize..5,
    ) {
        let ring = ring_of(&ids, 48);
        let model = format!("model-{model_seed}");
        let a = ring.place(&model, r);
        let b = ring.place(&model, r);
        prop_assert_eq!(&a, &b, "placement must be pure");
        prop_assert_eq!(a.len(), r.min(ring.len()), "holder count is min(r, members)");
        for (i, x) in a.iter().enumerate() {
            prop_assert!(!a[..i].contains(x), "holders must be distinct");
            prop_assert!(ring.members().contains(x), "holders must be members");
        }
    }

    #[test]
    fn adding_a_replica_reshuffles_boundedly(
        ids in proptest::collection::vec(0usize..32, 1..10),
        new_id in 32usize..40,
        model_seed in 0u32..1000,
        r in 1usize..5,
    ) {
        let ring = ring_of(&ids, 48);
        let model = format!("model-{model_seed}");
        let before = ring.place(&model, r);
        let mut grown = ring.clone();
        grown.add_replica(new_id);
        let after = grown.place(&model, r);

        // Every new holder was an old holder or IS the new replica —
        // an add never shuffles placement onto unrelated replicas.
        for h in &after {
            prop_assert!(
                before.contains(h) || *h == new_id,
                "add introduced unrelated holder {h}: {before:?} -> {after:?}"
            );
        }
        // Old holders that survive keep their relative preference order.
        let survivors: Vec<usize> =
            before.iter().copied().filter(|h| after.contains(h)).collect();
        prop_assert!(
            order_preserved(&survivors, &after),
            "survivor order changed: {before:?} -> {after:?}"
        );
        // At most one old holder is displaced (the new replica can claim
        // at most its own slot in the preference list).
        let displaced = before.iter().filter(|h| !after.contains(h)).count();
        prop_assert!(displaced <= 1, "add displaced {displaced} holders: {before:?} -> {after:?}");
    }

    #[test]
    fn removing_a_replica_reshuffles_boundedly(
        ids in proptest::collection::vec(0usize..32, 2..10),
        victim_idx in 0usize..10,
        model_seed in 0u32..1000,
        r in 1usize..5,
    ) {
        let ring = ring_of(&ids, 48);
        let members = ring.members();
        let victim = members[victim_idx % members.len()];
        let model = format!("model-{model_seed}");
        let before = ring.place(&model, r);
        let mut shrunk = ring.clone();
        shrunk.remove_replica(victim);
        let after = shrunk.place(&model, r);

        // Surviving old holders stay, in order, as a prefix subsequence;
        // at most one fresh replica is appended to restore R.
        let survivors: Vec<usize> =
            before.iter().copied().filter(|&h| h != victim).collect();
        prop_assert!(
            order_preserved(&survivors, &after),
            "survivor order changed: {before:?} -> {after:?} (removed {victim})"
        );
        let fresh = after.iter().filter(|h| !before.contains(h)).count();
        prop_assert!(
            fresh <= 1,
            "remove introduced {fresh} fresh holders: {before:?} -> {after:?} (removed {victim})"
        );
        // If the victim held the model and capacity remains, the holder
        // count is restored.
        prop_assert_eq!(after.len(), r.min(shrunk.len()));
    }

    #[test]
    fn membership_round_trip_restores_placement(
        ids in proptest::collection::vec(0usize..32, 1..10),
        extra in 32usize..40,
        model_seed in 0u32..1000,
        r in 1usize..5,
    ) {
        // add(x) then remove(x) is placement-neutral: the ring is a pure
        // function of its membership set, not of membership history.
        let ring = ring_of(&ids, 48);
        let model = format!("model-{model_seed}");
        let before = ring.place(&model, r);
        let mut churned = ring.clone();
        churned.add_replica(extra);
        churned.remove_replica(extra);
        prop_assert_eq!(before, churned.place(&model, r));
    }
}
