//! The replicated serving runtime: N in-process `t2c-serve` replicas
//! behind the pure [`Router`].
//!
//! Each replica is a full serve stack — its own lint-gated
//! [`ModelRegistry`] and [`Server`] (batcher + worker pool). The cluster
//! deploys a model by admitting it (through the replica's own lint gate)
//! on the R replicas the placement ring names, and routes each request
//! to the least-loaded healthy holder. Everything stateful-and-pure
//! lives in the router behind one mutex; this module owns the threads,
//! clocks and retries:
//!
//! * **Retry** — synchronous rejections and drain races
//!   (`Busy`, `ShuttingDown`, `ModelPoisoned`, holder-local
//!   `ModelNotFound`) re-route to another holder, bounded by
//!   [`ClusterConfig::max_attempts`]. This is what makes a mid-run
//!   replica kill lossless: work queued on the dying replica drains to
//!   completion, work racing the kill re-routes.
//! * **Hedging** — when the router supplies a hedge budget and the
//!   primary hasn't answered within it, a duplicate fires on another
//!   holder and the first response wins; the abandoned attempt is
//!   reaped in the background so outstanding counts stay truthful.
//! * **Rolling updates** — [`Cluster::update`] admits version N+1 under
//!   a versioned registry name on its own fresh placement, flips the
//!   route atomically, then evicts version N from its old holders.
//!   In-flight requests hold `Arc`s to the old admitted model and
//!   complete; no request observes a refusal during the flip.
//! * **Health** — a lazy, rate-limited poll of each replica's
//!   [`StatsSnapshot`] feeds the router queue depth, breaker poisonings
//!   and deadline-miss/panic deltas.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::Duration;

use t2c_core::IntModel;
use t2c_serve::{
    AdmissionError, Clock, Handle, ModelRegistry, PendingResponse, ServeError, Server,
    ServerConfig, StatsSnapshot, SystemClock,
};
use t2c_tensor::Tensor;

use crate::router::{ReplicaObservation, Router, RouterConfig};

/// Cluster-level policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Replicas to start.
    pub replicas: usize,
    /// Routing policy (replication factor, health thresholds, hedging).
    pub router: RouterConfig,
    /// Per-replica serve runtime configuration.
    pub server: ServerConfig,
    /// Total submission attempts per request (first try + re-routes).
    pub max_attempts: usize,
    /// Minimum interval between replica health polls.
    pub health_refresh_ns: u64,
    /// Poll granularity while racing a hedged pair.
    pub hedge_poll_ns: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            replicas: 2,
            router: RouterConfig::default(),
            server: ServerConfig::default(),
            max_attempts: 6,
            health_refresh_ns: 20_000_000,
            hedge_poll_ns: 200_000,
        }
    }
}

/// One replica: its registry, submission handle, and (until killed) the
/// running server.
struct ReplicaCell {
    id: usize,
    registry: Arc<ModelRegistry>,
    handle: Handle,
    server: Mutex<Option<Server>>,
    /// Previous stats snapshot, for delta-feeding the router.
    last_stats: Mutex<StatsSnapshot>,
}

/// A deployed model's master copy — what rebalancing admits onto new
/// holders when membership changes.
struct CatalogEntry {
    model: IntModel,
    dims: Vec<usize>,
    version: u64,
}

/// Always-on cluster counters.
#[derive(Debug, Default)]
struct ClusterCounters {
    completed: AtomicU64,
    retries: AtomicU64,
    hedges: AtomicU64,
    hedge_wins: AtomicU64,
}

/// Point-in-time cluster counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClusterStats {
    /// Requests the cluster resolved with a result.
    pub completed: u64,
    /// Re-routed submission attempts (rejections + drain races).
    pub retries: u64,
    /// Hedged duplicates fired.
    pub hedges: u64,
    /// Hedges whose duplicate beat the primary.
    pub hedge_wins: u64,
    /// Live replicas.
    pub live_replicas: usize,
}

struct Shared {
    cfg: ClusterConfig,
    clock: Arc<dyn Clock>,
    router: Mutex<Router>,
    replicas: RwLock<Vec<Option<Arc<ReplicaCell>>>>,
    catalog: Mutex<BTreeMap<String, CatalogEntry>>,
    counters: ClusterCounters,
    last_refresh: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The scale-out serving tier. Cheap to clone (all clones share state);
/// see the module docs for semantics.
#[derive(Clone)]
pub struct Cluster {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("replicas", &lock(&self.shared.router).replica_ids())
            .field("models", &lock(&self.shared.router).models())
            .finish_non_exhaustive()
    }
}

impl Cluster {
    /// Starts `cfg.replicas` serve runtimes with the production clock.
    pub fn start(cfg: ClusterConfig) -> Self {
        Self::start_with_clock(cfg, Arc::new(SystemClock::new()))
    }

    /// Starts the cluster with an injected clock — shared by the router
    /// and every replica runtime, so FakeClock tests control the whole
    /// tier's notion of time.
    pub fn start_with_clock(cfg: ClusterConfig, clock: Arc<dyn Clock>) -> Self {
        let n = cfg.replicas.max(1);
        let mut router = Router::new(cfg.router);
        let mut cells = Vec::with_capacity(n);
        for id in 0..n {
            router.add_replica(id);
            let registry = Arc::new(ModelRegistry::new());
            let server =
                Server::start_with_clock(Arc::clone(&registry), cfg.server, Arc::clone(&clock));
            cells.push(Some(Arc::new(ReplicaCell {
                id,
                registry,
                handle: server.handle(),
                server: Mutex::new(Some(server)),
                last_stats: Mutex::new(StatsSnapshot::default()),
            })));
        }
        Cluster {
            shared: Arc::new(Shared {
                cfg,
                clock,
                router: Mutex::new(router),
                replicas: RwLock::new(cells),
                catalog: Mutex::new(BTreeMap::new()),
                counters: ClusterCounters::default(),
                last_refresh: AtomicU64::new(0),
            }),
        }
    }

    fn cell(&self, id: usize) -> Option<Arc<ReplicaCell>> {
        let replicas = self.shared.replicas.read().unwrap_or_else(PoisonError::into_inner);
        replicas.get(id).and_then(Option::clone)
    }

    /// Admits `internal` (cloned from the catalog master) on each listed
    /// replica, through the replica's own lint gate. Already-admitted
    /// holders are fine (idempotent); vanished replicas are skipped.
    fn admit_on(&self, placements: &[(String, String, usize)]) -> Result<(), AdmissionError> {
        let catalog = lock(&self.shared.catalog);
        for (model, internal, replica) in placements {
            let Some(entry) = catalog.get(model) else { continue };
            let Some(cell) = self.cell(*replica) else { continue };
            match cell.registry.admit(internal, entry.model.clone(), &entry.dims) {
                Ok(_) | Err(AdmissionError::Duplicate(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Deploys a new model: lint-gated admission on its R placed holders,
    /// then the route goes live. `input_dims` is the single-sample shape
    /// (batch axis 1), as for `ModelRegistry::admit`.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::Duplicate`] if the name is already deployed; any
    /// lint-gate refusal from the holders (nothing goes live on failure).
    pub fn deploy(
        &self,
        name: &str,
        model: IntModel,
        input_dims: &[usize],
    ) -> Result<(), AdmissionError> {
        if lock(&self.shared.catalog).contains_key(name) {
            return Err(AdmissionError::Duplicate(name.to_string()));
        }
        self.roll(name, model, input_dims.to_vec(), 1)
    }

    /// Rolling update to a new version of a deployed model: admit on R
    /// fresh placements, flip the route atomically, evict the old
    /// version. In-flight requests on the old version complete; no
    /// request is refused during the flip.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::NotFound`] for unknown names; lint-gate
    /// refusals leave the old version serving, untouched.
    pub fn update(&self, name: &str, model: IntModel) -> Result<(), AdmissionError> {
        let (dims, version) = {
            let catalog = lock(&self.shared.catalog);
            let entry =
                catalog.get(name).ok_or_else(|| AdmissionError::NotFound(name.to_string()))?;
            (entry.dims.clone(), entry.version + 1)
        };
        self.roll(name, model, dims, version)
    }

    /// Shared deploy/update path: gate on the fresh placement, then flip.
    fn roll(
        &self,
        name: &str,
        model: IntModel,
        dims: Vec<usize>,
        version: u64,
    ) -> Result<(), AdmissionError> {
        let internal = format!("{name}@v{version}");
        let holders = lock(&self.shared.router).plan_placement(&internal);
        if holders.is_empty() {
            return Err(AdmissionError::BadModel("cluster has no live replicas".into()));
        }
        // Admit the new version everywhere it will live *before* any
        // traffic can route to it; unwind the partial admissions if any
        // holder's gate refuses.
        let mut admitted: Vec<usize> = Vec::with_capacity(holders.len());
        for &h in &holders {
            let Some(cell) = self.cell(h) else { continue };
            match cell.registry.admit(&internal, model.clone(), &dims) {
                Ok(_) => admitted.push(h),
                Err(e) => {
                    for &a in &admitted {
                        if let Some(cell) = self.cell(a) {
                            cell.registry.remove(&internal);
                        }
                    }
                    return Err(e);
                }
            }
        }
        // The flip is atomic under the router lock: a pick either sees
        // the old internal name (and its holders still serve it) or the
        // new one (already admitted above). Zero refusals by design.
        let flip = lock(&self.shared.router).flip_route(name, internal);
        if let Some(old) = flip.retired {
            for &h in &flip.retired_holders {
                if let Some(cell) = self.cell(h) {
                    // In-flight requests hold their own Arc to the old
                    // admitted model and complete against it.
                    cell.registry.remove(&old);
                }
            }
            t2c_obs::counter_add("cluster.route_flips", 1);
        }
        let mut catalog = lock(&self.shared.catalog);
        catalog.insert(name.to_string(), CatalogEntry { model, dims, version });
        Ok(())
    }

    /// Kills a replica: drains it from routing, re-places its models on
    /// the survivors, and shuts the runtime down gracefully (queued work
    /// resolves). Admitted requests are never lost: queued ones drain,
    /// racing ones re-route.
    ///
    /// Returns `false` if the replica was already gone.
    pub fn kill_replica(&self, id: usize) -> bool {
        let preview = {
            let mut router = lock(&self.shared.router);
            if !router.replica_ids().contains(&id) {
                return false;
            }
            // Draining closes the pick window for this replica while the
            // future holders are prepared; routes still point at the
            // survivors, so service never pauses.
            router.set_draining(id, true);
            router.preview_remove(id)
        };
        // Admit displaced models onto their future holders *before* the
        // routes flip — admission re-runs the lint gate, which is far too
        // slow to leave a live route pointing at an unprepared holder.
        self.admit_on(&preview).ok();
        let needed = lock(&self.shared.router).remove_replica(id);
        // Backstop for routes flipped between the preview and the removal.
        self.admit_on(&needed).ok();
        let cell = {
            let mut replicas = self.shared.replicas.write().unwrap_or_else(PoisonError::into_inner);
            replicas.get_mut(id).and_then(Option::take)
        };
        let Some(cell) = cell else { return false };
        if let Some(server) = lock(&cell.server).take() {
            // Graceful drain: every request already admitted to this
            // replica resolves before shutdown returns.
            server.shutdown();
        }
        t2c_obs::counter_add("cluster.replicas_killed", 1);
        true
    }

    /// Names of the deployed (public) models.
    pub fn models(&self) -> Vec<String> {
        lock(&self.shared.router).models()
    }

    /// The live version number of a deployed model.
    pub fn version(&self, name: &str) -> Option<u64> {
        lock(&self.shared.router).route_version(name)
    }

    /// Current cluster counters.
    pub fn stats(&self) -> ClusterStats {
        let c = &self.shared.counters;
        let live = {
            let replicas = self.shared.replicas.read().unwrap_or_else(PoisonError::into_inner);
            replicas.iter().flatten().count()
        };
        ClusterStats {
            completed: c.completed.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            hedges: c.hedges.load(Ordering::Relaxed),
            hedge_wins: c.hedge_wins.load(Ordering::Relaxed),
            live_replicas: live,
        }
    }

    /// Per-replica runtime counters for the live replicas, keyed by
    /// replica id — the operator's per-shard view (batch amortization,
    /// rejection counts, queue depths).
    pub fn replica_stats(&self) -> Vec<(usize, StatsSnapshot)> {
        let replicas = self.shared.replicas.read().unwrap_or_else(PoisonError::into_inner);
        replicas.iter().flatten().map(|cell| (cell.id, cell.handle.stats())).collect()
    }

    /// Rate-limited health poll: feeds each replica's stats deltas and
    /// breaker state into the router.
    fn maybe_refresh_health(&self) {
        let now = self.shared.clock.now_ns();
        let last = self.shared.last_refresh.load(Ordering::Relaxed);
        if now.saturating_sub(last) < self.shared.cfg.health_refresh_ns {
            return;
        }
        if self
            .shared
            .last_refresh
            .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return; // another thread is refreshing
        }
        let cells: Vec<Arc<ReplicaCell>> = {
            let replicas = self.shared.replicas.read().unwrap_or_else(PoisonError::into_inner);
            replicas.iter().flatten().cloned().collect()
        };
        for cell in cells {
            let snap = cell.handle.stats();
            let prev = {
                let mut last = lock(&cell.last_stats);
                std::mem::replace(&mut *last, snap)
            };
            let poisoned =
                cell.registry.health().values().filter(|(poisoned, _)| *poisoned).count() as u64;
            let obs = ReplicaObservation {
                queue_depth: snap.queue_depth,
                completed: snap.completed.saturating_sub(prev.completed),
                deadline_missed: snap.deadline_exceeded.saturating_sub(prev.deadline_exceeded),
                panics: snap.panics.saturating_sub(prev.panics),
                poisoned_models: poisoned,
            };
            lock(&self.shared.router).observe(cell.id, obs, now);
            if t2c_obs::enabled() {
                t2c_obs::gauge_set(
                    &format!("cluster.replica{}.queue_depth", cell.id),
                    snap.queue_depth as f64,
                );
            }
        }
    }

    /// Whether a rejection should be retried on another holder.
    fn retryable(e: &ServeError) -> bool {
        matches!(
            e,
            ServeError::Busy
                | ServeError::ShuttingDown
                | ServeError::ModelPoisoned(_)
                | ServeError::ModelNotFound(_)
        )
    }

    /// Routed inference with the replicas' default deadline policy.
    ///
    /// # Errors
    ///
    /// [`ServeError::ModelNotFound`] for undeployed models; otherwise
    /// whatever the final attempt resolved to.
    pub fn infer(&self, model: &str, input: Tensor<i32>) -> Result<Tensor<i32>, ServeError> {
        self.infer_deadline(model, &input, 0)
    }

    /// Routed inference with an explicit deadline budget from now. The
    /// budget spans retries and hedges — it is the caller's end-to-end
    /// deadline, not a per-attempt one.
    ///
    /// # Errors
    ///
    /// As [`Self::infer`], plus [`ServeError::DeadlineExceeded`].
    pub fn infer_within(
        &self,
        model: &str,
        input: Tensor<i32>,
        budget_ns: u64,
    ) -> Result<Tensor<i32>, ServeError> {
        let deadline = self.shared.clock.now_ns().saturating_add(budget_ns.max(1));
        self.infer_deadline(model, &input, deadline)
    }

    /// The retry loop. `deadline_ns == 0` means no deadline.
    fn infer_deadline(
        &self,
        model: &str,
        input: &Tensor<i32>,
        deadline_ns: u64,
    ) -> Result<Tensor<i32>, ServeError> {
        let mut last_err = ServeError::ShuttingDown;
        for attempt in 0..self.shared.cfg.max_attempts.max(1) {
            self.maybe_refresh_health();
            let now = self.shared.clock.now_ns();
            if deadline_ns > 0 && now >= deadline_ns {
                return Err(ServeError::DeadlineExceeded);
            }
            if attempt > 0 {
                self.shared.counters.retries.fetch_add(1, Ordering::Relaxed);
                t2c_obs::counter_add("cluster.retries", 1);
            }
            // A pick-level ModelNotFound means the model has no route at
            // all — terminal. (A *submit*-level ModelNotFound is a
            // holder-local race with rebalancing and is retried.)
            let pick = match lock(&self.shared.router).pick(model, now) {
                Ok(p) => p,
                Err(e @ ServeError::ModelNotFound(_)) => return Err(e),
                Err(e) if Self::retryable(&e) => {
                    last_err = e;
                    continue;
                }
                Err(e) => return Err(e),
            };
            match self.attempt(model, pick, input, deadline_ns) {
                Ok(result) => {
                    self.shared.counters.completed.fetch_add(1, Ordering::Relaxed);
                    return Ok(result);
                }
                Err(e) if Self::retryable(&e) => last_err = e,
                Err(e) => return Err(e),
            }
        }
        Err(last_err)
    }

    /// One routed attempt: submit to the picked replica, hedged wait.
    fn attempt(
        &self,
        model: &str,
        pick: crate::router::Pick,
        input: &Tensor<i32>,
        deadline_ns: u64,
    ) -> Result<Tensor<i32>, ServeError> {
        let (pending, start) =
            match self.submit_to(pick.replica, &pick.internal, input, deadline_ns) {
                Ok(p) => p,
                Err(e) => {
                    lock(&self.shared.router).note_result(model, pick.replica, None);
                    return Err(e);
                }
            };
        // No hedge budget: plain wait.
        let Some(delay) = pick.hedge_delay_ns else {
            return self.settle(model, pick.replica, start, pending.wait());
        };
        if let Some(result) = pending.wait_timeout(Duration::from_nanos(delay.max(1))) {
            return self.settle(model, pick.replica, start, result);
        }
        // Primary is slow: fire the duplicate on another holder.
        let hedge =
            lock(&self.shared.router).pick_hedge(model, pick.replica, self.shared.clock.now_ns());
        let Some(hedge) = hedge else {
            return self.settle(model, pick.replica, start, pending.wait());
        };
        self.shared.counters.hedges.fetch_add(1, Ordering::Relaxed);
        t2c_obs::counter_add("cluster.hedges", 1);
        let hedged = match self.submit_to(hedge.replica, &hedge.internal, input, deadline_ns) {
            Ok((p, s)) => (p, s),
            Err(_) => {
                lock(&self.shared.router).note_result(model, hedge.replica, None);
                return self.settle(model, pick.replica, start, pending.wait());
            }
        };
        self.race(model, (pick.replica, pending, start), (hedge.replica, hedged.0, hedged.1))
    }

    /// Submits to one replica, translating the cluster deadline into the
    /// replica's remaining budget.
    fn submit_to(
        &self,
        replica: usize,
        internal: &str,
        input: &Tensor<i32>,
        deadline_ns: u64,
    ) -> Result<(PendingResponse, u64), ServeError> {
        let cell = self.cell(replica).ok_or(ServeError::ShuttingDown)?;
        let start = self.shared.clock.now_ns();
        let pending = if deadline_ns == 0 {
            cell.handle.submit(internal, input.clone())?
        } else {
            let remaining = deadline_ns.saturating_sub(start);
            if remaining == 0 {
                return Err(ServeError::DeadlineExceeded);
            }
            cell.handle.submit_within(internal, input.clone(), remaining)?
        };
        Ok((pending, start))
    }

    /// Books one resolved attempt into the router and returns it.
    fn settle(
        &self,
        model: &str,
        replica: usize,
        start_ns: u64,
        result: Result<Tensor<i32>, ServeError>,
    ) -> Result<Tensor<i32>, ServeError> {
        let latency = result.is_ok().then(|| self.shared.clock.now_ns().saturating_sub(start_ns));
        lock(&self.shared.router).note_result(model, replica, latency);
        result
    }

    /// Races the primary against its hedge: first success wins; if one
    /// fails, the other gets to finish; if both fail, the primary's
    /// error stands. The abandoned in-flight attempt is reaped by a
    /// detached thread so its outstanding count resolves truthfully.
    fn race(
        &self,
        model: &str,
        primary: (usize, PendingResponse, u64),
        hedge: (usize, PendingResponse, u64),
    ) -> Result<Tensor<i32>, ServeError> {
        let poll = Duration::from_nanos(self.shared.cfg.hedge_poll_ns.clamp(50_000, 5_000_000));
        let (p_replica, p_pending, p_start) = primary;
        let (h_replica, h_pending, h_start) = hedge;
        let mut p_res: Option<Result<Tensor<i32>, ServeError>> = None;
        let mut h_res: Option<Result<Tensor<i32>, ServeError>> = None;
        loop {
            if p_res.is_none() {
                p_res = p_pending.wait_timeout(poll);
            }
            if matches!(p_res, Some(Ok(_))) || (p_res.is_some() && h_res.is_some()) {
                break;
            }
            if h_res.is_none() {
                h_res = h_pending.wait_timeout(poll);
            }
            if matches!(h_res, Some(Ok(_))) || (p_res.is_some() && h_res.is_some()) {
                break;
            }
        }
        // Loop exit invariant: primary succeeded, hedge succeeded, or
        // both resolved (with at least the primary's error in hand).
        let hedge_won = matches!(h_res, Some(Ok(_))) && !matches!(p_res, Some(Ok(_)));
        if hedge_won {
            self.shared.counters.hedge_wins.fetch_add(1, Ordering::Relaxed);
            t2c_obs::counter_add("cluster.hedge_wins", 1);
        }
        // Settle whatever resolved; reap whatever is still in flight.
        let settled_primary = match p_res {
            Some(res) => Some(self.settle(model, p_replica, p_start, res)),
            None => {
                self.reap(model, p_replica, p_pending, p_start);
                None
            }
        };
        let settled_hedge = match h_res {
            Some(res) => Some(self.settle(model, h_replica, h_start, res)),
            None => {
                self.reap(model, h_replica, h_pending, h_start);
                None
            }
        };
        let winner = if hedge_won { settled_hedge } else { settled_primary };
        winner.unwrap_or_else(|| {
            Err(ServeError::Internal("hedged race exited with no resolved attempt".into()))
        })
    }

    /// Detached background wait for an abandoned hedge attempt.
    fn reap(&self, model: &str, replica: usize, pending: PendingResponse, start_ns: u64) {
        let shared = Arc::clone(&self.shared);
        let model = model.to_string();
        std::thread::Builder::new()
            .name("t2c-cluster-reaper".into())
            .spawn(move || {
                let result = pending.wait();
                let latency =
                    result.is_ok().then(|| shared.clock.now_ns().saturating_sub(start_ns));
                lock(&shared.router).note_result(&model, replica, latency);
            })
            .ok();
    }

    /// Shuts every live replica down gracefully (idempotent): queued
    /// requests drain and resolve first. Returns the final counters.
    pub fn shutdown(&self) -> ClusterStats {
        let cells: Vec<Arc<ReplicaCell>> = {
            let mut replicas = self.shared.replicas.write().unwrap_or_else(PoisonError::into_inner);
            replicas.iter_mut().filter_map(Option::take).collect()
        };
        for cell in cells {
            lock(&self.shared.router).remove_replica(cell.id);
            if let Some(server) = lock(&cell.server).take() {
                server.shutdown();
            }
        }
        self.stats()
    }
}

impl Drop for Shared {
    fn drop(&mut self) {
        let replicas = self.replicas.get_mut().unwrap_or_else(PoisonError::into_inner);
        for cell in replicas.iter_mut().filter_map(Option::take) {
            if let Some(server) = lock(&cell.server).take() {
                server.shutdown();
            }
        }
    }
}

impl t2c_serve::InferBackend for Cluster {
    fn infer_wire(
        &self,
        model: &str,
        input: Tensor<i32>,
        deadline_ms: u32,
    ) -> Result<Tensor<i32>, ServeError> {
        match deadline_ms {
            0 => self.infer(model, input),
            ms => self.infer_within(model, input, u64::from(ms) * 1_000_000),
        }
    }
}
