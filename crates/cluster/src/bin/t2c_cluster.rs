//! `t2c-cluster` — hosts the e2e model zoo on a replicated serving tier
//! behind the same length-prefixed TCP protocol as `t2c-serve`, so
//! `TcpClient` (and any wire-speaking client) works unchanged.
//!
//! Every replica runs its own lint-gated registry and micro-batching
//! runtime; the cluster places each model on R replicas by consistent
//! hash and routes requests to the healthiest, least-loaded holder.
//!
//! ```sh
//! t2c-cluster [--port P] [--replicas N] [--replication R] [--workers W]
//!             [--max-batch B] [--max-delay-us U] [--queue-cap C]
//!             [--mlp-only] [--smoke]
//! ```
//!
//! `--smoke` binds an ephemeral port and exercises the whole tier:
//! TCP round-trips for every hosted model (checked against direct
//! execution), a rolling update flip, a replica kill with continued
//! service, and a structured rejection — then drains and exits. The CI
//! gate `scripts/verify.sh` runs exactly this.

use std::net::TcpListener;
use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use t2c_cluster::{Cluster, ClusterConfig, RouterConfig};
use t2c_serve::{
    serve_tcp_backend, BatchConfig, ModelRegistry, ServeError, ServerConfig, TcpClient,
};
use t2c_tensor::Tensor;

struct Options {
    port: u16,
    replicas: usize,
    replication: usize,
    workers: usize,
    max_batch: usize,
    max_delay_us: u64,
    queue_cap: usize,
    mlp_only: bool,
    smoke: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            port: 7434,
            replicas: 3,
            replication: 2,
            workers: 1,
            max_batch: 16,
            max_delay_us: 2_000,
            queue_cap: 256,
            mlp_only: false,
            smoke: false,
        }
    }
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    let usage = "usage: t2c-cluster [--port P] [--replicas N] [--replication R] [--workers W] \
                 [--max-batch B] [--max-delay-us U] [--queue-cap C] [--mlp-only] [--smoke]";
    let numeric = |args: &mut dyn Iterator<Item = String>, flag: &str| -> u64 {
        args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("{flag} needs a numeric value\n{usage}");
            exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--port" => opts.port = numeric(&mut args, "--port") as u16,
            "--replicas" => opts.replicas = numeric(&mut args, "--replicas") as usize,
            "--replication" => opts.replication = numeric(&mut args, "--replication") as usize,
            "--workers" => opts.workers = numeric(&mut args, "--workers") as usize,
            "--max-batch" => opts.max_batch = numeric(&mut args, "--max-batch") as usize,
            "--max-delay-us" => opts.max_delay_us = numeric(&mut args, "--max-delay-us"),
            "--queue-cap" => opts.queue_cap = numeric(&mut args, "--queue-cap") as usize,
            "--mlp-only" => opts.mlp_only = true,
            "--smoke" => opts.smoke = true,
            "--help" | "-h" => {
                println!("{usage}");
                exit(0);
            }
            other => {
                eprintln!("unknown argument `{other}`\n{usage}");
                exit(2);
            }
        }
    }
    opts
}

fn cluster_config(opts: &Options) -> ClusterConfig {
    ClusterConfig {
        replicas: opts.replicas,
        router: RouterConfig { replication: opts.replication, ..RouterConfig::default() },
        server: ServerConfig {
            batch: BatchConfig {
                max_batch: opts.max_batch,
                max_delay_ns: opts.max_delay_us * 1_000,
                queue_cap: opts.queue_cap,
            },
            workers: opts.workers,
            max_panics: 3,
            ..ServerConfig::default()
        },
        ..ClusterConfig::default()
    }
}

/// A zoo model builder: returns the integer model and its input dims.
type ZooBuilder = fn() -> (t2c_core::IntModel, Vec<usize>);

/// The hosted catalog: `(public name, builder)` pairs.
fn catalog(mlp_only: bool) -> Vec<(&'static str, ZooBuilder)> {
    let mut models: Vec<(&'static str, ZooBuilder)> = vec![("tiny-mlp", t2c_core::zoo::tiny_mlp)];
    if !mlp_only {
        models.extend(t2c_core::zoo::zoo());
    }
    models
}

/// Deploys the catalog onto the cluster and returns a client-side
/// reference registry: the same models admitted locally, used to
/// quantize inputs and compute the expected outputs each round trip is
/// checked against.
fn deploy_catalog(cluster: &Cluster, mlp_only: bool) -> Arc<ModelRegistry> {
    let reference = Arc::new(ModelRegistry::new());
    for (name, build) in catalog(mlp_only) {
        let (model, dims) = build();
        reference.admit(name, model.clone(), &dims).unwrap_or_else(|e| {
            eprintln!("reference admission of '{name}' failed: {e}");
            exit(1);
        });
        match cluster.deploy(name, model, &dims) {
            Ok(()) => println!("deployed '{name}' (input {dims:?})"),
            Err(e) => {
                eprintln!("cluster refused '{name}': {e}");
                exit(1);
            }
        }
    }
    reference
}

/// An in-grid synthetic request: a deterministic float ramp quantized
/// with the model's own input scale/spec.
fn sample_codes(model: &t2c_serve::AdmittedModel) -> Tensor<i32> {
    let x = Tensor::from_fn(model.input_dims(), |i| ((i % 89) as f32) * 0.011 - 0.44);
    model.quantize(&x)
}

/// Round-trips every reference model through the wire client and checks
/// the routed result against direct local execution.
fn check_round_trips(
    client: &mut TcpClient,
    reference: &ModelRegistry,
    phase: &str,
) -> Result<(), String> {
    for name in reference.names() {
        let model = reference.get(&name).expect("reference model");
        let codes = sample_codes(&model);
        let direct = model
            .model()
            .run_quantized(&codes)
            .map_err(|e| format!("direct run of '{name}': {e}"))?;
        match client.infer(&name, &codes, 30_000) {
            Ok(served) if served.as_slice() == direct.as_slice() => {
                println!("smoke[{phase}]: '{name}' round-trip ok ({:?})", served.dims());
            }
            Ok(_) => {
                return Err(format!("[{phase}] '{name}' routed result diverges from direct"));
            }
            Err(e) => return Err(format!("[{phase}] '{name}' round trip failed: {e}")),
        }
    }
    Ok(())
}

#[allow(clippy::too_many_lines)]
fn run_smoke(opts: &Options) -> Result<(), String> {
    let cluster = Arc::new(Cluster::start(cluster_config(opts)));
    let reference = deploy_catalog(&cluster, opts.mlp_only);
    let stop = Arc::new(AtomicBool::new(false));
    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind ephemeral port: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let accept = serve_tcp_backend(Arc::clone(&cluster), listener, Arc::clone(&stop))
        .map_err(|e| format!("start accept loop: {e}"))?;
    println!(
        "smoke: {} replica(s), replication {}, {} model(s) on {addr}",
        opts.replicas,
        opts.replication,
        reference.len()
    );
    let mut client = TcpClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;

    // Phase 1: every model routes and matches direct execution.
    check_round_trips(&mut client, &reference, "deploy")?;

    // Phase 2: rolling update — flip tiny-mlp to its pruned successor
    // and verify the route serves the new version.
    let (pruned, dims) = t2c_core::zoo::tiny_mlp_pruned(0.8);
    let pruned_ref = Arc::new(ModelRegistry::new());
    pruned_ref
        .admit("tiny-mlp", pruned.clone(), &dims)
        .map_err(|e| format!("reference admission of pruned mlp: {e}"))?;
    cluster.update("tiny-mlp", pruned).map_err(|e| format!("rolling update: {e}"))?;
    if cluster.version("tiny-mlp") != Some(2) {
        return Err(format!(
            "rolling update should leave tiny-mlp at v2, got {:?}",
            cluster.version("tiny-mlp")
        ));
    }
    check_round_trips(&mut client, &pruned_ref, "update")?;
    println!("smoke: rolling update flipped tiny-mlp to v2");

    // Phase 3: kill a replica mid-service; every model keeps serving
    // from the survivors (re-placed where needed).
    if !cluster.kill_replica(0) {
        return Err("replica 0 should have been live".into());
    }
    println!("smoke: killed replica 0, re-placing its models");
    check_round_trips(&mut client, &pruned_ref, "post-kill")?;
    let survivors = reference.names().into_iter().filter(|n| n != "tiny-mlp");
    for name in survivors {
        let model = reference.get(&name).expect("reference model");
        let codes = sample_codes(&model);
        client
            .infer(&name, &codes, 30_000)
            .map_err(|e| format!("[post-kill] '{name}' round trip failed: {e}"))?;
    }

    // Phase 4: structured rejection for unknown models.
    match client.infer("no-such-model", &Tensor::zeros(&[1, 4]), 0) {
        Err(ServeError::ModelNotFound(_)) => {
            println!("smoke: unknown model rejected with a structured status");
        }
        other => {
            return Err(format!("unknown model should reject with ModelNotFound, got {other:?}"));
        }
    }

    drop(client);
    stop.store(true, Ordering::Release);
    accept.join().ok();
    let stats = cluster.shutdown();
    println!(
        "smoke: drained — {} completed, {} retries, {} hedge(s) ({} won), {} live replica(s)",
        stats.completed, stats.retries, stats.hedges, stats.hedge_wins, stats.live_replicas
    );
    Ok(())
}

fn main() {
    let opts = parse_args();
    if opts.smoke {
        if let Err(msg) = run_smoke(&opts) {
            eprintln!("smoke FAILED: {msg}");
            exit(1);
        }
        println!("cluster smoke ok");
        return;
    }
    let cluster = Arc::new(Cluster::start(cluster_config(&opts)));
    deploy_catalog(&cluster, opts.mlp_only);
    let stop = Arc::new(AtomicBool::new(false));
    let listener = TcpListener::bind(("127.0.0.1", opts.port)).unwrap_or_else(|e| {
        eprintln!("bind 127.0.0.1:{}: {e}", opts.port);
        exit(1);
    });
    let addr = listener.local_addr().expect("local addr");
    let accept = match serve_tcp_backend(Arc::clone(&cluster), listener, Arc::clone(&stop)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("start accept loop: {e}");
            exit(1);
        }
    };
    println!(
        "t2c-cluster listening on {addr} ({} replica(s), {} model(s))",
        opts.replicas,
        cluster.models().len()
    );
    accept.join().ok();
    cluster.shutdown();
}
