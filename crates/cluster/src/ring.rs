//! Consistent-hash placement ring.
//!
//! Each replica owns `vnodes` points on a 64-bit hash circle; a model's
//! holders are the first `r` *distinct* replicas clockwise from the hash
//! of its name. Placement is a pure function of the model name and the
//! ring's membership — no clocks, no randomness — so every router
//! instance derives identical placements, and membership changes
//! reshuffle placements boundedly:
//!
//! * **add**: a model's new holder set is a subset of its old set plus
//!   the new replica, survivors keeping their relative order (at most
//!   one old holder is displaced);
//! * **remove**: the surviving old holders stay, in order, as a prefix
//!   pattern, with at most one fresh replica appended.
//!
//! Both properties are proptest-verified in `tests/placement.rs`.
//!
//! Hashing is FNV-1a (64-bit) — deterministic across processes and free
//! of dependencies; distribution quality over a few dozen replica ids ×
//! a few hundred virtual nodes is ample for placement.

use std::collections::BTreeSet;

/// 64-bit FNV-1a over a byte string, with an avalanche finalizer.
///
/// Raw FNV-1a on short near-identical strings (the vnode labels differ
/// only in trailing digits) leaves the high bits correlated, which skews
/// the ring; the xorshift-multiply finalizer diffuses every input bit
/// across the whole word.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// The placement ring. Replicas are dense small integers (the cluster's
/// replica ids); models are referenced by name.
#[derive(Debug, Clone)]
pub struct HashRing {
    vnodes: usize,
    /// Sorted `(point, replica)` pairs — the circle.
    points: Vec<(u64, usize)>,
    members: BTreeSet<usize>,
}

impl HashRing {
    /// An empty ring placing each replica at `vnodes` points (at least 1).
    pub fn new(vnodes: usize) -> Self {
        HashRing { vnodes: vnodes.max(1), points: Vec::new(), members: BTreeSet::new() }
    }

    /// Adds a replica's virtual nodes. Idempotent.
    pub fn add_replica(&mut self, id: usize) {
        if !self.members.insert(id) {
            return;
        }
        for v in 0..self.vnodes {
            let point = fnv1a(format!("replica-{id}#vnode-{v}").as_bytes());
            let at = self.points.partition_point(|&(p, r)| (p, r) < (point, id));
            self.points.insert(at, (point, id));
        }
    }

    /// Removes a replica's virtual nodes. Idempotent.
    pub fn remove_replica(&mut self, id: usize) {
        if self.members.remove(&id) {
            self.points.retain(|&(_, r)| r != id);
        }
    }

    /// Current members in id order.
    pub fn members(&self) -> Vec<usize> {
        self.members.iter().copied().collect()
    }

    /// Number of member replicas.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The first `r` distinct replicas clockwise from the model's hash —
    /// the model's holder set, in preference order. Returns fewer than
    /// `r` when the ring has fewer members; empty on an empty ring.
    pub fn place(&self, model: &str, r: usize) -> Vec<usize> {
        let want = r.min(self.members.len());
        let mut holders = Vec::with_capacity(want);
        if want == 0 {
            return holders;
        }
        let start = self.points.partition_point(|&(p, _)| p < fnv1a(model.as_bytes()));
        for i in 0..self.points.len() {
            let (_, replica) = self.points[(start + i) % self.points.len()];
            if !holders.contains(&replica) {
                holders.push(replica);
                if holders.len() == want {
                    break;
                }
            }
        }
        holders
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic_and_distinct() {
        let mut ring = HashRing::new(64);
        for id in 0..5 {
            ring.add_replica(id);
        }
        let a = ring.place("mobilenet_ptq", 3);
        let b = ring.place("mobilenet_ptq", 3);
        assert_eq!(a, b, "placement must be a pure function of name + ring");
        assert_eq!(a.len(), 3);
        let set: BTreeSet<usize> = a.iter().copied().collect();
        assert_eq!(set.len(), 3, "holders must be distinct");
        // Fewer members than r: everyone holds the model.
        let mut small = HashRing::new(64);
        small.add_replica(7);
        assert_eq!(small.place("m", 3), vec![7]);
        assert!(HashRing::new(64).place("m", 3).is_empty());
    }

    #[test]
    fn add_and_remove_are_idempotent() {
        let mut ring = HashRing::new(16);
        ring.add_replica(1);
        let points = ring.points.len();
        ring.add_replica(1);
        assert_eq!(ring.points.len(), points);
        ring.remove_replica(1);
        ring.remove_replica(1);
        assert!(ring.is_empty() && ring.points.is_empty());
    }

    #[test]
    fn models_spread_across_replicas() {
        let mut ring = HashRing::new(64);
        for id in 0..4 {
            ring.add_replica(id);
        }
        // With enough models, every replica should be *some* model's
        // primary — a basic non-degeneracy check on the hash spread.
        let primaries: BTreeSet<usize> =
            (0..32).map(|i| ring.place(&format!("model-{i}"), 1)[0]).collect();
        assert_eq!(primaries.len(), 4, "all replicas should own some placement");
    }
}
