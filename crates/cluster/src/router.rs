//! The cluster's routing brain: a pure state machine.
//!
//! Every decision — placement, health classification, load balancing,
//! hedge timing, route flips — is a deterministic function of the
//! router's state and an explicit `now_ns`, mirroring the serve
//! `MicroBatcher` discipline: tests drive it with hand-picked
//! timestamps and assert outcomes without sleeping. The cluster runtime
//! (`crate::Cluster`) owns a `Mutex<Router>` and is the only place
//! threads and clocks appear.
//!
//! Responsibilities:
//!
//! * **Placement** — each model maps to `replication` holders via the
//!   consistent-hash [`HashRing`]; versioned routes re-place on the
//!   *versioned* internal name, which is what gives rolling updates
//!   fresh placements.
//! * **Health** — per-replica health derives from the serve
//!   [`StatsSnapshot`](t2c_serve::StatsSnapshot) deltas the runtime
//!   feeds in: queue depth, circuit-breaker poisonings, and the
//!   deadline-miss/panic rate over a sliding [`RateWindow`].
//! * **Load balancing** — picks the least-outstanding healthy holder;
//!   falls back to degraded (but not draining) holders rather than
//!   refusing.
//! * **Hedging** — after enough latency samples, the hedge delay is a
//!   multiple of the route's observed p99; before that, a configured
//!   default. The runtime fires the duplicate attempt; the router just
//!   answers "when" and "where".

use std::collections::BTreeMap;

use t2c_obs::RateWindow;
use t2c_serve::ServeError;

use crate::ring::HashRing;

/// Health thresholds for classifying a replica.
#[derive(Debug, Clone, Copy)]
pub struct HealthConfig {
    /// Queue depth above which a replica counts as degraded.
    pub max_queue_depth: u64,
    /// Bad-outcome rate (deadline misses + panics over completions)
    /// above which a replica counts as degraded.
    pub max_bad_rate: f64,
    /// Sliding window the bad-outcome rate is measured over.
    pub window_ns: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig { max_queue_depth: 64, max_bad_rate: 0.2, window_ns: 1_000_000_000 }
    }
}

/// Hedged-request timing policy.
#[derive(Debug, Clone, Copy)]
pub struct HedgeConfig {
    /// Latency samples a route needs before p99-based hedging kicks in.
    pub min_samples: u64,
    /// Hedge delay as a multiple of the route's p99 latency.
    pub delay_factor: f64,
    /// Floor on the computed hedge delay.
    pub min_delay_ns: u64,
    /// Delay used before `min_samples` observations (0 = don't hedge
    /// until the p99 estimate exists).
    pub default_delay_ns: u64,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            min_samples: 64,
            delay_factor: 1.0,
            min_delay_ns: 200_000,
            default_delay_ns: 0,
        }
    }
}

/// Router construction knobs.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Holders per model (replication factor R).
    pub replication: usize,
    /// Virtual nodes per replica on the placement ring.
    pub vnodes: usize,
    /// Health thresholds.
    pub health: HealthConfig,
    /// Hedge timing.
    pub hedge: HedgeConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            replication: 2,
            vnodes: 64,
            health: HealthConfig::default(),
            hedge: HedgeConfig::default(),
        }
    }
}

/// One replica's routing state.
#[derive(Debug)]
struct ReplicaState {
    /// Draining replicas accept no new picks (kill / rolling restart).
    draining: bool,
    /// Requests routed here and not yet resolved.
    outstanding: u64,
    /// Last observed admission-queue depth.
    queue_depth: u64,
    /// Models currently quarantined by the replica's circuit breakers.
    poisoned_models: u64,
    /// Deadline misses + panics over completions, sliding.
    bad: RateWindow,
}

impl ReplicaState {
    fn new(window_ns: u64) -> Self {
        ReplicaState {
            draining: false,
            outstanding: 0,
            queue_depth: 0,
            poisoned_models: 0,
            bad: RateWindow::new(window_ns, 16),
        }
    }

    fn healthy(&self, now_ns: u64, cfg: &HealthConfig) -> bool {
        !self.draining
            && self.poisoned_models == 0
            && self.queue_depth <= cfg.max_queue_depth
            && self.bad.rate(now_ns) <= cfg.max_bad_rate
    }
}

/// Log2-bucketed latency sketch; p99 reads the bucket upper bound, which
/// is the right bias for a hedge trigger (late rather than trigger-happy).
#[derive(Debug, Clone)]
struct LatencySketch {
    buckets: [u64; 64],
    count: u64,
}

impl Default for LatencySketch {
    fn default() -> Self {
        LatencySketch { buckets: [0; 64], count: 0 }
    }
}

impl LatencySketch {
    fn record(&mut self, latency_ns: u64) {
        let b = (64 - latency_ns.leading_zeros() as usize).min(63);
        self.buckets[b] += 1;
        self.count += 1;
    }

    fn p99_ns(&self) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (self.count as f64 * 0.99).ceil() as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(1u64 << b.min(62));
            }
        }
        None
    }
}

/// A model's active route.
#[derive(Debug)]
struct Route {
    /// Monotonic version, bumped by every flip.
    version: u64,
    /// The registry name holders actually admitted (`name@v{N}`).
    internal: String,
    /// Holder replicas in placement-preference order.
    holders: Vec<usize>,
    /// End-to-end latency observed for this route (all versions).
    latency: LatencySketch,
}

/// What [`Router::pick`] hands the runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pick {
    /// Replica to submit to (its outstanding count is already bumped).
    pub replica: usize,
    /// Registry name to submit under on that replica.
    pub internal: String,
    /// Fire a duplicate attempt if the primary hasn't answered within
    /// this budget; `None` disables hedging for this request.
    pub hedge_delay_ns: Option<u64>,
}

/// Outcome summary of a route flip (rolling update).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteFlip {
    /// The version now live.
    pub version: u64,
    /// Internal name the flip retired (to evict from old holders), if
    /// the route existed before.
    pub retired: Option<String>,
    /// Holder set of the retired version.
    pub retired_holders: Vec<usize>,
}

/// One observation of a replica's serve stats, as *deltas* since the
/// previous observation (the runtime keeps the previous snapshot).
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplicaObservation {
    /// Current admission-queue depth (a gauge, not a delta).
    pub queue_depth: u64,
    /// Requests completed since last observation.
    pub completed: u64,
    /// Deadlines missed since last observation.
    pub deadline_missed: u64,
    /// Worker panics since last observation.
    pub panics: u64,
    /// Models currently quarantined by circuit breakers (a gauge).
    pub poisoned_models: u64,
}

/// The pure routing state machine. See the module docs.
#[derive(Debug)]
pub struct Router {
    cfg: RouterConfig,
    ring: HashRing,
    replicas: BTreeMap<usize, ReplicaState>,
    routes: BTreeMap<String, Route>,
}

impl Router {
    /// An empty router.
    pub fn new(cfg: RouterConfig) -> Self {
        Router {
            ring: HashRing::new(cfg.vnodes),
            cfg,
            replicas: BTreeMap::new(),
            routes: BTreeMap::new(),
        }
    }

    /// The configuration the router runs under.
    pub fn config(&self) -> &RouterConfig {
        &self.cfg
    }

    /// Adds a replica to the ring and recomputes every route's holders.
    /// Returns `(model, internal, replica)` triples for placements the
    /// runtime must now admit on replicas that don't hold them yet.
    pub fn add_replica(&mut self, id: usize) -> Vec<(String, String, usize)> {
        self.ring.add_replica(id);
        self.replicas.entry(id).or_insert_with(|| ReplicaState::new(self.cfg.health.window_ns));
        self.reseat_routes()
    }

    /// Removes a replica (kill or drain-complete): off the ring, out of
    /// every holder set. Same return contract as [`Self::add_replica`] —
    /// displaced placements the runtime must admit elsewhere.
    pub fn remove_replica(&mut self, id: usize) -> Vec<(String, String, usize)> {
        self.ring.remove_replica(id);
        self.replicas.remove(&id);
        self.reseat_routes()
    }

    /// The placements that would need admission if `id` were removed —
    /// computed without mutating any route, so the runtime can admit
    /// models onto their future holders *before* the routes flip over.
    /// (Admission runs the lint gate, which is far too slow to hold a
    /// route pointed at a holder that cannot serve yet.)
    pub fn preview_remove(&self, id: usize) -> Vec<(String, String, usize)> {
        let mut ring = self.ring.clone();
        ring.remove_replica(id);
        let mut needed = Vec::new();
        for (model, route) in &self.routes {
            let fresh = ring.place(&route.internal, self.cfg.replication);
            for &r in &fresh {
                if !route.holders.contains(&r) {
                    needed.push((model.clone(), route.internal.clone(), r));
                }
            }
        }
        needed
    }

    /// Marks a replica as draining: it keeps its in-flight work but
    /// receives no new picks. The ring is untouched until
    /// [`Self::remove_replica`].
    pub fn set_draining(&mut self, id: usize, draining: bool) {
        if let Some(r) = self.replicas.get_mut(&id) {
            r.draining = draining;
        }
    }

    /// Replica ids currently registered.
    pub fn replica_ids(&self) -> Vec<usize> {
        self.replicas.keys().copied().collect()
    }

    /// Re-derives each route's holders from the ring; collects
    /// placements that need admission (holder doesn't match old set).
    fn reseat_routes(&mut self) -> Vec<(String, String, usize)> {
        let mut needed = Vec::new();
        for (model, route) in &mut self.routes {
            let fresh = self.ring.place(&route.internal, self.cfg.replication);
            for &r in &fresh {
                if !route.holders.contains(&r) {
                    needed.push((model.clone(), route.internal.clone(), r));
                }
            }
            route.holders = fresh;
        }
        needed
    }

    /// Where a (versioned) internal name would be placed right now —
    /// the runtime admits the model there *before* flipping the route.
    pub fn plan_placement(&self, internal: &str) -> Vec<usize> {
        self.ring.place(internal, self.cfg.replication)
    }

    /// Atomically points `model` at `internal` (freshly placed): picks
    /// issued after this call route to the new version, picks already
    /// issued complete against the old one. Returns what was retired so
    /// the runtime can evict it from the old holders.
    pub fn flip_route(&mut self, model: &str, internal: String) -> RouteFlip {
        let holders = self.ring.place(&internal, self.cfg.replication);
        match self.routes.get_mut(model) {
            Some(route) => {
                let retired = std::mem::replace(&mut route.internal, internal);
                let retired_holders = std::mem::replace(&mut route.holders, holders);
                route.version += 1;
                RouteFlip { version: route.version, retired: Some(retired), retired_holders }
            }
            None => {
                self.routes.insert(
                    model.to_string(),
                    Route { version: 1, internal, holders, latency: LatencySketch::default() },
                );
                RouteFlip { version: 1, retired: None, retired_holders: Vec::new() }
            }
        }
    }

    /// The model's current holder set (placement-preference order).
    pub fn holders(&self, model: &str) -> Option<&[usize]> {
        self.routes.get(model).map(|r| r.holders.as_slice())
    }

    /// The model's current internal (versioned) registry name.
    pub fn internal_name(&self, model: &str) -> Option<&str> {
        self.routes.get(model).map(|r| r.internal.as_str())
    }

    /// The model's current route version.
    pub fn route_version(&self, model: &str) -> Option<u64> {
        self.routes.get(model).map(|r| r.version)
    }

    /// Routed model names.
    pub fn models(&self) -> Vec<String> {
        self.routes.keys().cloned().collect()
    }

    /// Folds one stats observation into a replica's health state.
    pub fn observe(&mut self, id: usize, obs: ReplicaObservation, now_ns: u64) {
        if let Some(r) = self.replicas.get_mut(&id) {
            r.queue_depth = obs.queue_depth;
            r.poisoned_models = obs.poisoned_models;
            let bad = obs.deadline_missed + obs.panics;
            r.bad.record_many(now_ns, obs.completed + bad, bad);
        }
    }

    /// True when the replica currently classifies as healthy.
    pub fn is_healthy(&self, id: usize, now_ns: u64) -> bool {
        self.replicas.get(&id).is_some_and(|r| r.healthy(now_ns, &self.cfg.health))
    }

    /// Least-outstanding holder among `candidates` that passes `admit`.
    fn least_outstanding(
        &self,
        candidates: &[usize],
        admit: impl Fn(&ReplicaState) -> bool,
    ) -> Option<usize> {
        candidates
            .iter()
            .filter_map(|&id| self.replicas.get(&id).filter(|r| admit(r)).map(|r| (id, r)))
            .min_by_key(|&(id, r)| (r.outstanding, id))
            .map(|(id, _)| id)
    }

    /// Routes one request: least-outstanding among *healthy* holders,
    /// degraded-but-not-draining holders as the fallback. Bumps the
    /// chosen replica's outstanding count — every `Ok` pick must be
    /// paired with exactly one [`Self::note_result`].
    ///
    /// # Errors
    ///
    /// [`ServeError::ModelNotFound`] for unrouted models;
    /// [`ServeError::ShuttingDown`] when no live (non-draining) holder
    /// remains.
    pub fn pick(&mut self, model: &str, now_ns: u64) -> Result<Pick, ServeError> {
        let route =
            self.routes.get(model).ok_or_else(|| ServeError::ModelNotFound(model.to_string()))?;
        let holders = route.holders.clone();
        let internal = route.internal.clone();
        let hedge_delay_ns = self.hedge_delay(model);
        let health = self.cfg.health;
        let chosen = self
            .least_outstanding(&holders, |r| r.healthy(now_ns, &health))
            .or_else(|| self.least_outstanding(&holders, |r| !r.draining))
            .ok_or(ServeError::ShuttingDown)?;
        if let Some(r) = self.replicas.get_mut(&chosen) {
            r.outstanding += 1;
        }
        Ok(Pick { replica: chosen, internal, hedge_delay_ns })
    }

    /// Routes the duplicate (hedge) attempt: best holder excluding the
    /// primary, healthy first, degraded fallback. Bumps outstanding like
    /// [`Self::pick`]; `None` when no second holder is live.
    pub fn pick_hedge(&mut self, model: &str, exclude: usize, now_ns: u64) -> Option<Pick> {
        let route = self.routes.get(model)?;
        let holders: Vec<usize> = route.holders.iter().copied().filter(|&h| h != exclude).collect();
        let internal = route.internal.clone();
        let health = self.cfg.health;
        let chosen = self
            .least_outstanding(&holders, |r| r.healthy(now_ns, &health))
            .or_else(|| self.least_outstanding(&holders, |r| !r.draining))?;
        if let Some(r) = self.replicas.get_mut(&chosen) {
            r.outstanding += 1;
        }
        Some(Pick { replica: chosen, internal, hedge_delay_ns: None })
    }

    /// Resolves a pick: drops the replica's outstanding count and, when
    /// the attempt produced a latency sample, feeds the route's sketch.
    pub fn note_result(&mut self, model: &str, replica: usize, latency_ns: Option<u64>) {
        if let Some(r) = self.replicas.get_mut(&replica) {
            r.outstanding = r.outstanding.saturating_sub(1);
        }
        if let (Some(route), Some(lat)) = (self.routes.get_mut(model), latency_ns) {
            route.latency.record(lat);
        }
    }

    /// The hedge delay currently in force for a route: `delay_factor ×
    /// p99` (floored at `min_delay_ns`) once `min_samples` latencies are
    /// in, the configured default before that, `None` when hedging is
    /// effectively off.
    pub fn hedge_delay(&self, model: &str) -> Option<u64> {
        let route = self.routes.get(model)?;
        let h = &self.cfg.hedge;
        if route.latency.count >= h.min_samples.max(1) {
            let p99 = route.latency.p99_ns()?;
            let scaled = (p99 as f64 * h.delay_factor) as u64;
            Some(scaled.max(h.min_delay_ns))
        } else if h.default_delay_ns > 0 {
            Some(h.default_delay_ns)
        } else {
            None
        }
    }

    /// A replica's current outstanding-request count (0 for unknown ids).
    pub fn outstanding(&self, id: usize) -> u64 {
        self.replicas.get(&id).map_or(0, |r| r.outstanding)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router(n: usize, replication: usize) -> Router {
        let mut r = Router::new(RouterConfig {
            replication,
            vnodes: 64,
            health: HealthConfig::default(),
            hedge: HedgeConfig::default(),
        });
        for id in 0..n {
            r.add_replica(id);
        }
        r
    }

    #[test]
    fn pick_balances_by_outstanding_among_holders() {
        let mut r = router(4, 3);
        r.flip_route("mlp", "mlp@v1".into());
        let holders = r.holders("mlp").unwrap().to_vec();
        assert_eq!(holders.len(), 3);
        // Three picks with no completions spread over all three holders.
        let mut seen = Vec::new();
        for _ in 0..3 {
            seen.push(r.pick("mlp", 0).unwrap().replica);
        }
        seen.sort_unstable();
        let mut want = holders.clone();
        want.sort_unstable();
        assert_eq!(seen, want, "least-outstanding must rotate across idle holders");
        // Resolving one frees that replica to be picked again first.
        r.note_result("mlp", holders[1], Some(1_000));
        assert_eq!(r.pick("mlp", 0).unwrap().replica, holders[1]);
        assert!(matches!(r.pick("ghost", 0), Err(ServeError::ModelNotFound(_))));
    }

    #[test]
    fn unhealthy_holders_are_skipped_and_degraded_is_last_resort() {
        let mut r = router(4, 2);
        r.flip_route("mlp", "mlp@v1".into());
        let holders = r.holders("mlp").unwrap().to_vec();
        // Poisoned breaker on the first holder: picks avoid it.
        r.observe(
            holders[0],
            ReplicaObservation { poisoned_models: 1, ..ReplicaObservation::default() },
            0,
        );
        for _ in 0..3 {
            assert_eq!(r.pick("mlp", 0).unwrap().replica, holders[1]);
        }
        // Second holder degrades too (deep queue): degraded beats refusing.
        r.observe(
            holders[1],
            ReplicaObservation { queue_depth: 1_000, ..ReplicaObservation::default() },
            0,
        );
        assert!(holders.contains(&r.pick("mlp", 0).unwrap().replica));
        // Draining both: now the router refuses.
        r.set_draining(holders[0], true);
        r.set_draining(holders[1], true);
        assert!(matches!(r.pick("mlp", 0), Err(ServeError::ShuttingDown)));
    }

    #[test]
    fn bad_rate_degrades_health_and_recovers_as_the_window_slides() {
        let mut r = router(2, 2);
        r.flip_route("mlp", "mlp@v1".into());
        let id = r.holders("mlp").unwrap()[0];
        let w = r.config().health.window_ns;
        // 50% deadline misses — way over the 20% threshold.
        r.observe(
            id,
            ReplicaObservation { completed: 5, deadline_missed: 5, ..Default::default() },
            0,
        );
        assert!(!r.is_healthy(id, 0));
        // A window later the misses have aged out.
        assert!(r.is_healthy(id, w * 2));
    }

    #[test]
    fn hedge_delay_tracks_p99_after_warmup() {
        let mut r = router(2, 2);
        r.flip_route("mlp", "mlp@v1".into());
        assert_eq!(r.hedge_delay("mlp"), None, "no default, no samples → no hedging");
        let replica = r.holders("mlp").unwrap()[0];
        // 100 samples around ~1µs, one 4ms straggler: p99 sits in the
        // straggler-free region, and the delay floors at min_delay_ns.
        for _ in 0..100 {
            let p = r.pick("mlp", 0).unwrap();
            r.note_result("mlp", p.replica, Some(1_000));
        }
        r.note_result("mlp", replica, Some(4_000_000));
        let d = r.hedge_delay("mlp").unwrap();
        assert!(d >= r.config().hedge.min_delay_ns, "delay {d} must respect the floor");
        assert!(d <= 4_000_000, "p99 must not be dominated by the single straggler");
        // Picks now carry the hedge budget.
        let p = r.pick("mlp", 0).unwrap();
        assert_eq!(p.hedge_delay_ns, Some(d));
    }

    #[test]
    fn pick_hedge_excludes_the_primary_and_may_fail() {
        let mut r = router(2, 2);
        r.flip_route("mlp", "mlp@v1".into());
        let p = r.pick("mlp", 0).unwrap();
        let h = r.pick_hedge("mlp", p.replica, 0).expect("second holder exists");
        assert_ne!(h.replica, p.replica);
        // With the only other holder draining, no hedge target remains.
        r.set_draining(h.replica, true);
        r.note_result("mlp", h.replica, None);
        assert!(r.pick_hedge("mlp", p.replica, 0).is_none());
    }

    #[test]
    fn rolling_flip_is_atomic_with_zero_refused_picks() {
        // The FakeClock-style zero-refusal property: at every instant
        // around the flip, pick() succeeds — v1 before, v2 after, nothing
        // in between.
        let mut r = router(4, 2);
        let f1 = r.flip_route("mlp", "mlp@v1".into());
        assert_eq!((f1.version, f1.retired), (1, None));
        let mut now = 0u64;
        for _ in 0..10 {
            let p = r.pick("mlp", now).unwrap();
            assert_eq!(p.internal, "mlp@v1");
            r.note_result("mlp", p.replica, Some(1_000));
            now += 1_000;
        }
        // Leave one v1 request in flight across the flip.
        let inflight = r.pick("mlp", now).unwrap();
        assert_eq!(inflight.internal, "mlp@v1");
        let f2 = r.flip_route("mlp", "mlp@v2".into());
        assert_eq!(f2.version, 2);
        assert_eq!(f2.retired.as_deref(), Some("mlp@v1"));
        assert_eq!(r.plan_placement("mlp@v2"), r.holders("mlp").unwrap());
        // Every post-flip pick is v2 and succeeds.
        for _ in 0..10 {
            let p = r.pick("mlp", now).unwrap();
            assert_eq!(p.internal, "mlp@v2");
            r.note_result("mlp", p.replica, Some(1_000));
            now += 1_000;
        }
        // The in-flight v1 pick resolves normally after the flip.
        r.note_result("mlp", inflight.replica, Some(5_000));
        for id in r.replica_ids() {
            assert_eq!(r.outstanding(id), 0, "all picks were paired with results");
        }
    }

    #[test]
    fn membership_changes_report_placements_needing_admission() {
        let mut r = router(3, 2);
        r.flip_route("mlp", "mlp@v1".into());
        let before = r.holders("mlp").unwrap().to_vec();
        // Removing a holder displaces its placement onto a survivor.
        let needed = r.remove_replica(before[0]);
        let after = r.holders("mlp").unwrap().to_vec();
        assert!(!after.contains(&before[0]));
        assert_eq!(after.len(), 2);
        for (model, internal, replica) in &needed {
            assert_eq!((model.as_str(), internal.as_str()), ("mlp", "mlp@v1"));
            assert!(after.contains(replica) && !before.contains(replica));
        }
        // Adding it back may reclaim placements; reported the same way.
        let reseated = r.add_replica(before[0]);
        for (_, _, replica) in &reseated {
            assert!(r.holders("mlp").unwrap().contains(replica));
        }
    }
}
