//! # t2c-cluster — the replicated, sharded serving tier
//!
//! `t2c-serve` hosts one lint-gated integer model runtime; this crate
//! scales that out. A [`Cluster`] runs N independent serve replicas —
//! each with its own admission-gated registry, micro-batcher and worker
//! pool — behind a deterministic router:
//!
//! * **Placement** — a consistent-hash ring ([`HashRing`]) maps each
//!   model name to R distinct holder replicas, as a pure function of
//!   name + membership, so membership changes reshuffle placements
//!   boundedly (proptest-verified in `tests/placement.rs`).
//! * **Routing** — per-request the [`Router`] picks the healthy holder
//!   with the fewest outstanding requests; health is fed from each
//!   replica's [`t2c_serve::StatsSnapshot`] (queue depth, circuit-breaker
//!   poisonings, deadline-miss/panic rate over a sliding window).
//! * **Hedging** — once a model's latency sketch has warmed up, a slow
//!   primary attempt gets a duplicate on another holder after a
//!   p99-derived delay; first response wins and the loser is reaped.
//! * **Rolling updates** — [`Cluster::update`] admits the new version
//!   under a versioned internal name on fresh placements, flips the
//!   route atomically, then evicts the old version; in-flight requests
//!   complete on the version they were admitted against and no request
//!   is refused during the flip.
//! * **Transport** — the `t2c-cluster` binary speaks the same
//!   length-prefixed TCP protocol as `t2c-serve`, so
//!   [`t2c_serve::TcpClient`] works against a cluster unchanged.
//!
//! All placement/routing/health/hedge-delay logic lives in pure state
//! machines driven by explicit `now_ns` values — tests advance a
//! [`t2c_serve::FakeClock`] and assert without sleeping, in the same
//! style as the serve crate's `MicroBatcher`.
//!
//! ```no_run
//! use t2c_cluster::{Cluster, ClusterConfig};
//!
//! let cluster = Cluster::start(ClusterConfig { replicas: 4, ..ClusterConfig::default() });
//! let (model, dims) = t2c_core::zoo::tiny_mlp();
//! cluster.deploy("mlp", model, &dims).expect("lint gate");
//! let codes: t2c_tensor::Tensor<i32> = t2c_tensor::Tensor::zeros(&dims);
//! let logits = cluster.infer("mlp", codes).expect("routed");
//! assert_eq!(logits.dims(), &[1, 10]);
//! cluster.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod ring;
pub mod router;

pub use cluster::{Cluster, ClusterConfig, ClusterStats};
pub use ring::HashRing;
pub use router::{
    HealthConfig, HedgeConfig, Pick, ReplicaObservation, RouteFlip, Router, RouterConfig,
};
