//! # t2c-serve — the batched integer-inference serving runtime
//!
//! Torch2Chip's deployment story ends with a verified integer package;
//! this crate is what *hosts* one. It is a std-only, thread-based serving
//! runtime with three pillars:
//!
//! * **Admission control** — [`ModelRegistry`] only admits models that
//!   pass the `t2c-lint` static verifier with zero error-level findings
//!   (packages additionally re-verify checksums and the hex manifest).
//!   The runtime serves exactly what `t2c-check` would sign off on.
//! * **Dynamic micro-batching** — requests coalesce per model up to
//!   `max_batch` rows or `max_delay`, ride the axis-0 concat/split tensor
//!   kernels through `IntModel::run_quantized`, and fan back out to
//!   per-request completion slots ([`MicroBatcher`], [`Server`]).
//! * **Robustness policy** — bounded queues with explicit
//!   [`ServeError::Busy`] backpressure, per-request deadlines, worker
//!   panic isolation with a per-model circuit breaker, and graceful
//!   drain-on-shutdown ([`ServerConfig`]).
//!
//! Transport: an in-process [`Handle`] for embedding and tests, plus a
//! tiny length-prefixed TCP protocol ([`wire`]) spoken by the
//! `t2c-serve` binary and [`TcpClient`].
//!
//! ```no_run
//! use std::sync::Arc;
//! use t2c_serve::{ModelRegistry, Server, ServerConfig};
//!
//! let registry = Arc::new(ModelRegistry::new());
//! let (model, dims) = t2c_core::zoo::tiny_mlp();
//! let admitted = registry.admit("mlp", model, &dims).expect("lint gate");
//! let server = Server::start(Arc::clone(&registry), ServerConfig::default());
//! let handle = server.handle();
//! let codes = admitted.quantize(&t2c_tensor::Tensor::zeros(&dims));
//! let logits = handle.infer("mlp", codes).expect("served");
//! assert_eq!(logits.dims(), &[1, 10]);
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod clock;
pub mod error;
pub mod registry;
pub mod runtime;
pub mod wire;

pub use batcher::{BatchConfig, Decision, MicroBatcher, Ticket, NO_DEADLINE};
pub use clock::{Clock, FakeClock, SystemClock};
pub use error::{AdmissionError, ServeError};
pub use registry::{AdmittedModel, ModelRegistry};
pub use runtime::{Handle, PendingResponse, Server, ServerConfig, StatsSnapshot};
pub use wire::{serve_tcp, serve_tcp_backend, InferBackend, TcpClient, WireRequest};
