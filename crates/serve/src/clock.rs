//! Monotonic time source abstraction.
//!
//! The scheduler never reads wall time directly — every timing decision
//! (batch-flush windows, deadlines) goes through a [`Clock`], so tests can
//! drive the batcher with a [`FakeClock`] and assert flush/expiry behavior
//! deterministically, without sleeping.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond counter. `0` is the clock's own epoch (process
/// start for [`SystemClock`]); only differences are meaningful.
pub trait Clock: Send + Sync {
    /// Nanoseconds since the clock's epoch.
    fn now_ns(&self) -> u64;
}

/// The production clock: `Instant`-based monotonic nanoseconds.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        SystemClock { origin: Instant::now() }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A manually-advanced clock for deterministic scheduler tests.
#[derive(Debug, Default)]
pub struct FakeClock {
    now: AtomicU64,
}

impl FakeClock {
    /// A fake clock starting at `start_ns`.
    pub fn new(start_ns: u64) -> Self {
        FakeClock { now: AtomicU64::new(start_ns) }
    }

    /// Moves time forward by `delta_ns`.
    pub fn advance(&self, delta_ns: u64) {
        self.now.fetch_add(delta_ns, Ordering::SeqCst);
    }

    /// Jumps to an absolute timestamp.
    pub fn set(&self, now_ns: u64) {
        self.now.store(now_ns, Ordering::SeqCst);
    }
}

impl Clock for FakeClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn fake_clock_advances_only_on_demand() {
        let c = FakeClock::new(100);
        assert_eq!(c.now_ns(), 100);
        assert_eq!(c.now_ns(), 100);
        c.advance(50);
        assert_eq!(c.now_ns(), 150);
        c.set(1_000);
        assert_eq!(c.now_ns(), 1_000);
    }
}
