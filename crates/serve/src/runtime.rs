//! The threaded serving runtime.
//!
//! Wraps the pure [`MicroBatcher`] behind a mutex/condvar and drives it
//! with real threads:
//!
//! ```text
//! Handle::submit ──admit──▶ MicroBatcher (bounded queue)
//!                                │ batcher thread
//!                                ▼ coalesce (max_batch / max_delay)
//!                        bounded dispatch channel
//!                                │ worker pool
//!                                ▼ concat_axis0 → run_quantized → split_axis0
//!                        completion slots (per request)
//! ```
//!
//! Robustness policy:
//! * **Backpressure** — the admission queue and the dispatch channel are
//!   both bounded; a full queue rejects with [`ServeError::Busy`] instead
//!   of buffering unboundedly.
//! * **Deadlines** — requests carry an absolute expiry; the batcher expires
//!   overdue tickets before scheduling and workers re-check before running.
//! * **Panic isolation** — worker inference runs under `catch_unwind`; a
//!   panic fails only the affected batch, and a per-model circuit breaker
//!   quarantines a model after `max_panics` panics
//!   ([`ServeError::ModelPoisoned`]).
//! * **Graceful drain** — shutdown stops admission, flushes the queue in
//!   FIFO order, and joins every thread; all in-flight requests resolve.
//!
//! Observability (active under `T2C_PROFILE=1`): `serve.queue_depth`
//! gauge, `serve.batch_rows` and `serve.latency_ns` histograms,
//! `serve.rejected_busy` / `serve.deadline_exceeded` /
//! `serve.worker_panics` / `serve.audit_runs` /
//! `serve.audit_certificate_violations` counters and the per-model
//! `serve.<name>.dualpath_max_err` audit and
//! `serve.<name>.cert_violation_steps` canary gauges. A small always-on
//! [`StatsSnapshot`] backs the load generator.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, SyncSender};
use t2c_core::Arena;
use t2c_obs::SampledAudit;
use t2c_tensor::Tensor;

use crate::batcher::{Decision, MicroBatcher, Ticket, NO_DEADLINE};
use crate::clock::{Clock, SystemClock};
use crate::error::ServeError;
use crate::registry::{AdmittedModel, ModelRegistry};

/// Runtime policy knobs on top of the batcher's [`crate::BatchConfig`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Micro-batching policy (batch size, flush window, queue bound).
    pub batch: crate::batcher::BatchConfig,
    /// Worker threads executing batches (min 1).
    pub workers: usize,
    /// Deadline applied to requests that don't bring their own
    /// (0 = no default deadline).
    pub default_deadline_ns: u64,
    /// Worker panics a model survives before the circuit breaker
    /// quarantines it.
    pub max_panics: u32,
    /// Dual-path audit sampling period: every Nth completed request is
    /// re-run through the float path and compared (0 = audit off).
    pub audit_every: u64,
    /// Circuit-breaker cooldown: how long a poisoned model stays open
    /// before the breaker goes half-open and admits a single recovery
    /// probe. `0` (the default) never recovers — the pre-cooldown
    /// quarantine-forever contract.
    pub breaker_cooldown_ns: u64,
    /// Minimum wall-clock service time per dispatched batch, emulating a
    /// fixed-rate attached accelerator (the device the toolkit's export
    /// path targets): after host compute finishes, the worker holds the
    /// batch until the pace window elapses. `0` (the default) disables
    /// pacing. The cluster bench uses this to model device-bound
    /// replicas, where scale-out multiplies throughput even when the
    /// replicas share host cores.
    pub pace_batch_ns: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            batch: crate::batcher::BatchConfig::default(),
            workers: 2,
            default_deadline_ns: 0,
            max_panics: 3,
            audit_every: 0,
            breaker_cooldown_ns: 0,
            pace_batch_ns: 0,
        }
    }
}

/// One request's completion slot: fulfilled exactly once by the batcher
/// (expiry) or a worker (result), awaited by the requester.
#[derive(Debug, Default)]
struct Pending {
    cell: Mutex<Option<Result<Tensor<i32>, ServeError>>>,
    cv: Condvar,
}

impl Pending {
    fn fulfill(&self, result: Result<Tensor<i32>, ServeError>) {
        let mut cell = self.cell.lock().unwrap_or_else(PoisonError::into_inner);
        if cell.is_none() {
            *cell = Some(result);
            self.cv.notify_all();
        }
    }

    fn wait(&self) -> Result<Tensor<i32>, ServeError> {
        let mut cell = self.cell.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = cell.take() {
                return result;
            }
            cell = self.cv.wait(cell).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn wait_timeout(&self, dur: Duration) -> Option<Result<Tensor<i32>, ServeError>> {
        let deadline = std::time::Instant::now() + dur;
        let mut cell = self.cell.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = cell.take() {
                return Some(result);
            }
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return None;
            }
            let (guard, timeout) =
                self.cv.wait_timeout(cell, left).unwrap_or_else(PoisonError::into_inner);
            cell = guard;
            if timeout.timed_out() {
                return cell.take();
            }
        }
    }
}

/// Handle to an in-flight request returned by [`Handle::submit`].
#[derive(Debug)]
pub struct PendingResponse {
    inner: Arc<Pending>,
}

impl PendingResponse {
    /// Blocks until the request resolves (result, rejection or expiry).
    ///
    /// # Errors
    ///
    /// Whatever the server resolved the request to — see [`ServeError`].
    pub fn wait(self) -> Result<Tensor<i32>, ServeError> {
        self.inner.wait()
    }

    /// Polls for the result for up to `dur` without consuming the handle:
    /// `None` means the request is still in flight and a later call can
    /// still win. The cluster's hedging path uses this to race two
    /// in-flight attempts and take whichever resolves first.
    pub fn wait_timeout(&self, dur: Duration) -> Option<Result<Tensor<i32>, ServeError>> {
        self.inner.wait_timeout(dur)
    }
}

/// A queued unit of work (the batcher ticket payload).
struct Job {
    model: Arc<AdmittedModel>,
    input: Tensor<i32>,
    pending: Arc<Pending>,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Job({}, rows={})", self.model.name(), self.input.dims()[0])
    }
}

/// Always-on runtime counters (independent of `T2C_PROFILE`).
#[derive(Debug, Default)]
struct ServeStats {
    completed: AtomicU64,
    rejected_busy: AtomicU64,
    deadline_exceeded: AtomicU64,
    panics: AtomicU64,
    batches: AtomicU64,
    batched_rows: AtomicU64,
    audits: AtomicU64,
    audits_invalid: AtomicU64,
    max_audit_divergence_bits: AtomicU64,
}

impl ServeStats {
    fn note_audit(&self, divergence: f64) {
        // A NaN or infinite divergence is an audit-path fault, not a
        // measurement: folding it into the running maximum would either
        // vanish (NaN bit patterns compare arbitrarily) or permanently
        // poison the gauge. Count it separately and keep the maximum
        // meaningful.
        if !divergence.is_finite() {
            self.audits_invalid.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.audits.fetch_add(1, Ordering::Relaxed);
        // Non-negative f64 bit patterns order like the floats themselves.
        let bits = divergence.max(0.0).to_bits();
        self.max_audit_divergence_bits.fetch_max(bits, Ordering::Relaxed);
    }
}

/// A point-in-time copy of the runtime counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct StatsSnapshot {
    /// Requests resolved with a result.
    pub completed: u64,
    /// Admissions rejected with [`ServeError::Busy`].
    pub rejected_busy: u64,
    /// Requests expired before execution.
    pub deadline_exceeded: u64,
    /// Isolated worker panics.
    pub panics: u64,
    /// Batches dispatched to workers.
    pub batches: u64,
    /// Total rows across dispatched batches.
    pub batched_rows: u64,
    /// Dual-path audits performed.
    pub audits: u64,
    /// Audit measurements rejected for being non-finite (NaN/∞) — an
    /// audit-path fault rather than a divergence observation.
    pub audits_invalid: u64,
    /// Worst normalized integer-vs-float divergence seen by the audit.
    pub max_audit_divergence: f64,
    /// Requests sitting in the admission queue at snapshot time.
    pub queue_depth: u64,
}

impl StatsSnapshot {
    /// Average rows per dispatched batch (0 when nothing ran).
    pub fn mean_batch_rows(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_rows as f64 / self.batches as f64
        }
    }
}

struct Shared {
    registry: Arc<ModelRegistry>,
    cfg: ServerConfig,
    clock: Arc<dyn Clock>,
    queue: Mutex<MicroBatcher<Job>>,
    wakeup: Condvar,
    stop: AtomicBool,
    stats: ServeStats,
    audit: SampledAudit,
}

/// Cloneable submission handle — the in-process client.
#[derive(Clone)]
pub struct Handle {
    shared: Arc<Shared>,
}

impl Handle {
    /// Names of the admitted models.
    pub fn models(&self) -> Vec<String> {
        self.shared.registry.names()
    }

    /// Submits a request with the server's default deadline policy;
    /// returns immediately with a completion handle.
    ///
    /// # Errors
    ///
    /// Synchronous rejections: [`ServeError::ModelNotFound`],
    /// [`ServeError::ModelPoisoned`], [`ServeError::BadRequest`] (shape),
    /// [`ServeError::Busy`] (backpressure), [`ServeError::ShuttingDown`].
    pub fn submit(&self, model: &str, input: Tensor<i32>) -> Result<PendingResponse, ServeError> {
        let deadline = match self.shared.cfg.default_deadline_ns {
            0 => NO_DEADLINE,
            d => self.shared.clock.now_ns().saturating_add(d),
        };
        self.submit_inner(model, input, deadline)
    }

    /// Submits with an explicit deadline budget from now.
    ///
    /// # Errors
    ///
    /// As [`Self::submit`].
    pub fn submit_within(
        &self,
        model: &str,
        input: Tensor<i32>,
        budget_ns: u64,
    ) -> Result<PendingResponse, ServeError> {
        let deadline = self.shared.clock.now_ns().saturating_add(budget_ns);
        self.submit_inner(model, input, deadline)
    }

    /// Blocking convenience: submit + wait.
    ///
    /// # Errors
    ///
    /// Synchronous rejections plus anything the request resolved to
    /// ([`ServeError::DeadlineExceeded`], [`ServeError::Internal`], …).
    pub fn infer(&self, model: &str, input: Tensor<i32>) -> Result<Tensor<i32>, ServeError> {
        self.submit(model, input)?.wait()
    }

    /// Current runtime counters — the same snapshot as
    /// [`Server::stats`], reachable from the cloneable handle so the
    /// cluster's health monitor can poll replicas it doesn't own.
    pub fn stats(&self) -> StatsSnapshot {
        snapshot(&self.shared)
    }

    /// Blocking convenience with a deadline budget.
    ///
    /// # Errors
    ///
    /// As [`Self::infer`].
    pub fn infer_within(
        &self,
        model: &str,
        input: Tensor<i32>,
        budget_ns: u64,
    ) -> Result<Tensor<i32>, ServeError> {
        self.submit_within(model, input, budget_ns)?.wait()
    }

    fn submit_inner(
        &self,
        model: &str,
        input: Tensor<i32>,
        deadline_ns: u64,
    ) -> Result<PendingResponse, ServeError> {
        let shared = &self.shared;
        let admitted = shared
            .registry
            .get(model)
            .ok_or_else(|| ServeError::ModelNotFound(model.to_string()))?;
        // Breaker gate: closed admits, open rejects, and once the cooldown
        // elapses a single request slips through as the recovery probe.
        let decision =
            admitted.breaker_admit(shared.clock.now_ns(), shared.cfg.breaker_cooldown_ns);
        if decision == crate::registry::BreakerDecision::Reject {
            return Err(ServeError::ModelPoisoned(admitted.name().to_string()));
        }
        let want = admitted.input_dims();
        let got = input.dims();
        if got.len() != want.len() || got[1..] != want[1..] || got[0] == 0 {
            return Err(ServeError::BadRequest(format!(
                "input dims {got:?} incompatible with model '{model}' sample dims {want:?} \
                 (batch axis 0 may vary, must be ≥ 1)"
            )));
        }
        let rows = got[0];
        let pending = Arc::new(Pending::default());
        let job = Job { model: Arc::clone(&admitted), input, pending: Arc::clone(&pending) };
        let now = shared.clock.now_ns();
        let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
        let was_empty = queue.is_empty();
        match queue.admit(job, admitted.group(), rows, now, deadline_ns) {
            Ok(_) => {
                t2c_obs::gauge_set("serve.queue_depth", queue.len() as f64);
                // Wakeup coalescing: the batcher only needs a nudge when a
                // new flush window starts (queue was empty) or this group
                // just reached a full batch — intermediate admissions ride
                // the window timeout the batcher is already sleeping on.
                // On a loaded single core this trims one scheduler context
                // switch per request down to ~2 per batch.
                let batch_full = queue.group_rows(admitted.group()) >= shared.cfg.batch.max_batch;
                drop(queue);
                if was_empty || batch_full {
                    shared.wakeup.notify_all();
                }
                Ok(PendingResponse { inner: pending })
            }
            Err(e) => {
                drop(queue);
                match e {
                    ServeError::Busy => {
                        shared.stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
                        t2c_obs::counter_add("serve.rejected_busy", 1);
                    }
                    // Expired on arrival: counted with the queue-side
                    // expiries so the deadline stat covers every path a
                    // request can miss its budget on.
                    ServeError::DeadlineExceeded => {
                        shared.stats.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                        t2c_obs::counter_add("serve.deadline_exceeded", 1);
                    }
                    _ => {}
                }
                Err(e)
            }
        }
    }
}

/// The serving runtime: owns the batcher thread and the worker pool.
pub struct Server {
    shared: Arc<Shared>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts the runtime over an admitted-model registry with the
    /// production clock.
    pub fn start(registry: Arc<ModelRegistry>, cfg: ServerConfig) -> Self {
        Self::start_with_clock(registry, cfg, Arc::new(SystemClock::new()))
    }

    /// Starts the runtime with an injected clock (tests use
    /// [`crate::FakeClock`] for deterministic deadline behavior).
    ///
    /// # Panics
    ///
    /// Panics if the OS refuses to spawn the scheduler/worker threads.
    pub fn start_with_clock(
        registry: Arc<ModelRegistry>,
        cfg: ServerConfig,
        clock: Arc<dyn Clock>,
    ) -> Self {
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            registry,
            cfg,
            clock,
            queue: Mutex::new(MicroBatcher::new(cfg.batch)),
            wakeup: Condvar::new(),
            stop: AtomicBool::new(false),
            stats: ServeStats::default(),
            audit: SampledAudit::new(cfg.audit_every),
        });
        let (tx, rx) = bounded::<Vec<Ticket<Job>>>(workers * 2);
        let rx = Arc::new(Mutex::new(rx));
        let mut pool = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            let handle = std::thread::Builder::new()
                .name(format!("t2c-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared, &rx))
                .expect("spawn worker thread");
            pool.push(handle);
        }
        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("t2c-serve-batcher".into())
                .spawn(move || batcher_loop(&shared, &tx))
                .expect("spawn batcher thread")
        };
        Server { shared, batcher: Some(batcher), workers: pool }
    }

    /// An in-process submission handle (cloneable, thread-safe).
    pub fn handle(&self) -> Handle {
        Handle { shared: Arc::clone(&self.shared) }
    }

    /// The registry the server hosts.
    pub fn registry(&self) -> Arc<ModelRegistry> {
        Arc::clone(&self.shared.registry)
    }

    /// Current runtime counters.
    pub fn stats(&self) -> StatsSnapshot {
        snapshot(&self.shared)
    }

    /// Graceful drain: stops admission, flushes every queued request in
    /// FIFO order, joins the scheduler and worker threads, and returns
    /// the final counters. All in-flight requests resolve before this
    /// returns.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shutdown_inner();
        self.stats()
    }

    fn shutdown_inner(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            queue.start_drain();
        }
        self.shared.wakeup.notify_all();
        if let Some(b) = self.batcher.take() {
            b.join().ok();
        }
        // The batcher dropped the dispatch sender on exit; workers finish
        // the channel backlog and observe the disconnect.
        for w in self.workers.drain(..) {
            w.join().ok();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.batcher.is_some() {
            self.shutdown_inner();
        }
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("models", &self.shared.registry.names())
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

fn snapshot(shared: &Shared) -> StatsSnapshot {
    let s = &shared.stats;
    let queue_depth = {
        let queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
        queue.len() as u64
    };
    StatsSnapshot {
        completed: s.completed.load(Ordering::Relaxed),
        rejected_busy: s.rejected_busy.load(Ordering::Relaxed),
        deadline_exceeded: s.deadline_exceeded.load(Ordering::Relaxed),
        panics: s.panics.load(Ordering::Relaxed),
        batches: s.batches.load(Ordering::Relaxed),
        batched_rows: s.batched_rows.load(Ordering::Relaxed),
        audits: s.audits.load(Ordering::Relaxed),
        audits_invalid: s.audits_invalid.load(Ordering::Relaxed),
        max_audit_divergence: f64::from_bits(s.max_audit_divergence_bits.load(Ordering::Relaxed)),
        queue_depth,
    }
}

fn batcher_loop(shared: &Arc<Shared>, tx: &SyncSender<Vec<Ticket<Job>>>) {
    loop {
        let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
        let now = shared.clock.now_ns();
        for ticket in queue.take_expired(now) {
            shared.stats.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            t2c_obs::counter_add("serve.deadline_exceeded", 1);
            ticket.payload.pending.fulfill(Err(ServeError::DeadlineExceeded));
        }
        match queue.next_batch(now) {
            Decision::Dispatch(batch) => {
                t2c_obs::gauge_set("serve.queue_depth", queue.len() as f64);
                drop(queue);
                // A full channel blocks here — that is the second tier of
                // backpressure (the admission queue keeps filling and
                // starts rejecting Busy).
                if let Err(rejected) = tx.send(batch) {
                    for ticket in rejected.0 {
                        ticket.payload.pending.fulfill(Err(ServeError::ShuttingDown));
                    }
                }
            }
            Decision::WaitUntil(at) => {
                // Cap the real wait so fake-clock tests stay responsive;
                // admissions notify the condvar anyway.
                let dur = Duration::from_nanos(at.saturating_sub(now).clamp(1, 5_000_000));
                drop(shared.wakeup.wait_timeout(queue, dur));
            }
            Decision::Idle => {
                if shared.stop.load(Ordering::Acquire) {
                    break;
                }
                drop(shared.wakeup.wait_timeout(queue, Duration::from_millis(5)));
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>, rx: &Arc<Mutex<Receiver<Vec<Ticket<Job>>>>>) {
    // One scratch arena per worker: compiled plans execute inside it,
    // growing it monotonically to the largest model × batch seen. Reusing
    // it across batches keeps plan inference free of steady-state heap
    // allocations.
    let mut arena = Arena::new();
    loop {
        // Holding the lock only while *waiting* is fine: processing
        // happens after the guard drops, so workers overlap on compute.
        let msg = {
            let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
            guard.recv()
        };
        match msg {
            Ok(batch) => process_batch(shared, batch, &mut arena),
            Err(_) => break,
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn process_batch(shared: &Arc<Shared>, tickets: Vec<Ticket<Job>>, arena: &mut Arena) {
    let now = shared.clock.now_ns();
    // Last-chance expiry: a ticket may have timed out while the batch sat
    // in the dispatch channel.
    let mut live = Vec::with_capacity(tickets.len());
    for ticket in tickets {
        if ticket.deadline_ns <= now {
            shared.stats.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            t2c_obs::counter_add("serve.deadline_exceeded", 1);
            ticket.payload.pending.fulfill(Err(ServeError::DeadlineExceeded));
        } else {
            live.push(ticket);
        }
    }
    let Some(first) = live.first() else {
        return;
    };
    let model = Arc::clone(&first.payload.model);
    let rows: usize = live.iter().map(|t| t.rows).sum();
    shared.stats.batches.fetch_add(1, Ordering::Relaxed);
    shared.stats.batched_rows.fetch_add(rows as u64, Ordering::Relaxed);
    t2c_obs::record("serve.batch_rows", rows as f64);

    let fail_all = |live: Vec<Ticket<Job>>, err: ServeError| {
        for ticket in live {
            ticket.payload.pending.fulfill(Err(err.clone()));
        }
    };
    // A fully-open breaker fails queued batches without running them; a
    // half-open one lets the batch through — that batch *is* the recovery
    // probe, and its outcome decides whether the breaker closes.
    if model.breaker_is_open() {
        fail_all(live, ServeError::ModelPoisoned(model.name().to_string()));
        return;
    }
    let inputs: Vec<&Tensor<i32>> = live.iter().map(|t| &t.payload.input).collect();
    let joined = if inputs.len() == 1 {
        inputs[0].clone()
    } else {
        match Tensor::concat_axis0(&inputs) {
            Ok(j) => j,
            Err(e) => {
                fail_all(live, ServeError::Internal(format!("batch concat failed: {e}")));
                return;
            }
        }
    };
    // Compiled models run their execution plan inside the worker's arena
    // (fused epilogues, zero steady-state allocations, bit-identical to
    // the interpreter); uncompiled models fall back to the interpreter.
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| match model.plan() {
        Some(plan) => plan.run_quantized(&joined, arena),
        None => model.model().run_quantized(&joined),
    }));
    match outcome {
        Err(payload) => {
            shared.stats.panics.fetch_add(1, Ordering::Relaxed);
            t2c_obs::counter_add("serve.worker_panics", 1);
            let count = model.record_panic(shared.cfg.max_panics, shared.clock.now_ns());
            if model.is_poisoned() {
                t2c_obs::counter_add("serve.models_poisoned", 1);
            }
            let what = panic_message(payload.as_ref());
            fail_all(
                live,
                ServeError::Internal(format!(
                    "inference panicked ({what}); model '{}' panic {count}/{}",
                    model.name(),
                    shared.cfg.max_panics
                )),
            );
        }
        Ok(Err(e)) => {
            fail_all(live, ServeError::Internal(format!("model error: {e}")));
        }
        Ok(Ok(output)) => {
            model.breaker_on_success();
            // Device pacing: hold the batch until the configured per-batch
            // service window elapses, emulating a fixed-rate attached
            // accelerator (see `ServerConfig::pace_batch_ns`).
            if shared.cfg.pace_batch_ns > 0 {
                let elapsed = shared.clock.now_ns().saturating_sub(now);
                if elapsed < shared.cfg.pace_batch_ns {
                    std::thread::sleep(Duration::from_nanos(shared.cfg.pace_batch_ns - elapsed));
                }
            }
            let sizes: Vec<usize> = live.iter().map(|t| t.rows).collect();
            match output.split_axis0(&sizes) {
                Err(e) => {
                    fail_all(live, ServeError::Internal(format!("batch output split failed: {e}")));
                }
                Ok(parts) => {
                    let done = shared.clock.now_ns();
                    for (ticket, part) in live.into_iter().zip(parts) {
                        let latency = done.saturating_sub(ticket.enqueued_ns);
                        t2c_obs::record("serve.latency_ns", latency as f64);
                        shared.stats.completed.fetch_add(1, Ordering::Relaxed);
                        if shared.cfg.audit_every > 0 && shared.audit.should_sample() {
                            audit_request(shared, &model, &ticket.payload.input, &part);
                        }
                        ticket.payload.pending.fulfill(Ok(part));
                    }
                }
            }
        }
    }
}

/// Dual-path divergence audit: de-quantizes the sampled request's integer
/// codes, re-runs them through the model's *float-entry* path
/// (`IntModel::run`, i.e. requantize → same graph, unbatched) and compares
/// against the rows the batched integer path produced. Any divergence is a
/// batching-invariance or quantize-path fault; the worst normalized error
/// lands in the `serve.<model>.dualpath_max_err` gauge and the stats
/// snapshot.
///
/// The audit doubles as a soundness canary for the static error
/// certificate the model was admitted under (DESIGN.md §6.11): the float
/// path is one member of the reference family the certificate dominates,
/// so observed absolute divergence (in final code units) beyond the
/// certified bound means either the certifier or the kernels are wrong —
/// it fires `serve.audit_certificate_violations` and the
/// `serve.<model>.cert_violation_steps` gauge.
fn audit_request(
    shared: &Arc<Shared>,
    model: &Arc<AdmittedModel>,
    codes: &Tensor<i32>,
    served: &Tensor<i32>,
) {
    t2c_obs::counter_add("serve.audit_runs", 1);
    let float_input = model.dequantize(codes);
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| model.model().run(&float_input)));
    let Ok(Ok(reference)) = outcome else {
        // The float path failing where the integer path succeeded is
        // itself maximal divergence.
        shared.stats.note_audit(1.0);
        t2c_obs::counter_add("serve.audit_divergences", 1);
        t2c_obs::gauge_set(&format!("serve.{}.dualpath_max_err", model.name()), 1.0);
        return;
    };
    let divergence = if reference.dims() == served.dims() {
        let denom = reference.as_slice().iter().fold(1.0f64, |m, &v| m.max(f64::from(v).abs()));
        let abs_div = reference
            .as_slice()
            .iter()
            .zip(served.as_slice())
            .fold(0.0f64, |m, (&a, &b)| m.max((f64::from(a) - f64::from(b)).abs()));
        if let Some(bound) = model.certified_error_steps() {
            if abs_div > bound {
                t2c_obs::counter_add("serve.audit_certificate_violations", 1);
                t2c_obs::gauge_set(
                    &format!("serve.{}.cert_violation_steps", model.name()),
                    abs_div - bound,
                );
            }
        }
        abs_div / denom
    } else {
        1.0
    };
    shared.stats.note_audit(divergence);
    if divergence > 0.0 {
        t2c_obs::counter_add("serve.audit_divergences", 1);
    }
    t2c_obs::gauge_set(&format!("serve.{}.dualpath_max_err", model.name()), divergence);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::BatchConfig;
    use crate::clock::FakeClock;
    use t2c_core::intmodel::{IntOp, Src};
    use t2c_core::lut::GeluLut;
    use t2c_core::zoo;
    use t2c_core::QuantSpec;

    fn mlp_registry() -> (Arc<ModelRegistry>, Arc<crate::registry::AdmittedModel>) {
        let reg = Arc::new(ModelRegistry::new());
        let (m, dims) = zoo::tiny_mlp();
        let admitted = reg.admit("mlp", m, &dims).expect("tiny_mlp passes the gate");
        (reg, admitted)
    }

    fn codes_for(
        admitted: &crate::registry::AdmittedModel,
        rows: usize,
        salt: usize,
    ) -> Tensor<i32> {
        let mut dims = admitted.input_dims().to_vec();
        dims[0] = rows;
        let x = Tensor::from_fn(&dims, |i| ((i * 31 + salt * 17) % 100) as f32 * 0.01 - 0.5);
        admitted.quantize(&x)
    }

    #[test]
    fn served_results_match_direct_execution_under_concurrency() {
        let (reg, admitted) = mlp_registry();
        let cfg = ServerConfig {
            batch: BatchConfig { max_batch: 8, max_delay_ns: 500_000, queue_cap: 256 },
            workers: 3,
            ..ServerConfig::default()
        };
        let server = Server::start(Arc::clone(&reg), cfg);
        let handle = server.handle();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let handle = handle.clone();
                let admitted = &admitted;
                scope.spawn(move || {
                    for r in 0..4 {
                        let codes = codes_for(admitted, 1 + (t + r) % 3, t * 100 + r);
                        let want = admitted.model().run_quantized(&codes).unwrap();
                        let got = handle.infer("mlp", codes).unwrap();
                        assert_eq!(got.as_slice(), want.as_slice(), "thread {t} req {r}");
                    }
                });
            }
        });
        let stats = server.shutdown();
        assert_eq!(stats.completed, 32);
        assert_eq!(stats.panics, 0);
        assert_eq!(stats.deadline_exceeded, 0);
    }

    #[test]
    fn saturation_rejects_busy_and_drain_still_resolves_queued_work() {
        let (reg, admitted) = mlp_registry();
        // Batches never flush on their own: the window is huge and the
        // batch bound unreachable, so the queue fills deterministically.
        let cfg = ServerConfig {
            batch: BatchConfig { max_batch: 1_000, max_delay_ns: u64::MAX / 2, queue_cap: 4 },
            workers: 1,
            ..ServerConfig::default()
        };
        let server = Server::start(Arc::clone(&reg), cfg);
        let handle = server.handle();
        let mut pending = Vec::new();
        for i in 0..4 {
            pending.push(handle.submit("mlp", codes_for(&admitted, 1, i)).unwrap());
        }
        let rejected = handle.submit("mlp", codes_for(&admitted, 1, 99));
        assert_eq!(rejected.err(), Some(ServeError::Busy), "5th request must hit backpressure");
        // Graceful drain flushes the four queued requests.
        let handle2 = handle.clone();
        let stats = server.shutdown();
        for p in pending {
            p.wait().expect("drained request must resolve with a result");
        }
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.rejected_busy, 1);
        // After shutdown the batcher is draining: no new admissions.
        let late = handle2.submit("mlp", codes_for(&admitted, 1, 7));
        assert_eq!(late.err(), Some(ServeError::ShuttingDown));
    }

    #[test]
    fn deadlines_expire_deterministically_with_a_fake_clock() {
        let (reg, admitted) = mlp_registry();
        let clock = Arc::new(FakeClock::new(1_000));
        let cfg = ServerConfig {
            batch: BatchConfig { max_batch: 1_000, max_delay_ns: u64::MAX / 2, queue_cap: 16 },
            workers: 1,
            ..ServerConfig::default()
        };
        let server =
            Server::start_with_clock(Arc::clone(&reg), cfg, Arc::<FakeClock>::clone(&clock));
        let handle = server.handle();
        let doomed = handle.submit_within("mlp", codes_for(&admitted, 1, 0), 5_000).unwrap();
        // Nothing sleeps: advance fake time past the deadline and let the
        // batcher's next poll expire the ticket; wait() blocks until then.
        clock.advance(10_000);
        assert_eq!(doomed.wait().err(), Some(ServeError::DeadlineExceeded));
        let stats = server.shutdown();
        assert_eq!(stats.deadline_exceeded, 1);
        assert_eq!(stats.completed, 0);
    }

    #[test]
    fn expired_on_arrival_is_rejected_synchronously_not_queued() {
        let (reg, admitted) = mlp_registry();
        let clock = Arc::new(FakeClock::new(1_000));
        // Tiny queue so the test can also prove the rejection happens
        // before the capacity check.
        let cfg = ServerConfig {
            batch: BatchConfig { max_batch: 1_000, max_delay_ns: u64::MAX / 2, queue_cap: 2 },
            workers: 1,
            ..ServerConfig::default()
        };
        let server =
            Server::start_with_clock(Arc::clone(&reg), cfg, Arc::<FakeClock>::clone(&clock));
        let handle = server.handle();
        // A zero budget makes deadline == now: dead on arrival. The
        // rejection is synchronous — no ticket is queued, no worker runs.
        let dead = handle.submit_within("mlp", codes_for(&admitted, 1, 0), 0);
        assert_eq!(dead.err(), Some(ServeError::DeadlineExceeded));
        // The queue is untouched: both capacity slots are still free.
        let p0 = handle.submit("mlp", codes_for(&admitted, 1, 1)).unwrap();
        let p1 = handle.submit("mlp", codes_for(&admitted, 1, 2)).unwrap();
        // With the queue full, an expired request still reports the
        // deadline — the caller's real problem — rather than Busy.
        let dead_on_full = handle.submit_within("mlp", codes_for(&admitted, 1, 3), 0);
        assert_eq!(dead_on_full.err(), Some(ServeError::DeadlineExceeded));
        let stats = server.shutdown();
        p0.wait().expect("queued request must drain");
        p1.wait().expect("queued request must drain");
        assert_eq!(stats.deadline_exceeded, 2);
        assert_eq!(stats.rejected_busy, 0);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn worker_panics_are_isolated_and_poison_the_model() {
        // A GeluLut whose table covers one code out of 256: any larger
        // input code indexes out of bounds and panics inside the worker.
        // The lint gate would refuse this (T2C301), which is exactly why
        // the test goes through admit_unchecked.
        let reg = Arc::new(ModelRegistry::new());
        let mut m = t2c_core::IntModel::new();
        m.push("input", IntOp::Quantize { scale: 0.01, spec: QuantSpec::signed(8) }, vec![]);
        let spec = QuantSpec::signed(8);
        m.push(
            "boom",
            IntOp::GeluLut(GeluLut {
                table: vec![0],
                in_spec: spec,
                in_scale: 0.01,
                out_spec: spec,
                out_scale: 0.01,
            }),
            vec![Src::Node(0)],
        );
        let admitted = reg.admit_unchecked("faulty", m, &[1, 8]).unwrap();
        let (healthy, hdims) = zoo::tiny_mlp();
        let good = reg.admit("mlp", healthy, &hdims).unwrap();

        let cfg = ServerConfig {
            batch: BatchConfig { max_batch: 4, max_delay_ns: 100_000, queue_cap: 64 },
            workers: 2,
            max_panics: 2,
            ..ServerConfig::default()
        };
        let server = Server::start(Arc::clone(&reg), cfg);
        let handle = server.handle();
        let bad_input = Tensor::from_fn(&[1, 8], |_| 100); // code 100 → index OOB

        let first = handle.infer("faulty", bad_input.clone());
        match first {
            Err(ServeError::Internal(msg)) => {
                assert!(msg.contains("panicked"), "expected isolated panic, got: {msg}");
            }
            other => panic!("expected Internal(panic), got {other:?}"),
        }
        assert!(!admitted.is_poisoned(), "one panic is under the budget of 2");
        let second = handle.infer("faulty", bad_input.clone());
        assert!(matches!(second, Err(ServeError::Internal(_))));
        assert!(admitted.is_poisoned(), "second panic must trip the breaker");
        // Quarantined at admission now.
        let third = handle.infer("faulty", bad_input);
        assert_eq!(third.err(), Some(ServeError::ModelPoisoned("faulty".into())));
        // The healthy model keeps serving on the same pool.
        let codes = codes_for(&good, 2, 5);
        let want = good.model().run_quantized(&codes).unwrap();
        assert_eq!(handle.infer("mlp", codes).unwrap().as_slice(), want.as_slice());
        let stats = server.shutdown();
        assert_eq!(stats.panics, 2);
        assert!(stats.completed >= 1);
    }

    #[test]
    fn sampled_dual_path_audit_sees_zero_divergence_on_a_sound_model() {
        let (reg, admitted) = mlp_registry();
        let cfg = ServerConfig {
            batch: BatchConfig { max_batch: 4, max_delay_ns: 200_000, queue_cap: 64 },
            workers: 2,
            audit_every: 2,
            ..ServerConfig::default()
        };
        let server = Server::start(Arc::clone(&reg), cfg);
        let handle = server.handle();
        for i in 0..10 {
            let codes = codes_for(&admitted, 1, i);
            handle.infer("mlp", codes).unwrap();
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 10);
        assert!(stats.audits >= 5, "1-in-2 sampling over 10 requests, got {}", stats.audits);
        assert_eq!(
            stats.max_audit_divergence, 0.0,
            "integer and float paths must agree on tiny_mlp"
        );
    }

    #[test]
    fn note_audit_rejects_non_finite_divergence() {
        let stats = ServeStats::default();
        stats.note_audit(f64::NAN);
        stats.note_audit(f64::INFINITY);
        stats.note_audit(f64::NEG_INFINITY);
        stats.note_audit(0.25);
        assert_eq!(stats.audits.load(Ordering::Relaxed), 1, "only the finite sample counts");
        assert_eq!(stats.audits_invalid.load(Ordering::Relaxed), 3);
        let max = f64::from_bits(stats.max_audit_divergence_bits.load(Ordering::Relaxed));
        assert_eq!(max, 0.25, "non-finite samples must not poison the maximum");
    }

    #[test]
    fn audited_serving_stays_within_the_certified_error_bound() {
        // The dual-path float reference is one member of the family the
        // static certificate dominates: an audited run must never trip
        // the certificate canary on a sound model.
        let (reg, admitted) = mlp_registry();
        let bound = admitted.certified_error_steps().expect("tiny_mlp certifies");
        let cfg = ServerConfig {
            batch: BatchConfig { max_batch: 4, max_delay_ns: 200_000, queue_cap: 64 },
            workers: 2,
            audit_every: 1,
            ..ServerConfig::default()
        };
        let server = Server::start(Arc::clone(&reg), cfg);
        let handle = server.handle();
        for i in 0..6 {
            let codes = codes_for(&admitted, 1, i);
            handle.infer("mlp", codes).unwrap();
        }
        let stats = server.shutdown();
        assert!(stats.audits >= 6);
        assert_eq!(stats.audits_invalid, 0);
        // Zero observed divergence trivially sits under any finite bound,
        // which is exactly what the canary asserts at runtime.
        assert!(stats.max_audit_divergence <= bound);
    }

    #[test]
    fn in_flight_requests_complete_on_the_old_version_across_a_swap() {
        // Batches never flush on their own, so v1's tickets are still
        // queued when the swap lands; drain resolves everything.
        let (reg, v1) = mlp_registry();
        let cfg = ServerConfig {
            batch: BatchConfig { max_batch: 1_000, max_delay_ns: u64::MAX / 2, queue_cap: 16 },
            workers: 1,
            ..ServerConfig::default()
        };
        let server = Server::start(Arc::clone(&reg), cfg);
        let handle = server.handle();
        let x = Tensor::from_fn(v1.input_dims(), |i| (i as f32) * 0.013 - 0.4);
        let old_codes = v1.quantize(&x);
        let want_old = v1.model().run_quantized(&old_codes).unwrap();
        let p_old_a = handle.submit("mlp", old_codes.clone()).unwrap();
        let p_old_b = handle.submit("mlp", old_codes.clone()).unwrap();
        // Rolling update: replace the graph in place while those tickets
        // are in flight. The new version is a genuinely different graph
        // (heavily pruned fc1) with the same input shape.
        let (v2_model, _) = zoo::tiny_mlp_pruned(0.8);
        let v2 = reg.swap("mlp", v2_model).expect("swap passes the gate");
        let want_new = v2.model().run_quantized(&old_codes).unwrap();
        assert_ne!(want_old.as_slice(), want_new.as_slice(), "versions must differ");
        let p_new = handle.submit("mlp", old_codes).unwrap();
        let stats = server.shutdown();
        // The in-flight v1 requests completed on the graph they were
        // admitted under; the post-swap request ran v2. Fresh batching
        // groups guarantee the drain never mixed them into one batch.
        assert_eq!(p_old_a.wait().unwrap().as_slice(), want_old.as_slice());
        assert_eq!(p_old_b.wait().unwrap().as_slice(), want_old.as_slice());
        assert_eq!(p_new.wait().unwrap().as_slice(), want_new.as_slice());
        assert_eq!(stats.completed, 3);
        assert!(stats.batches >= 2, "v1 and v2 tickets must dispatch as separate batches");
    }

    #[test]
    fn breaker_recovers_through_a_half_open_probe_end_to_end() {
        // Same faulty LUT as the isolation test: any code above the grid
        // minimum indexes out of bounds and panics; code −128 (index 0)
        // succeeds — that's the probe's recovery evidence.
        let reg = Arc::new(ModelRegistry::new());
        let mut m = t2c_core::IntModel::new();
        m.push("input", IntOp::Quantize { scale: 0.01, spec: QuantSpec::signed(8) }, vec![]);
        let spec = QuantSpec::signed(8);
        m.push(
            "boom",
            IntOp::GeluLut(GeluLut {
                table: vec![0],
                in_spec: spec,
                in_scale: 0.01,
                out_spec: spec,
                out_scale: 0.01,
            }),
            vec![Src::Node(0)],
        );
        reg.admit_unchecked("flaky", m, &[1, 8]).unwrap();
        let clock = Arc::new(FakeClock::new(1_000));
        let cooldown = 1_000_000u64;
        let cfg = ServerConfig {
            batch: BatchConfig { max_batch: 1, max_delay_ns: 0, queue_cap: 16 },
            workers: 1,
            max_panics: 1,
            breaker_cooldown_ns: cooldown,
            ..ServerConfig::default()
        };
        let server =
            Server::start_with_clock(Arc::clone(&reg), cfg, Arc::<FakeClock>::clone(&clock));
        let handle = server.handle();
        let bad = Tensor::from_fn(&[1, 8], |_| 100);
        let good = Tensor::from_fn(&[1, 8], |_| -128);
        // One panic trips the breaker (budget 1) — open.
        assert!(matches!(handle.infer("flaky", bad.clone()), Err(ServeError::Internal(_))));
        assert_eq!(
            handle.infer("flaky", good.clone()).err(),
            Some(ServeError::ModelPoisoned("flaky".into()))
        );
        // Cooldown elapses: the next request is the single recovery probe.
        clock.advance(cooldown + 1);
        handle.infer("flaky", good.clone()).expect("probe with a good input must succeed");
        // Probe success closed the breaker: traffic flows again.
        handle.infer("flaky", good).expect("breaker must be closed after a good probe");
        // And a fresh panic re-opens it with the reset budget.
        assert!(matches!(handle.infer("flaky", bad), Err(ServeError::Internal(_))));
        assert!(reg.get("flaky").unwrap().is_poisoned());
        server.shutdown();
    }

    #[test]
    fn unknown_model_and_bad_shape_reject_synchronously() {
        let (reg, admitted) = mlp_registry();
        let d = admitted.input_dims()[1];
        let server = Server::start(Arc::clone(&reg), ServerConfig::default());
        let handle = server.handle();
        assert!(matches!(
            handle.infer("ghost", Tensor::zeros(&[1, d])),
            Err(ServeError::ModelNotFound(_))
        ));
        assert!(matches!(
            handle.infer("mlp", Tensor::zeros(&[1, d - 1])),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            handle.infer("mlp", Tensor::zeros(&[0, d])),
            Err(ServeError::BadRequest(_))
        ));
        drop(server); // Drop also drains cleanly.
    }
}
