//! The dynamic micro-batching scheduler core.
//!
//! [`MicroBatcher`] is a *pure* state machine: it owns the bounded
//! admission queue and decides, given an explicit `now` timestamp, whether
//! to dispatch a batch, sleep until a flush window closes, or idle. All
//! time flows in through parameters — no `Instant::now()`, no sleeping —
//! which is what makes flush timing, deadline expiry, backpressure and
//! drain ordering unit-testable with a fake clock and zero sleeps.
//!
//! The threaded runtime in [`crate::runtime`] wraps one of these behind a
//! mutex/condvar and turns `Decision::WaitUntil` into actual condvar waits.
//!
//! Batching policy: requests coalesce per *group* (one group per admitted
//! model — tensors from different models can never be concatenated). A
//! batch dispatches as soon as the head group has [`BatchConfig::max_batch`]
//! rows queued, or when the head ticket has waited
//! [`BatchConfig::max_delay_ns`], whichever comes first. During drain the
//! delay window is ignored and everything flushes in FIFO order.

use std::collections::VecDeque;

use crate::error::ServeError;

/// Deadline sentinel: "no deadline".
pub const NO_DEADLINE: u64 = u64::MAX;

/// Scheduler policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Maximum rows per dispatched batch. A single request larger than
    /// this still dispatches (alone) — requests are never split.
    pub max_batch: usize,
    /// How long the oldest queued request may wait for co-batched work
    /// before the batch flushes anyway.
    pub max_delay_ns: u64,
    /// Bound on queued *requests*; admission beyond this is rejected with
    /// [`ServeError::Busy`].
    pub queue_cap: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig { max_batch: 16, max_delay_ns: 2_000_000, queue_cap: 256 }
    }
}

/// A queued request plus its scheduling metadata.
#[derive(Debug)]
pub struct Ticket<T> {
    /// The caller's payload (the runtime stores the input tensor and the
    /// completion slot here).
    pub payload: T,
    /// Batching group — tickets only coalesce within a group.
    pub group: usize,
    /// Batch rows this request contributes.
    pub rows: usize,
    /// Admission timestamp.
    pub enqueued_ns: u64,
    /// Absolute expiry ([`NO_DEADLINE`] = none).
    pub deadline_ns: u64,
    /// Admission order (monotonic per batcher).
    pub seq: u64,
}

/// What the scheduler wants to happen next.
#[derive(Debug)]
pub enum Decision<T> {
    /// Run this batch now. All tickets share one group; total rows respect
    /// `max_batch` (unless a single oversized request).
    Dispatch(Vec<Ticket<T>>),
    /// Nothing is due; re-poll at this timestamp (or on new admission).
    WaitUntil(u64),
    /// The queue is empty.
    Idle,
}

/// Pure micro-batching state machine. See the module docs.
#[derive(Debug)]
pub struct MicroBatcher<T> {
    cfg: BatchConfig,
    queue: VecDeque<Ticket<T>>,
    /// Queued rows per group (indexed by group id) — kept incrementally so
    /// admission can decide in O(1) whether a batch just became full.
    rows_per_group: Vec<usize>,
    draining: bool,
    next_seq: u64,
}

impl<T> MicroBatcher<T> {
    /// A new batcher with the given policy. `max_batch` and `queue_cap`
    /// are clamped to at least 1.
    pub fn new(cfg: BatchConfig) -> Self {
        let cfg =
            BatchConfig { max_batch: cfg.max_batch.max(1), queue_cap: cfg.queue_cap.max(1), ..cfg };
        MicroBatcher {
            cfg,
            queue: VecDeque::new(),
            rows_per_group: Vec::new(),
            draining: false,
            next_seq: 0,
        }
    }

    /// The active policy.
    pub fn config(&self) -> &BatchConfig {
        &self.cfg
    }

    /// Queued request count.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total queued rows (the queue-depth gauge).
    pub fn queued_rows(&self) -> usize {
        self.rows_per_group.iter().sum()
    }

    /// Queued rows for one batching group. The runtime uses this to
    /// coalesce scheduler wakeups: an admission only needs to wake the
    /// batcher when the queue was empty (a new flush window starts) or
    /// when this count reaches `max_batch` (a batch just became full) —
    /// every other admission can ride the existing window timeout.
    pub fn group_rows(&self, group: usize) -> usize {
        self.rows_per_group.get(group).copied().unwrap_or(0)
    }

    fn bump_group(&mut self, group: usize, delta_rows: isize) {
        if self.rows_per_group.len() <= group {
            self.rows_per_group.resize(group + 1, 0);
        }
        let slot = &mut self.rows_per_group[group];
        *slot = slot.saturating_add_signed(delta_rows);
    }

    /// True once [`Self::start_drain`] was called.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Stops admission; queued work still dispatches (immediately — the
    /// delay window no longer applies).
    pub fn start_drain(&mut self) {
        self.draining = true;
    }

    /// Admits a request, or rejects it with [`ServeError::ShuttingDown`]
    /// (draining) / [`ServeError::DeadlineExceeded`] (already expired) /
    /// [`ServeError::Busy`] (queue full). Returns the admission sequence
    /// number.
    ///
    /// # Errors
    ///
    /// `ShuttingDown` after [`Self::start_drain`]; `DeadlineExceeded` when
    /// `deadline_ns <= now_ns` — a request that is dead on arrival must
    /// not consume a queue slot only for [`Self::take_expired`] to evict
    /// it later; `Busy` when the queue holds `queue_cap` requests. The
    /// expiry check runs *before* the capacity check so a saturated queue
    /// reports the caller's real problem (the deadline), not `Busy`.
    pub fn admit(
        &mut self,
        payload: T,
        group: usize,
        rows: usize,
        now_ns: u64,
        deadline_ns: u64,
    ) -> Result<u64, ServeError> {
        if self.draining {
            return Err(ServeError::ShuttingDown);
        }
        if deadline_ns <= now_ns {
            return Err(ServeError::DeadlineExceeded);
        }
        if self.queue.len() >= self.cfg.queue_cap {
            return Err(ServeError::Busy);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let rows = rows.max(1);
        self.bump_group(group, isize::try_from(rows).unwrap_or(isize::MAX));
        self.queue.push_back(Ticket {
            payload,
            group,
            rows,
            enqueued_ns: now_ns,
            deadline_ns,
            seq,
        });
        Ok(seq)
    }

    /// Removes and returns every queued ticket whose deadline has passed,
    /// in admission order. Call before [`Self::next_batch`] so expired
    /// requests never reach a worker.
    pub fn take_expired(&mut self, now_ns: u64) -> Vec<Ticket<T>> {
        let mut expired = Vec::new();
        let mut keep = VecDeque::with_capacity(self.queue.len());
        for t in self.queue.drain(..) {
            if t.deadline_ns <= now_ns {
                expired.push(t);
            } else {
                keep.push_back(t);
            }
        }
        self.queue = keep;
        for t in &expired {
            self.bump_group(t.group, -isize::try_from(t.rows).unwrap_or(isize::MAX));
        }
        expired
    }

    /// The scheduling decision at `now_ns`.
    ///
    /// Dispatch fires when the head group is full (`max_batch` rows ready,
    /// or the next same-group ticket would overflow the batch) or due (head
    /// ticket waited `max_delay_ns`, or the batcher is draining). The
    /// dispatched tickets are removed from the queue; tickets of *other*
    /// groups keep their relative order.
    pub fn next_batch(&mut self, now_ns: u64) -> Decision<T> {
        let Some(head) = self.queue.front() else {
            return Decision::Idle;
        };
        let flush_at = head.enqueued_ns.saturating_add(self.cfg.max_delay_ns);
        let due = self.draining || flush_at <= now_ns;

        // Collect the head group's tickets (FIFO) up to max_batch rows.
        let group = head.group;
        let mut picked: Vec<u64> = Vec::new();
        let mut rows = 0usize;
        let mut overflow = false;
        for t in &self.queue {
            if t.group != group {
                continue;
            }
            if !picked.is_empty() && rows + t.rows > self.cfg.max_batch {
                overflow = true;
                break;
            }
            rows += t.rows;
            picked.push(t.seq);
            if rows >= self.cfg.max_batch {
                overflow = true;
                break;
            }
        }
        if !(due || overflow) {
            return Decision::WaitUntil(flush_at);
        }
        let mut batch = Vec::with_capacity(picked.len());
        let mut keep = VecDeque::with_capacity(self.queue.len());
        for t in self.queue.drain(..) {
            if picked.contains(&t.seq) {
                batch.push(t);
            } else {
                keep.push_back(t);
            }
        }
        self.queue = keep;
        self.bump_group(group, -isize::try_from(rows).unwrap_or(isize::MAX));
        Decision::Dispatch(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(max_batch: usize, max_delay_ns: u64, queue_cap: usize) -> BatchConfig {
        BatchConfig { max_batch, max_delay_ns, queue_cap }
    }

    fn dispatch<T: std::fmt::Debug>(d: Decision<T>) -> Vec<Ticket<T>> {
        match d {
            Decision::Dispatch(b) => b,
            other => panic!("expected Dispatch, got {other:?}"),
        }
    }

    #[test]
    fn flushes_immediately_when_max_batch_rows_are_queued() {
        let mut b = MicroBatcher::new(cfg(4, 1_000_000, 64));
        for i in 0..4 {
            b.admit(i, 0, 1, 0, NO_DEADLINE).unwrap();
        }
        // t=0: the delay window is wide open, but the batch is full.
        let batch = dispatch(b.next_batch(0));
        assert_eq!(batch.iter().map(|t| t.payload).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert!(b.is_empty());
    }

    #[test]
    fn waits_for_the_delay_window_then_flushes_a_partial_batch() {
        let mut b = MicroBatcher::new(cfg(16, 1_000, 64));
        b.admit("a", 0, 1, 100, NO_DEADLINE).unwrap();
        b.admit("b", 0, 1, 400, NO_DEADLINE).unwrap();
        // Window closes at head.enqueued + delay = 1100, not 1400.
        match b.next_batch(500) {
            Decision::WaitUntil(t) => assert_eq!(t, 1_100),
            other => panic!("expected WaitUntil(1100), got {other:?}"),
        }
        match b.next_batch(1_099) {
            Decision::WaitUntil(t) => assert_eq!(t, 1_100),
            other => panic!("expected WaitUntil(1100), got {other:?}"),
        }
        let batch = dispatch(b.next_batch(1_100));
        assert_eq!(batch.len(), 2);
        assert!(matches!(b.next_batch(1_100), Decision::Idle));
    }

    #[test]
    fn rows_count_toward_max_batch_and_oversized_requests_go_alone() {
        let mut b = MicroBatcher::new(cfg(8, 1_000, 64));
        b.admit("big", 0, 32, 0, NO_DEADLINE).unwrap(); // > max_batch: never split
        b.admit("small", 0, 1, 0, NO_DEADLINE).unwrap();
        let first = dispatch(b.next_batch(0));
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].payload, "big");
        // The small one now waits for its own window.
        match b.next_batch(0) {
            Decision::WaitUntil(t) => assert_eq!(t, 1_000),
            other => panic!("expected WaitUntil, got {other:?}"),
        }
    }

    #[test]
    fn backpressure_rejects_with_busy_at_queue_cap() {
        let mut b = MicroBatcher::new(cfg(16, 1_000, 2));
        b.admit(1, 0, 1, 0, NO_DEADLINE).unwrap();
        b.admit(2, 0, 1, 0, NO_DEADLINE).unwrap();
        assert_eq!(b.admit(3, 0, 1, 0, NO_DEADLINE), Err(ServeError::Busy));
        // Dispatching frees capacity again.
        let _ = dispatch(b.next_batch(1_000));
        b.admit(4, 0, 1, 1_001, NO_DEADLINE).unwrap();
    }

    #[test]
    fn deadline_expiry_removes_exactly_the_overdue_tickets() {
        let mut b = MicroBatcher::new(cfg(16, 10_000, 64));
        b.admit("t800", 0, 1, 0, 800).unwrap();
        b.admit("t2000", 0, 1, 0, 2_000).unwrap();
        b.admit("never", 0, 1, 0, NO_DEADLINE).unwrap();
        assert!(b.take_expired(799).is_empty());
        let expired = b.take_expired(800);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].payload, "t800");
        assert_eq!(b.len(), 2);
        let expired = b.take_expired(5_000);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].payload, "t2000");
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn drain_rejects_new_work_and_flushes_fifo_without_waiting() {
        let mut b = MicroBatcher::new(cfg(2, u64::MAX, 64));
        for i in 0i32..5 {
            b.admit(i, 0, 1, i as u64, NO_DEADLINE).unwrap();
        }
        b.start_drain();
        assert_eq!(b.admit(99, 0, 1, 10, NO_DEADLINE), Err(ServeError::ShuttingDown));
        // The infinite delay window is ignored during drain; batches come
        // out in strict admission order.
        let mut order = Vec::new();
        loop {
            match b.next_batch(10) {
                Decision::Dispatch(batch) => {
                    assert!(batch.len() <= 2);
                    order.extend(batch.iter().map(|t| t.payload));
                }
                Decision::Idle => break,
                Decision::WaitUntil(t) => panic!("drain must not wait (until {t})"),
            }
        }
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn groups_never_mix_and_skipped_groups_keep_their_order() {
        let mut b = MicroBatcher::new(cfg(16, 0, 64)); // delay 0: always due
        b.admit("a0", 0, 1, 0, NO_DEADLINE).unwrap();
        b.admit("b0", 1, 1, 0, NO_DEADLINE).unwrap();
        b.admit("a1", 0, 1, 0, NO_DEADLINE).unwrap();
        b.admit("b1", 1, 1, 0, NO_DEADLINE).unwrap();
        let first = dispatch(b.next_batch(0));
        assert_eq!(first.iter().map(|t| t.payload).collect::<Vec<_>>(), vec!["a0", "a1"]);
        let second = dispatch(b.next_batch(0));
        assert_eq!(second.iter().map(|t| t.payload).collect::<Vec<_>>(), vec!["b0", "b1"]);
    }

    #[test]
    fn full_group_dispatches_even_if_a_different_group_is_at_the_head() {
        // Head is group 1 (not yet due, 1 row); group 0 fills max_batch
        // behind it. The head group decides the batch: group 1 waits, so
        // WaitUntil — then once due, group 1 dispatches alone and group 0
        // (now at head, full) flushes immediately.
        let mut b = MicroBatcher::new(cfg(2, 1_000, 64));
        b.admit("b0", 1, 1, 0, NO_DEADLINE).unwrap();
        b.admit("a0", 0, 1, 1, NO_DEADLINE).unwrap();
        b.admit("a1", 0, 1, 1, NO_DEADLINE).unwrap();
        match b.next_batch(500) {
            Decision::WaitUntil(t) => assert_eq!(t, 1_000),
            other => panic!("expected WaitUntil, got {other:?}"),
        }
        let first = dispatch(b.next_batch(1_000));
        assert_eq!(first[0].payload, "b0");
        let second = dispatch(b.next_batch(1_000));
        assert_eq!(second.iter().map(|t| t.payload).collect::<Vec<_>>(), vec!["a0", "a1"]);
    }
}
