//! The length-prefixed TCP protocol and its client.
//!
//! Framing (all integers little-endian): every message is
//! `u32 payload_len` followed by `payload_len` bytes, capped at
//! [`MAX_FRAME_BYTES`].
//!
//! Request payload:
//!
//! ```text
//! u16  name_len      model name length
//! ..   name          UTF-8 model name
//! u32  deadline_ms   per-request budget (0 = server default)
//! u8   rank          tensor rank (≤ MAX_RANK)
//! u32×rank dims      tensor dims, axis 0 = batch rows
//! i32×numel data     quantized input codes, row-major
//! ```
//!
//! Response payload: `u8 status` (0 = OK, else [`ServeError::status`]),
//! then on OK `u8 rank, u32×rank dims, i32×numel data`, on error
//! `u16 msg_len, msg` (UTF-8 detail).
//!
//! A connection carries any number of request/response pairs in order;
//! the server closes on EOF or framing violations.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use t2c_tensor::Tensor;

use crate::error::ServeError;
use crate::runtime::Handle;

/// Maximum frame payload (64 MiB) — oversized frames are a protocol
/// violation, not an allocation.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Maximum tensor rank on the wire.
pub const MAX_RANK: usize = 8;

/// A decoded inference request.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRequest {
    /// Registry name of the target model.
    pub model: String,
    /// Deadline budget in milliseconds (0 = server default).
    pub deadline_ms: u32,
    /// Quantized input codes, batch on axis 0.
    pub input: Tensor<i32>,
}

/// Encodes a request payload (without the frame length prefix).
pub fn encode_request(req: &WireRequest) -> Vec<u8> {
    let name = req.model.as_bytes();
    let dims = req.input.dims();
    let mut out =
        Vec::with_capacity(2 + name.len() + 4 + 1 + dims.len() * 4 + req.input.numel() * 4);
    out.extend_from_slice(&u16::try_from(name.len()).unwrap_or(u16::MAX).to_le_bytes());
    out.extend_from_slice(name);
    out.extend_from_slice(&req.deadline_ms.to_le_bytes());
    out.push(u8::try_from(dims.len()).unwrap_or(u8::MAX));
    for &d in dims {
        out.extend_from_slice(&u32::try_from(d).unwrap_or(u32::MAX).to_le_bytes());
    }
    for &v in req.input.as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// A cursor over a payload with bounds-checked little-endian reads.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len()).ok_or_else(|| {
            ServeError::BadRequest(format!(
                "truncated frame: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len()
            ))
        })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ServeError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ServeError> {
        let b = self.bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ServeError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn i32(&mut self) -> Result<i32, ServeError> {
        let b = self.bytes(4)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn decode_tensor(c: &mut Cursor<'_>) -> Result<Tensor<i32>, ServeError> {
    let rank = c.u8()? as usize;
    if rank == 0 || rank > MAX_RANK {
        return Err(ServeError::BadRequest(format!("rank {rank} outside 1..={MAX_RANK}")));
    }
    let mut dims = Vec::with_capacity(rank);
    let mut numel = 1usize;
    for _ in 0..rank {
        let d = c.u32()? as usize;
        numel = numel
            .checked_mul(d)
            .ok_or_else(|| ServeError::BadRequest("tensor element count overflows".to_string()))?;
        dims.push(d);
    }
    if numel.checked_mul(4).is_none_or(|b| b > MAX_FRAME_BYTES) {
        return Err(ServeError::BadRequest(format!("tensor of {numel} elements too large")));
    }
    let mut data = Vec::with_capacity(numel);
    for _ in 0..numel {
        data.push(c.i32()?);
    }
    Tensor::from_vec(data, &dims).map_err(|e| ServeError::BadRequest(e.to_string()))
}

/// Decodes a request payload.
///
/// # Errors
///
/// [`ServeError::BadRequest`] on any framing violation (truncation,
/// trailing bytes, invalid UTF-8, oversized tensors).
pub fn decode_request(payload: &[u8]) -> Result<WireRequest, ServeError> {
    let mut c = Cursor::new(payload);
    let name_len = c.u16()? as usize;
    let name = std::str::from_utf8(c.bytes(name_len)?)
        .map_err(|_| ServeError::BadRequest("model name is not UTF-8".to_string()))?
        .to_string();
    let deadline_ms = c.u32()?;
    let input = decode_tensor(&mut c)?;
    if !c.done() {
        return Err(ServeError::BadRequest("trailing bytes after request".to_string()));
    }
    Ok(WireRequest { model: name, deadline_ms, input })
}

/// Encodes a response payload (without the frame length prefix).
pub fn encode_response(result: &Result<Tensor<i32>, ServeError>) -> Vec<u8> {
    match result {
        Ok(tensor) => {
            let dims = tensor.dims();
            let mut out = Vec::with_capacity(2 + dims.len() * 4 + tensor.numel() * 4);
            out.push(0u8);
            out.push(u8::try_from(dims.len()).unwrap_or(u8::MAX));
            for &d in dims {
                out.extend_from_slice(&u32::try_from(d).unwrap_or(u32::MAX).to_le_bytes());
            }
            for &v in tensor.as_slice() {
                out.extend_from_slice(&v.to_le_bytes());
            }
            out
        }
        Err(e) => {
            let msg = e.detail().as_bytes();
            let mut out = Vec::with_capacity(3 + msg.len());
            out.push(e.status());
            out.extend_from_slice(&u16::try_from(msg.len()).unwrap_or(u16::MAX).to_le_bytes());
            out.extend_from_slice(&msg[..msg.len().min(u16::MAX as usize)]);
            out
        }
    }
}

/// Decodes a response payload.
///
/// # Errors
///
/// The server-reported [`ServeError`] for error statuses, or
/// [`ServeError::Io`] on framing violations.
pub fn decode_response(payload: &[u8]) -> Result<Tensor<i32>, ServeError> {
    let mut c = Cursor::new(payload);
    let status = c.u8().map_err(|_| ServeError::Io("empty response frame".to_string()))?;
    if status == 0 {
        return decode_tensor(&mut c).map_err(|e| ServeError::Io(e.to_string()));
    }
    let msg_len = c.u16().map_err(|_| ServeError::Io("truncated error response".into()))? as usize;
    let msg =
        c.bytes(msg_len).ok().and_then(|b| std::str::from_utf8(b).ok()).unwrap_or("").to_string();
    Err(ServeError::from_status(status, msg))
}

fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads until `buf` is full, riding out read timeouts. Returns
/// `Ok(false)` on clean EOF (or a stop request) *before the first byte*;
/// mid-buffer EOF is an error.
fn read_full(stream: &mut TcpStream, buf: &mut [u8], stop: &AtomicBool) -> io::Result<bool> {
    let mut filled = 0usize;
    while filled < buf.len() {
        if stop.load(Ordering::Acquire) && filled == 0 {
            return Ok(false);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(false)
                } else {
                    Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof mid-frame"))
                };
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn read_frame(stream: &mut TcpStream, stop: &AtomicBool) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    if !read_full(stream, &mut header, stop)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds cap {MAX_FRAME_BYTES}"),
        ));
    }
    let mut payload = vec![0u8; len];
    if !read_full(stream, &mut payload, stop)? {
        return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof before payload"));
    }
    Ok(Some(payload))
}

/// What the TCP front-end needs from whatever answers requests: a single
/// runtime ([`Handle`]) or a whole routing tier (`t2c-cluster`). The wire
/// protocol is identical either way, so `TcpClient` cannot tell a replica
/// from a cluster.
pub trait InferBackend: Send + Sync + 'static {
    /// One inference with the wire deadline semantics
    /// (`deadline_ms = 0` → backend default policy).
    ///
    /// # Errors
    ///
    /// The backend's rejection — becomes the wire status verbatim.
    fn infer_wire(
        &self,
        model: &str,
        input: Tensor<i32>,
        deadline_ms: u32,
    ) -> Result<Tensor<i32>, ServeError>;
}

impl InferBackend for Handle {
    fn infer_wire(
        &self,
        model: &str,
        input: Tensor<i32>,
        deadline_ms: u32,
    ) -> Result<Tensor<i32>, ServeError> {
        match deadline_ms {
            0 => self.infer(model, input),
            ms => self.infer_within(model, input, u64::from(ms) * 1_000_000),
        }
    }
}

fn handle_connection(mut stream: TcpStream, backend: &dyn InferBackend, stop: &AtomicBool) {
    stream.set_read_timeout(Some(Duration::from_millis(50))).ok();
    stream.set_nodelay(true).ok();
    while let Ok(Some(payload)) = read_frame(&mut stream, stop) {
        let result = match decode_request(&payload) {
            Ok(req) => backend.infer_wire(&req.model, req.input, req.deadline_ms),
            Err(e) => Err(e),
        };
        if write_frame(&mut stream, &encode_response(&result)).is_err() {
            break;
        }
    }
}

/// Runs the accept loop on its own thread: each connection gets a thread
/// reading request frames and answering through `handle`. Clears down when
/// `stop` flips — in-flight requests still resolve through the runtime's
/// drain.
///
/// # Errors
///
/// Returns the listener's local-address error, if any (the bind already
/// happened at the call site).
pub fn serve_tcp(
    handle: Handle,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
) -> io::Result<JoinHandle<()>> {
    serve_tcp_backend(Arc::new(handle), listener, stop)
}

/// [`serve_tcp`] generalized over the answering backend — the cluster bin
/// plugs its router in here and inherits the whole TCP front-end.
///
/// # Errors
///
/// As [`serve_tcp`].
pub fn serve_tcp_backend<B: InferBackend>(
    backend: Arc<B>,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
) -> io::Result<JoinHandle<()>> {
    listener.set_nonblocking(true)?;
    let thread = std::thread::Builder::new().name("t2c-serve-accept".into()).spawn(move || {
        let mut connections: Vec<JoinHandle<()>> = Vec::new();
        while !stop.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let backend = Arc::clone(&backend);
                    let stop = Arc::clone(&stop);
                    let conn = std::thread::Builder::new()
                        .name("t2c-serve-conn".into())
                        .spawn(move || handle_connection(stream, backend.as_ref(), &stop))
                        .expect("spawn connection thread");
                    connections.push(conn);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
            connections.retain(|c| !c.is_finished());
        }
        for conn in connections {
            conn.join().ok();
        }
    })?;
    Ok(thread)
}

/// Blocking TCP client for the serving protocol.
#[derive(Debug)]
pub struct TcpClient {
    stream: TcpStream,
    addr: std::net::SocketAddr,
}

impl TcpClient {
    /// Connects to a running `t2c-serve` endpoint.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let addr = stream.peer_addr()?;
        Ok(TcpClient { stream, addr })
    }

    /// Drops the current connection and dials the same endpoint again.
    /// The recovery move after an [`ServeError::Io`] failure (server
    /// restarted, connection cut mid-response): the old stream is in an
    /// unknown framing state and must not be reused.
    ///
    /// # Errors
    ///
    /// Propagates connect failures; the client keeps the old (broken)
    /// stream in that case so retries remain possible.
    pub fn reconnect(&mut self) -> io::Result<()> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true).ok();
        self.stream = stream;
        Ok(())
    }

    /// One request/response round trip. `deadline_ms = 0` uses the
    /// server's default deadline policy.
    ///
    /// # Errors
    ///
    /// The server's rejection, or [`ServeError::Io`] on transport
    /// failures.
    pub fn infer(
        &mut self,
        model: &str,
        input: &Tensor<i32>,
        deadline_ms: u32,
    ) -> Result<Tensor<i32>, ServeError> {
        let req = WireRequest { model: model.to_string(), deadline_ms, input: input.clone() };
        write_frame(&mut self.stream, &encode_request(&req))
            .map_err(|e| ServeError::Io(e.to_string()))?;
        let never = AtomicBool::new(false);
        let payload = read_frame(&mut self.stream, &never)
            .map_err(|e| ServeError::Io(e.to_string()))?
            .ok_or_else(|| ServeError::Io("server closed the connection".to_string()))?;
        decode_response(&payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelRegistry;
    use crate::runtime::{Server, ServerConfig};
    use t2c_core::zoo;

    #[test]
    fn request_and_response_payloads_round_trip() {
        let input = Tensor::from_fn(&[2, 3], |i| i as i32 - 3);
        let req = WireRequest { model: "mlp".into(), deadline_ms: 250, input };
        let decoded = decode_request(&encode_request(&req)).unwrap();
        assert_eq!(decoded, req);

        let ok: Result<Tensor<i32>, ServeError> =
            Ok(Tensor::from_fn(&[1, 4], |i| (i as i32) * 7 - 5));
        let back = decode_response(&encode_response(&ok)).unwrap();
        assert_eq!(back.as_slice(), ok.as_ref().unwrap().as_slice());
        assert_eq!(back.dims(), &[1, 4]);

        for err in [
            ServeError::Busy,
            ServeError::DeadlineExceeded,
            ServeError::ModelNotFound("ghost".into()),
            ServeError::Internal("boom".into()),
        ] {
            let e: Result<Tensor<i32>, ServeError> = Err(err.clone());
            assert_eq!(decode_response(&encode_response(&e)).unwrap_err(), err);
        }
    }

    #[test]
    fn malformed_payloads_reject_without_panicking() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[5, 0, b'a']).is_err()); // name truncated
        let good = encode_request(&WireRequest {
            model: "m".into(),
            deadline_ms: 0,
            input: Tensor::from_fn(&[2, 2], |i| i as i32),
        });
        for cut in 0..good.len() {
            assert!(decode_request(&good[..cut]).is_err(), "truncation at {cut} must err");
        }
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decode_request(&trailing).is_err());
        // Huge dims must be rejected by the size cap, not attempted.
        let mut huge = Vec::new();
        huge.extend_from_slice(&1u16.to_le_bytes());
        huge.push(b'm');
        huge.extend_from_slice(&0u32.to_le_bytes());
        huge.push(2);
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_request(&huge).is_err());
    }

    #[test]
    fn tcp_round_trip_against_a_live_server() {
        let reg = std::sync::Arc::new(ModelRegistry::new());
        let (m, dims) = zoo::tiny_mlp();
        let admitted = reg.admit("mlp", m, &dims).unwrap();
        let server = Server::start(std::sync::Arc::clone(&reg), ServerConfig::default());
        let stop = Arc::new(AtomicBool::new(false));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accept = serve_tcp(server.handle(), listener, Arc::clone(&stop)).unwrap();

        let x = Tensor::from_fn(&dims, |i| (i as f32) * 0.011 - 0.35);
        let codes = admitted.quantize(&x);
        let want = admitted.model().run_quantized(&codes).unwrap();
        let mut client = TcpClient::connect(addr).unwrap();
        let got = client.infer("mlp", &codes, 0).unwrap();
        assert_eq!(got.as_slice(), want.as_slice());
        // Same connection, second round trip + structured rejection.
        let got2 = client.infer("mlp", &codes, 1_000).unwrap();
        assert_eq!(got2.as_slice(), want.as_slice());
        assert!(matches!(client.infer("ghost", &codes, 0), Err(ServeError::ModelNotFound(_))));

        drop(client);
        stop.store(true, Ordering::Release);
        accept.join().unwrap();
        let stats = server.shutdown();
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn partial_frames_from_a_dying_peer_error_instead_of_hanging() {
        // A connected localhost stream pair lets the test inject exact
        // partial writes and close at any byte boundary.
        let pair = || {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let writer = TcpStream::connect(addr).unwrap();
            let (reader, _) = listener.accept().unwrap();
            reader.set_read_timeout(Some(Duration::from_millis(20))).ok();
            (writer, reader)
        };
        let never = AtomicBool::new(false);

        // Half a length header, then close: clean-EOF rules say mid-header
        // EOF is an error, not a silent None.
        let (mut w, mut r) = pair();
        w.write_all(&[7, 0]).unwrap();
        drop(w);
        assert_eq!(read_frame(&mut r, &never).unwrap_err().kind(), io::ErrorKind::UnexpectedEof);

        // Full header promising 8 bytes, only 3 delivered, then close.
        let (mut w, mut r) = pair();
        w.write_all(&8u32.to_le_bytes()).unwrap();
        w.write_all(&[1, 2, 3]).unwrap();
        drop(w);
        assert_eq!(read_frame(&mut r, &never).unwrap_err().kind(), io::ErrorKind::UnexpectedEof);

        // Close before any byte: that's the clean end-of-stream case.
        let (w, mut r) = pair();
        drop(w);
        assert!(read_frame(&mut r, &never).unwrap().is_none());

        // A frame split across many tiny writes still assembles: partial
        // *writes* are a normal TCP condition, only EOF is fatal.
        let (mut w, mut r) = pair();
        let payload = b"split-me".to_vec();
        let mut framed = (payload.len() as u32).to_le_bytes().to_vec();
        framed.extend_from_slice(&payload);
        let h = std::thread::spawn(move || {
            for b in framed {
                w.write_all(&[b]).unwrap();
                w.flush().unwrap();
            }
            w
        });
        assert_eq!(read_frame(&mut r, &never).unwrap().unwrap(), payload);
        drop(h.join().unwrap());
    }

    #[test]
    fn client_reconnects_after_the_server_dies_mid_response() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let want = Tensor::from_fn(&[1, 3], |i| i as i32 * 2 - 1);
        let reply = want.clone();
        // First connection: read the request, write a *partial* response
        // frame (header promises more than is sent) and slam the
        // connection. Second connection: behave, answering correctly.
        let fake = std::thread::spawn(move || {
            let stop = AtomicBool::new(false);
            let (mut bad, _) = listener.accept().unwrap();
            bad.set_read_timeout(Some(Duration::from_millis(50))).ok();
            let req = read_frame(&mut bad, &stop).unwrap().expect("first request");
            assert!(decode_request(&req).is_ok());
            let full = encode_response(&Ok(reply.clone()));
            bad.write_all(&(full.len() as u32).to_le_bytes()).unwrap();
            bad.write_all(&full[..full.len() / 2]).unwrap();
            drop(bad); // mid-response close
            let (mut good, _) = listener.accept().unwrap();
            good.set_read_timeout(Some(Duration::from_millis(50))).ok();
            let req = read_frame(&mut good, &stop).unwrap().expect("retried request");
            assert!(decode_request(&req).is_ok());
            write_frame(&mut good, &encode_response(&Ok(reply))).unwrap();
        });
        let mut client = TcpClient::connect(addr).unwrap();
        let input = Tensor::from_fn(&[1, 3], |i| i as i32);
        let first = client.infer("mlp", &input, 0);
        assert!(
            matches!(first, Err(ServeError::Io(_))),
            "mid-response close must surface as Io, got {first:?}"
        );
        // The stream is in an unknown framing state: reconnect, retry, win.
        client.reconnect().unwrap();
        let got = client.infer("mlp", &input, 0).unwrap();
        assert_eq!(got.as_slice(), want.as_slice());
        fake.join().unwrap();
    }
}
