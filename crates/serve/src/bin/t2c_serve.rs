//! `t2c-serve` — hosts the e2e model zoo behind the length-prefixed TCP
//! protocol.
//!
//! Every model goes through the lint-gated registry (admission refuses
//! any error-level `t2c-lint` finding), then the micro-batching runtime
//! serves quantized-input requests with bounded queues, deadlines and
//! panic isolation.
//!
//! ```sh
//! t2c-serve [--port P] [--workers N] [--max-batch B] [--max-delay-us U]
//!           [--queue-cap C] [--audit-every N] [--mlp-only] [--smoke]
//! ```
//!
//! `--smoke` binds an ephemeral port, round-trips one request per hosted
//! model over TCP (plus one structured rejection), drains and exits —
//! the CI gate `scripts/verify.sh` runs exactly this.

use std::net::TcpListener;
use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use t2c_serve::{
    serve_tcp, BatchConfig, ModelRegistry, ServeError, Server, ServerConfig, TcpClient,
};
use t2c_tensor::Tensor;

struct Options {
    port: u16,
    workers: usize,
    max_batch: usize,
    max_delay_us: u64,
    queue_cap: usize,
    audit_every: u64,
    mlp_only: bool,
    smoke: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            port: 7433,
            workers: 2,
            max_batch: 16,
            max_delay_us: 2_000,
            queue_cap: 256,
            audit_every: 0,
            mlp_only: false,
            smoke: false,
        }
    }
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    let usage = "usage: t2c-serve [--port P] [--workers N] [--max-batch B] \
                 [--max-delay-us U] [--queue-cap C] [--audit-every N] [--mlp-only] [--smoke]";
    let numeric = |args: &mut dyn Iterator<Item = String>, flag: &str| -> u64 {
        args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("{flag} needs a numeric value\n{usage}");
            exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--port" => opts.port = numeric(&mut args, "--port") as u16,
            "--workers" => opts.workers = numeric(&mut args, "--workers") as usize,
            "--max-batch" => opts.max_batch = numeric(&mut args, "--max-batch") as usize,
            "--max-delay-us" => opts.max_delay_us = numeric(&mut args, "--max-delay-us"),
            "--queue-cap" => opts.queue_cap = numeric(&mut args, "--queue-cap") as usize,
            "--audit-every" => opts.audit_every = numeric(&mut args, "--audit-every"),
            "--mlp-only" => opts.mlp_only = true,
            "--smoke" => opts.smoke = true,
            "--help" | "-h" => {
                println!("{usage}");
                exit(0);
            }
            other => {
                eprintln!("unknown argument `{other}`\n{usage}");
                exit(2);
            }
        }
    }
    opts
}

/// Builds the registry: the hand-built MLP plus (unless `--mlp-only`) the
/// trained e2e zoo, all admitted through the lint gate.
fn build_registry(mlp_only: bool) -> Arc<ModelRegistry> {
    let registry = Arc::new(ModelRegistry::new());
    let admit = |name: &str, build: fn() -> (t2c_core::IntModel, Vec<usize>)| {
        let (model, dims) = build();
        match registry.admit(name, model, &dims) {
            Ok(m) => {
                println!(
                    "admitted '{name}' (input {:?}, {} lint warning(s))",
                    m.input_dims(),
                    m.lint().count(t2c_lint::Severity::Warn)
                );
            }
            Err(e) => {
                eprintln!("refused '{name}': {e}");
                exit(1);
            }
        }
    };
    admit("tiny-mlp", t2c_core::zoo::tiny_mlp);
    if !mlp_only {
        for (tag, build) in t2c_core::zoo::zoo() {
            admit(tag, build);
        }
    }
    registry
}

fn server_config(opts: &Options) -> ServerConfig {
    ServerConfig {
        batch: BatchConfig {
            max_batch: opts.max_batch,
            max_delay_ns: opts.max_delay_us * 1_000,
            queue_cap: opts.queue_cap,
        },
        workers: opts.workers,
        max_panics: 3,
        audit_every: opts.audit_every,
        ..ServerConfig::default()
    }
}

/// An in-grid synthetic request for a hosted model: a deterministic float
/// ramp quantized with the model's own input scale/spec.
fn sample_codes(model: &t2c_serve::AdmittedModel) -> Tensor<i32> {
    let dims = model.input_dims();
    let x = Tensor::from_fn(dims, |i| ((i % 97) as f32) * 0.01 - 0.45);
    model.quantize(&x)
}

fn run_smoke(opts: &Options) -> Result<(), String> {
    let registry = build_registry(opts.mlp_only);
    let server = Server::start(Arc::clone(&registry), server_config(opts));
    let stop = Arc::new(AtomicBool::new(false));
    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind ephemeral port: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let accept = serve_tcp(server.handle(), listener, Arc::clone(&stop))
        .map_err(|e| format!("start accept loop: {e}"))?;
    println!("smoke: serving {} model(s) on {addr}", registry.len());

    let mut client = TcpClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut verdict = Ok(());
    for name in registry.names() {
        let model = registry.get(&name).expect("registered");
        let codes = sample_codes(&model);
        let direct = model
            .model()
            .run_quantized(&codes)
            .map_err(|e| format!("direct run of '{name}': {e}"))?;
        match client.infer(&name, &codes, 30_000) {
            Ok(served) if served.as_slice() == direct.as_slice() => {
                println!(
                    "smoke: '{name}' round-trip ok ({:?} → {:?})",
                    codes.dims(),
                    served.dims()
                );
            }
            Ok(_) => {
                verdict = Err(format!("'{name}' served result diverges from direct execution"));
                break;
            }
            Err(e) => {
                verdict = Err(format!("'{name}' round trip failed: {e}"));
                break;
            }
        }
    }
    if verdict.is_ok() {
        match client.infer("no-such-model", &Tensor::zeros(&[1, 4]), 0) {
            Err(ServeError::ModelNotFound(_)) => {
                println!("smoke: unknown model rejected with a structured status");
            }
            other => {
                verdict =
                    Err(format!("unknown model should reject with ModelNotFound, got {other:?}"));
            }
        }
    }
    drop(client);
    stop.store(true, Ordering::Release);
    accept.join().ok();
    let stats = server.shutdown();
    println!(
        "smoke: drained — {} completed, {} batches, mean batch rows {:.2}",
        stats.completed,
        stats.batches,
        stats.mean_batch_rows()
    );
    verdict
}

fn main() {
    let opts = parse_args();
    if opts.smoke {
        if let Err(msg) = run_smoke(&opts) {
            eprintln!("smoke FAILED: {msg}");
            exit(1);
        }
        println!("serve smoke ok");
        return;
    }
    let registry = build_registry(opts.mlp_only);
    let server = Server::start(Arc::clone(&registry), server_config(&opts));
    let stop = Arc::new(AtomicBool::new(false));
    let listener = TcpListener::bind(("127.0.0.1", opts.port)).unwrap_or_else(|e| {
        eprintln!("bind 127.0.0.1:{}: {e}", opts.port);
        exit(1);
    });
    let addr = listener.local_addr().expect("local addr");
    let accept = match serve_tcp(server.handle(), listener, Arc::clone(&stop)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("start accept loop: {e}");
            exit(1);
        }
    };
    println!("t2c-serve listening on {addr} ({} model(s))", registry.len());
    // Serve until the process is killed; the accept thread owns the socket.
    accept.join().ok();
    server.shutdown();
}
