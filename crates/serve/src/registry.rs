//! The lint-gated model registry.
//!
//! A model becomes servable only by passing the same static verifier the
//! deploy pipeline runs (`t2c-lint`): admission re-lints the integer graph
//! against its declared input shape (and, for on-disk packages, the
//! export manifest) and refuses the model if *any* error-level finding
//! fires — the rejection diagnostic names the `T2Cxxx` rule ids. This
//! makes the registry the runtime enforcement point of the toolkit's
//! deployment contract: what the server hosts is exactly what `t2c-check`
//! would sign off on.
//!
//! Each admitted model also carries its runtime health: a panic counter
//! fed by worker isolation and a poisoned flag (circuit breaker) that
//! quarantines the model once the counter crosses the configured budget.
//!
//! Admission additionally runs the quantization-error certifier
//! (`t2c_lint::certify_model`, DESIGN.md §6.11) and stores the certified
//! end-to-end float↔int divergence bound on the [`AdmittedModel`] — the
//! sampled dual-path audit uses it as a soundness canary. A registry
//! built with [`ModelRegistry::with_error_tolerance`] turns the
//! certificate into a gate: models whose certified bound exceeds the
//! tolerance (or that are uncertifiable) are refused with the `T2C60x`
//! rule naming the offending layer.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, RwLock};

use t2c_core::intmodel::IntOp;
use t2c_core::{IntModel, QuantSpec};
use t2c_lint::{certify_model, lint_model, lint_package, ErrorBoundConfig, LintReport, Severity};
use t2c_tensor::Tensor;

use crate::error::AdmissionError;

/// A model that passed the admission gate, plus its serving metadata.
#[derive(Debug)]
pub struct AdmittedModel {
    name: String,
    model: IntModel,
    input_dims: Vec<usize>,
    lint: LintReport,
    slot: usize,
    input_scale: f32,
    input_spec: QuantSpec,
    certified_steps: Option<f64>,
    poisoned: AtomicBool,
    panics: AtomicU32,
}

impl AdmittedModel {
    /// The registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The integer graph.
    pub fn model(&self) -> &IntModel {
        &self.model
    }

    /// Canonical input dims with batch axis 1 (e.g. `[1, 3, 8, 8]`).
    pub fn input_dims(&self) -> &[usize] {
        &self.input_dims
    }

    /// The lint report the model was admitted under.
    pub fn lint(&self) -> &LintReport {
        &self.lint
    }

    /// The batching group id (stable per registry).
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// The grid the leading `Quantize` node clamps input codes to.
    pub fn input_spec(&self) -> QuantSpec {
        self.input_spec
    }

    /// The leading `Quantize` node's scale.
    pub fn input_scale(&self) -> f32 {
        self.input_scale
    }

    /// Quantizes a float input onto the model's input grid — what the
    /// leading `Quantize` node would do. Clients use this to build the
    /// integer codes the serving protocol carries.
    pub fn quantize(&self, x: &Tensor<f32>) -> Tensor<i32> {
        let (scale, spec) = (self.input_scale, self.input_spec);
        x.map(|v| ((v / scale).round() as i32).clamp(spec.qmin(), spec.qmax()))
    }

    /// Maps integer input codes back to floats (`codes · scale`) — the
    /// dual-path audit uses this to re-enter the float path.
    pub fn dequantize(&self, codes: &Tensor<i32>) -> Tensor<f32> {
        let scale = self.input_scale;
        codes.map(|c| c as f32 * scale)
    }

    /// The certified end-to-end error bound (final-output code units) the
    /// model was admitted under, when admission could prove a finite one.
    /// `None` for `admit_unchecked` models and uncertifiable graphs. The
    /// sampled dual-path audit treats observed divergence beyond this
    /// bound as a soundness violation (`serve.audit_certificate_violations`).
    pub fn certified_error_steps(&self) -> Option<f64> {
        self.certified_steps
    }

    /// True once the panic circuit breaker tripped.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Worker panics observed so far.
    pub fn panic_count(&self) -> u32 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Records one isolated worker panic; trips the breaker at
    /// `max_panics`. Returns the new count.
    pub(crate) fn record_panic(&self, max_panics: u32) -> u32 {
        let n = self.panics.fetch_add(1, Ordering::AcqRel) + 1;
        if n >= max_panics {
            self.poisoned.store(true, Ordering::Release);
        }
        n
    }
}

/// Thread-safe registry of admitted models. See the module docs for the
/// admission contract.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: RwLock<Vec<Arc<AdmittedModel>>>,
    error_tolerance: Option<f64>,
}

/// Error-level rule ids in first-occurrence order, deduplicated.
fn error_rules(report: &LintReport) -> Vec<&'static str> {
    let mut rules = Vec::new();
    for d in &report.diagnostics {
        if d.severity == Severity::Error && !rules.contains(&d.rule.id()) {
            rules.push(d.rule.id());
        }
    }
    rules
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty registry whose admission gate additionally enforces a
    /// certified quantization-error budget: models whose certified
    /// end-to-end bound exceeds `tolerance_steps` (in final-output code
    /// units), or that are uncertifiable, are refused with the `T2C60x`
    /// finding (T2C602 names the worst-contributing layer).
    pub fn with_error_tolerance(tolerance_steps: f64) -> Self {
        ModelRegistry { models: RwLock::new(Vec::new()), error_tolerance: Some(tolerance_steps) }
    }

    /// Admits an in-memory model through the lint gate.
    ///
    /// `input_dims` is the single-sample input shape (batch axis must
    /// be 1); the lint pass runs against exactly this shape.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::LintGate`] when the verifier reports any
    /// error-level finding (the error names the rule ids);
    /// [`AdmissionError::Duplicate`] / [`AdmissionError::BadModel`] for
    /// structural problems.
    pub fn admit(
        &self,
        name: &str,
        model: IntModel,
        input_dims: &[usize],
    ) -> Result<Arc<AdmittedModel>, AdmissionError> {
        let report = lint_model(&model, input_dims, name);
        self.insert_gated(name, model, input_dims, report, true)
    }

    /// Admits a deployment package directory (as written by
    /// `t2c_export::export_package`): reads + checksum-verifies the
    /// binary model, re-derives and re-verifies the hex manifest, then
    /// runs both the graph lint *and* the manifest lint through the gate.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::Package`] when the package fails to read or
    /// verify; otherwise as [`Self::admit`].
    pub fn admit_package(
        &self,
        name: &str,
        dir: &Path,
        input_dims: &[usize],
    ) -> Result<Arc<AdmittedModel>, AdmissionError> {
        let (model, manifest) =
            t2c_export::read_package(dir).map_err(|e| AdmissionError::Package(e.to_string()))?;
        let mut report = lint_model(&model, input_dims, name);
        report.merge(lint_package(&model, &manifest, name));
        self.insert_gated(name, model, input_dims, report, true)
    }

    /// Admits a model **without** running the lint gate. Escape hatch for
    /// benchmarks and fault-injection tests; production callers should
    /// always go through [`Self::admit`] / [`Self::admit_package`].
    ///
    /// # Errors
    ///
    /// Structural checks ([`AdmissionError::Duplicate`] /
    /// [`AdmissionError::BadModel`]) still apply.
    pub fn admit_unchecked(
        &self,
        name: &str,
        model: IntModel,
        input_dims: &[usize],
    ) -> Result<Arc<AdmittedModel>, AdmissionError> {
        let report = LintReport { tag: name.to_string(), ..Default::default() };
        self.insert_gated(name, model, input_dims, report, false)
    }

    fn insert_gated(
        &self,
        name: &str,
        mut model: IntModel,
        input_dims: &[usize],
        mut report: LintReport,
        certify: bool,
    ) -> Result<Arc<AdmittedModel>, AdmissionError> {
        // Certify the float↔int divergence bound at admission: the walk is
        // cheap (one interval pass) and the resulting bound feeds the
        // dual-path audit's soundness canary even when no tolerance is
        // configured. Its findings join the gate only when the registry
        // was built with an error budget — a report-only default keeps
        // existing admissions byte-identical.
        let mut certified_steps = None;
        if certify {
            let cfg =
                ErrorBoundConfig { tolerance_steps: self.error_tolerance.unwrap_or(f64::INFINITY) };
            let (cert, cert_lint) = certify_model(&model, input_dims, cfg, name);
            certified_steps = cert.certified().then_some(cert.end_to_end_steps);
            if self.error_tolerance.is_some() {
                report.merge(cert_lint);
            }
        }
        if report.error_count() > 0 {
            let first = report
                .diagnostics
                .iter()
                .find(|d| d.severity == Severity::Error)
                .map(|d| format!("{}: {}", d.rule.id(), d.message))
                .unwrap_or_default();
            return Err(AdmissionError::LintGate {
                model: name.to_string(),
                errors: report.error_count(),
                rules: error_rules(&report),
                first,
            });
        }
        if input_dims.is_empty() || input_dims[0] != 1 {
            return Err(AdmissionError::BadModel(format!(
                "input dims {input_dims:?} must lead with a batch axis of 1"
            )));
        }
        let Some(IntOp::Quantize { scale, spec }) = model.nodes.first().map(|n| &n.op) else {
            return Err(AdmissionError::BadModel("model must start with a Quantize node".into()));
        };
        let (input_scale, input_spec) = (*scale, *spec);
        // Admission is the serving boundary: every dense conv/linear is
        // repacked once into the cache-blocked panel layout here, so the
        // hot path never pays a per-call weight transform. The lint gate
        // above ran on the dense graph; prepacking is bit-identical, so
        // the verdict carries over. Sparse layers keep their own encoding.
        let packed = model.prepack();
        if packed > 0 && t2c_obs::enabled() {
            t2c_obs::counter_add("serve.prepacked_layers", packed as u64);
        }
        let mut models = self.models.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        if models.iter().any(|m| m.name == name) {
            return Err(AdmissionError::Duplicate(name.to_string()));
        }
        let admitted = Arc::new(AdmittedModel {
            name: name.to_string(),
            model,
            input_dims: input_dims.to_vec(),
            lint: report,
            slot: models.len(),
            input_scale,
            input_spec,
            certified_steps,
            poisoned: AtomicBool::new(false),
            panics: AtomicU32::new(0),
        });
        models.push(Arc::clone(&admitted));
        Ok(admitted)
    }

    /// Looks a model up by name.
    pub fn get(&self, name: &str) -> Option<Arc<AdmittedModel>> {
        let models = self.models.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        models.iter().find(|m| m.name == name).cloned()
    }

    /// Looks a model up by batching slot.
    pub fn by_slot(&self, slot: usize) -> Option<Arc<AdmittedModel>> {
        let models = self.models.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        models.get(slot).cloned()
    }

    /// Admitted model names, in admission order.
    pub fn names(&self) -> Vec<String> {
        let models = self.models.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        models.iter().map(|m| m.name.clone()).collect()
    }

    /// Number of admitted models.
    pub fn len(&self) -> usize {
        self.models.read().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// True when no model is admitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-model health snapshot: `(name, poisoned, panic_count)`.
    pub fn health(&self) -> BTreeMap<String, (bool, u32)> {
        let models = self.models.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        models.iter().map(|m| (m.name.clone(), (m.is_poisoned(), m.panic_count()))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t2c_core::intmodel::Src;
    use t2c_core::zoo;

    #[test]
    fn clean_model_is_admitted_with_its_lint_report() {
        let reg = ModelRegistry::new();
        let (m, dims) = zoo::tiny_mlp();
        let admitted = reg.admit("mlp", m, &dims).expect("tiny_mlp must pass the gate");
        assert_eq!(admitted.name(), "mlp");
        assert_eq!(admitted.lint().error_count(), 0);
        assert_eq!(reg.names(), vec!["mlp".to_string()]);
        assert!(reg.get("mlp").is_some());
        assert!(reg.get("nope").is_none());
    }

    #[test]
    fn error_level_finding_is_refused_naming_the_rule_id() {
        // Inject a T2C002 (dangling source): fc1 reads node 5 which does
        // not exist.
        let (mut m, dims) = zoo::tiny_mlp();
        m.nodes[1].inputs = vec![Src::Node(5)];
        let reg = ModelRegistry::new();
        let err = reg.admit("bad", m, &dims).unwrap_err();
        let AdmissionError::LintGate { model, errors, rules, first } = err else {
            panic!("expected LintGate rejection");
        };
        assert_eq!(model, "bad");
        assert!(errors >= 1);
        assert!(rules.contains(&"T2C002"), "rules {rules:?} should name T2C002");
        assert!(first.contains("T2C002"), "first finding should carry the rule id: {first}");
        assert!(reg.is_empty(), "rejected model must not be registered");
    }

    #[test]
    fn sparse_model_is_admitted_through_the_same_gate() {
        let reg = ModelRegistry::new();
        for (name, (m, dims)) in
            [("mlp-sparse", zoo::tiny_mlp_pruned(0.8)), ("mlp-nm", zoo::tiny_mlp_nm(2, 4))]
        {
            let admitted = reg.admit(name, m, &dims).expect("sparse zoo model must pass the gate");
            assert_eq!(admitted.lint().error_count(), 0);
            assert_eq!(admitted.model().nodes[1].op.label(), "linear_sparse");
        }
    }

    #[test]
    fn sparse_package_is_admitted_from_disk() {
        let dir = std::env::temp_dir().join(format!("t2c_serve_sparse_{}", std::process::id()));
        let (m, dims) = zoo::tiny_mlp_pruned(0.8);
        t2c_export::export_package(&m, &dir).unwrap();
        let reg = ModelRegistry::new();
        let admitted = reg.admit_package("mlp-sparse-pkg", &dir, &dims).expect("package admission");
        // The served graph is the round-tripped one — same outputs.
        let x = Tensor::from_fn(&dims, |i| (i as f32) * 0.011 - 0.2);
        assert_eq!(m.run(&x).unwrap().as_slice(), admitted.model().run(&x).unwrap().as_slice());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drifted_sparsity_declaration_is_refused_with_t2c503() {
        let (mut m, dims) = zoo::tiny_mlp_pruned(0.8);
        if let IntOp::LinearSparse { declared_sparsity, .. } = &mut m.nodes[1].op {
            *declared_sparsity -= 0.3;
        } else {
            panic!("fc1 should be sparse");
        }
        let reg = ModelRegistry::new();
        let err = reg.admit("drift", m, &dims).unwrap_err();
        let AdmissionError::LintGate { rules, .. } = err else {
            panic!("expected LintGate rejection");
        };
        assert!(rules.contains(&"T2C503"), "rules {rules:?} should name T2C503");
        assert!(reg.is_empty());
    }

    #[test]
    fn admission_stores_the_certified_error_bound() {
        let reg = ModelRegistry::new();
        let (m, dims) = zoo::tiny_mlp();
        let admitted = reg.admit("mlp", m, &dims).unwrap();
        let steps = admitted.certified_error_steps().expect("tiny_mlp certifies finitely");
        assert!(steps.is_finite() && steps > 0.0);
        // The escape hatch skips certification entirely.
        let (m2, dims2) = zoo::tiny_mlp();
        let raw = reg.admit_unchecked("mlp-raw", m2, &dims2).unwrap();
        assert_eq!(raw.certified_error_steps(), None);
    }

    #[test]
    fn error_tolerance_gate_refuses_a_mis_scaled_model_with_t2c602() {
        // Derive the budget from the clean model's own certificate so the
        // test tracks the zoo rather than a magic number.
        let (clean, dims) = zoo::tiny_mlp();
        let (clean_cert, _) =
            t2c_lint::certify_model(&clean, &dims, t2c_lint::ErrorBoundConfig::default(), "clean");
        let tolerance = clean_cert.end_to_end_steps * 1.5;
        let reg = ModelRegistry::with_error_tolerance(tolerance);
        reg.admit("mlp", clean, &dims).expect("clean model fits its own budget");

        // A 4× mis-scaled fc1 requantizer passes the structural lint
        // (T2C201 only warns) but blows the certified error budget.
        let (mut bad, dims) = zoo::tiny_mlp();
        let IntOp::Linear { requant: Some(mq), .. } = &mut bad.nodes[1].op else {
            panic!("fc1 should be a requantized linear");
        };
        for s in &mut mq.scale_raw {
            *s *= 4;
        }
        let err = reg.admit("mlp-bad", bad, &dims).unwrap_err();
        let AdmissionError::LintGate { rules, first, .. } = err else {
            panic!("expected LintGate rejection");
        };
        assert!(rules.contains(&"T2C602"), "rules {rules:?} should name T2C602");
        assert!(first.contains("fc1"), "rejection should name the offending layer: {first}");
        assert_eq!(reg.names(), vec!["mlp".to_string()]);
    }

    #[test]
    fn duplicate_names_are_refused() {
        let reg = ModelRegistry::new();
        let (m, dims) = zoo::tiny_mlp();
        reg.admit("mlp", m.clone(), &dims).unwrap();
        assert!(matches!(reg.admit("mlp", m, &dims), Err(AdmissionError::Duplicate(_))));
    }

    #[test]
    fn quantize_dequantize_round_trip_on_grid() {
        let reg = ModelRegistry::new();
        let (m, dims) = zoo::tiny_mlp();
        let admitted = reg.admit("mlp", m, &dims).unwrap();
        let x = Tensor::from_fn(&dims, |i| (i as f32) * 0.013 - 0.4);
        let codes = admitted.quantize(&x);
        let spec = admitted.input_spec();
        assert!(codes.as_slice().iter().all(|&c| c >= spec.qmin() && c <= spec.qmax()));
        // quantize(dequantize(codes)) is the identity on the grid.
        let again = admitted.quantize(&admitted.dequantize(&codes));
        assert_eq!(again.as_slice(), codes.as_slice());
    }

    #[test]
    fn circuit_breaker_poisons_after_the_panic_budget() {
        let reg = ModelRegistry::new();
        let (m, dims) = zoo::tiny_mlp();
        let admitted = reg.admit("mlp", m, &dims).unwrap();
        assert!(!admitted.is_poisoned());
        assert_eq!(admitted.record_panic(3), 1);
        assert_eq!(admitted.record_panic(3), 2);
        assert!(!admitted.is_poisoned());
        assert_eq!(admitted.record_panic(3), 3);
        assert!(admitted.is_poisoned());
        assert_eq!(reg.health()["mlp"], (true, 3));
    }
}
