//! The lint-gated model registry.
//!
//! A model becomes servable only by passing the same static verifier the
//! deploy pipeline runs (`t2c-lint`): admission re-lints the integer graph
//! against its declared input shape (and, for on-disk packages, the
//! export manifest) and refuses the model if *any* error-level finding
//! fires — the rejection diagnostic names the `T2Cxxx` rule ids. This
//! makes the registry the runtime enforcement point of the toolkit's
//! deployment contract: what the server hosts is exactly what `t2c-check`
//! would sign off on.
//!
//! Each admitted model also carries its runtime health: a panic counter
//! fed by worker isolation and a circuit breaker that quarantines the
//! model once the counter crosses the configured budget. The breaker is
//! a three-state machine (closed → open → half-open): with a nonzero
//! cooldown configured, an open breaker admits a *single probe* request
//! once the cooldown elapses — a successful probe closes the breaker and
//! resets the panic budget, a failed probe re-opens it for another
//! cooldown. With cooldown 0 (the default) an open breaker stays open,
//! matching the pre-cooldown behavior.
//!
//! The registry supports live mutation for rolling updates:
//! [`ModelRegistry::remove`] evicts a model (freeing its storage slot for
//! reuse) and [`ModelRegistry::swap`] replaces a model's graph in place
//! through the same lint gate. Both are `Arc`-safe with respect to
//! in-flight work: requests queued against the old [`AdmittedModel`] hold
//! their own `Arc` and complete against the graph they were admitted
//! under. Every admitted instance gets a *fresh* batching-group id
//! ([`AdmittedModel::group`]) even when it reuses a storage slot, so the
//! micro-batcher can never coalesce tickets of an evicted model with
//! tickets of its slot successor.
//!
//! Admission additionally runs the quantization-error certifier
//! (`t2c_lint::certify_model`, DESIGN.md §6.11) and stores the certified
//! end-to-end float↔int divergence bound on the [`AdmittedModel`] — the
//! sampled dual-path audit uses it as a soundness canary. A registry
//! built with [`ModelRegistry::with_error_tolerance`] turns the
//! certificate into a gate: models whose certified bound exceeds the
//! tolerance (or that are uncertifiable) are refused with the `T2C60x`
//! rule naming the offending layer.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

use t2c_core::intmodel::IntOp;
use t2c_core::{ExecPlan, IntModel, QuantSpec};
use t2c_lint::{certify_model, lint_model, lint_package, ErrorBoundConfig, LintReport, Severity};
use t2c_tensor::Tensor;

use crate::error::AdmissionError;

/// Circuit-breaker state (see the module docs). The `quarantined` mirror
/// on [`AdmittedModel`] keeps the hot-path check a single atomic load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped at `since_ns`: requests are rejected until the cooldown
    /// elapses (never, when the cooldown is 0).
    Open { since_ns: u64 },
    /// Cooldown elapsed at `since_ns`: exactly one probe request is in
    /// flight; everything else is still rejected.
    HalfOpen { since_ns: u64 },
}

/// What the breaker decided for one incoming request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BreakerDecision {
    /// Breaker closed — serve normally.
    Admit,
    /// Breaker half-open — this request is the single recovery probe.
    Probe,
    /// Breaker open (or a probe is already in flight) — reject with
    /// [`crate::ServeError::ModelPoisoned`].
    Reject,
}

/// A model that passed the admission gate, plus its serving metadata.
#[derive(Debug)]
pub struct AdmittedModel {
    name: String,
    model: IntModel,
    plan: Option<ExecPlan>,
    input_dims: Vec<usize>,
    lint: LintReport,
    slot: usize,
    group: usize,
    input_scale: f32,
    input_spec: QuantSpec,
    certified_steps: Option<f64>,
    quarantined: AtomicBool,
    breaker: Mutex<BreakerState>,
    panics: AtomicU32,
}

impl AdmittedModel {
    /// The registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The integer graph.
    pub fn model(&self) -> &IntModel {
        &self.model
    }

    /// The compiled execution plan (fused epilogues + arena layout),
    /// when admission could compile one. Workers run it with a per-worker
    /// [`t2c_core::Arena`]; `None` falls back to the interpreter.
    pub fn plan(&self) -> Option<&ExecPlan> {
        self.plan.as_ref()
    }

    /// Canonical input dims with batch axis 1 (e.g. `[1, 3, 8, 8]`).
    pub fn input_dims(&self) -> &[usize] {
        &self.input_dims
    }

    /// The lint report the model was admitted under.
    pub fn lint(&self) -> &LintReport {
        &self.lint
    }

    /// The storage slot (reused after [`ModelRegistry::remove`]).
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// The batching group id: unique per admitted *instance*, never
    /// reused — even when a removal/swap recycles the storage slot. The
    /// runtime batches by this id, so tickets of two models (or two
    /// versions of one model) can never share a batch.
    pub fn group(&self) -> usize {
        self.group
    }

    /// The grid the leading `Quantize` node clamps input codes to.
    pub fn input_spec(&self) -> QuantSpec {
        self.input_spec
    }

    /// The leading `Quantize` node's scale.
    pub fn input_scale(&self) -> f32 {
        self.input_scale
    }

    /// Quantizes a float input onto the model's input grid — what the
    /// leading `Quantize` node would do. Clients use this to build the
    /// integer codes the serving protocol carries.
    pub fn quantize(&self, x: &Tensor<f32>) -> Tensor<i32> {
        let (scale, spec) = (self.input_scale, self.input_spec);
        x.map(|v| ((v / scale).round() as i32).clamp(spec.qmin(), spec.qmax()))
    }

    /// Maps integer input codes back to floats (`codes · scale`) — the
    /// dual-path audit uses this to re-enter the float path.
    pub fn dequantize(&self, codes: &Tensor<i32>) -> Tensor<f32> {
        let scale = self.input_scale;
        codes.map(|c| c as f32 * scale)
    }

    /// The certified end-to-end error bound (final-output code units) the
    /// model was admitted under, when admission could prove a finite one.
    /// `None` for `admit_unchecked` models and uncertifiable graphs. The
    /// sampled dual-path audit treats observed divergence beyond this
    /// bound as a soundness violation (`serve.audit_certificate_violations`).
    pub fn certified_error_steps(&self) -> Option<f64> {
        self.certified_steps
    }

    /// True while the circuit breaker quarantines the model (open *or*
    /// half-open — a probing model is still closed to normal traffic).
    pub fn is_poisoned(&self) -> bool {
        self.quarantined.load(Ordering::Acquire)
    }

    /// Worker panics observed so far (reset when a half-open probe
    /// closes the breaker).
    pub fn panic_count(&self) -> u32 {
        self.panics.load(Ordering::Relaxed)
    }

    fn breaker_lock(&self) -> std::sync::MutexGuard<'_, BreakerState> {
        self.breaker.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records one isolated worker panic; trips the breaker at
    /// `max_panics` (and re-opens a half-open breaker unconditionally —
    /// a failed probe proves the model is still broken). Returns the new
    /// panic count.
    pub(crate) fn record_panic(&self, max_panics: u32, now_ns: u64) -> u32 {
        let n = self.panics.fetch_add(1, Ordering::AcqRel) + 1;
        let mut state = self.breaker_lock();
        match *state {
            BreakerState::Closed if n >= max_panics => {
                *state = BreakerState::Open { since_ns: now_ns };
                self.quarantined.store(true, Ordering::Release);
            }
            BreakerState::HalfOpen { .. } => {
                *state = BreakerState::Open { since_ns: now_ns };
            }
            BreakerState::Closed | BreakerState::Open { .. } => {}
        }
        n
    }

    /// The breaker's verdict for one incoming request. `cooldown_ns = 0`
    /// never recovers (an open breaker stays open). A half-open breaker
    /// whose probe went missing (expired in queue, lost batch) re-arms
    /// after another cooldown so the model cannot stay wedged.
    pub(crate) fn breaker_admit(&self, now_ns: u64, cooldown_ns: u64) -> BreakerDecision {
        if !self.quarantined.load(Ordering::Acquire) {
            return BreakerDecision::Admit;
        }
        let mut state = self.breaker_lock();
        match *state {
            BreakerState::Closed => BreakerDecision::Admit,
            BreakerState::Open { since_ns } | BreakerState::HalfOpen { since_ns } => {
                if cooldown_ns > 0 && now_ns.saturating_sub(since_ns) >= cooldown_ns {
                    *state = BreakerState::HalfOpen { since_ns: now_ns };
                    BreakerDecision::Probe
                } else {
                    BreakerDecision::Reject
                }
            }
        }
    }

    /// True while the breaker is fully open — queued batches for the
    /// model fail without running. Half-open is *not* open: the probe
    /// batch must be allowed to execute.
    pub(crate) fn breaker_is_open(&self) -> bool {
        if !self.quarantined.load(Ordering::Acquire) {
            return false;
        }
        matches!(*self.breaker_lock(), BreakerState::Open { .. })
    }

    /// Notes a successful batch: a half-open breaker closes and the
    /// panic budget resets. One atomic load on the (common) closed path.
    pub(crate) fn breaker_on_success(&self) {
        if !self.quarantined.load(Ordering::Acquire) {
            return;
        }
        let mut state = self.breaker_lock();
        if matches!(*state, BreakerState::HalfOpen { .. }) {
            *state = BreakerState::Closed;
            self.panics.store(0, Ordering::Release);
            self.quarantined.store(false, Ordering::Release);
            t2c_obs::counter_add("serve.breaker_recovered", 1);
        }
    }
}

/// Thread-safe registry of admitted models. See the module docs for the
/// admission contract.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    /// Storage slots; `None` marks an evicted slot available for reuse.
    models: RwLock<Vec<Option<Arc<AdmittedModel>>>>,
    /// Monotonic batching-group allocator — never reused (see
    /// [`AdmittedModel::group`]).
    next_group: AtomicUsize,
    error_tolerance: Option<f64>,
}

/// Error-level rule ids in first-occurrence order, deduplicated.
fn error_rules(report: &LintReport) -> Vec<&'static str> {
    let mut rules = Vec::new();
    for d in &report.diagnostics {
        if d.severity == Severity::Error && !rules.contains(&d.rule.id()) {
            rules.push(d.rule.id());
        }
    }
    rules
}

/// Everything the gate derives from a model that survived it.
struct Gated {
    model: IntModel,
    plan: Option<ExecPlan>,
    lint: LintReport,
    input_scale: f32,
    input_spec: QuantSpec,
    certified_steps: Option<f64>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty registry whose admission gate additionally enforces a
    /// certified quantization-error budget: models whose certified
    /// end-to-end bound exceeds `tolerance_steps` (in final-output code
    /// units), or that are uncertifiable, are refused with the `T2C60x`
    /// finding (T2C602 names the worst-contributing layer).
    pub fn with_error_tolerance(tolerance_steps: f64) -> Self {
        ModelRegistry {
            models: RwLock::new(Vec::new()),
            next_group: AtomicUsize::new(0),
            error_tolerance: Some(tolerance_steps),
        }
    }

    /// Admits an in-memory model through the lint gate.
    ///
    /// `input_dims` is the single-sample input shape (batch axis must
    /// be 1); the lint pass runs against exactly this shape.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::LintGate`] when the verifier reports any
    /// error-level finding (the error names the rule ids);
    /// [`AdmissionError::Duplicate`] / [`AdmissionError::BadModel`] for
    /// structural problems.
    pub fn admit(
        &self,
        name: &str,
        model: IntModel,
        input_dims: &[usize],
    ) -> Result<Arc<AdmittedModel>, AdmissionError> {
        let report = lint_model(&model, input_dims, name);
        let gated = self.gate(name, model, input_dims, report, true)?;
        self.insert(name, input_dims, gated)
    }

    /// Admits a deployment package directory (as written by
    /// `t2c_export::export_package`): reads + checksum-verifies the
    /// binary model, re-derives and re-verifies the hex manifest, then
    /// runs both the graph lint *and* the manifest lint through the gate.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::Package`] when the package fails to read or
    /// verify; otherwise as [`Self::admit`].
    pub fn admit_package(
        &self,
        name: &str,
        dir: &Path,
        input_dims: &[usize],
    ) -> Result<Arc<AdmittedModel>, AdmissionError> {
        let (model, manifest) =
            t2c_export::read_package(dir).map_err(|e| AdmissionError::Package(e.to_string()))?;
        let mut report = lint_model(&model, input_dims, name);
        report.merge(lint_package(&model, &manifest, name));
        let gated = self.gate(name, model, input_dims, report, true)?;
        self.insert(name, input_dims, gated)
    }

    /// Admits a model **without** running the lint gate. Escape hatch for
    /// benchmarks and fault-injection tests; production callers should
    /// always go through [`Self::admit`] / [`Self::admit_package`].
    ///
    /// # Errors
    ///
    /// Structural checks ([`AdmissionError::Duplicate`] /
    /// [`AdmissionError::BadModel`]) still apply.
    pub fn admit_unchecked(
        &self,
        name: &str,
        model: IntModel,
        input_dims: &[usize],
    ) -> Result<Arc<AdmittedModel>, AdmissionError> {
        let report = LintReport { tag: name.to_string(), ..Default::default() };
        let gated = self.gate(name, model, input_dims, report, false)?;
        self.insert(name, input_dims, gated)
    }

    /// Evicts a model, freeing its storage slot for reuse. Requests
    /// already queued against the evicted [`AdmittedModel`] hold their
    /// own `Arc` and still complete; new submissions see
    /// [`crate::ServeError::ModelNotFound`]. Returns the evicted handle,
    /// or `None` when no model has that name.
    pub fn remove(&self, name: &str) -> Option<Arc<AdmittedModel>> {
        let mut models = self.models.write().unwrap_or_else(PoisonError::into_inner);
        let slot = models.iter().position(|m| m.as_ref().is_some_and(|m| m.name == name))?;
        models[slot].take()
    }

    /// Replaces the named model's graph in place, re-running the full
    /// lint gate against the *existing* declared input shape. The new
    /// instance keeps the storage slot but gets a fresh batching group,
    /// so in-flight batches of the old version can never mix with the
    /// new one; old-`Arc` holders complete against the old graph.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::NotFound`] when no model has that name;
    /// otherwise the same gate errors as [`Self::admit`]. A refused swap
    /// leaves the old model serving, untouched.
    pub fn swap(&self, name: &str, model: IntModel) -> Result<Arc<AdmittedModel>, AdmissionError> {
        let old = self.get(name).ok_or_else(|| AdmissionError::NotFound(name.to_string()))?;
        let input_dims = old.input_dims().to_vec();
        let report = lint_model(&model, &input_dims, name);
        let gated = self.gate(name, model, &input_dims, report, true)?;
        let admitted = self.build(name, &input_dims, gated, old.slot());
        let mut models = self.models.write().unwrap_or_else(PoisonError::into_inner);
        // Re-locate by name under the write lock: a concurrent remove may
        // have raced us, in which case the swap target is gone.
        let Some(slot) = models.iter().position(|m| m.as_ref().is_some_and(|m| m.name == name))
        else {
            return Err(AdmissionError::NotFound(name.to_string()));
        };
        models[slot] = Some(Arc::clone(&admitted));
        Ok(admitted)
    }

    /// Runs the lint + certification gate and the structural checks; on
    /// success returns the (prepacked) model and its serving metadata.
    fn gate(
        &self,
        name: &str,
        mut model: IntModel,
        input_dims: &[usize],
        mut report: LintReport,
        certify: bool,
    ) -> Result<Gated, AdmissionError> {
        // Certify the float↔int divergence bound at admission: the walk is
        // cheap (one interval pass) and the resulting bound feeds the
        // dual-path audit's soundness canary even when no tolerance is
        // configured. Its findings join the gate only when the registry
        // was built with an error budget — a report-only default keeps
        // existing admissions byte-identical.
        let mut certified_steps = None;
        if certify {
            let cfg =
                ErrorBoundConfig { tolerance_steps: self.error_tolerance.unwrap_or(f64::INFINITY) };
            let (cert, cert_lint) = certify_model(&model, input_dims, cfg, name);
            certified_steps = cert.certified().then_some(cert.end_to_end_steps);
            if self.error_tolerance.is_some() {
                report.merge(cert_lint);
            }
        }
        if report.error_count() > 0 {
            let first = report
                .diagnostics
                .iter()
                .find(|d| d.severity == Severity::Error)
                .map(|d| format!("{}: {}", d.rule.id(), d.message))
                .unwrap_or_default();
            return Err(AdmissionError::LintGate {
                model: name.to_string(),
                errors: report.error_count(),
                rules: error_rules(&report),
                first,
            });
        }
        if input_dims.is_empty() || input_dims[0] != 1 {
            return Err(AdmissionError::BadModel(format!(
                "input dims {input_dims:?} must lead with a batch axis of 1"
            )));
        }
        let Some(IntOp::Quantize { scale, spec }) = model.nodes.first().map(|n| &n.op) else {
            return Err(AdmissionError::BadModel("model must start with a Quantize node".into()));
        };
        let (input_scale, input_spec) = (*scale, *spec);
        // Admission is the serving boundary: every dense conv/linear is
        // repacked once into the cache-blocked panel layout here, so the
        // hot path never pays a per-call weight transform. The lint gate
        // above ran on the dense graph; prepacking is bit-identical, so
        // the verdict carries over. Sparse layers keep their own encoding.
        let packed = model.prepack();
        if packed > 0 && t2c_obs::enabled() {
            t2c_obs::counter_add("serve.prepacked_layers", packed as u64);
        }
        // Compile the execution plan at the same boundary: fused
        // epilogues + arena layout, bit-identical to the interpreter
        // (which stays available as the fallback when compilation is
        // unsupported for a graph). The lint/certification verdicts
        // above apply verbatim — the graph is untouched. Shape inference
        // inside `compile` executes the graph, so a model admitted via
        // `admit_unchecked` may panic here; such models fall back to the
        // interpreter, keeping admission itself panic-free.
        let plan = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            model.compile(input_dims).ok()
        }))
        .ok()
        .flatten();
        if t2c_obs::enabled() {
            t2c_obs::counter_add(
                if plan.is_some() { "serve.plans_compiled" } else { "serve.plans_fallback" },
                1,
            );
        }
        Ok(Gated { model, plan, lint: report, input_scale, input_spec, certified_steps })
    }

    fn build(
        &self,
        name: &str,
        input_dims: &[usize],
        gated: Gated,
        slot: usize,
    ) -> Arc<AdmittedModel> {
        Arc::new(AdmittedModel {
            name: name.to_string(),
            model: gated.model,
            plan: gated.plan,
            input_dims: input_dims.to_vec(),
            lint: gated.lint,
            slot,
            group: self.next_group.fetch_add(1, Ordering::Relaxed),
            input_scale: gated.input_scale,
            input_spec: gated.input_spec,
            certified_steps: gated.certified_steps,
            quarantined: AtomicBool::new(false),
            breaker: Mutex::new(BreakerState::Closed),
            panics: AtomicU32::new(0),
        })
    }

    fn insert(
        &self,
        name: &str,
        input_dims: &[usize],
        gated: Gated,
    ) -> Result<Arc<AdmittedModel>, AdmissionError> {
        let mut models = self.models.write().unwrap_or_else(PoisonError::into_inner);
        if models.iter().any(|m| m.as_ref().is_some_and(|m| m.name == name)) {
            return Err(AdmissionError::Duplicate(name.to_string()));
        }
        // Reuse the first evicted slot; extend the storage only when full.
        let slot = models.iter().position(Option::is_none).unwrap_or(models.len());
        let admitted = self.build(name, input_dims, gated, slot);
        if slot == models.len() {
            models.push(Some(Arc::clone(&admitted)));
        } else {
            models[slot] = Some(Arc::clone(&admitted));
        }
        Ok(admitted)
    }

    /// Looks a model up by name.
    pub fn get(&self, name: &str) -> Option<Arc<AdmittedModel>> {
        let models = self.models.read().unwrap_or_else(PoisonError::into_inner);
        models.iter().flatten().find(|m| m.name == name).cloned()
    }

    /// Looks a model up by storage slot.
    pub fn by_slot(&self, slot: usize) -> Option<Arc<AdmittedModel>> {
        let models = self.models.read().unwrap_or_else(PoisonError::into_inner);
        models.get(slot).and_then(Option::clone)
    }

    /// Admitted model names, in slot order.
    pub fn names(&self) -> Vec<String> {
        let models = self.models.read().unwrap_or_else(PoisonError::into_inner);
        models.iter().flatten().map(|m| m.name.clone()).collect()
    }

    /// Number of admitted models.
    pub fn len(&self) -> usize {
        let models = self.models.read().unwrap_or_else(PoisonError::into_inner);
        models.iter().flatten().count()
    }

    /// True when no model is admitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-model health snapshot: `(name, poisoned, panic_count)`.
    pub fn health(&self) -> BTreeMap<String, (bool, u32)> {
        let models = self.models.read().unwrap_or_else(PoisonError::into_inner);
        models
            .iter()
            .flatten()
            .map(|m| (m.name.clone(), (m.is_poisoned(), m.panic_count())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t2c_core::intmodel::Src;
    use t2c_core::zoo;

    #[test]
    fn clean_model_is_admitted_with_its_lint_report() {
        let reg = ModelRegistry::new();
        let (m, dims) = zoo::tiny_mlp();
        let admitted = reg.admit("mlp", m, &dims).expect("tiny_mlp must pass the gate");
        assert_eq!(admitted.name(), "mlp");
        assert_eq!(admitted.lint().error_count(), 0);
        assert_eq!(reg.names(), vec!["mlp".to_string()]);
        assert!(reg.get("mlp").is_some());
        assert!(reg.get("nope").is_none());
    }

    #[test]
    fn error_level_finding_is_refused_naming_the_rule_id() {
        // Inject a T2C002 (dangling source): fc1 reads node 5 which does
        // not exist.
        let (mut m, dims) = zoo::tiny_mlp();
        m.nodes[1].inputs = vec![Src::Node(5)];
        let reg = ModelRegistry::new();
        let err = reg.admit("bad", m, &dims).unwrap_err();
        let AdmissionError::LintGate { model, errors, rules, first } = err else {
            panic!("expected LintGate rejection");
        };
        assert_eq!(model, "bad");
        assert!(errors >= 1);
        assert!(rules.contains(&"T2C002"), "rules {rules:?} should name T2C002");
        assert!(first.contains("T2C002"), "first finding should carry the rule id: {first}");
        assert!(reg.is_empty(), "rejected model must not be registered");
    }

    #[test]
    fn sparse_model_is_admitted_through_the_same_gate() {
        let reg = ModelRegistry::new();
        for (name, (m, dims)) in
            [("mlp-sparse", zoo::tiny_mlp_pruned(0.8)), ("mlp-nm", zoo::tiny_mlp_nm(2, 4))]
        {
            let admitted = reg.admit(name, m, &dims).expect("sparse zoo model must pass the gate");
            assert_eq!(admitted.lint().error_count(), 0);
            assert_eq!(admitted.model().nodes[1].op.label(), "linear_sparse");
        }
    }

    #[test]
    fn sparse_package_is_admitted_from_disk() {
        let dir = std::env::temp_dir().join(format!("t2c_serve_sparse_{}", std::process::id()));
        let (m, dims) = zoo::tiny_mlp_pruned(0.8);
        t2c_export::export_package(&m, &dir).unwrap();
        let reg = ModelRegistry::new();
        let admitted = reg.admit_package("mlp-sparse-pkg", &dir, &dims).expect("package admission");
        // The served graph is the round-tripped one — same outputs.
        let x = Tensor::from_fn(&dims, |i| (i as f32) * 0.011 - 0.2);
        assert_eq!(m.run(&x).unwrap().as_slice(), admitted.model().run(&x).unwrap().as_slice());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drifted_sparsity_declaration_is_refused_with_t2c503() {
        let (mut m, dims) = zoo::tiny_mlp_pruned(0.8);
        if let IntOp::LinearSparse { declared_sparsity, .. } = &mut m.nodes[1].op {
            *declared_sparsity -= 0.3;
        } else {
            panic!("fc1 should be sparse");
        }
        let reg = ModelRegistry::new();
        let err = reg.admit("drift", m, &dims).unwrap_err();
        let AdmissionError::LintGate { rules, .. } = err else {
            panic!("expected LintGate rejection");
        };
        assert!(rules.contains(&"T2C503"), "rules {rules:?} should name T2C503");
        assert!(reg.is_empty());
    }

    #[test]
    fn admission_stores_the_certified_error_bound() {
        let reg = ModelRegistry::new();
        let (m, dims) = zoo::tiny_mlp();
        let admitted = reg.admit("mlp", m, &dims).unwrap();
        let steps = admitted.certified_error_steps().expect("tiny_mlp certifies finitely");
        assert!(steps.is_finite() && steps > 0.0);
        // The escape hatch skips certification entirely.
        let (m2, dims2) = zoo::tiny_mlp();
        let raw = reg.admit_unchecked("mlp-raw", m2, &dims2).unwrap();
        assert_eq!(raw.certified_error_steps(), None);
    }

    #[test]
    fn error_tolerance_gate_refuses_a_mis_scaled_model_with_t2c602() {
        // Derive the budget from the clean model's own certificate so the
        // test tracks the zoo rather than a magic number.
        let (clean, dims) = zoo::tiny_mlp();
        let (clean_cert, _) =
            t2c_lint::certify_model(&clean, &dims, t2c_lint::ErrorBoundConfig::default(), "clean");
        let tolerance = clean_cert.end_to_end_steps * 1.5;
        let reg = ModelRegistry::with_error_tolerance(tolerance);
        reg.admit("mlp", clean, &dims).expect("clean model fits its own budget");

        // A 4× mis-scaled fc1 requantizer passes the structural lint
        // (T2C201 only warns) but blows the certified error budget.
        let (mut bad, dims) = zoo::tiny_mlp();
        let IntOp::Linear { requant: Some(mq), .. } = &mut bad.nodes[1].op else {
            panic!("fc1 should be a requantized linear");
        };
        for s in &mut mq.scale_raw {
            *s *= 4;
        }
        let err = reg.admit("mlp-bad", bad, &dims).unwrap_err();
        let AdmissionError::LintGate { rules, first, .. } = err else {
            panic!("expected LintGate rejection");
        };
        assert!(rules.contains(&"T2C602"), "rules {rules:?} should name T2C602");
        assert!(first.contains("fc1"), "rejection should name the offending layer: {first}");
        assert_eq!(reg.names(), vec!["mlp".to_string()]);
    }

    #[test]
    fn admission_compiles_a_plan_that_matches_the_interpreter() {
        let reg = ModelRegistry::new();
        let (m, dims) = zoo::tiny_mlp();
        let admitted = reg.admit("mlp", m, &dims).unwrap();
        let plan = admitted.plan().expect("tiny_mlp must compile");
        assert_eq!(plan.steady_allocs(), 0, "pure GEMM pipeline");
        let x = Tensor::from_fn(&[3usize, 256], |i| (i as f32) * 0.017 - 0.9);
        let codes = admitted.quantize(&x);
        let want = admitted.model().run_quantized(&codes).unwrap();
        let mut arena = t2c_core::Arena::new();
        let got = plan.run_quantized(&codes, &mut arena).unwrap();
        assert_eq!(got.as_slice(), want.as_slice());
        assert_eq!(got.dims(), want.dims());
    }

    #[test]
    fn duplicate_names_are_refused() {
        let reg = ModelRegistry::new();
        let (m, dims) = zoo::tiny_mlp();
        reg.admit("mlp", m.clone(), &dims).unwrap();
        assert!(matches!(reg.admit("mlp", m, &dims), Err(AdmissionError::Duplicate(_))));
    }

    #[test]
    fn quantize_dequantize_round_trip_on_grid() {
        let reg = ModelRegistry::new();
        let (m, dims) = zoo::tiny_mlp();
        let admitted = reg.admit("mlp", m, &dims).unwrap();
        let x = Tensor::from_fn(&dims, |i| (i as f32) * 0.013 - 0.4);
        let codes = admitted.quantize(&x);
        let spec = admitted.input_spec();
        assert!(codes.as_slice().iter().all(|&c| c >= spec.qmin() && c <= spec.qmax()));
        // quantize(dequantize(codes)) is the identity on the grid.
        let again = admitted.quantize(&admitted.dequantize(&codes));
        assert_eq!(again.as_slice(), codes.as_slice());
    }

    #[test]
    fn remove_frees_the_slot_and_a_new_admission_reuses_it() {
        let reg = ModelRegistry::new();
        let (a, dims) = zoo::tiny_mlp();
        let (b, _) = zoo::tiny_mlp();
        let (c, _) = zoo::tiny_mlp();
        let first = reg.admit("a", a, &dims).unwrap();
        let second = reg.admit("b", b, &dims).unwrap();
        assert_eq!((first.slot(), second.slot()), (0, 1));
        let evicted = reg.remove("a").expect("a was admitted");
        assert_eq!(evicted.name(), "a");
        assert!(reg.get("a").is_none());
        assert_eq!(reg.len(), 1);
        assert!(reg.remove("a").is_none(), "double-remove is a no-op");
        // The freed slot is reused, but the batching group is fresh: the
        // batcher can never coalesce the evicted model's queued tickets
        // with the slot successor's.
        let third = reg.admit("c", c, &dims).unwrap();
        assert_eq!(third.slot(), 0, "slot 0 must be reused");
        assert_ne!(third.group(), evicted.group(), "groups must never be reused");
        // The evicted Arc still runs — in-flight work completes.
        let x = Tensor::from_fn(&dims, |i| (i as f32) * 0.01 - 0.3);
        assert!(evicted.model().run(&x).is_ok());
    }

    #[test]
    fn swap_replaces_in_place_through_the_gate_with_a_fresh_group() {
        let reg = ModelRegistry::new();
        let (v1, dims) = zoo::tiny_mlp();
        let old = reg.admit("mlp", v1, &dims).unwrap();
        // v2 is an actually-different graph (pruned fc1) with the same
        // input shape: outputs diverge, which is how the test tells the
        // versions apart.
        let (v2, _) = zoo::tiny_mlp_pruned(0.5);
        let new = reg.swap("mlp", v2).expect("pruned tiny_mlp passes the gate");
        assert_eq!(new.slot(), old.slot(), "swap keeps the storage slot");
        assert_ne!(new.group(), old.group(), "swap must issue a fresh batching group");
        assert_eq!(reg.len(), 1);
        let x = Tensor::from_fn(&dims, |i| (i as f32) * 0.013 - 0.4);
        let codes = old.quantize(&x);
        let old_out = old.model().run_quantized(&codes).unwrap();
        let new_out = reg.get("mlp").unwrap().model().run_quantized(&codes).unwrap();
        assert_ne!(old_out.as_slice(), new_out.as_slice(), "v2 must actually differ");
        // A failing swap leaves the current model untouched.
        let (mut broken, _) = zoo::tiny_mlp();
        broken.nodes[1].inputs = vec![Src::Node(9)];
        assert!(matches!(reg.swap("mlp", broken), Err(AdmissionError::LintGate { .. })));
        let (fresh, _) = zoo::tiny_mlp();
        assert!(matches!(reg.swap("ghost", fresh), Err(AdmissionError::NotFound(_))));
        assert_eq!(
            reg.get("mlp").unwrap().model().run_quantized(&codes).unwrap().as_slice(),
            new_out.as_slice()
        );
    }

    #[test]
    fn circuit_breaker_poisons_after_the_panic_budget() {
        let reg = ModelRegistry::new();
        let (m, dims) = zoo::tiny_mlp();
        let admitted = reg.admit("mlp", m, &dims).unwrap();
        assert!(!admitted.is_poisoned());
        assert_eq!(admitted.record_panic(3, 10), 1);
        assert_eq!(admitted.record_panic(3, 20), 2);
        assert!(!admitted.is_poisoned());
        assert_eq!(admitted.record_panic(3, 30), 3);
        assert!(admitted.is_poisoned());
        assert_eq!(reg.health()["mlp"], (true, 3));
    }

    #[test]
    fn breaker_walks_closed_open_half_open_closed_on_a_good_probe() {
        let reg = ModelRegistry::new();
        let (m, dims) = zoo::tiny_mlp();
        let admitted = reg.admit("mlp", m, &dims).unwrap();
        let cooldown = 1_000u64;
        // Closed: everything admits.
        assert_eq!(admitted.breaker_admit(0, cooldown), BreakerDecision::Admit);
        // Trip at t=100.
        admitted.record_panic(1, 100);
        assert!(admitted.is_poisoned() && admitted.breaker_is_open());
        // Open: rejected until the cooldown elapses.
        assert_eq!(admitted.breaker_admit(500, cooldown), BreakerDecision::Reject);
        assert_eq!(admitted.breaker_admit(1_099, cooldown), BreakerDecision::Reject);
        // Cooldown over: exactly one probe, everyone else still rejected.
        assert_eq!(admitted.breaker_admit(1_100, cooldown), BreakerDecision::Probe);
        assert!(!admitted.breaker_is_open(), "half-open must let the probe batch run");
        assert_eq!(admitted.breaker_admit(1_101, cooldown), BreakerDecision::Reject);
        // Probe succeeds: breaker closes, panic budget resets.
        admitted.breaker_on_success();
        assert!(!admitted.is_poisoned());
        assert_eq!(admitted.panic_count(), 0);
        assert_eq!(admitted.breaker_admit(1_200, cooldown), BreakerDecision::Admit);
    }

    #[test]
    fn failed_probe_reopens_for_another_cooldown() {
        let reg = ModelRegistry::new();
        let (m, dims) = zoo::tiny_mlp();
        let admitted = reg.admit("mlp", m, &dims).unwrap();
        let cooldown = 1_000u64;
        admitted.record_panic(1, 0);
        assert_eq!(admitted.breaker_admit(1_000, cooldown), BreakerDecision::Probe);
        // The probe itself panics: straight back to open, timed from the
        // failure — the next probe needs a full fresh cooldown.
        admitted.record_panic(1, 1_050);
        assert!(admitted.breaker_is_open());
        assert_eq!(admitted.breaker_admit(1_100, cooldown), BreakerDecision::Reject);
        assert_eq!(admitted.breaker_admit(2_050, cooldown), BreakerDecision::Probe);
        // A wedged half-open (probe lost in the queue) re-arms after
        // another cooldown instead of staying stuck forever.
        assert_eq!(admitted.breaker_admit(2_100, cooldown), BreakerDecision::Reject);
        assert_eq!(admitted.breaker_admit(3_050, cooldown), BreakerDecision::Probe);
        // Cooldown 0 never recovers (the pre-cooldown contract).
        admitted.record_panic(1, 3_060);
        assert_eq!(admitted.breaker_admit(u64::MAX, 0), BreakerDecision::Reject);
    }
}
