//! Error vocabulary of the serving runtime.
//!
//! Two families: [`AdmissionError`] covers registry-time failures (a model
//! that never becomes servable), [`ServeError`] covers request-time
//! rejections and failures. `ServeError` doubles as the wire status set —
//! every variant has a stable one-byte code so TCP clients see the same
//! taxonomy as in-process callers.

use std::fmt;

/// Why the registry refused to admit a model.
#[derive(Debug)]
pub enum AdmissionError {
    /// The deployment package could not be read or failed verification
    /// (checksum, truncation, missing hex artifacts).
    Package(String),
    /// The static verifier found error-level findings; the model is not
    /// deployable. Carries the rule ids so the operator knows exactly
    /// which invariant broke.
    LintGate {
        /// Model tag the gate ran under.
        model: String,
        /// Number of error-level findings.
        errors: usize,
        /// Distinct `T2Cxxx` rule ids that fired at error level, in
        /// first-occurrence order.
        rules: Vec<&'static str>,
        /// The first error-level message, verbatim.
        first: String,
    },
    /// A model with this name is already admitted.
    Duplicate(String),
    /// No admitted model under this name (swap target missing).
    NotFound(String),
    /// The model or its declared input shape is structurally unusable
    /// (no leading `Quantize` node, empty dims, batch axis missing).
    BadModel(String),
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::Package(msg) => write!(f, "package rejected: {msg}"),
            AdmissionError::LintGate { model, errors, rules, first } => write!(
                f,
                "model '{model}' refused by lint gate: {errors} error-level finding(s) \
                 [{}] — first: {first}",
                rules.join(", ")
            ),
            AdmissionError::Duplicate(name) => {
                write!(f, "model '{name}' is already admitted")
            }
            AdmissionError::NotFound(name) => {
                write!(f, "no admitted model named '{name}'")
            }
            AdmissionError::BadModel(msg) => write!(f, "model rejected: {msg}"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Why a request was rejected or failed. Every variant maps to a stable
/// wire status code (see [`ServeError::status`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded admission queue is full — explicit backpressure; the
    /// client should retry later or shed load.
    Busy,
    /// The request's deadline elapsed before a worker produced a result.
    DeadlineExceeded,
    /// The server is draining; no new work is admitted.
    ShuttingDown,
    /// No admitted model under that name.
    ModelNotFound(String),
    /// The model tripped the panic circuit breaker and is quarantined.
    ModelPoisoned(String),
    /// The request itself is malformed (shape mismatch, bad frame).
    BadRequest(String),
    /// The worker failed (model error or isolated panic).
    Internal(String),
    /// Transport-level failure (client-side only; never a wire status).
    Io(String),
}

impl ServeError {
    /// The one-byte wire status for this rejection (`0` means OK and is
    /// never an error status).
    pub fn status(&self) -> u8 {
        match self {
            ServeError::Busy => 1,
            ServeError::DeadlineExceeded => 2,
            ServeError::ShuttingDown => 3,
            ServeError::ModelNotFound(_) => 4,
            ServeError::ModelPoisoned(_) => 5,
            ServeError::BadRequest(_) => 6,
            ServeError::Internal(_) => 7,
            ServeError::Io(_) => 8,
        }
    }

    /// Rebuilds the error from a wire status and detail message.
    pub fn from_status(status: u8, msg: String) -> Self {
        match status {
            1 => ServeError::Busy,
            2 => ServeError::DeadlineExceeded,
            3 => ServeError::ShuttingDown,
            4 => ServeError::ModelNotFound(msg),
            5 => ServeError::ModelPoisoned(msg),
            6 => ServeError::BadRequest(msg),
            8 => ServeError::Io(msg),
            _ => ServeError::Internal(msg),
        }
    }

    /// The detail string carried over the wire (empty for bare statuses).
    pub fn detail(&self) -> &str {
        match self {
            ServeError::Busy | ServeError::DeadlineExceeded | ServeError::ShuttingDown => "",
            ServeError::ModelNotFound(m)
            | ServeError::ModelPoisoned(m)
            | ServeError::BadRequest(m)
            | ServeError::Internal(m)
            | ServeError::Io(m) => m,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Busy => f.write_str("busy: admission queue full"),
            ServeError::DeadlineExceeded => f.write_str("deadline exceeded"),
            ServeError::ShuttingDown => f.write_str("server shutting down"),
            ServeError::ModelNotFound(m) => write!(f, "model not found: {m}"),
            ServeError::ModelPoisoned(m) => write!(f, "model poisoned: {m}"),
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::Internal(m) => write!(f, "internal error: {m}"),
            ServeError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_codes_round_trip() {
        let cases = [
            ServeError::Busy,
            ServeError::DeadlineExceeded,
            ServeError::ShuttingDown,
            ServeError::ModelNotFound("m".into()),
            ServeError::ModelPoisoned("m".into()),
            ServeError::BadRequest("m".into()),
            ServeError::Internal("m".into()),
            ServeError::Io("m".into()),
        ];
        for e in cases {
            let back = ServeError::from_status(e.status(), e.detail().to_string());
            assert_eq!(back, e, "status {} did not round-trip", e.status());
        }
    }

    #[test]
    fn lint_gate_display_names_rule_ids() {
        let e = AdmissionError::LintGate {
            model: "bad".into(),
            errors: 2,
            rules: vec!["T2C002", "T2C101"],
            first: "node 1 reads node 5".into(),
        };
        let s = e.to_string();
        assert!(s.contains("T2C002") && s.contains("T2C101"), "{s}");
    }
}
