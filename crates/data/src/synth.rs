use t2c_tensor::rng::TensorRng;
use t2c_tensor::Tensor;

/// Parameters of a synthetic class-conditional image distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthVisionConfig {
    /// Number of classes.
    pub num_classes: usize,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Image edge length.
    pub image: usize,
    /// Image channels.
    pub channels: usize,
    /// Per-sample Gaussian pixel noise (σ). Larger = harder task.
    pub noise: f32,
    /// Maximum cyclic shift applied per sample, in pixels.
    pub shift_max: usize,
    /// Number of sinusoidal texture components per class prototype.
    pub texture_components: usize,
    /// Seed controlling the whole distribution.
    pub seed: u64,
}

impl SynthVisionConfig {
    /// A small configuration for unit tests.
    pub fn tiny(num_classes: usize, per_class: usize) -> Self {
        SynthVisionConfig {
            num_classes,
            train_per_class: per_class,
            test_per_class: per_class.div_ceil(2),
            image: 16,
            channels: 3,
            noise: 0.3,
            shift_max: 2,
            texture_components: 4,
            seed: 1234,
        }
    }

    /// CIFAR-10-like: 10 classes, 32×32 difficulty profile (at reduced
    /// resolution for CPU budgets).
    pub fn cifar10_like(per_class: usize) -> Self {
        SynthVisionConfig {
            num_classes: 10,
            train_per_class: per_class,
            test_per_class: per_class / 4,
            image: 16,
            channels: 3,
            noise: 0.8,
            shift_max: 4,
            texture_components: 5,
            seed: 0xC1FA_0010,
        }
    }

    /// CIFAR-100-like: many classes, same images — a harder label space.
    pub fn cifar100_like(per_class: usize) -> Self {
        SynthVisionConfig {
            num_classes: 20,
            train_per_class: per_class,
            test_per_class: per_class / 4,
            image: 16,
            channels: 3,
            noise: 0.9,
            shift_max: 4,
            texture_components: 5,
            seed: 0xC1FA_0100,
        }
    }

    /// Aircraft-like: fewer classes, high intra-class variability (large
    /// shifts), fine-grained textures.
    pub fn aircraft_like(per_class: usize) -> Self {
        SynthVisionConfig {
            num_classes: 8,
            train_per_class: per_class,
            test_per_class: per_class / 4,
            image: 16,
            channels: 3,
            noise: 0.4,
            shift_max: 5,
            texture_components: 8,
            seed: 0xA1C_4AF7,
        }
    }

    /// Flowers-like: colour-dominated classes (low texture count, strong
    /// channel structure).
    pub fn flowers_like(per_class: usize) -> Self {
        SynthVisionConfig {
            num_classes: 8,
            train_per_class: per_class,
            test_per_class: per_class / 4,
            image: 16,
            channels: 3,
            noise: 0.35,
            shift_max: 2,
            texture_components: 2,
            seed: 0xF10_3355,
        }
    }

    /// Food-101-like: noisy, cluttered classes.
    pub fn food_like(per_class: usize) -> Self {
        SynthVisionConfig {
            num_classes: 12,
            train_per_class: per_class,
            test_per_class: per_class / 4,
            image: 16,
            channels: 3,
            noise: 0.6,
            shift_max: 4,
            texture_components: 6,
            seed: 0xF00D_0101,
        }
    }

    /// ImageNet-like: the largest label space used by the Table 1/3
    /// experiments.
    pub fn imagenet_like(per_class: usize) -> Self {
        SynthVisionConfig {
            num_classes: 16,
            train_per_class: per_class,
            test_per_class: per_class / 4,
            image: 16,
            channels: 3,
            noise: 0.85,
            shift_max: 4,
            texture_components: 6,
            seed: 0x1A6E_7001,
        }
    }
}

/// A generated dataset: train and test splits of `[C, H, W]` images with
/// integer labels.
#[derive(Debug, Clone)]
pub struct SynthVision {
    train: Vec<(Tensor<f32>, usize)>,
    test: Vec<(Tensor<f32>, usize)>,
    config: SynthVisionConfig,
}

impl SynthVision {
    /// Generates the dataset deterministically from its config.
    pub fn generate(config: &SynthVisionConfig) -> Self {
        let mut rng = TensorRng::seed_from(config.seed);
        let prototypes: Vec<Tensor<f32>> =
            (0..config.num_classes).map(|_| class_prototype(&mut rng, config)).collect();
        let mut train = Vec::with_capacity(config.num_classes * config.train_per_class);
        let mut test = Vec::with_capacity(config.num_classes * config.test_per_class);
        for (label, proto) in prototypes.iter().enumerate() {
            for _ in 0..config.train_per_class {
                train.push((draw_sample(&mut rng, proto, config), label));
            }
            for _ in 0..config.test_per_class {
                test.push((draw_sample(&mut rng, proto, config), label));
            }
        }
        // Interleave classes so sequential batches are class-balanced.
        let mut shuffler = TensorRng::seed_from(config.seed ^ 0x5EED);
        permute_in_place(&mut train, &mut shuffler);
        permute_in_place(&mut test, &mut shuffler);
        SynthVision { train, test, config: config.clone() }
    }

    /// The generating configuration.
    pub fn config(&self) -> &SynthVisionConfig {
        &self.config
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.config.num_classes
    }

    /// Number of training samples.
    pub fn train_len(&self) -> usize {
        self.train.len()
    }

    /// Number of test samples.
    pub fn test_len(&self) -> usize {
        self.test.len()
    }

    /// A training sample by index.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn train_sample(&self, i: usize) -> (&Tensor<f32>, usize) {
        let (img, label) = &self.train[i];
        (img, *label)
    }

    /// A test sample by index.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn test_sample(&self, i: usize) -> (&Tensor<f32>, usize) {
        let (img, label) = &self.test[i];
        (img, *label)
    }

    /// Stacks training samples at `indices` into `([B,C,H,W], labels)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn train_batch(&self, indices: &[usize]) -> (Tensor<f32>, Vec<usize>) {
        batch(&self.train, indices)
    }

    /// Stacks test samples at `indices` into `([B,C,H,W], labels)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn test_batch(&self, indices: &[usize]) -> (Tensor<f32>, Vec<usize>) {
        batch(&self.test, indices)
    }
}

fn batch(samples: &[(Tensor<f32>, usize)], indices: &[usize]) -> (Tensor<f32>, Vec<usize>) {
    let imgs: Vec<&Tensor<f32>> = indices.iter().map(|&i| &samples[i].0).collect();
    let labels = indices.iter().map(|&i| samples[i].1).collect();
    (Tensor::stack(&imgs).expect("batch stack"), labels)
}

fn permute_in_place<T>(v: &mut [T], rng: &mut TensorRng) {
    for i in (1..v.len()).rev() {
        let j = rng.next_usize(i + 1);
        v.swap(i, j);
    }
}

/// A class prototype: a sum of random 2-D sinusoids (band-limited texture)
/// plus a random soft blob, per channel.
fn class_prototype(rng: &mut TensorRng, cfg: &SynthVisionConfig) -> Tensor<f32> {
    let (c, h, w) = (cfg.channels, cfg.image, cfg.image);
    let mut img = Tensor::<f32>::zeros(&[c, h, w]);
    for ch in 0..c {
        // Sinusoidal texture components with class-random frequency/phase.
        let comps: Vec<(f32, f32, f32, f32)> = (0..cfg.texture_components)
            .map(|_| {
                (
                    rng.next_range(0.5, 3.5),                   // fx (cycles per image)
                    rng.next_range(0.5, 3.5),                   // fy
                    rng.next_range(0.0, std::f32::consts::TAU), // phase
                    rng.next_range(0.4, 1.0),                   // amplitude
                )
            })
            .collect();
        // One soft blob per channel.
        let (bx, by) = (rng.next_range(0.2, 0.8) * w as f32, rng.next_range(0.2, 0.8) * h as f32);
        let radius = rng.next_range(0.15, 0.35) * w as f32;
        let blob_amp = rng.next_range(0.5, 1.5);
        for y in 0..h {
            for x in 0..w {
                let mut v = 0.0f32;
                for &(fx, fy, phase, amp) in &comps {
                    v += amp
                        * (std::f32::consts::TAU
                            * (fx * x as f32 / w as f32 + fy * y as f32 / h as f32)
                            + phase)
                            .sin();
                }
                let d2 = (x as f32 - bx).powi(2) + (y as f32 - by).powi(2);
                v += blob_amp * (-d2 / (radius * radius)).exp();
                img.set(&[ch, y, x], v / (cfg.texture_components as f32).sqrt());
            }
        }
    }
    img
}

/// Draws one sample: cyclic shift + brightness scale + Gaussian noise.
fn draw_sample(rng: &mut TensorRng, proto: &Tensor<f32>, cfg: &SynthVisionConfig) -> Tensor<f32> {
    let (c, h, w) = (cfg.channels, cfg.image, cfg.image);
    let dy = rng.next_usize(2 * cfg.shift_max + 1) as isize - cfg.shift_max as isize;
    let dx = rng.next_usize(2 * cfg.shift_max + 1) as isize - cfg.shift_max as isize;
    let gain = rng.next_range(0.8, 1.2);
    let mut out = Tensor::<f32>::zeros(&[c, h, w]);
    for ch in 0..c {
        for y in 0..h {
            for x in 0..w {
                let sy = ((y as isize + dy).rem_euclid(h as isize)) as usize;
                let sx = ((x as isize + dx).rem_euclid(w as isize)) as usize;
                let v = proto.at(&[ch, sy, sx]) * gain + cfg.noise * rng.next_normal();
                out.set(&[ch, y, x], v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthVisionConfig::tiny(3, 4);
        let a = SynthVision::generate(&cfg);
        let b = SynthVision::generate(&cfg);
        assert_eq!(a.train_sample(0).0.as_slice(), b.train_sample(0).0.as_slice());
        assert_eq!(a.train_sample(0).1, b.train_sample(0).1);
    }

    #[test]
    fn split_sizes() {
        let d = SynthVision::generate(&SynthVisionConfig::tiny(3, 4));
        assert_eq!(d.train_len(), 12);
        assert_eq!(d.test_len(), 6);
    }

    #[test]
    fn all_classes_present_in_both_splits() {
        let d = SynthVision::generate(&SynthVisionConfig::tiny(5, 4));
        for split_len in [d.train_len(), d.test_len()] {
            let mut seen = [false; 5];
            for i in 0..split_len {
                let label = if split_len == d.train_len() {
                    d.train_sample(i).1
                } else {
                    d.test_sample(i).1
                };
                seen[label] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn class_prototypes_are_distinguishable() {
        // Mean inter-class L2 distance must dominate intra-class distance;
        // otherwise the task is unlearnable and every experiment collapses.
        let d = SynthVision::generate(&SynthVisionConfig::tiny(4, 8));
        let mut per_class: Vec<Vec<&Tensor<f32>>> = vec![Vec::new(); 4];
        for i in 0..d.train_len() {
            let (img, label) = d.train_sample(i);
            per_class[label].push(img);
        }
        let dist = |a: &Tensor<f32>, b: &Tensor<f32>| -> f32 {
            a.as_slice().iter().zip(b.as_slice()).map(|(x, y)| (x - y).powi(2)).sum::<f32>()
        };
        let intra = dist(per_class[0][0], per_class[0][1]);
        let inter = dist(per_class[0][0], per_class[1][0]);
        assert!(inter > intra * 0.8, "inter {inter} vs intra {intra}");
    }

    #[test]
    fn batch_stacks_images() {
        let d = SynthVision::generate(&SynthVisionConfig::tiny(2, 3));
        let (imgs, labels) = d.train_batch(&[0, 1, 2, 3]);
        assert_eq!(imgs.dims(), &[4, 3, 16, 16]);
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn named_variants_differ() {
        let a = SynthVision::generate(&SynthVisionConfig::cifar10_like(2));
        let b = SynthVision::generate(&SynthVisionConfig::flowers_like(2));
        assert_ne!(a.train_sample(0).0.as_slice(), b.train_sample(0).0.as_slice());
        assert_ne!(a.num_classes(), b.num_classes() + 100); // sanity: different configs
    }
}
