//! # t2c-data
//!
//! Deterministic synthetic vision datasets ("SynthVision"), augmentation
//! pipelines and batch loaders.
//!
//! The original Torch2Chip evaluates on CIFAR-10/100, ImageNet-1K and three
//! transfer datasets (Aircraft, Flowers, Food-101). None of those are
//! available in this environment, so this crate synthesizes
//! class-conditional image distributions that are *learnable but
//! non-trivial*: each class is a band-limited random field plus textured
//! structure, and each sample is a shifted, rescaled, noised draw from its
//! class. The five named constructors ([`SynthVisionConfig::cifar10_like`] etc.)
//! produce *distinct* distributions so the transfer-learning experiment
//! (paper Table 4) has genuinely different downstream tasks.
//!
//! Accuracy levels on synthetic data are not comparable to the paper's
//! absolute numbers; the reproduction target is the *relative* behaviour of
//! compression methods, which depends on the pipeline rather than the
//! pixels.
//!
//! ## Example
//!
//! ```
//! use t2c_data::{SynthVision, SynthVisionConfig};
//!
//! let data = SynthVision::generate(&SynthVisionConfig::tiny(4, 7));
//! assert_eq!(data.num_classes(), 4);
//! let (images, labels) = data.train_batch(&[0, 1, 2]);
//! assert_eq!(images.dims()[0], 3);
//! assert_eq!(labels.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod augment;
mod loader;
mod synth;

pub use augment::{Augment, AugmentConfig};
pub use loader::{BatchIter, ParallelLoader};
pub use synth::{SynthVision, SynthVisionConfig};
