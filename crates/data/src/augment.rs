use t2c_tensor::rng::TensorRng;
use t2c_tensor::Tensor;

/// Configuration of the stochastic augmentation pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AugmentConfig {
    /// Zero-padding used by the random crop (crop size = original size).
    pub crop_pad: usize,
    /// Probability of a horizontal flip.
    pub flip_prob: f32,
    /// σ of additive Gaussian noise (0 disables).
    pub noise: f32,
    /// Half-width of the multiplicative brightness jitter (0 disables).
    pub brightness: f32,
    /// Edge length of a random zeroed square (0 disables cutout).
    pub cutout: usize,
}

impl AugmentConfig {
    /// The standard supervised-training recipe: pad-crop + flip.
    pub fn standard() -> Self {
        AugmentConfig { crop_pad: 2, flip_prob: 0.5, noise: 0.0, brightness: 0.0, cutout: 0 }
    }

    /// The heavier two-view recipe used for self-supervised pre-training.
    pub fn ssl() -> Self {
        AugmentConfig { crop_pad: 3, flip_prob: 0.5, noise: 0.15, brightness: 0.3, cutout: 4 }
    }

    /// No augmentation (evaluation).
    pub fn none() -> Self {
        AugmentConfig { crop_pad: 0, flip_prob: 0.0, noise: 0.0, brightness: 0.0, cutout: 0 }
    }
}

/// A seeded augmentation pipeline over `[C, H, W]` images.
#[derive(Debug, Clone)]
pub struct Augment {
    config: AugmentConfig,
    rng: TensorRng,
}

impl Augment {
    /// Creates the pipeline with its own RNG stream.
    pub fn new(config: AugmentConfig, seed: u64) -> Self {
        Augment { config, rng: TensorRng::seed_from(seed) }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> AugmentConfig {
        self.config
    }

    /// Applies one random augmentation to a `[C, H, W]` image.
    ///
    /// # Panics
    ///
    /// Panics if `img` is not rank 3.
    pub fn apply(&mut self, img: &Tensor<f32>) -> Tensor<f32> {
        assert_eq!(img.rank(), 3, "augment expects [C,H,W]");
        let mut out = img.clone();
        let cfg = self.config;
        if cfg.crop_pad > 0 {
            let dy = self.rng.next_usize(2 * cfg.crop_pad + 1) as isize - cfg.crop_pad as isize;
            let dx = self.rng.next_usize(2 * cfg.crop_pad + 1) as isize - cfg.crop_pad as isize;
            out = shift_zero_pad(&out, dy, dx);
        }
        if cfg.flip_prob > 0.0 && self.rng.next_f32() < cfg.flip_prob {
            out = hflip(&out);
        }
        if cfg.brightness > 0.0 {
            let gain = 1.0 + self.rng.next_range(-cfg.brightness, cfg.brightness);
            out = out.mul_scalar(gain);
        }
        if cfg.noise > 0.0 {
            let sigma = cfg.noise;
            out =
                Tensor::from_fn(out.dims(), |i| out.as_slice()[i] + sigma * self.rng.next_normal());
        }
        if cfg.cutout > 0 {
            out = cutout(&out, cfg.cutout, &mut self.rng);
        }
        out
    }

    /// Produces the two independently augmented views used by contrastive
    /// self-supervised learning.
    pub fn two_views(&mut self, img: &Tensor<f32>) -> (Tensor<f32>, Tensor<f32>) {
        (self.apply(img), self.apply(img))
    }

    /// Augments a whole `[B, C, H, W]` batch sample-by-sample.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is not rank 4.
    pub fn apply_batch(&mut self, batch: &Tensor<f32>) -> Tensor<f32> {
        assert_eq!(batch.rank(), 4, "augment_batch expects [B,C,H,W]");
        let views: Vec<Tensor<f32>> = (0..batch.dim(0))
            .map(|i| self.apply(&batch.index_axis0(i).expect("batch index")))
            .collect();
        let refs: Vec<&Tensor<f32>> = views.iter().collect();
        Tensor::stack(&refs).expect("augment stack")
    }
}

fn shift_zero_pad(img: &Tensor<f32>, dy: isize, dx: isize) -> Tensor<f32> {
    let (c, h, w) = (img.dim(0), img.dim(1), img.dim(2));
    let mut out = Tensor::<f32>::zeros(&[c, h, w]);
    for ch in 0..c {
        for y in 0..h {
            let sy = y as isize + dy;
            if sy < 0 || sy >= h as isize {
                continue;
            }
            for x in 0..w {
                let sx = x as isize + dx;
                if sx < 0 || sx >= w as isize {
                    continue;
                }
                out.set(&[ch, y, x], img.at(&[ch, sy as usize, sx as usize]));
            }
        }
    }
    out
}

fn hflip(img: &Tensor<f32>) -> Tensor<f32> {
    let (c, h, w) = (img.dim(0), img.dim(1), img.dim(2));
    let mut out = Tensor::<f32>::zeros(&[c, h, w]);
    for ch in 0..c {
        for y in 0..h {
            for x in 0..w {
                out.set(&[ch, y, x], img.at(&[ch, y, w - 1 - x]));
            }
        }
    }
    out
}

fn cutout(img: &Tensor<f32>, size: usize, rng: &mut TensorRng) -> Tensor<f32> {
    let (c, h, w) = (img.dim(0), img.dim(1), img.dim(2));
    let cy = rng.next_usize(h);
    let cx = rng.next_usize(w);
    let half = size / 2;
    let mut out = img.clone();
    for ch in 0..c {
        for y in cy.saturating_sub(half)..(cy + half + 1).min(h) {
            for x in cx.saturating_sub(half)..(cx + half + 1).min(w) {
                out.set(&[ch, y, x], 0.0);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Tensor<f32> {
        Tensor::from_fn(&[1, 4, 4], |i| i as f32)
    }

    #[test]
    fn none_config_is_identity() {
        let mut aug = Augment::new(AugmentConfig::none(), 0);
        let img = ramp();
        assert_eq!(aug.apply(&img).as_slice(), img.as_slice());
    }

    #[test]
    fn hflip_reverses_rows() {
        let img = ramp();
        let f = hflip(&img);
        assert_eq!(f.at(&[0, 0, 0]), img.at(&[0, 0, 3]));
        assert_eq!(hflip(&f).as_slice(), img.as_slice());
    }

    #[test]
    fn shift_pads_with_zeros() {
        let img = Tensor::ones(&[1, 3, 3]);
        let s = shift_zero_pad(&img, 1, 0);
        // The last row reads beyond the source and must be zero.
        assert_eq!(s.at(&[0, 2, 0]), 0.0);
        assert_eq!(s.at(&[0, 0, 0]), 1.0);
    }

    #[test]
    fn two_views_differ() {
        let mut aug = Augment::new(AugmentConfig::ssl(), 7);
        let img = ramp();
        let (a, b) = aug.two_views(&img);
        assert_ne!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn cutout_zeroes_a_patch() {
        let mut rng = TensorRng::seed_from(3);
        let img = Tensor::ones(&[1, 8, 8]);
        let c = cutout(&img, 4, &mut rng);
        let zeros = c.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > 0 && zeros < 64);
    }

    #[test]
    fn apply_batch_keeps_shape() {
        let mut aug = Augment::new(AugmentConfig::standard(), 9);
        let batch = Tensor::ones(&[3, 1, 4, 4]);
        assert_eq!(aug.apply_batch(&batch).dims(), &[3, 1, 4, 4]);
    }
}
