use crossbeam::channel;
use t2c_tensor::rng::TensorRng;
use t2c_tensor::Tensor;

use crate::{Augment, AugmentConfig, SynthVision};

/// An epoch's worth of shuffled `([B,C,H,W], labels)` batches drawn from a
/// dataset split.
#[derive(Debug)]
pub struct BatchIter<'d> {
    data: &'d SynthVision,
    order: Vec<usize>,
    batch: usize,
    cursor: usize,
    test_split: bool,
}

impl<'d> BatchIter<'d> {
    /// Shuffled training batches for one epoch. `seed` should vary per
    /// epoch for a fresh order.
    pub fn train(data: &'d SynthVision, batch: usize, seed: u64) -> Self {
        let mut rng = TensorRng::seed_from(seed);
        BatchIter {
            data,
            order: rng.permutation(data.train_len()),
            batch,
            cursor: 0,
            test_split: false,
        }
    }

    /// Sequential test batches.
    pub fn test(data: &'d SynthVision, batch: usize) -> Self {
        BatchIter {
            data,
            order: (0..data.test_len()).collect(),
            batch,
            cursor: 0,
            test_split: true,
        }
    }

    /// Number of batches this iterator will yield.
    pub fn num_batches(&self) -> usize {
        self.order.len().div_ceil(self.batch)
    }
}

impl Iterator for BatchIter<'_> {
    type Item = (Tensor<f32>, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch).min(self.order.len());
        let idx = &self.order[self.cursor..end];
        self.cursor = end;
        Some(if self.test_split { self.data.test_batch(idx) } else { self.data.train_batch(idx) })
    }
}

/// Prepares augmented training batches on worker threads (crossbeam scoped
/// threads + a bounded channel), overlapping augmentation with training.
///
/// The deterministic path is preserved: each batch's augmentation RNG is
/// seeded from `(seed, batch_index)`, so the output is identical to a
/// sequential loader regardless of thread scheduling.
pub struct ParallelLoader {
    batches: Vec<(Tensor<f32>, Vec<usize>)>,
}

impl ParallelLoader {
    /// Materializes one epoch of augmented batches using `workers` threads.
    pub fn prepare(
        data: &SynthVision,
        batch: usize,
        augment: AugmentConfig,
        seed: u64,
        workers: usize,
    ) -> Self {
        let plan: Vec<(usize, Vec<usize>)> = {
            let mut rng = TensorRng::seed_from(seed);
            let order = rng.permutation(data.train_len());
            order.chunks(batch).map(<[usize]>::to_vec).enumerate().collect()
        };
        let (tx, rx) = channel::unbounded::<(usize, (Tensor<f32>, Vec<usize>))>();
        let workers = workers.max(1);
        crossbeam::scope(|scope| {
            for wid in 0..workers {
                let tx = tx.clone();
                let plan = &plan;
                scope.spawn(move |_| {
                    for (bi, indices) in plan.iter().skip(wid).step_by(workers) {
                        let (imgs, labels) = data.train_batch(indices);
                        let mut aug =
                            Augment::new(augment, seed ^ (*bi as u64).wrapping_mul(0x9E37_79B9));
                        let imgs = aug.apply_batch(&imgs);
                        tx.send((*bi, (imgs, labels))).expect("loader channel");
                    }
                });
            }
            drop(tx);
        })
        .expect("loader scope");
        let mut collected: Vec<Option<(Tensor<f32>, Vec<usize>)>> =
            (0..plan.len()).map(|_| None).collect();
        for (bi, b) in &rx {
            collected[bi] = Some(b);
        }
        ParallelLoader {
            batches: collected.into_iter().map(|b| b.expect("all batches produced")).collect(),
        }
    }

    /// Number of prepared batches.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// `true` when no batches were prepared.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// Iterates over the prepared batches in epoch order.
    pub fn iter(&self) -> impl Iterator<Item = &(Tensor<f32>, Vec<usize>)> {
        self.batches.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SynthVisionConfig;

    #[test]
    fn batch_iter_covers_epoch_once() {
        let d = SynthVision::generate(&SynthVisionConfig::tiny(3, 5));
        let it = BatchIter::train(&d, 4, 0);
        let n = it.num_batches();
        let total: usize = it.map(|(_, labels)| labels.len()).sum();
        assert_eq!(total, d.train_len());
        assert_eq!(n, d.train_len().div_ceil(4));
    }

    #[test]
    fn different_seeds_shuffle_differently() {
        let d = SynthVision::generate(&SynthVisionConfig::tiny(3, 8));
        let a: Vec<usize> = BatchIter::train(&d, 6, 1).next().unwrap().1;
        let b: Vec<usize> = BatchIter::train(&d, 6, 2).next().unwrap().1;
        assert_ne!(a, b);
    }

    #[test]
    fn test_iter_is_sequential_and_complete() {
        let d = SynthVision::generate(&SynthVisionConfig::tiny(2, 6));
        let total: usize = BatchIter::test(&d, 4).map(|(_, l)| l.len()).sum();
        assert_eq!(total, d.test_len());
    }

    #[test]
    fn parallel_loader_is_deterministic_across_worker_counts() {
        let d = SynthVision::generate(&SynthVisionConfig::tiny(3, 6));
        let a = ParallelLoader::prepare(&d, 4, AugmentConfig::standard(), 11, 1);
        let b = ParallelLoader::prepare(&d, 4, AugmentConfig::standard(), 11, 4);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.0.as_slice(), y.0.as_slice());
            assert_eq!(x.1, y.1);
        }
    }
}
