use std::fmt;

/// Errors from exporting or re-loading deployment artifacts.
#[derive(Debug)]
pub enum ExportError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a T2CM model (bad magic bytes).
    BadMagic,
    /// The file's format version is not supported by this build.
    UnsupportedVersion(u16),
    /// The payload checksum does not match (corruption).
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum computed from the payload.
        computed: u64,
    },
    /// The byte stream ended prematurely or a field is malformed.
    Malformed(String),
    /// A hex/decimal line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// A value does not fit the declared bit width.
    ValueOutOfRange {
        /// The offending value.
        value: i64,
        /// The declared width.
        bits: u8,
    },
    /// An error surfaced from the tensor layer.
    Tensor(t2c_tensor::TensorError),
}

impl fmt::Display for ExportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExportError::Io(e) => write!(f, "i/o error: {e}"),
            ExportError::BadMagic => write!(f, "not a T2CM model file (bad magic)"),
            ExportError::UnsupportedVersion(v) => write!(f, "unsupported T2CM version {v}"),
            ExportError::ChecksumMismatch { stored, computed } => {
                write!(f, "checksum mismatch: stored {stored:#x}, computed {computed:#x}")
            }
            ExportError::Malformed(msg) => write!(f, "malformed model file: {msg}"),
            ExportError::BadLine { line, content } => {
                write!(f, "unparsable line {line}: {content:?}")
            }
            ExportError::ValueOutOfRange { value, bits } => {
                write!(f, "value {value} does not fit in {bits} bits")
            }
            ExportError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for ExportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExportError::Io(e) => Some(e),
            ExportError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ExportError {
    fn from(e: std::io::Error) -> Self {
        ExportError::Io(e)
    }
}

impl From<t2c_tensor::TensorError> for ExportError {
    fn from(e: t2c_tensor::TensorError) -> Self {
        ExportError::Tensor(e)
    }
}
