//! Deployment packages: one directory containing every export format plus
//! a manifest, ready to hand to an RTL verification flow.

use std::fs;
use std::path::{Path, PathBuf};

use t2c_core::intmodel::IntOp;
use t2c_core::IntModel;

use crate::binary::{read_intmodel, write_intmodel};
use crate::hexfmt::{from_hex_lines, to_binary_lines, to_hex_lines};
use crate::Result;

/// What [`export_package`] wrote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportManifest {
    /// Package root.
    pub root: PathBuf,
    /// Path of the binary model file.
    pub model_file: PathBuf,
    /// `(node name, hex weight file, element count, bit width)` entries.
    /// For sparse layers the element count is the *stored* (packed)
    /// non-zero count — the hex image holds only the payload values.
    pub hex_files: Vec<(String, PathBuf, usize, u8)>,
    /// Per-sparse-layer metadata (empty for dense-only models).
    pub sparse: Vec<SparseEntry>,
    /// The package's quantization-error certificate, when one was attached
    /// with [`write_certified`].
    pub certified: Option<CertifiedError>,
    /// Total bytes written across all artifacts.
    pub total_bytes: usize,
}

/// A sound float↔int divergence certificate shipped with a package.
///
/// Integer-only on purpose (the manifest derives `Eq`): bounds are stored
/// in **milli-steps** of the model's final output quantization unit,
/// rounded up so the stored claim never under-reports the proven bound.
/// `u64::MAX` means "no finite bound" — for `end_to_end_millisteps` an
/// uncertifiable model, for `tolerance_millisteps` an unset tolerance.
/// `t2c-lint`'s rule T2C605 cross-checks this section against a fresh
/// certification of the shipped model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CertifiedError {
    /// Certified end-to-end error bound, in milli-steps (rounded up).
    pub end_to_end_millisteps: u64,
    /// The tolerance the certification was gated against, in milli-steps.
    pub tolerance_millisteps: u64,
    /// Number of layers the certificate covers.
    pub layers: u32,
}

/// Manifest record for one compressed sparse layer.
///
/// Integer-only on purpose: the manifest derives `Eq`, and the lint gate
/// cross-checks these counts against the graph (declared float sparsity
/// lives in the op payload itself, checked by rule T2C503).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseEntry {
    /// Node name.
    pub node: String,
    /// Layout label: `"bitmask"` or `"n:m"`.
    pub layout: String,
    /// Packed (stored) slot count — the hex image's element count.
    pub stored: usize,
    /// Dense element count (`rows · cols`).
    pub total: usize,
}

fn sanitized(name: &str) -> String {
    name.chars().map(|c| if c.is_alphanumeric() { c } else { '_' }).collect()
}

/// Writes the full deployment package:
///
/// ```text
/// dir/model.t2cm       — checksummed binary op graph
/// dir/manifest.txt     — human-readable op list
/// dir/hex/*.hex        — per-layer weight memory images ($readmemh)
/// dir/bin/*.mem        — the same in binary text ($readmemb)
/// dir/dec/*.txt        — decimal dumps
/// ```
///
/// # Errors
///
/// Returns an error on I/O failure or unencodable values.
pub fn export_package(model: &IntModel, dir: &Path) -> Result<ExportManifest> {
    fs::create_dir_all(dir.join("hex"))?;
    fs::create_dir_all(dir.join("bin"))?;
    fs::create_dir_all(dir.join("dec"))?;
    let mut total = 0usize;
    // Binary model file.
    let model_bytes = write_intmodel(model);
    total += model_bytes.len();
    let model_file = dir.join("model.t2cm");
    fs::write(&model_file, &model_bytes)?;
    // Per-layer weight memories.
    let mut hex_files = Vec::new();
    let mut sparse = Vec::new();
    let mut manifest = String::from("# Torch2Chip deployment package\n");
    for (i, node) in model.nodes.iter().enumerate() {
        manifest.push_str(&format!("node {i}: {} ({})\n", node.name, node.op.label()));
        let (codes, bits) = match &node.op {
            IntOp::Conv2d { weight, weight_spec, .. }
            | IntOp::Linear { weight, weight_spec, .. } => {
                (weight.as_slice().to_vec(), weight_spec.bits)
            }
            IntOp::LinearSparse { weight, weight_spec, .. } => {
                let entry = SparseEntry {
                    node: node.name.clone(),
                    layout: weight.layout_label(),
                    stored: weight.stored(),
                    total: weight.rows * weight.cols,
                };
                manifest.push_str(&format!(
                    "  sparse: {} layout, {}/{} slots stored\n",
                    entry.layout, entry.stored, entry.total
                ));
                sparse.push(entry);
                (weight.vals.clone(), weight_spec.bits)
            }
            // Packed layers export their dense expansion: the panel layout
            // is a runtime representation, and the binary model writer
            // downgrades these nodes to dense tags, so the hex images must
            // match what `read_package` will find on disk.
            IntOp::Conv2dPacked { weight, weight_spec, .. } => (
                weight.unpack().expect("validated packed conv weight").as_slice().to_vec(),
                weight_spec.bits,
            ),
            IntOp::LinearPacked { weight, weight_spec, .. } => (
                weight.unpack().expect("validated packed linear weight").as_slice().to_vec(),
                weight_spec.bits,
            ),
            _ => continue,
        };
        let base = format!("{i:03}_{}", sanitized(&node.name));
        let hex_path = dir.join("hex").join(format!("{base}.hex"));
        let hex_lines = to_hex_lines(&codes, bits)?;
        let hex_payload = hex_lines.join("\n") + "\n";
        total += hex_payload.len();
        fs::write(&hex_path, hex_payload)?;
        let bin_lines = to_binary_lines(&codes, bits)?;
        let bin_payload = bin_lines.join("\n") + "\n";
        total += bin_payload.len();
        fs::write(dir.join("bin").join(format!("{base}.mem")), bin_payload)?;
        let dec_payload =
            codes.iter().map(std::string::ToString::to_string).collect::<Vec<_>>().join("\n")
                + "\n";
        total += dec_payload.len();
        fs::write(dir.join("dec").join(format!("{base}.txt")), dec_payload)?;
        manifest.push_str(&format!("  weights: {} × int{bits} → hex/{base}.hex\n", codes.len()));
        hex_files.push((node.name.clone(), hex_path, codes.len(), bits));
    }
    total += manifest.len();
    fs::write(dir.join("manifest.txt"), manifest)?;
    Ok(ExportManifest {
        root: dir.to_path_buf(),
        model_file,
        hex_files,
        sparse,
        certified: None,
        total_bytes: total,
    })
}

/// Attaches a quantization-error certificate to an exported package:
/// writes `certified.txt` into the package root and records the section in
/// the manifest. [`read_package`] picks the file up again, so the
/// certificate travels with the artifacts.
///
/// # Errors
///
/// Returns an error on I/O failure.
pub fn write_certified(manifest: &mut ExportManifest, cert: CertifiedError) -> Result<()> {
    let body = format!(
        "end_to_end_millisteps {}\ntolerance_millisteps {}\nlayers {}\n",
        cert.end_to_end_millisteps, cert.tolerance_millisteps, cert.layers
    );
    fs::write(manifest.root.join("certified.txt"), body)?;
    manifest.certified = Some(cert);
    Ok(())
}

/// Parses a package's `certified.txt`, if present. A malformed file is an
/// error — a half-readable certificate must not silently downgrade to
/// "uncertified".
fn read_certified(dir: &Path) -> Result<Option<CertifiedError>> {
    let path = dir.join("certified.txt");
    if !path.is_file() {
        return Ok(None);
    }
    let content = fs::read_to_string(&path)?;
    let mut end = None;
    let mut tol = None;
    let mut layers = None;
    for line in content.lines() {
        let mut it = line.split_whitespace();
        let (Some(key), Some(val)) = (it.next(), it.next()) else { continue };
        let slot = match key {
            "end_to_end_millisteps" => &mut end,
            "tolerance_millisteps" => &mut tol,
            "layers" => &mut layers,
            _ => continue,
        };
        *slot = Some(val.parse::<u64>().map_err(|_| {
            crate::ExportError::Malformed(format!("certified.txt: bad value for {key}: {val}"))
        })?);
    }
    match (end, tol, layers) {
        (Some(e), Some(t), Some(l)) => Ok(Some(CertifiedError {
            end_to_end_millisteps: e,
            tolerance_millisteps: t,
            layers: u32::try_from(l).unwrap_or(u32::MAX),
        })),
        _ => Err(crate::ExportError::Malformed(
            "certified.txt is missing one of end_to_end_millisteps/tolerance_millisteps/layers"
                .to_owned(),
        )),
    }
}

/// Reloads every artifact in a package and verifies bit-exactness:
/// the binary model must round-trip, and every hex memory image must decode
/// to exactly the weights inside it.
///
/// Returns the reloaded model on success.
///
/// # Errors
///
/// Returns an error on any mismatch or unreadable artifact.
pub fn verify_package(manifest: &ExportManifest) -> Result<IntModel> {
    let bytes = fs::read(&manifest.model_file)?;
    let model = read_intmodel(&bytes)?;
    for (name, hex_path, count, bits) in &manifest.hex_files {
        let content = fs::read_to_string(hex_path)?;
        let node = model
            .nodes
            .iter()
            .find(|n| &n.name == name)
            .ok_or_else(|| crate::ExportError::Malformed(format!("node {name} missing")))?;
        let (weights, signed): (&[i32], bool) = match &node.op {
            IntOp::Conv2d { weight, weight_spec, .. }
            | IntOp::Linear { weight, weight_spec, .. } => (weight.as_slice(), weight_spec.signed),
            IntOp::LinearSparse { weight, weight_spec, .. } => (&weight.vals, weight_spec.signed),
            _ => return Err(crate::ExportError::Malformed(format!("node {name} has no weights"))),
        };
        let decoded = from_hex_lines(content.lines(), *bits, signed)?;
        if decoded.len() != *count || decoded != weights {
            return Err(crate::ExportError::Malformed(format!(
                "hex image {} does not match model weights",
                hex_path.display()
            )));
        }
    }
    Ok(model)
}

/// Loads a package directory written by [`export_package`] **without** a
/// pre-existing manifest: the manifest is reconstructed from the binary
/// model (node order, weight counts, declared bit widths) and then the
/// whole package is re-verified with [`verify_package`], so a tampered or
/// incomplete directory is rejected exactly like a tampered manifest.
///
/// This is the entry point for consumers that receive a package as opaque
/// files — the serving runtime's model registry feeds every deployment
/// through it before admission.
///
/// `total_bytes` in the reconstructed manifest counts the artifacts that
/// were actually re-read (binary model + hex images), not the decimal and
/// binary-text mirrors.
///
/// # Errors
///
/// Returns an error if the binary model is unreadable or corrupt, a weight
/// image named by the graph is missing, or any artifact fails the
/// bit-exactness check.
pub fn read_package(dir: &Path) -> Result<(IntModel, ExportManifest)> {
    let model_file = dir.join("model.t2cm");
    let bytes = fs::read(&model_file)?;
    let model = read_intmodel(&bytes)?;
    let mut total = bytes.len();
    let mut hex_files = Vec::new();
    let mut sparse = Vec::new();
    for (i, node) in model.nodes.iter().enumerate() {
        let (count, bits) = match &node.op {
            IntOp::Conv2d { weight, weight_spec, .. }
            | IntOp::Linear { weight, weight_spec, .. } => (weight.numel(), weight_spec.bits),
            IntOp::LinearSparse { weight, weight_spec, .. } => {
                sparse.push(SparseEntry {
                    node: node.name.clone(),
                    layout: weight.layout_label(),
                    stored: weight.stored(),
                    total: weight.rows * weight.cols,
                });
                (weight.stored(), weight_spec.bits)
            }
            _ => continue,
        };
        let base = format!("{i:03}_{}", sanitized(&node.name));
        let hex_path = dir.join("hex").join(format!("{base}.hex"));
        if !hex_path.is_file() {
            return Err(crate::ExportError::Malformed(format!(
                "package is missing weight image hex/{base}.hex for node {}",
                node.name
            )));
        }
        total += fs::metadata(&hex_path).map_or(0, |m| m.len() as usize);
        hex_files.push((node.name.clone(), hex_path, count, bits));
    }
    let manifest = ExportManifest {
        root: dir.to_path_buf(),
        model_file,
        hex_files,
        sparse,
        certified: read_certified(dir)?,
        total_bytes: total,
    };
    let model = verify_package(&manifest)?;
    Ok((model, manifest))
}

#[cfg(test)]
mod tests {
    use super::*;
    use t2c_core::intmodel::Src;
    use t2c_core::{FixedPointFormat, MulQuant, QuantSpec};
    use t2c_tensor::ops::Conv2dSpec;
    use t2c_tensor::Tensor;

    fn sample() -> IntModel {
        let mut m = IntModel::new();
        m.push("input", IntOp::Quantize { scale: 0.1, spec: QuantSpec::signed(8) }, vec![]);
        m.push(
            "conv1",
            IntOp::Conv2d {
                weight: Tensor::from_fn(&[2, 1, 3, 3], |i| (i as i32 % 15) - 7),
                bias: None,
                spec: Conv2dSpec::new(1, 1),
                requant: MulQuant::from_float(
                    &[0.5],
                    &[0.0],
                    FixedPointFormat::int16_frac12(),
                    QuantSpec::unsigned(8),
                ),
                relu: true,
                weight_spec: QuantSpec::signed(4),
            },
            vec![Src::Node(0)],
        );
        m
    }

    #[test]
    fn export_then_verify_round_trips() {
        let dir = std::env::temp_dir().join(format!("t2c_pkg_{}", std::process::id()));
        let model = sample();
        let manifest = export_package(&model, &dir).unwrap();
        assert!(manifest.model_file.exists());
        assert_eq!(manifest.hex_files.len(), 1);
        assert!(manifest.total_bytes > 0);
        let reloaded = verify_package(&manifest).unwrap();
        let x = Tensor::from_fn(&[1, 1, 5, 5], |i| i as f32 * 0.05);
        assert_eq!(model.run(&x).unwrap().as_slice(), reloaded.run(&x).unwrap().as_slice());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_package_reconstructs_manifest_from_disk() {
        let dir = std::env::temp_dir().join(format!("t2c_pkg_read_{}", std::process::id()));
        let model = sample();
        let written = export_package(&model, &dir).unwrap();
        let (reloaded, manifest) = read_package(&dir).unwrap();
        assert_eq!(manifest.hex_files.len(), written.hex_files.len());
        assert_eq!(manifest.hex_files[0].0, written.hex_files[0].0);
        assert_eq!(manifest.hex_files[0].2, written.hex_files[0].2);
        assert_eq!(manifest.hex_files[0].3, written.hex_files[0].3);
        let x = Tensor::from_fn(&[1, 1, 5, 5], |i| i as f32 * 0.05);
        assert_eq!(model.run(&x).unwrap().as_slice(), reloaded.run(&x).unwrap().as_slice());
        // A package with a deleted weight image is rejected with a message
        // naming the missing artifact.
        fs::remove_file(&manifest.hex_files[0].1).unwrap();
        let err = read_package(&dir).unwrap_err();
        assert!(format!("{err}").contains("hex"), "unexpected error: {err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sparse_package_round_trips_with_manifest_entries() {
        let dir = std::env::temp_dir().join(format!("t2c_pkg_sparse_{}", std::process::id()));
        let (model, _) = t2c_core::zoo::tiny_mlp_pruned(0.8);
        let written = export_package(&model, &dir).unwrap();
        assert_eq!(written.sparse.len(), 1, "fc1 must appear as a sparse entry");
        assert_eq!(written.sparse[0].node, "fc1");
        assert!(written.sparse[0].stored < written.sparse[0].total);
        // The sparse hex image holds only the packed non-zeros.
        let fc1 = written.hex_files.iter().find(|h| h.0 == "fc1").unwrap();
        assert_eq!(fc1.2, written.sparse[0].stored);
        let reloaded = verify_package(&written).unwrap();
        let (read_model, read_manifest) = read_package(&dir).unwrap();
        assert_eq!(read_manifest.sparse, written.sparse);
        let x = Tensor::from_fn(&[2, 256], |i| ((i * 31) % 97) as f32 * 0.01 - 0.5);
        let want = model.run(&x).unwrap();
        assert_eq!(want.as_slice(), reloaded.run(&x).unwrap().as_slice());
        assert_eq!(want.as_slice(), read_model.run(&x).unwrap().as_slice());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn certified_section_round_trips_through_read_package() {
        let dir = std::env::temp_dir().join(format!("t2c_pkg_cert_{}", std::process::id()));
        let model = sample();
        let mut manifest = export_package(&model, &dir).unwrap();
        assert_eq!(manifest.certified, None);
        let cert = CertifiedError {
            end_to_end_millisteps: 12_345,
            tolerance_millisteps: 50_000,
            layers: 2,
        };
        write_certified(&mut manifest, cert).unwrap();
        assert_eq!(manifest.certified, Some(cert));
        let (_, reread) = read_package(&dir).unwrap();
        assert_eq!(reread.certified, Some(cert));
        // A corrupt certificate is an error, not a silent downgrade.
        fs::write(dir.join("certified.txt"), "end_to_end_millisteps banana\n").unwrap();
        assert!(read_package(&dir).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tampered_hex_detected() {
        let dir = std::env::temp_dir().join(format!("t2c_pkg_tamper_{}", std::process::id()));
        let manifest = export_package(&sample(), &dir).unwrap();
        let hex = &manifest.hex_files[0].1;
        let mut content = fs::read_to_string(hex).unwrap();
        content = content.replacen('7', "6", 1);
        fs::write(hex, content).unwrap();
        assert!(verify_package(&manifest).is_err());
        fs::remove_dir_all(&dir).ok();
    }
}
