//! Hexadecimal and binary text encodings of integer tensors — the formats
//! an RTL testbench reads with `$readmemh` / `$readmemb`.

use crate::{ExportError, Result};

/// Codes are `i32`, so only widths in `1..=32` are meaningful. Anything
/// else (e.g. from a corrupt memory-image header) is rejected up front —
/// the shift arithmetic below would otherwise overflow.
fn check_bits(bits: u8) -> Result<()> {
    if bits == 0 || bits > 32 {
        return Err(ExportError::Malformed(format!("unsupported word width: {bits} bits")));
    }
    Ok(())
}

fn check_range(value: i64, bits: u8) -> Result<()> {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    // Unsigned grids still serialize through the same two's-complement
    // word, so allow [min, 2^bits − 1].
    let umax = (1i64 << bits) - 1;
    if value < min || value > umax.max(max) {
        return Err(ExportError::ValueOutOfRange { value, bits });
    }
    Ok(())
}

/// Encodes integer codes as two's-complement hex words of `bits` width,
/// one per line, matching `$readmemh` conventions.
///
/// # Errors
///
/// Returns [`ExportError::ValueOutOfRange`] if any value does not fit.
pub fn to_hex_lines(codes: &[i32], bits: u8) -> Result<Vec<String>> {
    check_bits(bits)?;
    let nibbles = bits.div_ceil(4) as usize;
    let mask: u64 = (1u64 << bits) - 1;
    codes
        .iter()
        .map(|&c| {
            check_range(c as i64, bits)?;
            Ok(format!("{:0width$x}", (c as i64 as u64) & mask, width = nibbles))
        })
        .collect()
}

/// Encodes integer codes as two's-complement binary words of `bits` width,
/// one per line, matching `$readmemb` conventions.
///
/// # Errors
///
/// Returns [`ExportError::ValueOutOfRange`] if any value does not fit.
pub fn to_binary_lines(codes: &[i32], bits: u8) -> Result<Vec<String>> {
    check_bits(bits)?;
    let mask: u64 = (1u64 << bits) - 1;
    codes
        .iter()
        .map(|&c| {
            check_range(c as i64, bits)?;
            Ok(format!("{:0width$b}", (c as i64 as u64) & mask, width = bits as usize))
        })
        .collect()
}

/// Decodes hex words of `bits` width back to signed integer codes
/// (sign-extended two's complement).
///
/// # Errors
///
/// Returns [`ExportError::BadLine`] for unparsable lines.
pub fn from_hex_lines<'a>(
    lines: impl IntoIterator<Item = &'a str>,
    bits: u8,
    signed: bool,
) -> Result<Vec<i32>> {
    check_bits(bits)?;
    let mask: u64 = (1u64 << bits) - 1;
    let mut out = Vec::new();
    for (i, line) in lines.into_iter().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with("//") {
            continue;
        }
        let raw = u64::from_str_radix(trimmed, 16)
            .map_err(|_| ExportError::BadLine { line: i + 1, content: trimmed.to_string() })?;
        // A word wider than the declared width would otherwise truncate
        // silently on the cast to i32 below.
        if raw > mask {
            return Err(ExportError::ValueOutOfRange { value: raw as i64, bits });
        }
        let value = if signed { sign_extend(raw, bits) } else { raw as i64 };
        out.push(value as i32);
    }
    Ok(out)
}

fn sign_extend(raw: u64, bits: u8) -> i64 {
    let sign_bit = 1u64 << (bits - 1);
    if raw & sign_bit != 0 {
        (raw | !((1u64 << bits) - 1)) as i64
    } else {
        raw as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip_signed() {
        let codes = vec![-8i32, -1, 0, 1, 7];
        let lines = to_hex_lines(&codes, 4).unwrap();
        assert_eq!(lines, vec!["8", "f", "0", "1", "7"]);
        let joined: Vec<&str> = lines.iter().map(String::as_str).collect();
        assert_eq!(from_hex_lines(joined, 4, true).unwrap(), codes);
    }

    #[test]
    fn hex_round_trip_8bit() {
        let codes = vec![-128i32, -127, 127, 255];
        let lines = to_hex_lines(&codes, 8).unwrap();
        assert_eq!(lines[0], "80");
        assert_eq!(lines[3], "ff");
        let joined: Vec<&str> = lines.iter().map(String::as_str).collect();
        // 255 as a signed byte reads back as −1.
        assert_eq!(from_hex_lines(joined.clone(), 8, true).unwrap(), vec![-128, -127, 127, -1]);
        assert_eq!(from_hex_lines(joined, 8, false).unwrap(), vec![128, 129, 127, 255]);
    }

    #[test]
    fn binary_lines_width() {
        let lines = to_binary_lines(&[-1, 2], 4).unwrap();
        assert_eq!(lines, vec!["1111", "0010"]);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(to_hex_lines(&[16], 4).is_err());
        assert!(to_hex_lines(&[-9], 4).is_err());
        assert!(to_hex_lines(&[15], 4).is_ok()); // unsigned-style max
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let parsed = from_hex_lines(vec!["// header", "", "0a"], 8, true).unwrap();
        assert_eq!(parsed, vec![10]);
    }

    #[test]
    fn bad_line_reports_position() {
        let err = from_hex_lines(vec!["0a", "zz"], 8, true).unwrap_err();
        match err {
            ExportError::BadLine { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn wide_words_for_mulquant() {
        let codes = vec![-30000i32, 30000];
        let lines = to_hex_lines(&codes, 16).unwrap();
        let joined: Vec<&str> = lines.iter().map(String::as_str).collect();
        assert_eq!(from_hex_lines(joined, 16, true).unwrap(), codes);
    }
}
