//! # t2c-export
//!
//! Automated, versatile parameter extraction (paper §3.4, Figure 5).
//!
//! Hardware description languages consume raw hexadecimal or binary memory
//! contents, not `torch.qint8` pickles. This crate exports the integer-only
//! [`IntModel`] produced by `t2c-core` in every format Figure 5 shows:
//!
//! * **Integer model file** (`.t2cm`) — a checksummed binary serialization
//!   of the complete op graph (weights, MulQuant fixed-point parameters,
//!   LUT contents), loadable back via [`read_intmodel`] and executable by
//!   the `t2c-accel` simulator. This is the analogue of the "vanilla model
//!   file with integer-only parameters".
//! * **Hexadecimal memory images** — one `.hex` file per weight/scale/bias
//!   tensor, one two's-complement word per line, bit width matching the
//!   deployed precision — ready to `$readmemh` into an RTL testbench.
//! * **Decimal dumps** — human-readable integer text files.
//!
//! [`export_package`] writes all of them plus a manifest;
//! [`verify_package`] re-reads every artifact and checks bit-exactness.
//!
//! [`IntModel`]: t2c_core::IntModel

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binary;
mod error;
mod hexfmt;
mod package;

pub use binary::{fnv1a64, read_intmodel, write_intmodel};
pub use error::ExportError;
pub use hexfmt::{from_hex_lines, to_binary_lines, to_hex_lines};
pub use package::{
    export_package, read_package, verify_package, write_certified, CertifiedError, ExportManifest,
    SparseEntry,
};

/// Convenience alias for this crate's `Result`.
pub type Result<T> = std::result::Result<T, ExportError>;
