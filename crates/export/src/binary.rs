//! The `.t2cm` binary integer-model format.
//!
//! Layout (little endian):
//!
//! ```text
//! magic "T2CM" | version u16 | node_count u32
//! per node: name | inputs | op_tag u8 | payload
//! trailer: fnv1a64 checksum of everything before it
//! ```

use bytes::{Buf, BufMut, BytesMut};
use t2c_core::intmodel::{IntNode, IntOp, LayerNormInt, Src};
use t2c_core::lut::{GeluLut, SoftmaxLut};
use t2c_core::{FixedPointFormat, FixedScalar, IntModel, MulQuant, QuantSpec};
use t2c_tensor::ops::{Conv2dSpec, PoolSpec};
use t2c_tensor::{SparseEncoding, SparseMat, Tensor};

use crate::{ExportError, Result};

const MAGIC: &[u8; 4] = b"T2CM";
const VERSION: u16 = 1;
const SRC_INPUT: u32 = u32::MAX;

/// Serializes an [`IntModel`] into `.t2cm` bytes.
pub fn write_intmodel(model: &IntModel) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(model.nodes.len() as u32);
    for node in &model.nodes {
        put_str(&mut buf, &node.name);
        buf.put_u8(node.inputs.len() as u8);
        for src in &node.inputs {
            buf.put_u32_le(match src {
                Src::Input => SRC_INPUT,
                Src::Node(i) => *i as u32,
            });
        }
        put_op(&mut buf, &node.op);
    }
    let checksum = fnv1a64(&buf);
    buf.put_u64_le(checksum);
    buf.to_vec()
}

/// Deserializes `.t2cm` bytes back into an [`IntModel`].
///
/// # Errors
///
/// Returns an error on bad magic, unsupported version, corruption
/// (checksum mismatch) or malformed payloads.
pub fn read_intmodel(bytes: &[u8]) -> Result<IntModel> {
    if bytes.len() < 4 + 2 + 4 + 8 {
        return Err(ExportError::Malformed("file too short".into()));
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(
        trailer.try_into().map_err(|_| ExportError::Malformed("missing 8-byte trailer".into()))?,
    );
    let computed = fnv1a64(payload);
    if stored != computed {
        return Err(ExportError::ChecksumMismatch { stored, computed });
    }
    let mut buf = payload;
    let mut magic = [0u8; 4];
    take(&mut buf, 4)?.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(ExportError::BadMagic);
    }
    let version = take(&mut buf, 2)?.get_u16_le();
    if version != VERSION {
        return Err(ExportError::UnsupportedVersion(version));
    }
    let count = take(&mut buf, 4)?.get_u32_le() as usize;
    if count > buf.len() {
        return Err(ExportError::Malformed(format!(
            "node count {count} exceeds remaining payload"
        )));
    }
    let mut model = IntModel::new();
    for node_idx in 0..count {
        let name = get_str(&mut buf)?;
        let n_inputs = take(&mut buf, 1)?.get_u8() as usize;
        let mut inputs = Vec::with_capacity(n_inputs);
        for _ in 0..n_inputs {
            let raw = take(&mut buf, 4)?.get_u32_le();
            inputs.push(if raw == SRC_INPUT {
                Src::Input
            } else {
                // Nodes may only reference earlier nodes; a forward or
                // out-of-range reference would panic during execution.
                if raw as usize >= node_idx {
                    return Err(ExportError::Malformed(format!(
                        "node {node_idx} references node {raw}, which is not an earlier node"
                    )));
                }
                Src::Node(raw as usize)
            });
        }
        let op = get_op(&mut buf)?;
        model.nodes.push(IntNode { op, inputs, name });
    }
    if !buf.is_empty() {
        return Err(ExportError::Malformed(format!("{} trailing bytes", buf.len())));
    }
    Ok(model)
}

// --------------------------------------------------------------------------
// primitives

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8]> {
    if buf.len() < n {
        return Err(ExportError::Malformed(format!("expected {n} bytes, {} left", buf.len())));
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head)
}

/// The FNV-1a 64-bit hash used as the `.t2cm` trailer checksum — public so
/// external tooling (and tests) can verify or re-stamp a file's trailer.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u16_le(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Result<String> {
    let len = take(buf, 2)?.get_u16_le() as usize;
    let raw = take(buf, len)?;
    String::from_utf8(raw.to_vec()).map_err(|_| ExportError::Malformed("bad utf8 name".into()))
}

fn put_spec(buf: &mut BytesMut, s: QuantSpec) {
    buf.put_u8(s.bits);
    buf.put_u8(u8::from(s.signed));
}

fn get_spec(buf: &mut &[u8]) -> Result<QuantSpec> {
    let bits = take(buf, 1)?.get_u8();
    let signed = take(buf, 1)?.get_u8() != 0;
    if bits == 0 || bits > 16 {
        return Err(ExportError::Malformed(format!("invalid bit width {bits}")));
    }
    Ok(QuantSpec { bits, signed })
}

fn put_format(buf: &mut BytesMut, f: FixedPointFormat) {
    buf.put_u8(f.int_bits);
    buf.put_u8(f.frac_bits);
}

fn get_format(buf: &mut &[u8]) -> Result<FixedPointFormat> {
    Ok(FixedPointFormat { int_bits: take(buf, 1)?.get_u8(), frac_bits: take(buf, 1)?.get_u8() })
}

fn put_fixed(buf: &mut BytesMut, f: FixedScalar) {
    buf.put_i32_le(f.raw);
    put_format(buf, f.format);
}

fn get_fixed(buf: &mut &[u8]) -> Result<FixedScalar> {
    Ok(FixedScalar { raw: take(buf, 4)?.get_i32_le(), format: get_format(buf)? })
}

fn put_tensor_i32(buf: &mut BytesMut, t: &Tensor<i32>) {
    buf.put_u8(t.rank() as u8);
    for &d in t.dims() {
        buf.put_u32_le(d as u32);
    }
    for &v in t.as_slice() {
        buf.put_i32_le(v);
    }
}

fn get_tensor_i32(buf: &mut &[u8]) -> Result<Tensor<i32>> {
    let rank = take(buf, 1)?.get_u8() as usize;
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(take(buf, 4)?.get_u32_le() as usize);
    }
    let numel: usize = dims
        .iter()
        .try_fold(1usize, |a, &d| a.checked_mul(d))
        .ok_or_else(|| ExportError::Malformed("tensor volume overflows".into()))?;
    // Guard the allocation against corrupt headers: the payload must
    // actually contain this many words.
    if buf.len() < numel.saturating_mul(4) {
        return Err(ExportError::Malformed(format!(
            "tensor claims {numel} elements but only {} bytes remain",
            buf.len()
        )));
    }
    let mut data = Vec::with_capacity(numel);
    for _ in 0..numel {
        data.push(take(buf, 4)?.get_i32_le());
    }
    Ok(Tensor::from_vec(data, &dims)?)
}

fn put_i64s(buf: &mut BytesMut, v: &[i64]) {
    buf.put_u32_le(v.len() as u32);
    for &x in v {
        buf.put_i64_le(x);
    }
}

fn get_i64s(buf: &mut &[u8]) -> Result<Vec<i64>> {
    let n = take(buf, 4)?.get_u32_le() as usize;
    if buf.len() < n.saturating_mul(8) {
        return Err(ExportError::Malformed(format!(
            "i64 vector claims {n} entries but only {} bytes remain",
            buf.len()
        )));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(take(buf, 8)?.get_i64_le());
    }
    Ok(out)
}

fn put_i32s(buf: &mut BytesMut, v: &[i32]) {
    buf.put_u32_le(v.len() as u32);
    for &x in v {
        buf.put_i32_le(x);
    }
}

fn get_i32s(buf: &mut &[u8]) -> Result<Vec<i32>> {
    let n = take(buf, 4)?.get_u32_le() as usize;
    if buf.len() < n.saturating_mul(4) {
        return Err(ExportError::Malformed(format!(
            "i32 vector claims {n} entries but only {} bytes remain",
            buf.len()
        )));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(take(buf, 4)?.get_i32_le());
    }
    Ok(out)
}

fn put_mulquant(buf: &mut BytesMut, m: &MulQuant) {
    put_i32s(buf, &m.scale_raw);
    put_i64s(buf, &m.bias_raw);
    put_format(buf, m.format);
    put_spec(buf, m.out_spec);
}

fn get_mulquant(buf: &mut &[u8]) -> Result<MulQuant> {
    Ok(MulQuant {
        scale_raw: get_i32s(buf)?,
        bias_raw: get_i64s(buf)?,
        format: get_format(buf)?,
        out_spec: get_spec(buf)?,
    })
}

fn put_conv_spec(buf: &mut BytesMut, s: Conv2dSpec) {
    buf.put_u32_le(s.stride as u32);
    buf.put_u32_le(s.padding as u32);
    buf.put_u32_le(s.groups as u32);
}

fn get_conv_spec(buf: &mut &[u8]) -> Result<Conv2dSpec> {
    Ok(Conv2dSpec {
        stride: take(buf, 4)?.get_u32_le() as usize,
        padding: take(buf, 4)?.get_u32_le() as usize,
        groups: take(buf, 4)?.get_u32_le() as usize,
    })
}

fn put_opt_bias(buf: &mut BytesMut, b: &Option<Vec<i64>>) {
    match b {
        Some(v) => {
            buf.put_u8(1);
            put_i64s(buf, v);
        }
        None => buf.put_u8(0),
    }
}

fn get_opt_bias(buf: &mut &[u8]) -> Result<Option<Vec<i64>>> {
    Ok(match take(buf, 1)?.get_u8() {
        0 => None,
        _ => Some(get_i64s(buf)?),
    })
}

// --------------------------------------------------------------------------
// ops

fn put_op(buf: &mut BytesMut, op: &IntOp) {
    match op {
        IntOp::Quantize { scale, spec } => {
            buf.put_u8(0);
            buf.put_f32_le(*scale);
            put_spec(buf, *spec);
        }
        IntOp::Conv2d { weight, bias, spec, requant, relu, weight_spec } => {
            buf.put_u8(1);
            put_tensor_i32(buf, weight);
            put_opt_bias(buf, bias);
            put_conv_spec(buf, *spec);
            put_mulquant(buf, requant);
            buf.put_u8(u8::from(*relu));
            put_spec(buf, *weight_spec);
        }
        IntOp::Linear { weight, bias, requant, relu, weight_spec } => {
            buf.put_u8(2);
            put_tensor_i32(buf, weight);
            put_opt_bias(buf, bias);
            match requant {
                Some(r) => {
                    buf.put_u8(1);
                    put_mulquant(buf, r);
                }
                None => buf.put_u8(0),
            }
            buf.put_u8(u8::from(*relu));
            put_spec(buf, *weight_spec);
        }
        // Prepacked ops serialize as their dense twins: the panel layout is
        // a runtime cache optimization, not an interchange format, and the
        // serve layer re-packs at admission anyway. Round-tripping through
        // disk therefore loads as Conv2d/Linear with identical weights.
        IntOp::Conv2dPacked { weight, bias, spec, requant, relu, weight_spec } => {
            buf.put_u8(1);
            put_tensor_i32(buf, &weight.unpack().expect("validated packed conv weight"));
            put_opt_bias(buf, bias);
            put_conv_spec(buf, *spec);
            put_mulquant(buf, requant);
            buf.put_u8(u8::from(*relu));
            put_spec(buf, *weight_spec);
        }
        IntOp::LinearPacked { weight, bias, requant, relu, weight_spec } => {
            buf.put_u8(2);
            put_tensor_i32(buf, &weight.unpack().expect("validated packed linear weight"));
            put_opt_bias(buf, bias);
            match requant {
                Some(r) => {
                    buf.put_u8(1);
                    put_mulquant(buf, r);
                }
                None => buf.put_u8(0),
            }
            buf.put_u8(u8::from(*relu));
            put_spec(buf, *weight_spec);
        }
        IntOp::AddRequant { m_a, m_b, out_spec, relu } => {
            buf.put_u8(3);
            put_fixed(buf, *m_a);
            put_fixed(buf, *m_b);
            put_spec(buf, *out_spec);
            buf.put_u8(u8::from(*relu));
        }
        IntOp::AddConstRequant { value, m, out_spec } => {
            buf.put_u8(4);
            put_tensor_i32(buf, value);
            put_fixed(buf, *m);
            put_spec(buf, *out_spec);
        }
        IntOp::MaxPool2d { spec } => {
            buf.put_u8(5);
            buf.put_u32_le(spec.kernel as u32);
            buf.put_u32_le(spec.stride as u32);
            buf.put_u32_le(spec.padding as u32);
        }
        IntOp::GlobalAvgPool { frac_bits } => {
            buf.put_u8(6);
            buf.put_u8(*frac_bits);
        }
        IntOp::Flatten => buf.put_u8(7),
        IntOp::PatchToTokens => buf.put_u8(8),
        IntOp::ConcatToken { token } => {
            buf.put_u8(9);
            put_tensor_i32(buf, token);
        }
        IntOp::TakeToken { index } => {
            buf.put_u8(10);
            buf.put_u32_le(*index as u32);
        }
        IntOp::SplitHeads { heads } => {
            buf.put_u8(11);
            buf.put_u32_le(*heads as u32);
        }
        IntOp::MergeHeads { heads } => {
            buf.put_u8(12);
            buf.put_u32_le(*heads as u32);
        }
        IntOp::BmmRequant { transpose_rhs, m, out_spec } => {
            buf.put_u8(13);
            buf.put_u8(u8::from(*transpose_rhs));
            put_fixed(buf, *m);
            put_spec(buf, *out_spec);
        }
        IntOp::LayerNorm(ln) => {
            buf.put_u8(14);
            put_i32s(buf, &ln.gamma_m);
            put_i64s(buf, &ln.beta_b);
            buf.put_u8(ln.frac);
            buf.put_u8(ln.shift);
            put_spec(buf, ln.out_spec);
        }
        IntOp::SoftmaxLut(l) => {
            buf.put_u8(15);
            put_i32s(buf, &l.table);
            buf.put_f32_le(l.in_scale);
            put_spec(buf, l.out_spec);
            buf.put_u8(l.frac_bits);
        }
        IntOp::Requant { m, out_spec } => {
            buf.put_u8(17);
            put_fixed(buf, *m);
            put_spec(buf, *out_spec);
        }
        IntOp::GeluLut(l) => {
            buf.put_u8(16);
            put_i32s(buf, &l.table);
            put_spec(buf, l.in_spec);
            buf.put_f32_le(l.in_scale);
            put_spec(buf, l.out_spec);
            buf.put_f32_le(l.out_scale);
        }
        IntOp::LinearSparse { weight, bias, requant, relu, weight_spec, declared_sparsity } => {
            buf.put_u8(18);
            put_sparse_mat(buf, weight);
            buf.put_f32_le(*declared_sparsity);
            put_opt_bias(buf, bias);
            match requant {
                Some(r) => {
                    buf.put_u8(1);
                    put_mulquant(buf, r);
                }
                None => buf.put_u8(0),
            }
            buf.put_u8(u8::from(*relu));
            put_spec(buf, *weight_spec);
        }
    }
}

fn put_sparse_mat(buf: &mut BytesMut, w: &SparseMat) {
    buf.put_u32_le(w.rows as u32);
    buf.put_u32_le(w.cols as u32);
    match &w.encoding {
        SparseEncoding::Bitmask { words } => {
            buf.put_u8(0);
            buf.put_u32_le(words.len() as u32);
            for &word in words {
                buf.put_u64_le(word);
            }
        }
        SparseEncoding::Nm { n, m, idx } => {
            buf.put_u8(1);
            buf.put_u8(*n);
            buf.put_u8(*m);
            buf.put_u32_le(idx.len() as u32);
            buf.put_slice(idx);
        }
    }
    buf.put_u32_le(w.row_ptr.len() as u32);
    for &p in &w.row_ptr {
        buf.put_u32_le(p);
    }
    put_i32s(buf, &w.vals);
}

/// Reads a compressed sparse matrix and structurally validates it, so a
/// corrupt-but-checksummed payload (e.g. written by buggy tooling) cannot
/// reach the kernels.
fn get_sparse_mat(buf: &mut &[u8]) -> Result<SparseMat> {
    let rows = take(buf, 4)?.get_u32_le() as usize;
    let cols = take(buf, 4)?.get_u32_le() as usize;
    let encoding = match take(buf, 1)?.get_u8() {
        0 => {
            let n = take(buf, 4)?.get_u32_le() as usize;
            if buf.len() < n.saturating_mul(8) {
                return Err(ExportError::Malformed(format!(
                    "bitmask claims {n} words but only {} bytes remain",
                    buf.len()
                )));
            }
            let mut words = Vec::with_capacity(n);
            for _ in 0..n {
                words.push(take(buf, 8)?.get_u64_le());
            }
            SparseEncoding::Bitmask { words }
        }
        1 => {
            let n = take(buf, 1)?.get_u8();
            let m = take(buf, 1)?.get_u8();
            let len = take(buf, 4)?.get_u32_le() as usize;
            SparseEncoding::Nm { n, m, idx: take(buf, len)?.to_vec() }
        }
        other => {
            return Err(ExportError::Malformed(format!("unknown sparse encoding tag {other}")))
        }
    };
    let n_ptr = take(buf, 4)?.get_u32_le() as usize;
    if buf.len() < n_ptr.saturating_mul(4) {
        return Err(ExportError::Malformed(format!(
            "row_ptr claims {n_ptr} entries but only {} bytes remain",
            buf.len()
        )));
    }
    let mut row_ptr = Vec::with_capacity(n_ptr);
    for _ in 0..n_ptr {
        row_ptr.push(take(buf, 4)?.get_u32_le());
    }
    let vals = get_i32s(buf)?;
    let mat = SparseMat { rows, cols, row_ptr, vals, encoding };
    mat.validate()
        .map_err(|e| ExportError::Malformed(format!("invalid sparse weight payload: {e}")))?;
    Ok(mat)
}

fn get_op(buf: &mut &[u8]) -> Result<IntOp> {
    let tag = take(buf, 1)?.get_u8();
    Ok(match tag {
        0 => IntOp::Quantize { scale: take(buf, 4)?.get_f32_le(), spec: get_spec(buf)? },
        1 => IntOp::Conv2d {
            weight: get_tensor_i32(buf)?,
            bias: get_opt_bias(buf)?,
            spec: get_conv_spec(buf)?,
            requant: get_mulquant(buf)?,
            relu: take(buf, 1)?.get_u8() != 0,
            weight_spec: get_spec(buf)?,
        },
        2 => IntOp::Linear {
            weight: get_tensor_i32(buf)?,
            bias: get_opt_bias(buf)?,
            requant: match take(buf, 1)?.get_u8() {
                0 => None,
                _ => Some(get_mulquant(buf)?),
            },
            relu: take(buf, 1)?.get_u8() != 0,
            weight_spec: get_spec(buf)?,
        },
        3 => IntOp::AddRequant {
            m_a: get_fixed(buf)?,
            m_b: get_fixed(buf)?,
            out_spec: get_spec(buf)?,
            relu: take(buf, 1)?.get_u8() != 0,
        },
        4 => IntOp::AddConstRequant {
            value: get_tensor_i32(buf)?,
            m: get_fixed(buf)?,
            out_spec: get_spec(buf)?,
        },
        5 => IntOp::MaxPool2d {
            spec: PoolSpec {
                kernel: take(buf, 4)?.get_u32_le() as usize,
                stride: take(buf, 4)?.get_u32_le() as usize,
                padding: take(buf, 4)?.get_u32_le() as usize,
            },
        },
        6 => IntOp::GlobalAvgPool { frac_bits: take(buf, 1)?.get_u8() },
        7 => IntOp::Flatten,
        8 => IntOp::PatchToTokens,
        9 => IntOp::ConcatToken { token: get_tensor_i32(buf)? },
        10 => IntOp::TakeToken { index: take(buf, 4)?.get_u32_le() as usize },
        11 => IntOp::SplitHeads { heads: take(buf, 4)?.get_u32_le() as usize },
        12 => IntOp::MergeHeads { heads: take(buf, 4)?.get_u32_le() as usize },
        13 => IntOp::BmmRequant {
            transpose_rhs: take(buf, 1)?.get_u8() != 0,
            m: get_fixed(buf)?,
            out_spec: get_spec(buf)?,
        },
        14 => IntOp::LayerNorm(LayerNormInt {
            gamma_m: get_i32s(buf)?,
            beta_b: get_i64s(buf)?,
            frac: take(buf, 1)?.get_u8(),
            shift: take(buf, 1)?.get_u8(),
            out_spec: get_spec(buf)?,
        }),
        15 => {
            let table = get_i32s(buf)?;
            let in_scale = take(buf, 4)?.get_f32_le();
            let out_spec = get_spec(buf)?;
            let frac_bits = take(buf, 1)?.get_u8();
            IntOp::SoftmaxLut(SoftmaxLut { table, in_scale, out_spec, frac_bits })
        }
        16 => {
            let table = get_i32s(buf)?;
            let in_spec = get_spec(buf)?;
            let in_scale = take(buf, 4)?.get_f32_le();
            let out_spec = get_spec(buf)?;
            let out_scale = take(buf, 4)?.get_f32_le();
            IntOp::GeluLut(GeluLut { table, in_spec, in_scale, out_spec, out_scale })
        }
        17 => IntOp::Requant { m: get_fixed(buf)?, out_spec: get_spec(buf)? },
        18 => {
            let weight = get_sparse_mat(buf)?;
            let declared_sparsity = take(buf, 4)?.get_f32_le();
            let bias = get_opt_bias(buf)?;
            let requant = match take(buf, 1)?.get_u8() {
                0 => None,
                _ => Some(get_mulquant(buf)?),
            };
            let relu = take(buf, 1)?.get_u8() != 0;
            let weight_spec = get_spec(buf)?;
            IntOp::LinearSparse { weight, bias, requant, relu, weight_spec, declared_sparsity }
        }
        other => return Err(ExportError::Malformed(format!("unknown op tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_model() -> IntModel {
        let mut m = IntModel::new();
        m.push("input", IntOp::Quantize { scale: 0.02, spec: QuantSpec::signed(8) }, vec![]);
        m.push(
            "conv",
            IntOp::Conv2d {
                weight: Tensor::from_fn(&[2, 1, 3, 3], |i| i as i32 - 9),
                bias: Some(vec![5, -5]),
                spec: Conv2dSpec::new(1, 1),
                requant: MulQuant::from_float(
                    &[0.5, 0.25],
                    &[1.0, -1.0],
                    FixedPointFormat::int16_frac12(),
                    QuantSpec::unsigned(8),
                ),
                relu: true,
                weight_spec: QuantSpec::signed(4),
            },
            vec![Src::Node(0)],
        );
        m.push("gap", IntOp::GlobalAvgPool { frac_bits: 4 }, vec![Src::Node(1)]);
        m.push(
            "head",
            IntOp::Linear {
                weight: Tensor::from_fn(&[3, 2], |i| i as i32 - 3),
                bias: None,
                requant: None,
                relu: false,
                weight_spec: QuantSpec::signed(8),
            },
            vec![Src::Node(2)],
        );
        m
    }

    #[test]
    fn round_trip_preserves_model_and_outputs() {
        let model = sample_model();
        let bytes = write_intmodel(&model);
        let loaded = read_intmodel(&bytes).unwrap();
        assert_eq!(loaded.len(), model.len());
        let x = Tensor::from_fn(&[2, 1, 4, 4], |i| (i as f32) * 0.01 - 0.1);
        let a = model.run(&x).unwrap();
        let b = loaded.run(&x).unwrap();
        assert_eq!(a.as_slice(), b.as_slice(), "loaded model must be bit-exact");
    }

    #[test]
    fn corruption_detected_by_checksum() {
        let mut bytes = write_intmodel(&sample_model());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        match read_intmodel(&bytes) {
            Err(ExportError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_detected() {
        let mut bytes = write_intmodel(&sample_model());
        bytes[0] = b'X';
        // Fix the checksum so magic is the first check to fail.
        let n = bytes.len();
        let sum = fnv1a64(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(read_intmodel(&bytes), Err(ExportError::BadMagic)));
    }

    #[test]
    fn truncated_file_rejected() {
        let bytes = write_intmodel(&sample_model());
        assert!(read_intmodel(&bytes[..10]).is_err());
        assert!(read_intmodel(&[]).is_err());
    }

    #[test]
    fn requant_op_round_trips() {
        let mut m = IntModel::new();
        m.push("input", IntOp::Quantize { scale: 0.02, spec: QuantSpec::unsigned(8) }, vec![]);
        m.push(
            "rq",
            IntOp::Requant {
                m: FixedPointFormat::int16_frac12().quantize(0.03125),
                out_spec: QuantSpec::unsigned(2),
            },
            vec![Src::Node(0)],
        );
        let bytes = write_intmodel(&m);
        let loaded = read_intmodel(&bytes).unwrap();
        let x = Tensor::from_fn(&[1, 4], |i| i as f32 * 0.4);
        assert_eq!(m.run(&x).unwrap().as_slice(), loaded.run(&x).unwrap().as_slice());
    }

    fn sparse_model(nm: bool) -> IntModel {
        let dense = Tensor::from_fn(&[6, 8], |i| if i % 4 < 2 { (i as i32 % 9) - 4 } else { 0 });
        let weight = if nm {
            SparseMat::from_dense_nm(&dense, 2, 4).unwrap()
        } else {
            SparseMat::from_dense(&dense).unwrap()
        };
        let declared = weight.sparsity();
        let mut m = IntModel::new();
        m.push("input", IntOp::Quantize { scale: 0.05, spec: QuantSpec::signed(8) }, vec![]);
        m.push(
            "fc_sparse",
            IntOp::LinearSparse {
                weight,
                bias: Some(vec![3; 6]),
                requant: Some(MulQuant::from_float(
                    &[0.01],
                    &[0.0],
                    FixedPointFormat::int16_frac12(),
                    QuantSpec::unsigned(8),
                )),
                relu: true,
                weight_spec: QuantSpec::signed(4),
                declared_sparsity: declared,
            },
            vec![Src::Node(0)],
        );
        m
    }

    #[test]
    fn sparse_linear_round_trips_in_both_encodings() {
        for nm in [false, true] {
            let m = sparse_model(nm);
            let bytes = write_intmodel(&m);
            let loaded = read_intmodel(&bytes).unwrap();
            let (
                IntOp::LinearSparse { weight: wa, declared_sparsity: sa, .. },
                IntOp::LinearSparse { weight: wb, declared_sparsity: sb, .. },
            ) = (&m.nodes[1].op, &loaded.nodes[1].op)
            else {
                panic!("sparse node lost its op");
            };
            assert_eq!(wa, wb, "sparse weight must round-trip exactly");
            assert!((sa - sb).abs() < f32::EPSILON);
            let x = Tensor::from_fn(&[2, 8], |i| i as f32 * 0.07 - 0.4);
            assert_eq!(m.run(&x).unwrap().as_slice(), loaded.run(&x).unwrap().as_slice());
        }
    }

    #[test]
    fn structurally_invalid_sparse_payload_rejected_even_with_good_checksum() {
        let m = sparse_model(false);
        let mut bytes = write_intmodel(&m);
        // The bitmask words sit right after rows/cols/enc_tag/word_count of
        // node 1's payload. Flip a mask bit so popcount no longer matches
        // the row extents, then re-stamp the checksum so only the
        // structural validator can catch it.
        let needle = b"fc_sparse";
        let pos = bytes.windows(needle.len()).position(|w| w == needle).unwrap();
        // name + inputs(1×u32 + count u8) + op tag u8 + rows/cols u32s + enc tag u8 + count u32
        let word0 = pos + needle.len() + 5 + 1 + 8 + 1 + 4;
        bytes[word0] ^= 0x04;
        let n = bytes.len();
        let sum = fnv1a64(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        match read_intmodel(&bytes) {
            Err(ExportError::Malformed(msg)) => {
                assert!(msg.contains("sparse"), "unexpected message: {msg}");
            }
            other => panic!("expected malformed sparse payload, got {other:?}"),
        }
    }

    #[test]
    fn vit_ops_round_trip() {
        let mut m = IntModel::new();
        m.push("input", IntOp::Quantize { scale: 1.0, spec: QuantSpec::signed(8) }, vec![]);
        m.push("tok", IntOp::PatchToTokens, vec![Src::Node(0)]);
        m.push(
            "cls",
            IntOp::ConcatToken { token: Tensor::from_vec(vec![1, 2, 3], &[3]).unwrap() },
            vec![Src::Node(1)],
        );
        m.push(
            "ln",
            IntOp::LayerNorm(LayerNormInt {
                gamma_m: vec![100, 100, 100],
                beta_b: vec![0, 1, 2],
                frac: 12,
                shift: 6,
                out_spec: QuantSpec::signed(8),
            }),
            vec![Src::Node(2)],
        );
        m.push(
            "softmax",
            IntOp::SoftmaxLut(SoftmaxLut::build(0.05, QuantSpec::unsigned(8), 128, 15)),
            vec![Src::Node(3)],
        );
        m.push(
            "gelu",
            IntOp::GeluLut(GeluLut::build(QuantSpec::signed(8), 0.05, QuantSpec::signed(8), 0.05)),
            vec![Src::Node(4)],
        );
        let bytes = write_intmodel(&m);
        let loaded = read_intmodel(&bytes).unwrap();
        assert_eq!(loaded.len(), 6);
        let x = Tensor::from_fn(&[1, 3, 2, 2], |i| i as f32 - 5.0);
        assert_eq!(m.run(&x).unwrap().as_slice(), loaded.run(&x).unwrap().as_slice());
    }
}
