//! Property-based tests: every export encoding must round-trip bit-exactly
//! for arbitrary values in range.

use proptest::prelude::*;
use t2c_export::{from_hex_lines, read_intmodel, to_binary_lines, to_hex_lines};

fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hex_round_trip_signed_any_width(values in proptest::collection::vec(-128i32..128, 1..64), bits_sel in 0usize..2) {
        let bits = [8u8, 16][bits_sel];
        let lines = to_hex_lines(&values, bits).unwrap();
        let decoded = from_hex_lines(lines.iter().map(String::as_str), bits, true).unwrap();
        prop_assert_eq!(decoded, values);
    }

    #[test]
    fn hex_round_trip_4bit(values in proptest::collection::vec(-8i32..8, 1..64)) {
        let lines = to_hex_lines(&values, 4).unwrap();
        let decoded = from_hex_lines(lines.iter().map(String::as_str), 4, true).unwrap();
        prop_assert_eq!(decoded, values);
    }

    #[test]
    fn binary_lines_have_exact_width(values in proptest::collection::vec(-8i32..8, 1..32), bits in 4u8..9) {
        let lines = to_binary_lines(&values, bits).unwrap();
        prop_assert!(lines.iter().all(|l| l.len() == bits as usize));
        prop_assert!(lines.iter().all(|l| l.chars().all(|c| c == '0' || c == '1')));
    }

    #[test]
    fn hex_encoding_width_is_constant(values in proptest::collection::vec(-128i32..256, 1..32)) {
        let lines = to_hex_lines(&values, 9).unwrap();
        // 9 bits → 3 nibbles per word, uniformly.
        prop_assert!(lines.iter().all(|l| l.len() == 3));
    }

    #[test]
    fn out_of_range_values_always_rejected(v in 16i32..10_000) {
        prop_assert!(to_hex_lines(&[v], 4).is_err());
        prop_assert!(to_hex_lines(&[-v], 4).is_err());
    }

    #[test]
    fn parser_never_panics_on_arbitrary_payloads(body in proptest::collection::vec(any::<u8>(), 0..256)) {
        // A syntactically "checksum-valid" file with garbage content: the
        // parser must reject gracefully, never panic or loop.
        let mut bytes = Vec::with_capacity(body.len() + 18);
        bytes.extend_from_slice(b"T2CM");
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&body);
        let sum = fnv1a64(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        let _ = read_intmodel(&bytes); // any Err is fine; panics are not
    }

    #[test]
    fn parser_never_panics_on_raw_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = read_intmodel(&bytes);
    }
}
