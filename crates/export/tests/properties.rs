//! Property-based tests: every export encoding must round-trip bit-exactly
//! for arbitrary values in range, and the readers must reject (never
//! panic on) corrupted or truncated byte streams — the serving registry
//! feeds untrusted files into them.

use proptest::prelude::*;
use t2c_core::intmodel::{IntOp, Src};
use t2c_core::{FixedPointFormat, IntModel, MulQuant, QuantSpec};
use t2c_export::{from_hex_lines, read_intmodel, to_binary_lines, to_hex_lines, write_intmodel};
use t2c_tensor::ops::Conv2dSpec;
use t2c_tensor::Tensor;

/// A small but representative model: exercises tensors, optional biases,
/// MulQuant payloads and spec bytes in the serialization.
fn wire_model() -> Vec<u8> {
    let mut m = IntModel::new();
    m.push("input", IntOp::Quantize { scale: 0.05, spec: QuantSpec::signed(8) }, vec![]);
    m.push(
        "conv",
        IntOp::Conv2d {
            weight: Tensor::from_fn(&[2, 1, 3, 3], |i| (i as i32 % 13) - 6),
            bias: Some(vec![3, -3]),
            spec: Conv2dSpec::new(1, 1),
            requant: MulQuant::from_float(
                &[0.5, 0.25],
                &[0.0, 1.0],
                FixedPointFormat::int16_frac12(),
                QuantSpec::unsigned(8),
            ),
            relu: true,
            weight_spec: QuantSpec::signed(4),
        },
        vec![Src::Node(0)],
    );
    m.push("gap", IntOp::GlobalAvgPool { frac_bits: 2 }, vec![Src::Node(1)]);
    m.push(
        "head",
        IntOp::Linear {
            weight: Tensor::from_fn(&[3, 2], |i| i as i32 - 2),
            bias: None,
            requant: None,
            relu: false,
            weight_spec: QuantSpec::signed(8),
        },
        vec![Src::Node(2)],
    );
    write_intmodel(&m)
}

fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hex_round_trip_signed_any_width(values in proptest::collection::vec(-128i32..128, 1..64), bits_sel in 0usize..2) {
        let bits = [8u8, 16][bits_sel];
        let lines = to_hex_lines(&values, bits).unwrap();
        let decoded = from_hex_lines(lines.iter().map(String::as_str), bits, true).unwrap();
        prop_assert_eq!(decoded, values);
    }

    #[test]
    fn hex_round_trip_4bit(values in proptest::collection::vec(-8i32..8, 1..64)) {
        let lines = to_hex_lines(&values, 4).unwrap();
        let decoded = from_hex_lines(lines.iter().map(String::as_str), 4, true).unwrap();
        prop_assert_eq!(decoded, values);
    }

    #[test]
    fn binary_lines_have_exact_width(values in proptest::collection::vec(-8i32..8, 1..32), bits in 4u8..9) {
        let lines = to_binary_lines(&values, bits).unwrap();
        prop_assert!(lines.iter().all(|l| l.len() == bits as usize));
        prop_assert!(lines.iter().all(|l| l.chars().all(|c| c == '0' || c == '1')));
    }

    #[test]
    fn hex_encoding_width_is_constant(values in proptest::collection::vec(-128i32..256, 1..32)) {
        let lines = to_hex_lines(&values, 9).unwrap();
        // 9 bits → 3 nibbles per word, uniformly.
        prop_assert!(lines.iter().all(|l| l.len() == 3));
    }

    #[test]
    fn out_of_range_values_always_rejected(v in 16i32..10_000) {
        prop_assert!(to_hex_lines(&[v], 4).is_err());
        prop_assert!(to_hex_lines(&[-v], 4).is_err());
    }

    #[test]
    fn parser_never_panics_on_arbitrary_payloads(body in proptest::collection::vec(any::<u8>(), 0..256)) {
        // A syntactically "checksum-valid" file with garbage content: the
        // parser must reject gracefully, never panic or loop.
        let mut bytes = Vec::with_capacity(body.len() + 18);
        bytes.extend_from_slice(b"T2CM");
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&body);
        let sum = fnv1a64(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        let _ = read_intmodel(&bytes); // any Err is fine; panics are not
    }

    #[test]
    fn parser_never_panics_on_raw_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = read_intmodel(&bytes);
    }

    #[test]
    fn truncated_valid_stream_always_errs(cut_sel in 0u32..u32::MAX) {
        // Every strict prefix of a valid serialization must be rejected —
        // cleanly. (A truncated file either fails the length check or the
        // checksum over the shifted trailer window.)
        let bytes = wire_model();
        let cut = (cut_sel as usize) % bytes.len();
        prop_assert!(read_intmodel(&bytes[..cut]).is_err());
    }

    #[test]
    fn mutated_valid_stream_never_panics(pos_sel in 0u32..u32::MAX, flip in 1u8..=255) {
        // Flip one byte anywhere in a valid stream: the checksum catches it.
        let mut bytes = wire_model();
        let pos = (pos_sel as usize) % bytes.len();
        bytes[pos] ^= flip;
        prop_assert!(read_intmodel(&bytes).is_err());
    }

    #[test]
    fn mutated_payload_with_restamped_checksum_never_panics(pos_sel in 0u32..u32::MAX, flip in 1u8..=255) {
        // The adversarial case: corrupt the payload, then re-stamp a valid
        // trailer so the parser walks deep into the mutated structure. It
        // may legitimately succeed (a flipped weight byte is still a valid
        // model) but it must never panic, and on failure it must be an Err.
        let mut bytes = wire_model();
        let n = bytes.len();
        let pos = (pos_sel as usize) % (n - 8);
        bytes[pos] ^= flip;
        let sum = t2c_export::fnv1a64(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        let _ = read_intmodel(&bytes);
    }

    #[test]
    fn truncated_payload_with_restamped_checksum_always_errs(cut_sel in 0u32..u32::MAX) {
        // Truncate the payload and re-stamp the trailer: parsing must fail
        // (missing bytes) without panicking, even though the checksum is
        // formally valid for the shortened window.
        let bytes = wire_model();
        let payload_len = bytes.len() - 8;
        // Keep at least the magic+version so truncation hits node parsing.
        let cut = 6 + (cut_sel as usize) % (payload_len - 6);
        let mut short = bytes[..cut].to_vec();
        let sum = t2c_export::fnv1a64(&short);
        short.extend_from_slice(&sum.to_le_bytes());
        prop_assert!(read_intmodel(&short).is_err());
    }
}
