//! The top-level converter (paper §3.4): `T2C(model).nn2chip()`.
//!
//! Together with a trainer this reproduces the paper's five-line workflow:
//!
//! ```text
//! model  = ...                       // build / load a float model
//! trainer = TRAINER[user_select]    // QatTrainer / PtqPipeline / SSL
//! trainer.fit()                      // train or calibrate
//! nn2c = T2C(model, fuser=NetFuser)  // T2C::new(&qmodel)
//! qnn  = nn2c.nn2chip(save=True)     // t2c.nn2chip(scheme)
//! ```

use crate::qmodels::QuantModel;
use crate::{FuseScheme, IntModel, Result};

/// Summary of one conversion, mirroring the columns of the paper's tables.
#[derive(Debug, Clone, PartialEq)]
pub struct ConversionReport {
    /// Compression method name.
    pub method: String,
    /// Fusion scheme applied.
    pub scheme: FuseScheme,
    /// Number of integer ops in the extracted model.
    pub num_nodes: usize,
    /// Packed integer parameter storage (bytes) — "Model Size".
    pub weight_bytes: usize,
    /// Fraction of zero weights — survives pruning into deployment.
    pub sparsity: f32,
    /// Linear nodes compressed to the sparse layout (0 for `nn2chip`;
    /// populated by [`T2C::nn2chip_sparse`]).
    pub sparse_nodes: usize,
}

impl ConversionReport {
    /// Model size in megabytes.
    pub fn size_mb(&self) -> f64 {
        self.weight_bytes as f64 / (1024.0 * 1024.0)
    }
}

/// The converter: wraps a trained quantized model and extracts the
/// integer-only deployment artifact.
pub struct T2C<'m, M: QuantModel + ?Sized> {
    model: &'m M,
}

impl<'m, M: QuantModel + ?Sized> T2C<'m, M> {
    /// Wraps a quantized model for conversion.
    pub fn new(model: &'m M) -> Self {
        T2C { model }
    }

    /// Fuses normalization, extracts integer parameters and returns the
    /// deployable [`IntModel`] plus a report.
    ///
    /// # Errors
    ///
    /// Returns an error if the model's quantizers are uncalibrated.
    pub fn nn2chip(&self, scheme: FuseScheme) -> Result<(IntModel, ConversionReport)> {
        let int = self.model.to_int(scheme)?;
        let report = ConversionReport {
            method: self.model.method().to_string(),
            scheme,
            num_nodes: int.len(),
            weight_bytes: int.weight_bytes(),
            sparsity: int.weight_sparsity(),
            sparse_nodes: 0,
        };
        Ok((int, report))
    }

    /// [`T2C::nn2chip`] followed by [`IntModel::sparsify`]: pruner masks
    /// survive symmetric quantization as zero codes, and linear nodes
    /// whose zero fraction reaches `threshold` are compressed to the
    /// sparse layout. The report's `weight_bytes` reflects the compressed
    /// storage and `sparse_nodes` counts the converted layers.
    ///
    /// # Errors
    ///
    /// Returns an error if the model's quantizers are uncalibrated.
    pub fn nn2chip_sparse(
        &self,
        scheme: FuseScheme,
        threshold: f32,
    ) -> Result<(IntModel, ConversionReport)> {
        let (mut int, mut report) = self.nn2chip(scheme)?;
        report.sparse_nodes = int.sparsify(threshold);
        report.weight_bytes = int.weight_bytes();
        report.sparsity = int.weight_sparsity();
        Ok((int, report))
    }
}
