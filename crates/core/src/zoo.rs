//! The deployable model zoo shared by the toolkit's end-to-end binaries.
//!
//! `t2c-check` (static verification), `t2c-serve` (the serving runtime)
//! and the `loadgen` bench all need the same thing: a small set of
//! trained, converted, integer-only models with known input shapes. This
//! module is the single source of truth for building them, so the three
//! consumers stay in lockstep — a model admitted by the lint gate is the
//! same model the server hosts and the load generator hammers.
//!
//! Each builder trains/calibrates a tiny instance on the synthetic
//! substrate, converts it with `nn2chip` and returns the integer graph
//! plus the canonical single-sample input shape (batch axis = 1).

use t2c_nn::models::{MobileNetConfig, MobileNetV1, ResNet, ResNetConfig, ViT, ViTConfig};
use t2c_nn::Module;
use t2c_tensor::rng::TensorRng;
use t2c_tensor::Tensor;

use crate::intmodel::{IntOp, Src};
use crate::qmodels::{QMobileNet, QResNet, QViT, QuantFactory};
use crate::trainer::{FpTrainer, PtqPipeline, QatTrainer, TrainConfig};
use crate::{FixedPointFormat, FuseScheme, IntModel, MulQuant, QuantConfig, QuantSpec, T2C};
use t2c_data::{SynthVision, SynthVisionConfig};

/// A builder producing `(integer model, single-sample input dims)`.
pub type ZooBuilder = fn() -> (IntModel, Vec<usize>);

/// The e2e zoo: `(tag, builder)` for every model the end-to-end binaries
/// verify and serve.
pub fn zoo() -> [(&'static str, ZooBuilder); 3] {
    [("mobilenet-ptq", mobilenet_ptq), ("resnet-qat", resnet_qat), ("vit-ptq", vit_ptq)]
}

/// The quickstart MobileNet: FP train → PTQ → convert.
///
/// # Panics
///
/// Panics if training or conversion fails — zoo consumers are end-to-end
/// binaries that want loud failures.
pub fn mobilenet_ptq() -> (IntModel, Vec<usize>) {
    let data = SynthVision::generate(&SynthVisionConfig::tiny(3, 16));
    let mut rng = TensorRng::seed_from(9);
    let model = MobileNetV1::new(&mut rng, MobileNetConfig::tiny(3));
    FpTrainer::new(TrainConfig::quick(2)).fit(&model, &data).expect("fp training");
    let qnn = QMobileNet::from_float(&model, &QuantFactory::minmax(QuantConfig::wa(8)));
    PtqPipeline::calibrate(4, 16).run(&qnn, &data).expect("ptq");
    qnn.set_training(false);
    let (chip, _) = T2C::new(&qnn).nn2chip(FuseScheme::PreFuse).expect("conversion");
    let (images, _) = data.test_batch(&[0]);
    (chip, images.dims().to_vec())
}

/// The e2e ResNet: QAT → convert.
///
/// # Panics
///
/// Panics if training or conversion fails.
pub fn resnet_qat() -> (IntModel, Vec<usize>) {
    let data = SynthVision::generate(&SynthVisionConfig::tiny(3, 16));
    let mut rng = TensorRng::seed_from(900);
    let model = ResNet::new(&mut rng, ResNetConfig::tiny(data.num_classes()));
    let qnn = QResNet::from_float(&model, &QuantFactory::minmax(QuantConfig::wa(8)));
    QatTrainer::new(TrainConfig::quick(2)).fit(&qnn, &data).expect("qat");
    qnn.set_training(false);
    let (chip, _) = T2C::new(&qnn).nn2chip(FuseScheme::PreFuse).expect("conversion");
    let (images, _) = data.test_batch(&[0]);
    (chip, images.dims().to_vec())
}

/// The e2e ViT: PTQ → convert (exercises LN/softmax/GELU LUT paths).
///
/// # Panics
///
/// Panics if training or conversion fails.
pub fn vit_ptq() -> (IntModel, Vec<usize>) {
    let data = SynthVision::generate(&SynthVisionConfig::tiny(2, 10));
    let mut rng = TensorRng::seed_from(911);
    let model = ViT::new(&mut rng, ViTConfig::tiny(data.num_classes()));
    let qnn = QViT::from_float(&model, &QuantFactory::minmax(QuantConfig::vit(8)));
    PtqPipeline::calibrate(3, 10).run(&qnn, &data).expect("ptq");
    qnn.set_training(false);
    let (chip, _) = T2C::new(&qnn).nn2chip(FuseScheme::PreFuse).expect("conversion");
    let (images, _) = data.test_batch(&[0]);
    (chip, images.dims().to_vec())
}

/// A hand-built two-layer integer MLP — no training, constructed in
/// microseconds. This is the serving benchmark's workhorse: its per-batch
/// fixed costs (weight transpose, dispatch) dominate the per-sample MACs,
/// so it exposes the micro-batcher's amortization win cleanly.
///
/// Layout: quantize(s8) → linear 256→128 + ReLU requant(u8) → linear 128→10
/// head (raw accumulators). Weights cycle over a small signed range; the
/// requant scale maps the worst-case accumulator into the u8 grid, so the
/// lint gate admits it (zero error-level findings).
pub fn tiny_mlp() -> (IntModel, Vec<usize>) {
    const D: usize = 256;
    const H: usize = 128;
    const OUT: usize = 10;
    let mut m = IntModel::new();
    m.push("input", IntOp::Quantize { scale: 0.05, spec: QuantSpec::signed(8) }, vec![]);
    // Weights in [-3, 3]; worst-case |acc| = D · 127 · 3.
    let w1 = Tensor::from_fn(&[H, D], |i| (i as i32 % 7) - 3);
    let worst = (D as f64) * 127.0 * 3.0;
    let scale = 255.0 / worst;
    m.push(
        "fc1",
        IntOp::Linear {
            weight: w1,
            bias: Some(vec![0; H]),
            requant: Some(MulQuant::from_float(
                &[scale as f32],
                &[0.0],
                FixedPointFormat::int16_frac12(),
                QuantSpec::unsigned(8),
            )),
            relu: true,
            weight_spec: QuantSpec::signed(3),
        },
        vec![Src::Node(0)],
    );
    let w2 = Tensor::from_fn(&[OUT, H], |i| (i as i32 % 5) - 2);
    m.push(
        "head",
        IntOp::Linear {
            weight: w2,
            bias: None,
            requant: None,
            relu: false,
            weight_spec: QuantSpec::signed(3),
        },
        vec![Src::Node(1)],
    );
    (m, vec![1, D])
}

/// The sparse-serving variant of [`tiny_mlp`]: fc1's weight codes are
/// magnitude-pruned to `sparsity` (budget-based, ties broken by index —
/// deterministic) and the model is compressed with [`IntModel::sparsify`].
/// The head stays dense, demonstrating mixed dense/sparse graphs.
///
/// Pruning only removes accumulator terms, so [`tiny_mlp`]'s worst-case
/// requant scale stays valid and the lint gate keeps admitting the model.
///
/// # Panics
///
/// Panics if fc1 fails to compress — zoo consumers want loud failures.
pub fn tiny_mlp_pruned(sparsity: f32) -> (IntModel, Vec<usize>) {
    let (mut m, dims) = tiny_mlp();
    if let IntOp::Linear { weight, .. } = &mut m.nodes[1].op {
        prune_codes_by_magnitude(weight, sparsity);
    }
    assert_eq!(m.sparsify(0.45), 1, "fc1 must compress to the sparse layout");
    (m, dims)
}

/// The N:M-structured variant of [`tiny_mlp`]: within every in-row group
/// of `m` consecutive fc1 codes only the `n` largest magnitudes survive,
/// then the model is compressed (picking the dedicated N:M layout).
///
/// # Panics
///
/// Panics if fc1 fails to compress.
pub fn tiny_mlp_nm(n: usize, m_group: usize) -> (IntModel, Vec<usize>) {
    let (mut m, dims) = tiny_mlp();
    if let IntOp::Linear { weight, .. } = &mut m.nodes[1].op {
        prune_codes_nm(weight, n, m_group);
    }
    assert_eq!(m.sparsify(0.45), 1, "fc1 must compress to the sparse layout");
    (m, dims)
}

/// Zeroes the `round(numel · sparsity)` smallest-|code| weights. Stable
/// sort ⇒ ties break by index, so the budget is exact (see the pruner
/// crate's tie-overshoot fix).
fn prune_codes_by_magnitude(w: &mut Tensor<i32>, sparsity: f32) {
    let k = (w.numel() as f32 * sparsity).round() as usize;
    let codes = w.as_slice().to_vec();
    let mut order: Vec<usize> = (0..codes.len()).collect();
    order.sort_by_key(|&i| codes[i].unsigned_abs());
    let s = w.as_mut_slice();
    for &i in order.iter().take(k) {
        s[i] = 0;
    }
}

/// Applies per-row N:M pruning to integer codes: each in-row group of
/// `m_group` keeps its `n` largest magnitudes (ties by index).
fn prune_codes_nm(w: &mut Tensor<i32>, n: usize, m_group: usize) {
    let cols = w.dim(1);
    for row in w.as_mut_slice().chunks_mut(cols) {
        for group in row.chunks_mut(m_group) {
            let mut idx: Vec<usize> = (0..group.len()).collect();
            idx.sort_by_key(|&i| std::cmp::Reverse(group[i].unsigned_abs()));
            for &i in idx.iter().skip(n) {
                group[i] = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_mlp_runs_and_is_deterministic() {
        let (m, dims) = tiny_mlp();
        assert_eq!(dims, vec![1, 256]);
        let x = Tensor::from_fn(&dims, |i| (i as f32) * 0.01 - 0.3);
        let a = m.run(&x).unwrap();
        let b = m.run(&x).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(a.dims(), &[1, 10]);
    }

    #[test]
    fn pruned_mlp_matches_masked_dense_bit_for_bit() {
        // Compressing the pruned codes must not change a single output
        // bit versus running the same zeroed codes through the dense
        // kernels.
        let x = Tensor::from_fn(&[8, 256], |i| ((i * 53) % 200) as f32 * 0.01 - 1.0);
        for (sparse, masked) in [
            (tiny_mlp_pruned(0.8).0, {
                let (mut d, _) = tiny_mlp();
                if let IntOp::Linear { weight, .. } = &mut d.nodes[1].op {
                    prune_codes_by_magnitude(weight, 0.8);
                }
                d
            }),
            (tiny_mlp_nm(2, 4).0, {
                let (mut d, _) = tiny_mlp();
                if let IntOp::Linear { weight, .. } = &mut d.nodes[1].op {
                    prune_codes_nm(weight, 2, 4);
                }
                d
            }),
        ] {
            assert_eq!(sparse.nodes[1].op.label(), "linear_sparse");
            let ys = sparse.run(&x).unwrap();
            let yd = masked.run(&x).unwrap();
            assert_eq!(ys.as_slice(), yd.as_slice());
        }
    }

    #[test]
    fn nm_mlp_uses_the_dedicated_layout() {
        let (m, _) = tiny_mlp_nm(2, 4);
        let IntOp::LinearSparse { weight, declared_sparsity, .. } = &m.nodes[1].op else {
            panic!("fc1 not sparse");
        };
        assert_eq!(weight.layout_label(), "2:4");
        assert!((declared_sparsity - 0.5).abs() < 1e-6);
        weight.validate().unwrap();
    }

    #[test]
    fn tiny_mlp_batches_consistently() {
        // Batched execution must equal per-sample execution row by row —
        // the invariant the serving micro-batcher relies on.
        let (m, _) = tiny_mlp();
        let batch = Tensor::from_fn(&[4, 256], |i| ((i * 37) % 100) as f32 * 0.01 - 0.5);
        let batched = m.run(&batch).unwrap();
        for r in 0..4 {
            let one = batch.index_axis0(r).unwrap().reshape(&[1, 256]).unwrap();
            let single = m.run(&one).unwrap();
            assert_eq!(
                &batched.as_slice()[r * 10..(r + 1) * 10],
                single.as_slice(),
                "row {r} diverged between batched and single execution"
            );
        }
    }
}
