//! The deployable model zoo shared by the toolkit's end-to-end binaries.
//!
//! `t2c-check` (static verification), `t2c-serve` (the serving runtime)
//! and the `loadgen` bench all need the same thing: a small set of
//! trained, converted, integer-only models with known input shapes. This
//! module is the single source of truth for building them, so the three
//! consumers stay in lockstep — a model admitted by the lint gate is the
//! same model the server hosts and the load generator hammers.
//!
//! Each builder trains/calibrates a tiny instance on the synthetic
//! substrate, converts it with `nn2chip` and returns the integer graph
//! plus the canonical single-sample input shape (batch axis = 1).

use t2c_nn::models::{MobileNetConfig, MobileNetV1, ResNet, ResNetConfig, ViT, ViTConfig};
use t2c_nn::Module;
use t2c_tensor::rng::TensorRng;
use t2c_tensor::Tensor;

use crate::intmodel::{IntOp, Src};
use crate::qmodels::{QMobileNet, QResNet, QViT, QuantFactory};
use crate::trainer::{FpTrainer, PtqPipeline, QatTrainer, TrainConfig};
use crate::{FixedPointFormat, FuseScheme, IntModel, MulQuant, QuantConfig, QuantSpec, T2C};
use t2c_data::{SynthVision, SynthVisionConfig};

/// A builder producing `(integer model, single-sample input dims)`.
pub type ZooBuilder = fn() -> (IntModel, Vec<usize>);

/// The e2e zoo: `(tag, builder)` for every model the end-to-end binaries
/// verify and serve.
pub fn zoo() -> [(&'static str, ZooBuilder); 3] {
    [("mobilenet-ptq", mobilenet_ptq), ("resnet-qat", resnet_qat), ("vit-ptq", vit_ptq)]
}

/// The quickstart MobileNet: FP train → PTQ → convert.
///
/// # Panics
///
/// Panics if training or conversion fails — zoo consumers are end-to-end
/// binaries that want loud failures.
pub fn mobilenet_ptq() -> (IntModel, Vec<usize>) {
    let data = SynthVision::generate(&SynthVisionConfig::tiny(3, 16));
    let mut rng = TensorRng::seed_from(9);
    let model = MobileNetV1::new(&mut rng, MobileNetConfig::tiny(3));
    FpTrainer::new(TrainConfig::quick(2)).fit(&model, &data).expect("fp training");
    let qnn = QMobileNet::from_float(&model, &QuantFactory::minmax(QuantConfig::wa(8)));
    PtqPipeline::calibrate(4, 16).run(&qnn, &data).expect("ptq");
    qnn.set_training(false);
    let (chip, _) = T2C::new(&qnn).nn2chip(FuseScheme::PreFuse).expect("conversion");
    let (images, _) = data.test_batch(&[0]);
    (chip, images.dims().to_vec())
}

/// The e2e ResNet: QAT → convert.
///
/// # Panics
///
/// Panics if training or conversion fails.
pub fn resnet_qat() -> (IntModel, Vec<usize>) {
    let data = SynthVision::generate(&SynthVisionConfig::tiny(3, 16));
    let mut rng = TensorRng::seed_from(900);
    let model = ResNet::new(&mut rng, ResNetConfig::tiny(data.num_classes()));
    let qnn = QResNet::from_float(&model, &QuantFactory::minmax(QuantConfig::wa(8)));
    QatTrainer::new(TrainConfig::quick(2)).fit(&qnn, &data).expect("qat");
    qnn.set_training(false);
    let (chip, _) = T2C::new(&qnn).nn2chip(FuseScheme::PreFuse).expect("conversion");
    let (images, _) = data.test_batch(&[0]);
    (chip, images.dims().to_vec())
}

/// The e2e ViT: PTQ → convert (exercises LN/softmax/GELU LUT paths).
///
/// # Panics
///
/// Panics if training or conversion fails.
pub fn vit_ptq() -> (IntModel, Vec<usize>) {
    let data = SynthVision::generate(&SynthVisionConfig::tiny(2, 10));
    let mut rng = TensorRng::seed_from(911);
    let model = ViT::new(&mut rng, ViTConfig::tiny(data.num_classes()));
    let qnn = QViT::from_float(&model, &QuantFactory::minmax(QuantConfig::vit(8)));
    PtqPipeline::calibrate(3, 10).run(&qnn, &data).expect("ptq");
    qnn.set_training(false);
    let (chip, _) = T2C::new(&qnn).nn2chip(FuseScheme::PreFuse).expect("conversion");
    let (images, _) = data.test_batch(&[0]);
    (chip, images.dims().to_vec())
}

/// A hand-built two-layer integer MLP — no training, constructed in
/// microseconds. This is the serving benchmark's workhorse: its per-batch
/// fixed costs (weight transpose, dispatch) dominate the per-sample MACs,
/// so it exposes the micro-batcher's amortization win cleanly.
///
/// Layout: quantize(s8) → linear 256→128 + ReLU requant(u8) → linear 128→10
/// head (raw accumulators). Weights cycle over a small signed range; the
/// requant scale maps the worst-case accumulator into the u8 grid, so the
/// lint gate admits it (zero error-level findings).
pub fn tiny_mlp() -> (IntModel, Vec<usize>) {
    const D: usize = 256;
    const H: usize = 128;
    const OUT: usize = 10;
    let mut m = IntModel::new();
    m.push("input", IntOp::Quantize { scale: 0.05, spec: QuantSpec::signed(8) }, vec![]);
    // Weights in [-3, 3]; worst-case |acc| = D · 127 · 3.
    let w1 = Tensor::from_fn(&[H, D], |i| (i as i32 % 7) - 3);
    let worst = (D as f64) * 127.0 * 3.0;
    let scale = 255.0 / worst;
    m.push(
        "fc1",
        IntOp::Linear {
            weight: w1,
            bias: Some(vec![0; H]),
            requant: Some(MulQuant::from_float(
                &[scale as f32],
                &[0.0],
                FixedPointFormat::int16_frac12(),
                QuantSpec::unsigned(8),
            )),
            relu: true,
            weight_spec: QuantSpec::signed(3),
        },
        vec![Src::Node(0)],
    );
    let w2 = Tensor::from_fn(&[OUT, H], |i| (i as i32 % 5) - 2);
    m.push(
        "head",
        IntOp::Linear {
            weight: w2,
            bias: None,
            requant: None,
            relu: false,
            weight_spec: QuantSpec::signed(3),
        },
        vec![Src::Node(1)],
    );
    (m, vec![1, D])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_mlp_runs_and_is_deterministic() {
        let (m, dims) = tiny_mlp();
        assert_eq!(dims, vec![1, 256]);
        let x = Tensor::from_fn(&dims, |i| (i as f32) * 0.01 - 0.3);
        let a = m.run(&x).unwrap();
        let b = m.run(&x).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(a.dims(), &[1, 10]);
    }

    #[test]
    fn tiny_mlp_batches_consistently() {
        // Batched execution must equal per-sample execution row by row —
        // the invariant the serving micro-batcher relies on.
        let (m, _) = tiny_mlp();
        let batch = Tensor::from_fn(&[4, 256], |i| ((i * 37) % 100) as f32 * 0.01 - 0.5);
        let batched = m.run(&batch).unwrap();
        for r in 0..4 {
            let one = batch.index_axis0(r).unwrap().reshape(&[1, 256]).unwrap();
            let single = m.run(&one).unwrap();
            assert_eq!(
                &batched.as_slice()[r * 10..(r + 1) * 10],
                single.as_slice(),
                "row {r} diverged between batched and single execution"
            );
        }
    }
}
