//! Look-up-table non-linear functions for integer-only transformers
//! (paper §3.2.2, Figure 4).
//!
//! Mainstream frameworks compute softmax and GELU in full float precision
//! even inside "quantized" models. Here both are integer-only:
//!
//! * [`SoftmaxLut`] — `exp` is a table indexed by the (non-positive)
//!   max-shifted score code; normalization is one integer division per
//!   element.
//! * [`GeluLut`] — a direct code→code table over the entire input grid.
//!
//! Table contents are user-customizable (size, fractional precision),
//! exactly as the paper advertises.

use t2c_tensor::Tensor;

use crate::qconfig::QuantSpec;

/// Integer softmax over the last axis via an exponential look-up table.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftmaxLut {
    /// `table[i] = round(exp(−i·in_scale)·2^frac)`.
    pub table: Vec<i32>,
    /// The score quantization scale the table was built for.
    pub in_scale: f32,
    /// Output probability grid (unsigned; scale is `1/qmax`).
    pub out_spec: QuantSpec,
    /// Fractional bits of the table entries.
    pub frac_bits: u8,
}

impl SoftmaxLut {
    /// Builds the table. `table_size` entries cover scores down to
    /// `−table_size·in_scale` below the row max; anything lower maps to the
    /// last entry (≈0).
    pub fn build(in_scale: f32, out_spec: QuantSpec, table_size: usize, frac_bits: u8) -> Self {
        let table = (0..table_size)
            .map(|i| ((-(i as f32) * in_scale).exp() * (1i64 << frac_bits) as f32).round() as i32)
            .collect();
        SoftmaxLut { table, in_scale, out_spec, frac_bits }
    }

    /// The scale of the produced probability codes.
    pub fn out_scale(&self) -> f32 {
        1.0 / self.out_spec.qmax() as f32
    }

    /// Applies the integer softmax along the last axis.
    ///
    /// # Panics
    ///
    /// Panics on rank-0 input.
    pub fn apply(&self, scores: &Tensor<i32>) -> Tensor<i32> {
        assert!(scores.rank() > 0, "softmax needs at least rank 1");
        let cols = scores.dim(scores.rank() - 1);
        let mut out = Tensor::<i32>::zeros(scores.dims());
        self.apply_into(scores.as_slice(), cols, out.as_mut_slice());
        out
    }

    /// The allocation-free core of [`SoftmaxLut::apply`]: integer softmax
    /// over rows of `cols` values from `xs` into `os`. Two passes per row
    /// — the first sums the table lookups into the denominator, the second
    /// re-looks-up each numerator and divides — so no per-row scratch is
    /// needed and the summation order (hence every bit of the result)
    /// matches the one-pass variant exactly.
    ///
    /// # Panics
    ///
    /// Panics if `xs`/`os` lengths disagree or are not multiples of `cols`.
    pub(crate) fn apply_into(&self, xs: &[i32], cols: usize, os: &mut [i32]) {
        assert_eq!(xs.len(), os.len());
        let rows = xs.len() / cols.max(1);
        assert_eq!(rows * cols.max(1), xs.len());
        let qmax = self.out_spec.qmax() as i64;
        for r in 0..rows {
            let row = &xs[r * cols..(r + 1) * cols];
            let m = *row.iter().max().expect("non-empty row");
            let mut den: i64 = 0;
            for &v in row {
                let idx = ((m - v) as usize).min(self.table.len() - 1);
                den += self.table[idx] as i64;
            }
            let den = den.max(1);
            for (j, &v) in row.iter().enumerate() {
                let idx = ((m - v) as usize).min(self.table.len() - 1);
                let num = self.table[idx] as i64;
                // round(num·qmax/den)
                os[r * cols + j] = ((num * qmax + den / 2) / den) as i32;
            }
        }
    }

    /// Bytes needed to store the table.
    pub fn size_bytes(&self) -> usize {
        self.table.len() * 4
    }

    /// Exact worst-case table error: the max over all entries of
    /// `|table[i]·2^-frac − exp(−i·in_scale)|`, in real (pre-normalization)
    /// units. Each entry is checked individually, so custom or truncated
    /// tables are measured as stored, not as ideally built.
    pub fn max_table_error(&self) -> f64 {
        let step = 1.0 / (1i64 << self.frac_bits) as f64;
        self.table
            .iter()
            .enumerate()
            .map(|(i, &t)| (t as f64 * step - (-(i as f64) * self.in_scale as f64).exp()).abs())
            .fold(0.0, f64::max)
    }
}

/// A global Lipschitz bound for the tanh-approximated GELU: `|gelu'(x)|`
/// peaks at ≈1.084 near x ≈ 1.5, so 1.2 soundly dominates it. Used to
/// amplify input error through [`GeluLut`] in the error certifier.
pub const GELU_LIPSCHITZ: f64 = 1.2;

/// Integer GELU as a direct code→code table over the input grid.
#[derive(Debug, Clone, PartialEq)]
pub struct GeluLut {
    /// `table[c − qmin] = round(gelu(c·in_scale)/out_scale)`.
    pub table: Vec<i32>,
    /// Input grid.
    pub in_spec: QuantSpec,
    /// Input scale.
    pub in_scale: f32,
    /// Output grid.
    pub out_spec: QuantSpec,
    /// Output scale.
    pub out_scale: f32,
}

impl GeluLut {
    /// Builds the table for every representable input code.
    pub fn build(in_spec: QuantSpec, in_scale: f32, out_spec: QuantSpec, out_scale: f32) -> Self {
        let table = (in_spec.qmin()..=in_spec.qmax())
            .map(|c| {
                let x = c as f32 * in_scale;
                let y = gelu(x) / out_scale.max(f32::MIN_POSITIVE);
                (y.round() as i32).clamp(out_spec.qmin(), out_spec.qmax())
            })
            .collect();
        GeluLut { table, in_spec, in_scale, out_spec, out_scale }
    }

    /// Applies the table elementwise.
    pub fn apply(&self, x: &Tensor<i32>) -> Tensor<i32> {
        x.map(|c| self.lookup(c))
    }

    /// Looks up one code — the exact per-element computation of
    /// [`GeluLut::apply`], exposed so fused-kernel epilogues can call it
    /// per output element.
    ///
    /// # Panics
    ///
    /// Panics if the table is shorter than the input grid.
    #[inline]
    pub fn lookup(&self, c: i32) -> i32 {
        let qmin = self.in_spec.qmin();
        let qmax = self.in_spec.qmax();
        self.table[(c.clamp(qmin, qmax) - qmin) as usize]
    }

    /// Bytes needed to store the table.
    pub fn size_bytes(&self) -> usize {
        self.table.len() * 4
    }

    /// Exact worst-case table error: the max over every in-grid code `c`
    /// of `|table[c − qmin]·out_scale − gelu(c·in_scale)|`, in absolute
    /// units. Covers build rounding *and* the output-grid clamp baked into
    /// the stored entries; an empty or truncated table yields infinity so
    /// the certifier reports it as uncertifiable rather than silently
    /// sound.
    pub fn max_table_error(&self) -> f64 {
        let codes = (self.in_spec.qmax() - self.in_spec.qmin() + 1) as usize;
        if self.table.len() < codes {
            return f64::INFINITY;
        }
        (self.in_spec.qmin()..=self.in_spec.qmax())
            .map(|c| {
                let ideal = gelu(c as f32 * self.in_scale) as f64;
                let got =
                    self.table[(c - self.in_spec.qmin()) as usize] as f64 * self.out_scale as f64;
                (got - ideal).abs()
            })
            .fold(0.0, f64::max)
    }
}

fn gelu(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
}

/// Integer square root (floor), used by the integer LayerNorm.
///
/// Exact for the full `i64` range: the fix-up comparisons use `checked_mul`
/// so candidates near `⌊√i64::MAX⌋` never overflow (the old `(x+1)·(x+1)`
/// probe wrapped in release / panicked in debug for `v` near `i64::MAX`).
pub fn isqrt(v: i64) -> i64 {
    if v <= 0 {
        return 0;
    }
    let mut x = (v as f64).sqrt() as i64;
    // The f64 seed can overshoot (sqrt rounds up near 2^63); walk down
    // while x² overflows or exceeds v, then walk up while (x+1)² still fits.
    while x.checked_mul(x).is_none_or(|sq| sq > v) {
        x -= 1;
    }
    while (x + 1).checked_mul(x + 1).is_some_and(|sq| sq <= v) {
        x += 1;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_lut_rows_sum_to_qmax() {
        let lut = SoftmaxLut::build(0.1, QuantSpec::unsigned(8), 256, 15);
        let scores = Tensor::from_vec(vec![10, 5, 0, -5], &[1, 4]).unwrap();
        let p = lut.apply(&scores);
        let sum: i32 = p.as_slice().iter().sum();
        // Rounding allows ±cols of slack around qmax.
        assert!((sum - 255).abs() <= 4, "sum {sum}");
        // Monotone in the score.
        assert!(p.as_slice()[0] > p.as_slice()[1]);
        assert!(p.as_slice()[1] > p.as_slice()[2]);
    }

    #[test]
    fn softmax_lut_matches_float_softmax() {
        let in_scale = 0.05;
        let lut = SoftmaxLut::build(in_scale, QuantSpec::unsigned(8), 512, 15);
        let codes = vec![40, 10, -30, 0, 25];
        let scores = Tensor::from_vec(codes.clone(), &[1, 5]).unwrap();
        let p = lut.apply(&scores);
        let float: Tensor<f32> =
            Tensor::from_vec(codes.iter().map(|&c| c as f32 * in_scale).collect(), &[1, 5])
                .unwrap()
                .softmax_lastdim()
                .unwrap();
        for (q, f) in p.as_slice().iter().zip(float.as_slice()) {
            assert!((*q as f32 / 255.0 - f).abs() < 0.01, "{q} vs {f}");
        }
    }

    #[test]
    fn gelu_lut_matches_float_gelu() {
        let in_spec = QuantSpec::signed(8);
        let in_scale = 0.05;
        let out_scale = 0.05;
        let lut = GeluLut::build(in_spec, in_scale, QuantSpec::signed(8), out_scale);
        for code in [-100i32, -20, -3, 0, 3, 20, 100] {
            let x = Tensor::from_vec(vec![code], &[1]).unwrap();
            let y = lut.apply(&x).as_slice()[0] as f32 * out_scale;
            let f = gelu(code as f32 * in_scale);
            assert!((y - f).abs() <= out_scale, "code {code}: {y} vs {f}");
        }
    }

    #[test]
    fn gelu_lut_clamps_out_of_range_codes() {
        let lut = GeluLut::build(QuantSpec::signed(4), 0.5, QuantSpec::signed(8), 0.05);
        let x = Tensor::from_vec(vec![100, -100], &[2]).unwrap();
        let y = lut.apply(&x);
        // Grid is [−8, 7]: the last entry is code 7, the first is code −8.
        assert_eq!(y.as_slice()[0], lut.table[(7 + 8) as usize]);
        assert_eq!(y.as_slice()[1], lut.table[0]);
    }

    #[test]
    fn softmax_table_error_is_small_for_a_well_built_table() {
        let lut = SoftmaxLut::build(0.1, QuantSpec::unsigned(8), 256, 15);
        let err = lut.max_table_error();
        // Build rounding is at most half a table ulp.
        assert!(err <= 0.5 / (1 << 15) as f64 + 1e-12, "err {err}");
        // Corrupting one entry is measured exactly.
        let mut bad = lut.clone();
        bad.table[3] += 1 << 14;
        assert!(bad.max_table_error() >= 0.49, "err {}", bad.max_table_error());
    }

    #[test]
    fn gelu_table_error_covers_build_rounding_and_truncation() {
        let lut = GeluLut::build(QuantSpec::signed(8), 0.05, QuantSpec::signed(8), 0.05);
        let err = lut.max_table_error();
        assert!(err.is_finite());
        // Build rounding is at most half an output step (clamp only binds
        // off-grid, where it can add more; this table fits its grid).
        assert!(err <= 0.5 * 0.05 + 1e-6, "err {err}");
        let mut truncated = lut;
        truncated.table.truncate(10);
        assert!(truncated.max_table_error().is_infinite());
    }

    #[test]
    fn gelu_lipschitz_constant_dominates_the_sampled_derivative() {
        // Finite-difference |gelu'| over a dense sweep must stay under the
        // published constant the error certifier amplifies with.
        let h = 1e-3f32;
        let mut worst = 0.0f64;
        for i in -8000..8000 {
            let x = i as f32 * 1e-3;
            let d = ((gelu(x + h) - gelu(x - h)) / (2.0 * h)).abs() as f64;
            worst = worst.max(d);
        }
        assert!(worst < GELU_LIPSCHITZ, "sampled max |gelu'| = {worst}");
    }

    #[test]
    fn isqrt_exact_floors() {
        for v in [0i64, 1, 2, 3, 4, 15, 16, 17, 99, 100, 1_000_000, 999_999_999_999] {
            let r = isqrt(v);
            assert!(r * r <= v && (r + 1) * (r + 1) > v, "isqrt({v}) = {r}");
        }
    }

    #[test]
    fn isqrt_survives_the_top_of_the_i64_range() {
        // ⌊√(2^63 − 1)⌋ = 3037000499. The pre-fix probe computed
        // (x+1)·(x+1) without overflow checks and wrapped/panicked here.
        const ROOT_MAX: i64 = 3_037_000_499;
        assert_eq!(isqrt(i64::MAX), ROOT_MAX);
        assert_eq!(isqrt(i64::MAX - 1), ROOT_MAX);
        // Perfect squares at the boundary, and one below each.
        assert_eq!(isqrt(ROOT_MAX * ROOT_MAX), ROOT_MAX);
        assert_eq!(isqrt(ROOT_MAX * ROOT_MAX - 1), ROOT_MAX - 1);
        let near = ROOT_MAX - 7;
        assert_eq!(isqrt(near * near), near);
        // Floor property checked with overflow-safe math.
        for v in [i64::MAX, i64::MAX - 1, ROOT_MAX * ROOT_MAX] {
            let r = isqrt(v);
            assert!(r.checked_mul(r).is_some_and(|sq| sq <= v));
            assert!((r + 1).checked_mul(r + 1).is_none_or(|sq| sq > v));
        }
    }
}
