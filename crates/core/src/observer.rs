//! Range observers for activation calibration.
//!
//! During PTQ calibration (and during QAT warm-up) the toolkit streams
//! activations through an [`Observer`], which tracks the numeric range that
//! the activation quantizer's scale is then derived from.

use t2c_tensor::Tensor;

/// Which observer an activation quantizer uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObserverKind {
    /// Running min/max over everything observed.
    MinMax,
    /// Exponential moving average of per-batch min/max — robust to
    /// outlier batches; the default.
    Ema {
        /// EMA momentum toward the history (0.95 keeps 95% of history).
        momentum: f32,
    },
    /// Per-batch percentile of |x| with an EMA across batches — clips rare
    /// outliers entirely.
    Percentile {
        /// Fraction of mass to keep, e.g. 0.999.
        fraction: f32,
    },
}

/// Streaming range statistics.
#[derive(Debug, Clone)]
pub struct Observer {
    kind: ObserverKind,
    min: f32,
    max: f32,
    batches: usize,
}

impl Observer {
    /// Creates an empty observer.
    pub fn new(kind: ObserverKind) -> Self {
        Observer { kind, min: 0.0, max: 0.0, batches: 0 }
    }

    /// The observer variant.
    pub fn kind(&self) -> ObserverKind {
        self.kind
    }

    /// Number of batches observed so far.
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// `true` once at least one batch has been observed.
    pub fn is_calibrated(&self) -> bool {
        self.batches > 0
    }

    /// Feeds one activation tensor.
    pub fn observe(&mut self, x: &Tensor<f32>) {
        if x.numel() == 0 {
            return;
        }
        let (bmin, bmax) = match self.kind {
            ObserverKind::MinMax | ObserverKind::Ema { .. } => (x.min_value(), x.max_value()),
            ObserverKind::Percentile { fraction } => percentile_range(x, fraction),
        };
        if self.batches == 0 {
            (self.min, self.max) = (bmin, bmax);
        } else {
            match self.kind {
                ObserverKind::MinMax => {
                    self.min = self.min.min(bmin);
                    self.max = self.max.max(bmax);
                }
                ObserverKind::Ema { momentum } => {
                    self.min = momentum * self.min + (1.0 - momentum) * bmin;
                    self.max = momentum * self.max + (1.0 - momentum) * bmax;
                }
                ObserverKind::Percentile { .. } => {
                    // Percentile batches are EMA-combined with a fixed 0.9.
                    self.min = 0.9 * self.min + 0.1 * bmin;
                    self.max = 0.9 * self.max + 0.1 * bmax;
                }
            }
        }
        self.batches += 1;
    }

    /// Observed minimum.
    pub fn min(&self) -> f32 {
        self.min
    }

    /// Observed maximum.
    pub fn max(&self) -> f32 {
        self.max
    }

    /// Largest observed magnitude (symmetric range).
    pub fn abs_max(&self) -> f32 {
        self.min.abs().max(self.max.abs())
    }

    /// Resets to the uncalibrated state.
    pub fn reset(&mut self) {
        self.min = 0.0;
        self.max = 0.0;
        self.batches = 0;
    }
}

/// The range keeping `fraction` of |x| mass, clamped to the observed sign
/// structure: an all-positive tensor reports `(0, p)`, an all-negative one
/// `(−p, 0)`, and a mixed one `(−p, p)`. Reporting a sign the data never
/// takes would waste that half of the quantization grid.
fn percentile_range(x: &Tensor<f32>, fraction: f32) -> (f32, f32) {
    let mut mags: Vec<f32> = x.as_slice().iter().map(|v| v.abs()).collect();
    mags.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    // Ceil-based rank: the smallest magnitude m such that at least
    // `fraction` of the mass is ≤ m. Truncation picked the (rank+1)-th
    // order statistic for exact-multiple lengths.
    let len = mags.len();
    let rank = (len as f64 * fraction as f64).ceil() as usize;
    let idx = rank.saturating_sub(1).min(len - 1);
    let p = mags[idx];
    let has_neg = x.min_value() < 0.0;
    let has_pos = x.max_value() > 0.0;
    (if has_neg { -p } else { 0.0 }, if has_pos { p } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minmax_tracks_extremes_across_batches() {
        let mut obs = Observer::new(ObserverKind::MinMax);
        obs.observe(&Tensor::from_vec(vec![-1.0, 2.0], &[2]).unwrap());
        obs.observe(&Tensor::from_vec(vec![-5.0, 1.0], &[2]).unwrap());
        assert_eq!(obs.min(), -5.0);
        assert_eq!(obs.max(), 2.0);
        assert_eq!(obs.abs_max(), 5.0);
    }

    #[test]
    fn ema_smooths_outlier_batch() {
        let mut obs = Observer::new(ObserverKind::Ema { momentum: 0.9 });
        obs.observe(&Tensor::from_vec(vec![0.0, 1.0], &[2]).unwrap());
        obs.observe(&Tensor::from_vec(vec![0.0, 100.0], &[2]).unwrap());
        // One outlier batch only moves the EMA by 10%.
        assert!(obs.max() < 15.0, "max {}", obs.max());
        assert!(obs.max() > 1.0);
    }

    #[test]
    fn percentile_clips_tail() {
        let mut data = vec![1.0f32; 999];
        data.push(1000.0);
        let mut obs = Observer::new(ObserverKind::Percentile { fraction: 0.99 });
        obs.observe(&Tensor::from_vec(data, &[1000]).unwrap());
        assert!(obs.max() < 10.0, "max {}", obs.max());
    }

    #[test]
    fn percentile_all_negative_reports_no_positive_range() {
        // Pre-fix, the range was forced symmetric to (−p, p), so an
        // all-negative activation reported a max no value ever reaches.
        let data: Vec<f32> = (1..=100).map(|i| -(i as f32)).collect();
        let mut obs = Observer::new(ObserverKind::Percentile { fraction: 0.95 });
        obs.observe(&Tensor::from_vec(data, &[100]).unwrap());
        assert_eq!(obs.max(), 0.0, "no positive values were observed");
        assert!((obs.min() - -95.0).abs() < 1e-6, "min {}", obs.min());
    }

    #[test]
    fn percentile_all_positive_keeps_zero_min() {
        let data: Vec<f32> = (1..=100).map(|i| i as f32).collect();
        let mut obs = Observer::new(ObserverKind::Percentile { fraction: 0.95 });
        obs.observe(&Tensor::from_vec(data, &[100]).unwrap());
        assert_eq!(obs.min(), 0.0);
        // Ceil-based rank: 95% of 100 values → the 95th order statistic,
        // not the 96th the truncating index selected.
        assert!((obs.max() - 95.0).abs() < 1e-6, "max {}", obs.max());
    }

    #[test]
    fn percentile_mixed_signs_stays_symmetric() {
        let mut data: Vec<f32> = (1..=50).map(|i| i as f32).collect();
        data.extend((1..=50).map(|i| -(i as f32)));
        let mut obs = Observer::new(ObserverKind::Percentile { fraction: 1.0 });
        obs.observe(&Tensor::from_vec(data, &[100]).unwrap());
        assert!((obs.min() - -50.0).abs() < 1e-6);
        assert!((obs.max() - 50.0).abs() < 1e-6);
    }

    #[test]
    fn reset_clears_state() {
        let mut obs = Observer::new(ObserverKind::MinMax);
        obs.observe(&Tensor::ones(&[4]));
        assert!(obs.is_calibrated());
        obs.reset();
        assert!(!obs.is_calibrated());
        assert_eq!(obs.batches(), 0);
    }

    #[test]
    fn empty_tensor_is_ignored() {
        let mut obs = Observer::new(ObserverKind::MinMax);
        obs.observe(&Tensor::zeros(&[0]));
        assert!(!obs.is_calibrated());
    }
}
