//! Fixed-point arithmetic for the MulQuant requantizer.
//!
//! Floating-point rescale factors (`S_w·S_x/S_y`, fused normalization
//! scales, bias terms) are quantized to `INT(int_bits, frac_bits)`
//! fixed-point integers — the "Scale and Bias (INT, Frac)" column of the
//! paper's tables (e.g. INT16 with 4 integer and 12 fractional bits).

use std::fmt;

/// A fixed-point number format with `int_bits` integer bits (including
/// sign) and `frac_bits` fractional bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FixedPointFormat {
    /// Integer bits, sign included.
    pub int_bits: u8,
    /// Fractional bits.
    pub frac_bits: u8,
}

impl FixedPointFormat {
    /// The paper's default: 16-bit total with 4 integer and 12 fractional
    /// bits — rendered `INT(4, 12)` in `(INT, Frac)` order.
    pub fn int16_frac12() -> Self {
        FixedPointFormat { int_bits: 4, frac_bits: 12 }
    }

    /// 16-bit total with 3 fractional and 13 integer bits (Table 2's
    /// "INT (13, 3)" rows).
    pub fn int16_frac3() -> Self {
        FixedPointFormat { int_bits: 13, frac_bits: 3 }
    }

    /// Total bit width.
    pub fn total_bits(&self) -> u8 {
        self.int_bits + self.frac_bits
    }

    /// Picks the format whose fractional width places `max_abs`'s leading
    /// bit just under the top of a `word_bits`-wide mantissa — the
    /// mantissa+shift normalization real requantizers use. The shift
    /// (`frac_bits`) may exceed the word width when the factor is far
    /// below 1; every value bounded by `max_abs` is then guaranteed to fit
    /// the mantissa word.
    pub fn auto(word_bits: u8, max_abs: f32) -> Self {
        let word = word_bits.max(2) as i32;
        if max_abs <= 0.0 {
            return FixedPointFormat { int_bits: 1, frac_bits: (word - 1).min(30) as u8 };
        }
        let msb = max_abs.log2().floor() as i32; // max_abs ∈ [2^msb, 2^(msb+1))
        let frac = (word - 2 - msb).clamp(0, 30);
        let int_bits = (word - frac).max(0) as u8;
        FixedPointFormat { int_bits, frac_bits: frac as u8 }
    }

    /// Largest representable value.
    pub fn max_value(&self) -> f32 {
        let raw_max = (1i64 << (self.total_bits() - 1)) - 1;
        raw_max as f32 / (1i64 << self.frac_bits) as f32
    }

    /// Raw integer bounds `(min, max)` of this format's representable
    /// range — range metadata for static verification.
    pub fn raw_bounds(&self) -> (i64, i64) {
        let width = self.total_bits().clamp(2, 31);
        (-(1i64 << (width - 1)), (1i64 << (width - 1)) - 1)
    }

    /// The resolution of this format as a real number: one raw ulp,
    /// `2^-frac_bits`. Quantizing any in-range real to this format is off
    /// by at most half of this.
    pub fn step(&self) -> f64 {
        1.0 / (1i64 << self.frac_bits) as f64
    }

    /// Quantizes a float to this format, saturating at the representable
    /// range (for shift-normalized formats with `int_bits == 0`, the raw
    /// magnitude bound is the fractional word itself; values are expected
    /// to be pre-bounded by the `auto` constructor's `max_abs`).
    pub fn quantize(&self, value: f32) -> FixedScalar {
        let scale = (1i64 << self.frac_bits) as f32;
        let width = self.total_bits().clamp(2, 31);
        let raw_max = (1i64 << (width - 1)) - 1;
        let raw_min = -(1i64 << (width - 1));
        let raw = (value * scale).round() as i64;
        FixedScalar { raw: raw.clamp(raw_min, raw_max) as i32, format: *self }
    }
}

impl Default for FixedPointFormat {
    fn default() -> Self {
        FixedPointFormat::int16_frac12()
    }
}

impl fmt::Display for FixedPointFormat {
    /// Renders as `INT(int_bits, frac_bits)` — the field order of the
    /// struct, the constructors' docs, and the paper's "Scale and Bias
    /// (INT, Frac)" table column.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "INT({}, {})", self.int_bits, self.frac_bits)
    }
}

/// One fixed-point value: a raw integer plus its format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FixedScalar {
    /// Raw integer representation (`value·2^frac` rounded).
    pub raw: i32,
    /// The format the raw value is expressed in.
    pub format: FixedPointFormat,
}

impl FixedScalar {
    /// Quantizes `value` with an automatically chosen fractional width at
    /// the given total bit budget.
    pub fn auto(value: f32, total_bits: u8) -> Self {
        FixedPointFormat::auto(total_bits, value.abs()).quantize(value)
    }

    /// The represented value as a float.
    pub fn to_f32(self) -> f32 {
        self.raw as f32 / (1i64 << self.format.frac_bits) as f32
    }

    /// Multiplies an integer accumulator by this fixed-point factor and
    /// shifts back down with round-half-up — the core MulQuant operation,
    /// expressible in hardware as one multiply and one arithmetic shift.
    pub fn mul_shift(self, acc: i64) -> i64 {
        round_shift(acc * self.raw as i64, self.format.frac_bits)
    }

    /// Image of the closed interval `[lo, hi]` under [`FixedScalar::
    /// mul_shift`], exactly as the hardware datapath computes it.
    /// `mul_shift` is monotone in `acc` for non-negative multipliers and
    /// antitone for negative ones, so the endpoint images bound the image
    /// of every interior point — the soundness argument `t2c-lint`'s
    /// interval dataflow rests on.
    pub fn map_range(self, lo: i64, hi: i64) -> (i64, i64) {
        let a = self.mul_shift(lo);
        let b = self.mul_shift(hi);
        (a.min(b), a.max(b))
    }

    /// `|represented value|` as a real number.
    pub fn magnitude(self) -> f64 {
        (self.raw as f64 / (1i64 << self.format.frac_bits) as f64).abs()
    }

    /// Sound bound on `|mul_shift(acc) − acc*·m*|`: the divergence between
    /// the integer multiply/shift applied to an accumulator `acc` and the
    /// exact real product of a reference accumulator `acc*` with a
    /// reference multiplier `m*`, where `|acc − acc*| ≤ acc_err`,
    /// `|acc| ≤ acc_abs`, and `m*` is any real within half a raw ulp of
    /// the stored value (the family every fixed-point word stands for).
    ///
    /// Terms: round-half-up shift rounding (½), the input error amplified
    /// by the stored magnitude, and the multiplier's own half-ulp
    /// amplified by the reference magnitude. Used by `t2c-lint`'s
    /// quantization-error certifier.
    pub fn mul_shift_error_bound(self, acc_abs: f64, acc_err: f64) -> f64 {
        0.5 + self.magnitude() * acc_err + 0.5 * self.format.step() * (acc_abs + acc_err)
    }
}

/// Arithmetic right shift by `bits` with round-half-up
/// (`⌊(v + 2^(bits−1)) / 2^bits⌋`), matching a hardware rounding adder.
pub fn round_shift(v: i64, bits: u8) -> i64 {
    if bits == 0 {
        return v;
    }
    (v + (1i64 << (bits - 1))) >> bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_round_trips_representable_values() {
        let f = FixedPointFormat::int16_frac12();
        for v in [0.0f32, 1.0, -1.0, 0.5, 3.25, -2.75] {
            assert_eq!(f.quantize(v).to_f32(), v, "value {v}");
        }
    }

    #[test]
    fn quantize_saturates() {
        let f = FixedPointFormat::int16_frac12();
        // Max ≈ 2^3 = 8 − ulp with 4 integer bits.
        let q = f.quantize(1000.0);
        assert!((q.to_f32() - f.max_value()).abs() < 1e-3);
        let qn = f.quantize(-1000.0);
        assert!(qn.to_f32() <= -f.max_value());
    }

    #[test]
    fn quantization_error_bounded_by_half_ulp() {
        let f = FixedPointFormat::int16_frac12();
        let ulp = 1.0 / (1 << 12) as f32;
        for i in 0..100 {
            let v = (i as f32) * 0.013 - 0.65;
            let err = (f.quantize(v).to_f32() - v).abs();
            assert!(err <= ulp / 2.0 + 1e-7, "value {v} err {err}");
        }
    }

    #[test]
    fn round_shift_half_up() {
        assert_eq!(round_shift(5, 1), 3); // 2.5 → 3
        assert_eq!(round_shift(4, 1), 2);
        assert_eq!(round_shift(-5, 1), -2); // −2.5 → −2 (half-up)
        assert_eq!(round_shift(7, 2), 2); // 1.75 → 2
        assert_eq!(round_shift(100, 0), 100);
    }

    #[test]
    fn mul_shift_approximates_float_multiply() {
        let f = FixedPointFormat::int16_frac12();
        let m = f.quantize(0.1234);
        for acc in [-5000i64, -17, 0, 3, 999, 123456] {
            let exact = acc as f32 * 0.1234;
            let fixed = m.mul_shift(acc) as f32;
            assert!(
                (exact - fixed).abs() <= exact.abs() * 1e-3 + 1.0,
                "acc {acc}: {exact} vs {fixed}"
            );
        }
    }

    #[test]
    fn mul_shift_error_bound_dominates_observed_divergence() {
        // The bound must cover |mul_shift(acc) − acc·m| for the stored
        // multiplier itself (acc_err = 0, the center of the half-ulp
        // family) at every probed accumulator.
        let m = FixedPointFormat::int16_frac12().quantize(0.3217);
        for acc in [-40000i64, -3, 0, 7, 12345, 99999] {
            let exact = acc as f64 * m.raw as f64 / 4096.0;
            let observed = (m.mul_shift(acc) as f64 - exact).abs();
            let bound = m.mul_shift_error_bound(acc.unsigned_abs() as f64, 0.0);
            assert!(observed <= bound, "acc {acc}: observed {observed} > bound {bound}");
        }
    }

    #[test]
    fn display_matches_field_order() {
        // (INT, Frac) order: integer bits first, matching the struct
        // fields and constructor docs.
        assert_eq!(FixedPointFormat::int16_frac12().to_string(), "INT(4, 12)");
        assert_eq!(FixedPointFormat::int16_frac3().to_string(), "INT(13, 3)");
        let f = FixedPointFormat { int_bits: 7, frac_bits: 2 };
        assert_eq!(f.to_string(), format!("INT({}, {})", f.int_bits, f.frac_bits));
    }
}
