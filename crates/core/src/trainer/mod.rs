//! Trainers — the paper's `TRAINER[user_select]` registry (§3.3–3.4).
//!
//! * [`FpTrainer`] — plain supervised training of the float model (the
//!   baseline every table's Δ-accuracy is measured against).
//! * [`QatTrainer`] — quantization-aware training on the Dual-Path
//!   training route, with an optional PROFIT-style progressive-freezing
//!   phase for sub-4-bit models.
//! * [`PtqPipeline`] — post-training quantization: observer calibration
//!   plus optional AdaRound / QDrop layer-wise reconstruction.
//!
//! The self-supervised trainer lives in the `t2c-ssl` crate and plugs into
//! the same models.

mod ptq;
mod qat;

pub use ptq::{PtqMethod, PtqPipeline};
pub use qat::{FpTrainer, QatTrainer, TrainConfig, TrainHistory};

use t2c_autograd::Graph;
use t2c_data::{BatchIter, SynthVision};
use t2c_nn::Module;

use crate::{IntModel, Result};

/// Top-1 accuracy of a module on a dataset's test split (the module's
/// current path/mode is respected — call `set_path` first).
///
/// # Errors
///
/// Returns an error on a malformed model.
pub fn evaluate(model: &dyn Module, data: &SynthVision, batch: usize) -> Result<f32> {
    model.set_training(false);
    let mut correct = 0usize;
    let mut total = 0usize;
    for (images, labels) in BatchIter::test(data, batch) {
        let g = Graph::new();
        let logits = model.forward(&g.leaf(images))?;
        let preds = logits.value().argmax_rows()?;
        correct += preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
        total += labels.len();
    }
    model.set_training(true);
    Ok(correct as f32 / total.max(1) as f32)
}

/// Top-1 accuracy of an extracted integer-only model on the test split —
/// the number the paper's tables report.
///
/// # Errors
///
/// Returns an error on a malformed integer graph.
pub fn evaluate_int(model: &IntModel, data: &SynthVision, batch: usize) -> Result<f32> {
    let mut correct = 0usize;
    let mut total = 0usize;
    for (images, labels) in BatchIter::test(data, batch) {
        let preds = model.predict(&images)?;
        correct += preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
        total += labels.len();
    }
    Ok(correct as f32 / total.max(1) as f32)
}
