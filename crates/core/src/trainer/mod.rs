//! Trainers — the paper's `TRAINER[user_select]` registry (§3.3–3.4).
//!
//! * [`FpTrainer`] — plain supervised training of the float model (the
//!   baseline every table's Δ-accuracy is measured against).
//! * [`QatTrainer`] — quantization-aware training on the Dual-Path
//!   training route, with an optional PROFIT-style progressive-freezing
//!   phase for sub-4-bit models.
//! * [`PtqPipeline`] — post-training quantization: observer calibration
//!   plus optional AdaRound / QDrop layer-wise reconstruction.
//!
//! The self-supervised trainer lives in the `t2c-ssl` crate and plugs into
//! the same models.

mod ptq;
mod qat;

pub use ptq::{PtqMethod, PtqPipeline};
pub use qat::{FpTrainer, QatTrainer, TrainConfig, TrainHistory};

use t2c_autograd::Graph;
use t2c_data::{BatchIter, SynthVision};
use t2c_nn::Module;

use crate::{IntModel, Result};

/// Top-1 accuracy of a module on a dataset's test split (the module's
/// current path/mode is respected — call `set_path` first).
///
/// # Errors
///
/// Returns an error on a malformed model.
pub fn evaluate(model: &dyn Module, data: &SynthVision, batch: usize) -> Result<f32> {
    model.set_training(false);
    let mut correct = 0usize;
    let mut total = 0usize;
    for (images, labels) in BatchIter::test(data, batch) {
        let g = Graph::new();
        let logits = model.forward(&g.leaf(images))?;
        let preds = logits.value().argmax_rows()?;
        correct += preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
        total += labels.len();
    }
    model.set_training(true);
    Ok(correct as f32 / total.max(1) as f32)
}

/// Top-1 accuracy of an extracted integer-only model on the test split —
/// the number the paper's tables report.
///
/// # Errors
///
/// Returns an error on a malformed integer graph.
pub fn evaluate_int(model: &IntModel, data: &SynthVision, batch: usize) -> Result<f32> {
    let mut correct = 0usize;
    let mut total = 0usize;
    for (images, labels) in BatchIter::test(data, batch) {
        let preds = model.predict(&images)?;
        correct += preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
        total += labels.len();
    }
    Ok(correct as f32 / total.max(1) as f32)
}

/// Divergence between the fake-quant training path and the deployed
/// integer path on one batch: `(max, mean)` absolute gap between the two
/// logit sets after normalizing each row by its max-abs (the scale-free
/// comparison Figure 3 reports).
///
/// When profiling is enabled the result is also published as the
/// `dualpath.max_err` / `dualpath.mean_err` gauges.
///
/// # Errors
///
/// Returns an error if either path fails or the two logit shapes differ.
pub fn dual_path_divergence(
    model: &dyn Module,
    chip: &IntModel,
    images: &t2c_tensor::Tensor<f32>,
) -> Result<(f32, f32)> {
    let g = Graph::new();
    let fake_logits = model.forward(&g.leaf(images.clone()))?.tensor();
    let int_logits = chip.run(images)?.to_f32();
    if fake_logits.dims() != int_logits.dims() || fake_logits.rank() != 2 {
        return Err(t2c_tensor::TensorError::ShapeMismatch {
            lhs: fake_logits.dims().to_vec(),
            rhs: int_logits.dims().to_vec(),
            op: "dual_path_divergence",
        });
    }
    let rows = fake_logits.dim(0);
    let cols = fake_logits.dim(1);
    let mut max_err = 0.0f32;
    let mut err_sum = 0.0f64;
    for r in 0..rows {
        let f = &fake_logits.as_slice()[r * cols..(r + 1) * cols];
        let q = &int_logits.as_slice()[r * cols..(r + 1) * cols];
        let fm = f.iter().fold(1e-6f32, |m, v| m.max(v.abs()));
        let qm = q.iter().fold(1e-6f32, |m, v| m.max(v.abs()));
        for (a, b) in f.iter().zip(q) {
            let e = (a / fm - b / qm).abs();
            max_err = max_err.max(e);
            err_sum += e as f64;
        }
    }
    let mean_err = (err_sum / (rows * cols).max(1) as f64) as f32;
    if t2c_obs::enabled() {
        t2c_obs::gauge_set("dualpath.max_err", max_err as f64);
        t2c_obs::gauge_set("dualpath.mean_err", mean_err as f64);
    }
    Ok((max_err, mean_err))
}
