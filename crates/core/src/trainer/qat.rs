//! Supervised trainers: float baseline and quantization-aware training.

use t2c_autograd::Graph;
use t2c_data::{Augment, AugmentConfig, BatchIter, SynthVision};
use t2c_nn::Module;
use t2c_optim::{clip_grad_norm, CosineSchedule, LrSchedule, Optimizer, Sgd};

use crate::qlayers::PathMode;
use crate::qmodels::QuantModel;
use crate::trainer::evaluate;
use crate::Result;

/// Hyperparameters shared by the supervised trainers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Batch size.
    pub batch: usize,
    /// Peak learning rate (cosine-annealed to 0).
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Gradient-norm clip (0 disables).
    pub grad_clip: f32,
    /// RNG seed (shuffling, augmentation).
    pub seed: u64,
    /// Batches run in `Calibrate` mode before QAT flips to the quantized
    /// path.
    pub calibration_batches: usize,
    /// Augmentation worker threads for the FP trainer (0 = inline). The
    /// parallel loader is deterministic: outputs are identical to the
    /// inline path regardless of worker count.
    pub loader_workers: usize,
}

impl TrainConfig {
    /// A quick-but-meaningful recipe for the synthetic datasets.
    pub fn quick(epochs: usize) -> Self {
        TrainConfig {
            epochs,
            batch: 32,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 5e-4,
            grad_clip: 5.0,
            seed: 42,
            calibration_batches: 4,
            loader_workers: 0,
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, Default)]
pub struct TrainHistory {
    /// Mean training loss per epoch.
    pub losses: Vec<f32>,
    /// Test accuracy per epoch.
    pub accs: Vec<f32>,
}

impl TrainHistory {
    /// The last recorded accuracy (0 if untrained).
    pub fn final_acc(&self) -> f32 {
        self.accs.last().copied().unwrap_or(0.0)
    }

    /// The best recorded accuracy.
    pub fn best_acc(&self) -> f32 {
        self.accs.iter().copied().fold(0.0, f32::max)
    }
}

/// Clips gradients when `max_norm > 0` and returns the pre-clip global norm.
///
/// With clipping disabled the norm is still measured when profiling is on
/// (one extra pass over the gradients); the unprofiled path stays unchanged.
fn measured_clip(params: &[t2c_autograd::Param], max_norm: f32) -> f32 {
    if max_norm > 0.0 {
        clip_grad_norm(params, max_norm)
    } else if t2c_obs::enabled() {
        clip_grad_norm(params, f32::INFINITY)
    } else {
        0.0
    }
}

/// Publishes the per-epoch profile series (`train.*`) when profiling is on.
fn record_epoch(history: &TrainHistory, mean_grad_norm: f32, epoch_start: std::time::Instant) {
    if !t2c_obs::enabled() {
        return;
    }
    if let Some(&loss) = history.losses.last() {
        t2c_obs::series_push("train.loss", loss as f64);
    }
    if let Some(&acc) = history.accs.last() {
        t2c_obs::series_push("train.acc", acc as f64);
    }
    t2c_obs::series_push("train.grad_norm", mean_grad_norm as f64);
    t2c_obs::series_push("train.epoch_ms", epoch_start.elapsed().as_secs_f64() * 1e3);
}

/// Plain supervised training of a float model — the FP baseline.
#[derive(Debug, Clone, Copy)]
pub struct FpTrainer {
    /// Hyperparameters.
    pub config: TrainConfig,
}

impl FpTrainer {
    /// Creates the trainer.
    pub fn new(config: TrainConfig) -> Self {
        FpTrainer { config }
    }

    /// Trains `model` on `data` and returns the history.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatches inside the model.
    pub fn fit(&self, model: &dyn Module, data: &SynthVision) -> Result<TrainHistory> {
        let cfg = self.config;
        let params = model.params();
        let mut opt =
            Sgd::new(params.clone(), cfg.lr).momentum(cfg.momentum).weight_decay(cfg.weight_decay);
        let schedule = CosineSchedule { base_lr: cfg.lr, min_lr: cfg.lr * 0.01, total: cfg.epochs };
        let mut history = TrainHistory::default();
        let mut augment = Augment::new(AugmentConfig::standard(), cfg.seed);
        model.set_training(true);
        for epoch in 0..cfg.epochs {
            let epoch_start = std::time::Instant::now();
            opt.set_lr(schedule.lr_at(epoch));
            let mut loss_sum = 0.0;
            let mut batches = 0;
            let mut grad_norm_sum = 0.0f32;
            let mut step = |images: t2c_tensor::Tensor<f32>, labels: &[usize]| -> Result<f32> {
                let g = Graph::new();
                let logits = model.forward(&g.leaf(images))?;
                let loss = logits.cross_entropy_logits(labels)?;
                opt.zero_grad();
                loss.backward()?;
                grad_norm_sum += measured_clip(&params, cfg.grad_clip);
                opt.step();
                Ok(loss.tensor().item())
            };
            if cfg.loader_workers > 0 {
                // Augmentation prepared on worker threads (deterministic).
                let loader = t2c_data::ParallelLoader::prepare(
                    data,
                    cfg.batch,
                    AugmentConfig::standard(),
                    cfg.seed + epoch as u64,
                    cfg.loader_workers,
                );
                for (images, labels) in loader.iter() {
                    loss_sum += step(images.clone(), labels)?;
                    batches += 1;
                }
            } else {
                for (images, labels) in BatchIter::train(data, cfg.batch, cfg.seed + epoch as u64) {
                    let images = augment.apply_batch(&images);
                    loss_sum += step(images, &labels)?;
                    batches += 1;
                }
            }
            history.losses.push(loss_sum / batches.max(1) as f32);
            history.accs.push(evaluate(model, data, cfg.batch)?);
            record_epoch(&history, grad_norm_sum / batches.max(1) as f32, epoch_start);
        }
        Ok(history)
    }
}

/// Quantization-aware training over the Dual-Path training route.
///
/// The first `calibration_batches` batches run on the `Calibrate` path to
/// seed observers and clipping thresholds; training then proceeds on the
/// fake-quantized path, with quantizer parameters (PACT α, RCF α, LSQ
/// steps, …) optimized jointly with the weights.
#[derive(Debug, Clone, Copy)]
pub struct QatTrainer {
    /// Hyperparameters.
    pub config: TrainConfig,
    /// Enables PROFIT-style progressive freezing for the last third of
    /// training (paper Table 2's sub-4-bit MobileNet recipe).
    pub profit: bool,
}

impl QatTrainer {
    /// Creates the trainer.
    pub fn new(config: TrainConfig) -> Self {
        QatTrainer { config, profit: false }
    }

    /// Enables the PROFIT progressive-freezing phase.
    #[must_use]
    pub fn with_profit(mut self) -> Self {
        self.profit = true;
        self
    }

    /// Runs QAT on a quantized twin.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatches inside the model.
    pub fn fit<M: QuantModel>(&self, model: &M, data: &SynthVision) -> Result<TrainHistory> {
        let cfg = self.config;
        let mut params = model.params();
        params.extend(model.quant_trainables());
        let mut opt =
            Sgd::new(params.clone(), cfg.lr).momentum(cfg.momentum).weight_decay(cfg.weight_decay);
        let schedule = CosineSchedule { base_lr: cfg.lr, min_lr: cfg.lr * 0.01, total: cfg.epochs };
        let mut history = TrainHistory::default();
        let mut augment = Augment::new(AugmentConfig::standard(), cfg.seed);
        model.set_training(true);
        // --- Calibration warm-up -----------------------------------------
        model.set_path(PathMode::Calibrate);
        let mut seen = 0usize;
        for (images, labels) in BatchIter::train(data, cfg.batch, cfg.seed) {
            let g = Graph::new();
            let _ = model.forward(&g.leaf(images))?;
            let _ = labels;
            seen += 1;
            if seen >= cfg.calibration_batches {
                break;
            }
        }
        model.set_path(PathMode::Quant);
        // --- Main QAT loop -------------------------------------------------
        let freeze_start =
            if self.profit { cfg.epochs.saturating_sub(cfg.epochs / 3) } else { usize::MAX };
        for epoch in 0..cfg.epochs {
            if epoch == freeze_start {
                self.profit_freeze(model)?;
            }
            opt.set_lr(schedule.lr_at(epoch));
            let epoch_start = std::time::Instant::now();
            let mut loss_sum = 0.0;
            let mut batches = 0;
            let mut grad_norm_sum = 0.0f32;
            for (images, labels) in BatchIter::train(data, cfg.batch, cfg.seed + 1 + epoch as u64) {
                let images = augment.apply_batch(&images);
                let g = Graph::new();
                let logits = model.forward(&g.leaf(images))?;
                let loss = logits.cross_entropy_logits(&labels)?;
                opt.zero_grad();
                loss.backward()?;
                grad_norm_sum += measured_clip(&params, cfg.grad_clip);
                opt.step();
                loss_sum += loss.tensor().item();
                batches += 1;
            }
            history.losses.push(loss_sum / batches.max(1) as f32);
            history.accs.push(evaluate(model, data, cfg.batch)?);
            record_epoch(&history, grad_norm_sum / batches.max(1) as f32, epoch_start);
        }
        Ok(history)
    }

    /// PROFIT: freeze the weights of the most quantization-unstable
    /// convolution units (by weight-quantization error) and fine-tune the
    /// rest — the core idea of Park & Yoo's progressive freezing.
    fn profit_freeze<M: QuantModel + ?Sized>(&self, model: &M) -> Result<()> {
        let units = model.conv_units();
        if units.is_empty() {
            return Ok(());
        }
        // Rank units by relative weight quantization error.
        let mut scored: Vec<(usize, f32)> = units
            .iter()
            .enumerate()
            .map(|(i, u)| {
                let w = u.conv().weight().value();
                u.weight_quantizer().calibrate(&w);
                let codes = u.weight_quantizer().quantize(&w);
                let scales = u.weight_quantizer().scale().to_per_channel(w.dim(0));
                let inner = w.numel() / w.dim(0).max(1);
                let mut err = 0.0f32;
                for (j, (&orig, &c)) in w.as_slice().iter().zip(codes.as_slice()).enumerate() {
                    let s = scales[j / inner.max(1)];
                    err += (orig - c as f32 * s).powi(2);
                }
                (i, err / w.abs_max().max(1e-6).powi(2))
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        // Freeze the most unstable third.
        for (i, _) in scored.iter().take(units.len().div_ceil(3)) {
            units[*i].conv().weight().set_trainable(false);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qmodels::{QMobileNet, QuantFactory};
    use crate::QuantConfig;
    use t2c_data::SynthVisionConfig;
    use t2c_nn::models::{MobileNetConfig, MobileNetV1};
    use t2c_tensor::rng::TensorRng;

    fn tiny_data() -> SynthVision {
        SynthVision::generate(&SynthVisionConfig::tiny(3, 16))
    }

    #[test]
    fn fp_trainer_learns_tiny_task() {
        let data = tiny_data();
        let mut rng = TensorRng::seed_from(1);
        let model = MobileNetV1::new(&mut rng, MobileNetConfig::tiny(3));
        let history = FpTrainer::new(TrainConfig::quick(8)).fit(&model, &data).unwrap();
        assert!(
            history.final_acc() > 0.5,
            "accuracy {} should beat chance 0.33",
            history.final_acc()
        );
        // Loss decreases.
        assert!(history.losses.last().unwrap() < history.losses.first().unwrap());
    }

    #[test]
    fn qat_trainer_learns_with_fake_quant() {
        let data = tiny_data();
        let mut rng = TensorRng::seed_from(1);
        let model = MobileNetV1::new(&mut rng, MobileNetConfig::tiny(3));
        let qmodel = QMobileNet::from_float(&model, &QuantFactory::minmax(QuantConfig::wa(8)));
        let history = QatTrainer::new(TrainConfig::quick(8)).fit(&qmodel, &data).unwrap();
        assert!(history.final_acc() > 0.5, "accuracy {}", history.final_acc());
        assert!(qmodel.input_quantizer().is_calibrated());
    }

    #[test]
    fn profit_freezes_some_weights() {
        let data = tiny_data();
        let mut rng = TensorRng::seed_from(2);
        let model = MobileNetV1::new(&mut rng, MobileNetConfig::tiny(3));
        let qmodel = QMobileNet::from_float(&model, &QuantFactory::minmax(QuantConfig::wa(4)));
        let trainer = QatTrainer::new(TrainConfig::quick(3)).with_profit();
        trainer.fit(&qmodel, &data).unwrap();
        let frozen =
            qmodel.conv_units().iter().filter(|u| !u.conv().weight().is_trainable()).count();
        assert!(frozen > 0, "PROFIT should freeze at least one unit");
    }
}
