//! Post-training quantization: observer calibration and layer-wise
//! reconstruction (AdaRound / QDrop).

use t2c_autograd::Graph;
use t2c_data::{BatchIter, SynthVision};
use t2c_nn::Module;
use t2c_optim::{AdamW, Optimizer};

use crate::qlayers::PathMode;
use crate::qmodels::QuantModel;
use crate::Result;

/// Which PTQ procedure to run after calibration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PtqMethod {
    /// Observer calibration only (the OpenVINO-style MinMax baseline).
    CalibrateOnly,
    /// Layer-wise reconstruction of the quantizers' learnable parameters
    /// (AdaRound rounding offsets; with QDrop activation quantizers this
    /// *is* the QDrop procedure).
    Reconstruct {
        /// Gradient steps per layer.
        iters: usize,
        /// Adam learning rate.
        lr: f32,
        /// Weight of the AdaRound rounding regularizer (β = 2).
        lambda: f32,
    },
}

/// The PTQ pipeline: stream calibration batches, then optionally
/// reconstruct each convolution unit against its float output.
#[derive(Debug, Clone, Copy)]
pub struct PtqPipeline {
    /// Calibration batches.
    pub calib_batches: usize,
    /// Batch size.
    pub batch: usize,
    /// Post-calibration procedure.
    pub method: PtqMethod,
    /// Shuffling seed.
    pub seed: u64,
}

impl PtqPipeline {
    /// Calibration-only PTQ.
    pub fn calibrate(calib_batches: usize, batch: usize) -> Self {
        PtqPipeline { calib_batches, batch, method: PtqMethod::CalibrateOnly, seed: 7 }
    }

    /// Reconstruction PTQ (AdaRound/QDrop) with sensible defaults.
    pub fn reconstruct(calib_batches: usize, batch: usize, iters: usize) -> Self {
        PtqPipeline {
            calib_batches,
            batch,
            method: PtqMethod::Reconstruct { iters, lr: 1e-2, lambda: 0.01 },
            seed: 7,
        }
    }

    /// Runs the pipeline on a quantized twin whose float weights are
    /// already trained. Leaves the model on the `Quant` path.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatches inside the model.
    pub fn run<M: QuantModel>(&self, model: &M, data: &SynthVision) -> Result<()> {
        model.set_training(false);
        // ---- Calibration: stream batches on the observer path. ----------
        model.set_path(PathMode::Calibrate);
        let capture = matches!(self.method, PtqMethod::Reconstruct { .. });
        if capture {
            for unit in model.conv_units() {
                unit.set_capture(true);
            }
        }
        let mut seen = 0usize;
        for (images, _labels) in BatchIter::train(data, self.batch, self.seed) {
            let g = Graph::new();
            let _ = model.forward(&g.leaf(images))?;
            seen += 1;
            if seen >= self.calib_batches {
                break;
            }
        }
        // ---- Optional layer-wise reconstruction. -------------------------
        if let PtqMethod::Reconstruct { iters, lr, lambda } = self.method {
            for unit in model.conv_units() {
                let captured = unit.take_captured();
                unit.set_capture(false);
                if captured.is_empty() {
                    continue;
                }
                unit.set_mode(PathMode::Quant);
                let trainables = unit.quant_trainables();
                if trainables.is_empty() {
                    continue;
                }
                let mut opt = AdamW::new(trainables.clone(), lr);
                let mut recon_sum = 0.0f64;
                for it in 0..iters {
                    let (x, y_fp) = &captured[it % captured.len()];
                    let g = Graph::new();
                    let y_q = unit.forward(&g.leaf(x.clone()))?;
                    let mut loss = y_q.mse_loss(y_fp)?;
                    recon_sum += loss.tensor().item() as f64;
                    // AdaRound's rounding regularizer (β = 2), built on the
                    // graph so its gradient reaches α.
                    if lambda > 0.0 {
                        for p in &trainables {
                            if p.name().ends_with(".ada_alpha") {
                                let alpha = g.param(p);
                                let h = alpha
                                    .sigmoid()
                                    .mul_scalar(1.2)
                                    .add_scalar(-0.1)
                                    .clamp(0.0, 1.0);
                                let reg = h
                                    .mul_scalar(2.0)
                                    .add_scalar(-1.0)
                                    .square()
                                    .neg()
                                    .add_scalar(1.0)
                                    .sum_all();
                                loss = loss.add(&reg.mul_scalar(lambda))?;
                            }
                        }
                    }
                    opt.zero_grad();
                    loss.backward()?;
                    opt.step();
                }
                if t2c_obs::enabled() && iters > 0 {
                    // One point per reconstructed unit: its mean MSE against
                    // the captured float outputs.
                    t2c_obs::series_push("ptq.recon_loss", recon_sum / iters as f64);
                }
                unit.set_mode(PathMode::Calibrate);
            }
        }
        model.set_path(PathMode::Quant);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qmodels::{QMobileNet, QuantFactory};
    use crate::trainer::{evaluate, evaluate_int, FpTrainer, TrainConfig};
    use crate::{FuseScheme, QuantConfig, T2C};
    use t2c_data::SynthVisionConfig;
    use t2c_nn::models::{MobileNetConfig, MobileNetV1};
    use t2c_tensor::rng::TensorRng;

    #[test]
    fn calibration_then_conversion_keeps_accuracy() {
        let data = SynthVision::generate(&SynthVisionConfig::tiny(3, 16));
        let mut rng = TensorRng::seed_from(3);
        let model = MobileNetV1::new(&mut rng, MobileNetConfig::tiny(3));
        let fp = FpTrainer::new(TrainConfig::quick(4)).fit(&model, &data).unwrap();
        let qmodel = QMobileNet::from_float(&model, &QuantFactory::minmax(QuantConfig::wa(8)));
        PtqPipeline::calibrate(4, 16).run(&qmodel, &data).unwrap();
        let fake_acc = evaluate(&qmodel, &data, 16).unwrap();
        let (int, report) = T2C::new(&qmodel).nn2chip(FuseScheme::PreFuse).unwrap();
        let int_acc = evaluate_int(&int, &data, 16).unwrap();
        assert!(
            fake_acc >= fp.final_acc() - 0.25,
            "fake-quant acc {fake_acc} vs fp {}",
            fp.final_acc()
        );
        assert!(int_acc >= fake_acc - 0.2, "integer acc {int_acc} vs fake {fake_acc}");
        assert!(report.weight_bytes > 0);
    }

    #[test]
    fn reconstruction_runs_and_improves_or_matches() {
        let data = SynthVision::generate(&SynthVisionConfig::tiny(3, 12));
        let mut rng = TensorRng::seed_from(4);
        let model = MobileNetV1::new(&mut rng, MobileNetConfig::tiny(3));
        FpTrainer::new(TrainConfig::quick(3)).fit(&model, &data).unwrap();
        let qmodel = QMobileNet::from_float(&model, &QuantFactory::adaround(QuantConfig::wa(4)));
        PtqPipeline::reconstruct(3, 12, 10).run(&qmodel, &data).unwrap();
        let acc = evaluate(&qmodel, &data, 12).unwrap();
        assert!(acc > 0.3, "reconstructed acc {acc}");
    }
}
