//! MulQuant — the integer requantization module (paper §3.2, Figure 3).
//!
//! After fusion, every layer's float epilogue (`S_w·S_x/S_y` rescale,
//! channel-wise γ\*, bias β\*/S_y) collapses into **one fixed-point multiply,
//! one add and one shift per output element**:
//!
//! ```text
//! y_q = clamp( (acc·M_c + B_c) >> f , qmin, qmax )
//! ```
//!
//! where `M_c` and `B_c` are INT(int, frac) fixed-point integers — unlike
//! the float rescale tensors PyTorch keeps, everything here is integer.

use t2c_tensor::Tensor;

use crate::fixed::{round_shift, FixedPointFormat};
use crate::qconfig::QuantSpec;

/// Fixed-point channel-wise (or per-tensor) requantizer.
#[derive(Debug, Clone, PartialEq)]
pub struct MulQuant {
    /// Raw fixed-point multipliers (length 1 = per-tensor).
    pub scale_raw: Vec<i32>,
    /// Raw fixed-point biases, already in `2^frac` units (length 1 or C).
    pub bias_raw: Vec<i64>,
    /// The fixed-point format of both.
    pub format: FixedPointFormat,
    /// The integer grid of the output.
    pub out_spec: QuantSpec,
}

impl MulQuant {
    /// Builds a requantizer choosing the fractional width automatically so
    /// the largest multiplier uses the full `total_bits` budget (biases are
    /// stored at the same fractional position in accumulator-width words,
    /// as deployed requantizers do).
    pub fn from_float_auto(
        scales: &[f32],
        biases: &[f32],
        total_bits: u8,
        out_spec: QuantSpec,
    ) -> Self {
        let max_scale = scales.iter().fold(0.0f32, |m, &s| m.max(s.abs()));
        let format = FixedPointFormat::auto(total_bits, max_scale);
        Self::from_float(scales, biases, format, out_spec)
    }

    /// Builds a requantizer from float multipliers and biases.
    ///
    /// # Panics
    ///
    /// Panics if `scales` is empty or `biases` has a different length
    /// (unless one of them has length 1, which broadcasts).
    pub fn from_float(
        scales: &[f32],
        biases: &[f32],
        format: FixedPointFormat,
        out_spec: QuantSpec,
    ) -> Self {
        assert!(!scales.is_empty(), "MulQuant needs at least one scale");
        assert!(
            biases.len() == scales.len() || biases.len() == 1 || scales.len() == 1,
            "scale/bias lengths {} vs {} do not broadcast",
            scales.len(),
            biases.len()
        );
        let n = scales.len().max(biases.len());
        let scale_raw =
            (0..n).map(|i| format.quantize(scales[i.min(scales.len() - 1)]).raw).collect();
        let bias_raw = (0..n)
            .map(|i| {
                // Biases live pre-shift: B = round(b·2^f).
                let b = biases[i.min(biases.len() - 1)];
                let max = (1i64 << (format.total_bits() + 14)) as f32;
                ((b * (1i64 << format.frac_bits) as f32).round().clamp(-max, max)) as i64
            })
            .collect();
        MulQuant { scale_raw, bias_raw, format, out_spec }
    }

    /// `true` if the requantizer carries per-channel factors.
    pub fn is_per_channel(&self) -> bool {
        self.scale_raw.len() > 1
    }

    /// Requantizes one accumulator value for channel `ch`.
    pub fn apply_scalar(&self, acc: i32, ch: usize) -> i32 {
        self.apply_scalar_relu(acc, ch, false)
    }

    /// Requantizes one accumulator value for channel `ch`, optionally
    /// applying the integer ReLU (`max(0, ·)`) before the clamp — the
    /// exact per-element computation of [`MulQuant::apply`], exposed as a
    /// scalar so fused-kernel epilogues can call it per output element.
    pub fn apply_scalar_relu(&self, acc: i32, ch: usize, relu: bool) -> i32 {
        let i = ch.min(self.scale_raw.len() - 1);
        let v =
            acc as i64 * self.scale_raw[i] as i64 + self.bias_raw[i.min(self.bias_raw.len() - 1)];
        let mut shifted = round_shift(v, self.format.frac_bits);
        if relu {
            shifted = shifted.max(0);
        }
        shifted.clamp(self.out_spec.qmin() as i64, self.out_spec.qmax() as i64) as i32
    }

    /// Requantizes an accumulator tensor. `ch_axis` selects which axis
    /// indexes the channel factors (1 for `[N, C, H, W]` and `[N, C]`).
    ///
    /// `relu` applies the integer ReLU (`max(0, ·)`) before the clamp —
    /// valid because the zero point is 0 throughout the pipeline.
    ///
    /// When profiling is enabled the global `mulquant.total` /
    /// `mulquant.saturated` counters are updated; disabled, the only
    /// overhead is one branch.
    ///
    /// # Panics
    ///
    /// Panics if `ch_axis` is out of range for `acc`.
    pub fn apply(&self, acc: &Tensor<i32>, ch_axis: usize, relu: bool) -> Tensor<i32> {
        if t2c_obs::enabled() {
            self.apply_with_saturation(acc, ch_axis, relu).0
        } else {
            self.apply_core(acc, ch_axis, relu, false).0
        }
    }

    /// Like [`MulQuant::apply`], additionally returning how many outputs
    /// landed outside the quantization grid and were clipped to its edge.
    /// Also feeds the global `mulquant.*` profile counters when enabled.
    ///
    /// # Panics
    ///
    /// Panics if `ch_axis` is out of range for `acc`.
    pub fn apply_with_saturation(
        &self,
        acc: &Tensor<i32>,
        ch_axis: usize,
        relu: bool,
    ) -> (Tensor<i32>, u64) {
        let (out, saturated) = self.apply_core(acc, ch_axis, relu, true);
        if t2c_obs::enabled() {
            t2c_obs::counter_add("mulquant.total", acc.numel() as u64);
            t2c_obs::counter_add("mulquant.saturated", saturated);
        }
        (out, saturated)
    }

    fn apply_core(
        &self,
        acc: &Tensor<i32>,
        ch_axis: usize,
        relu: bool,
        count_saturation: bool,
    ) -> (Tensor<i32>, u64) {
        let dims = acc.dims();
        assert!(ch_axis < dims.len(), "channel axis {ch_axis} out of range");
        let ch_extent = dims[ch_axis];
        let inner: usize = dims[ch_axis + 1..].iter().product();
        let mut out = Tensor::<i32>::zeros(dims);
        let xs = acc.as_slice();
        let os = out.as_mut_slice();
        let (qmin, qmax) = (self.out_spec.qmin() as i64, self.out_spec.qmax() as i64);
        let mut saturated = 0u64;
        for (i, &x) in xs.iter().enumerate() {
            let ch = (i / inner.max(1)) % ch_extent.max(1);
            let ci = ch.min(self.scale_raw.len() - 1);
            let v = x as i64 * self.scale_raw[ci] as i64
                + self.bias_raw[ci.min(self.bias_raw.len() - 1)];
            let mut shifted = round_shift(v, self.format.frac_bits);
            if relu {
                shifted = shifted.max(0);
            }
            if count_saturation && (shifted < qmin || shifted > qmax) {
                saturated += 1;
            }
            os[i] = shifted.clamp(qmin, qmax) as i32;
        }
        (out, saturated)
    }

    /// Number of requantization channels (1 = per-tensor).
    pub fn channels(&self) -> usize {
        self.scale_raw.len().max(self.bias_raw.len())
    }

    /// The raw-bias magnitude cap this requantizer's biases must respect:
    /// `2^(total_bits + 14)`, the accumulator headroom [`MulQuant::
    /// from_float`] clamps to. Biases beyond it indicate a corrupted or
    /// hand-built requantizer the hardware epilogue cannot represent.
    pub fn bias_headroom(&self) -> i64 {
        1i64 << (self.format.total_bits().min(48) + 14)
    }

    /// Image of the accumulator interval `[lo, hi]` under channel `ch`'s
    /// requantization — multiply, bias add and rounding shift, **before**
    /// the ReLU and the output clamp. The map is monotone (antitone for a
    /// negative multiplier), so endpoint images bound the image of the
    /// whole interval; `t2c-lint` uses this to prove an entire layer's
    /// output range lands inside the output grid.
    pub fn map_range(&self, lo: i64, hi: i64, ch: usize) -> (i64, i64) {
        let ci = ch.min(self.scale_raw.len() - 1);
        let bias = self.bias_raw[ci.min(self.bias_raw.len() - 1)];
        let f =
            |acc: i64| round_shift(acc * self.scale_raw[ci] as i64 + bias, self.format.frac_bits);
        let a = f(lo);
        let b = f(hi);
        (a.min(b), a.max(b))
    }

    /// One pre-shift raw unit expressed in output-grid steps: `2^-frac`.
    pub fn step(&self) -> f64 {
        self.format.step()
    }

    /// `|multiplier|` for channel `ch` as a real number.
    pub fn scale_abs(&self, ch: usize) -> f64 {
        (self.scale_raw[ch.min(self.scale_raw.len() - 1)] as f64
            / (1i64 << self.format.frac_bits) as f64)
            .abs()
    }

    /// Sound per-channel bound, in output quantization steps, on the
    /// divergence between this requantizer's integer epilogue and an exact
    /// real epilogue `acc*·m* + b*` — where `|acc − acc*| ≤ acc_err`,
    /// `|acc| ≤ acc_abs`, and `m*`/`b*` are any reals within half a raw
    /// ulp of the stored fixed-point words. Covers the rounding shift (½),
    /// the accumulator error amplified by the multiplier, and the
    /// multiplier/bias half-ulps amplified by the accumulator envelope.
    /// The trailing ReLU and output clamp are 1-Lipschitz, so the bound
    /// survives them unchanged.
    pub fn error_bound_steps(&self, ch: usize, acc_abs: f64, acc_err: f64) -> f64 {
        0.5 + self.scale_abs(ch) * acc_err + 0.5 * self.step() * (acc_abs + acc_err + 1.0)
    }

    /// The effective float multiplier for channel `ch` (for reports).
    pub fn scale_f32(&self, ch: usize) -> f32 {
        self.scale_raw[ch.min(self.scale_raw.len() - 1)] as f32
            / (1i64 << self.format.frac_bits) as f32
    }

    /// Bytes needed to store the scale and bias words.
    pub fn size_bytes(&self) -> usize {
        let word = self.format.total_bits().div_ceil(8) as usize;
        self.scale_raw.len() * word + self.bias_raw.len() * word
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmt() -> FixedPointFormat {
        FixedPointFormat::int16_frac12()
    }

    #[test]
    fn per_tensor_requant_matches_float_math() {
        let mq = MulQuant::from_float(&[0.05], &[1.7], fmt(), QuantSpec::unsigned(8));
        for acc in [-100i32, 0, 57, 999, 5000] {
            let float = (acc as f32 * 0.05 + 1.7).round().clamp(0.0, 255.0);
            let fixed = mq.apply_scalar(acc, 0) as f32;
            assert!((float - fixed).abs() <= 1.0, "acc {acc}: float {float} vs fixed {fixed}");
        }
    }

    #[test]
    fn per_channel_factors_select_by_axis() {
        let mq = MulQuant::from_float(&[1.0, 2.0], &[0.0, 0.0], fmt(), QuantSpec::signed(8));
        let acc = Tensor::from_vec(vec![3, 3, 3, 3], &[1, 2, 1, 2]).unwrap();
        let y = mq.apply(&acc, 1, false);
        assert_eq!(y.as_slice(), &[3, 3, 6, 6]);
    }

    #[test]
    fn relu_applies_before_clamp() {
        let mq = MulQuant::from_float(&[1.0], &[0.0], fmt(), QuantSpec::signed(8));
        let acc = Tensor::from_vec(vec![-5, 5], &[1, 2]).unwrap();
        let y = mq.apply(&acc, 1, true);
        assert_eq!(y.as_slice(), &[0, 5]);
        let y_no = mq.apply(&acc, 1, false);
        assert_eq!(y_no.as_slice(), &[-5, 5]);
    }

    #[test]
    fn output_clamped_to_spec() {
        let mq = MulQuant::from_float(&[4.0], &[0.0], fmt(), QuantSpec::unsigned(4));
        let acc = Tensor::from_vec(vec![100, -7], &[2]).unwrap();
        let y = mq.apply(&acc, 0, false);
        assert_eq!(y.as_slice(), &[15, 0]);
    }

    #[test]
    fn per_tensor_scale_broadcasts_against_per_channel_bias() {
        // scales.len() == 1 with biases.len() == C: the single scale must
        // broadcast across the channel-indexed biases.
        let mq = MulQuant::from_float(&[0.5], &[0.0, 1.0, 2.0], fmt(), QuantSpec::signed(8));
        assert_eq!(mq.scale_raw.len(), 3);
        assert_eq!(mq.bias_raw.len(), 3);
        assert!(mq.is_per_channel());
        let acc = Tensor::from_vec(vec![2, 2, 2, 4, 4, 4], &[2, 3]).unwrap();
        let y = mq.apply(&acc, 1, false);
        assert_eq!(y.as_slice(), &[1, 2, 3, 2, 3, 4]);
    }

    #[test]
    fn bias_clamps_at_accumulator_headroom() {
        // Biases saturate at ±2^(total_bits + 14): for INT(4, 12) that is
        // ±2^30 raw.
        let big = 1.0e12f32;
        let mq = MulQuant::from_float(&[1.0], &[big, -big], fmt(), QuantSpec::signed(8));
        let cap = 1i64 << (fmt().total_bits() + 14);
        assert_eq!(mq.bias_raw, vec![cap, -cap]);
        // An in-range bias is not clamped.
        let small = MulQuant::from_float(&[1.0], &[2.0], fmt(), QuantSpec::signed(8));
        assert_eq!(small.bias_raw, vec![2 << 12]);
    }

    #[test]
    fn rank2_per_channel_apply_on_axis1() {
        // [N, C] with ch_axis = 1: channel factors select by column.
        let mq = MulQuant::from_float(&[1.0, 2.0, 3.0], &[0.0], fmt(), QuantSpec::signed(8));
        let acc = Tensor::from_vec(vec![1, 1, 1, 2, 2, 2], &[2, 3]).unwrap();
        let y = mq.apply(&acc, 1, false);
        assert_eq!(y.as_slice(), &[1, 2, 3, 2, 4, 6]);
    }

    #[test]
    fn saturation_count_matches_clipped_outputs() {
        let mq = MulQuant::from_float(&[4.0], &[0.0], fmt(), QuantSpec::unsigned(4));
        let acc = Tensor::from_vec(vec![100, -7, 1], &[3]).unwrap();
        let (y, saturated) = mq.apply_with_saturation(&acc, 0, false);
        assert_eq!(y.as_slice(), &[15, 0, 4]);
        assert_eq!(saturated, 2, "400 clips to qmax, -28 clips to qmin");
    }

    #[test]
    fn error_bound_steps_dominates_scalar_requant_divergence() {
        // Against the exact real epilogue with the stored words themselves
        // (the center of the half-ulp family), the certified bound must
        // cover every probed accumulator — including clamped outputs,
        // since the clamp is 1-Lipschitz and applied to both paths.
        let mq = MulQuant::from_float(&[0.043], &[1.3], fmt(), QuantSpec::unsigned(8));
        let m = mq.scale_raw[0] as f64 / 4096.0;
        let b = mq.bias_raw[0] as f64 / 4096.0;
        for acc in [-900i32, -1, 0, 13, 777, 6000] {
            let exact = (acc as f64 * m + b).clamp(0.0, 255.0);
            let fixed = f64::from(mq.apply_scalar(acc, 0).clamp(0, 255));
            let bound = mq.error_bound_steps(0, acc.unsigned_abs() as f64, 0.0);
            let observed = (fixed - exact).abs();
            assert!(observed <= bound, "acc {acc}: observed {observed} > bound {bound}");
        }
    }

    #[test]
    fn scale_f32_round_trips() {
        let mq = MulQuant::from_float(&[0.125], &[0.0], fmt(), QuantSpec::signed(8));
        assert!((mq.scale_f32(0) - 0.125).abs() < 1e-6);
    }

    #[test]
    fn size_accounts_for_channels() {
        let per_tensor = MulQuant::from_float(&[1.0], &[0.0], fmt(), QuantSpec::signed(8));
        let per_channel = MulQuant::from_float(&[1.0; 64], &[0.0; 64], fmt(), QuantSpec::signed(8));
        assert_eq!(per_tensor.size_bytes(), 4);
        assert_eq!(per_channel.size_bytes(), 64 * 4);
    }
}
