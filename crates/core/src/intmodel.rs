//! The integer-only model IR — the paper's "deploy mode" (Figure 3c/4c).
//!
//! After fusion and extraction, a network is a graph of **vanilla integer
//! operations**: convolutions and matrix multiplies over integer tensors,
//! fixed-point [`MulQuant`] requantization, LUT non-linearities and integer
//! LayerNorm. No floating point exists anywhere in [`IntModel::run`] after
//! the initial input quantization — this is the property RTL verification
//! needs, and the export crate serializes exactly this structure.

use t2c_tensor::ops::{conv2d_i32, Conv2dSpec, PoolSpec};
use t2c_tensor::{
    conv2d_i32_packed, matmul_i32_sat_packed, matmul_sparse_i, PackedConv, PackedMat,
    SparseEncoding, SparseMat, Tensor, TensorError,
};

use crate::fixed::{round_shift, FixedScalar};
use crate::lut::{isqrt, GeluLut, SoftmaxLut};
use crate::mulquant::MulQuant;
use crate::qconfig::QuantSpec;
use crate::Result;

/// Where an op reads its operand from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// The model's (already quantized) input.
    Input,
    /// The output of a previous node.
    Node(usize),
}

/// Integer LayerNorm parameters (instant statistics, paper §3.2.2).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerNormInt {
    /// Per-feature fixed-point multipliers `round(γ_j/(S_y·2^shift)·2^frac)`.
    pub gamma_m: Vec<i32>,
    /// Per-feature fixed-point biases `round(β_j/S_y·2^frac)`.
    pub beta_b: Vec<i64>,
    /// Fractional bits of the multipliers/biases.
    pub frac: u8,
    /// Extra precision bits given to the normalized value.
    pub shift: u8,
    /// Output grid.
    pub out_spec: QuantSpec,
}

impl LayerNormInt {
    /// Applies integer LayerNorm over the last axis.
    pub fn apply(&self, x: &Tensor<i32>) -> Tensor<i32> {
        let d = x.dim(x.rank() - 1);
        let mut out = Tensor::<i32>::zeros(x.dims());
        self.apply_into(x.as_slice(), d, out.as_mut_slice());
        out
    }

    /// The allocation-free core of [`LayerNormInt::apply`]: normalizes
    /// rows of `d` values from `xs` into `os` (compiled plans call this
    /// directly on arena slices).
    ///
    /// # Panics
    ///
    /// Panics if `xs`/`os` lengths disagree or the parameter vectors are
    /// shorter than `d`.
    pub(crate) fn apply_into(&self, xs: &[i32], d: usize, os: &mut [i32]) {
        assert_eq!(xs.len(), os.len());
        let rows = xs.len() / d.max(1);
        let (qmin, qmax) = (self.out_spec.qmin() as i64, self.out_spec.qmax() as i64);
        for r in 0..rows {
            let row = &xs[r * d..(r + 1) * d];
            let sum: i64 = row.iter().map(|&v| v as i64).sum();
            let mean = round_shift_div(sum, d as i64);
            let var: i64 = row
                .iter()
                .map(|&v| {
                    let c = v as i64 - mean;
                    c * c
                })
                .sum::<i64>()
                / d as i64;
            let std = isqrt(var).max(1);
            for j in 0..d {
                let c = row[j] as i64 - mean;
                let xhat = (c << self.shift) / std;
                let v = self.gamma_m[j] as i64 * xhat + self.beta_b[j];
                os[r * d + j] = round_shift(v, self.frac).clamp(qmin, qmax) as i32;
            }
        }
    }
}

fn round_shift_div(v: i64, d: i64) -> i64 {
    // round(v/d) for positive d, round-half-away.
    if v >= 0 {
        (v + d / 2) / d
    } else {
        (v - d / 2) / d
    }
}

/// One integer operation.
#[derive(Debug, Clone)]
pub enum IntOp {
    /// Quantizes the float model input: `round(x/scale)` clamped.
    Quantize {
        /// Input scale.
        scale: f32,
        /// Input grid.
        spec: QuantSpec,
    },
    /// Integer convolution → MulQuant requantization (+ optional ReLU).
    Conv2d {
        /// Integer weights `[OC, C/g, K, K]`.
        weight: Tensor<i32>,
        /// Accumulator-domain bias (length OC).
        bias: Option<Vec<i64>>,
        /// Geometry.
        spec: Conv2dSpec,
        /// The fused requantizer.
        requant: MulQuant,
        /// Integer ReLU before the output clamp.
        relu: bool,
        /// Grid the weights live on (for size accounting).
        weight_spec: QuantSpec,
    },
    /// Integer linear layer; without a requantizer the raw i32 accumulators
    /// are the output (classifier head — argmax is scale-invariant).
    Linear {
        /// Integer weights `[OUT, IN]`.
        weight: Tensor<i32>,
        /// Accumulator-domain bias (length OUT).
        bias: Option<Vec<i64>>,
        /// Optional requantizer.
        requant: Option<MulQuant>,
        /// Integer ReLU before the clamp (requires `requant`).
        relu: bool,
        /// Grid the weights live on.
        weight_spec: QuantSpec,
    },
    /// Integer convolution over a prepacked weight — produced by
    /// [`IntModel::prepack`] from a dense [`IntOp::Conv2d`]. Bit-identical
    /// to the dense op on the unpacked weights; only the storage layout and
    /// the kernel's cache blocking differ.
    Conv2dPacked {
        /// Prepacked `[OC, C/g, K, K]` weights (column-panel tiles).
        weight: PackedConv,
        /// Accumulator-domain bias (length OC).
        bias: Option<Vec<i64>>,
        /// Geometry.
        spec: Conv2dSpec,
        /// The fused requantizer.
        requant: MulQuant,
        /// Integer ReLU before the output clamp.
        relu: bool,
        /// Grid the weights live on (for size accounting).
        weight_spec: QuantSpec,
    },
    /// Integer linear layer over a prepacked weight — produced by
    /// [`IntModel::prepack`] from a dense [`IntOp::Linear`]. Bit-identical
    /// to the dense op on the unpacked weights.
    LinearPacked {
        /// Prepacked `[OUT, IN]` weights (column-panel tiles).
        weight: PackedMat,
        /// Accumulator-domain bias (length OUT).
        bias: Option<Vec<i64>>,
        /// Optional requantizer.
        requant: Option<MulQuant>,
        /// Integer ReLU before the clamp (requires `requant`).
        relu: bool,
        /// Grid the weights live on.
        weight_spec: QuantSpec,
    },
    /// Integer linear layer over a compressed sparse weight matrix —
    /// produced by [`IntModel::sparsify`] from a pruned [`IntOp::Linear`].
    /// Bit-identical to the dense op on the densified weights; only the
    /// storage and the kernel's skip-zero dispatch differ.
    LinearSparse {
        /// Compressed `[OUT, IN]` weights (bitmask or N:M layout).
        weight: SparseMat,
        /// Accumulator-domain bias (length OUT).
        bias: Option<Vec<i64>>,
        /// Optional requantizer.
        requant: Option<MulQuant>,
        /// Integer ReLU before the clamp (requires `requant`).
        relu: bool,
        /// Grid the weight payloads live on.
        weight_spec: QuantSpec,
        /// Structural sparsity the producer claims for this node; the lint
        /// layer cross-checks it against the stored structure (T2C503).
        declared_sparsity: f32,
    },
    /// Residual add: each branch is rescaled into the output grid by a
    /// fixed-point factor, then summed (+ optional ReLU).
    AddRequant {
        /// Factor for the first input (`S_a/S_out`).
        m_a: FixedScalar,
        /// Factor for the second input (`S_b/S_out`).
        m_b: FixedScalar,
        /// Output grid.
        out_spec: QuantSpec,
        /// Integer ReLU.
        relu: bool,
    },
    /// Adds a pre-quantized constant (position embedding), then rescales.
    AddConstRequant {
        /// Constant in the input's scale (broadcast over batch).
        value: Tensor<i32>,
        /// `S_in/S_out` fixed-point factor.
        m: FixedScalar,
        /// Output grid.
        out_spec: QuantSpec,
    },
    /// Integer max pooling (scale-preserving).
    MaxPool2d {
        /// Window geometry.
        spec: PoolSpec,
    },
    /// Global average pooling with a runtime fixed-point `1/(H·W)`
    /// multiplier: `[N,C,H,W] → [N,C]`. The output keeps `frac_bits` extra
    /// fractional bits (output scale = input scale / 2^frac_bits) so the
    /// classifier does not lose sub-LSB precision to the division.
    GlobalAvgPool {
        /// Extra fractional bits retained in the pooled codes.
        frac_bits: u8,
    },
    /// `[N, C, H, W] → [N, C·H·W]`.
    Flatten,
    /// `[N, D, h, w] → [N, h·w, D]` (patch embedding to token sequence).
    PatchToTokens,
    /// Prepends a constant token `[1, D]` to every sequence.
    ConcatToken {
        /// The class token, quantized at the sequence's scale.
        token: Tensor<i32>,
    },
    /// Extracts token `index`: `[N, L, D] → [N, D]`.
    TakeToken {
        /// Token position.
        index: usize,
    },
    /// `[N, L, H·Dh] → [N·H, L, Dh]`.
    SplitHeads {
        /// Head count.
        heads: usize,
    },
    /// `[N·H, L, Dh] → [N, L, H·Dh]`.
    MergeHeads {
        /// Head count.
        heads: usize,
    },
    /// Batched integer matmul with requantization; optionally transposes
    /// the last two axes of the second operand (for `q·kᵀ`).
    BmmRequant {
        /// Transpose the rhs.
        transpose_rhs: bool,
        /// `S_a·S_b/S_out` fixed-point factor.
        m: FixedScalar,
        /// Output grid.
        out_spec: QuantSpec,
    },
    /// Elementwise integer rescale between two activation grids (e.g. the
    /// 8-bit residual stream feeding a 2-bit conv input).
    Requant {
        /// `S_in/S_out` fixed-point factor.
        m: FixedScalar,
        /// Output grid.
        out_spec: QuantSpec,
    },
    /// Integer LayerNorm.
    LayerNorm(LayerNormInt),
    /// LUT softmax over the last axis.
    SoftmaxLut(SoftmaxLut),
    /// LUT GELU, elementwise.
    GeluLut(GeluLut),
}

impl IntOp {
    /// Canonical short label of the op kind — shared by export manifests,
    /// lint diagnostics and reports.
    pub fn label(&self) -> &'static str {
        match self {
            IntOp::Quantize { .. } => "quantize",
            IntOp::Conv2d { .. } => "conv2d_int",
            IntOp::Conv2dPacked { .. } => "conv2d_packed",
            IntOp::Linear { .. } => "linear_int",
            IntOp::LinearPacked { .. } => "linear_packed",
            IntOp::LinearSparse { .. } => "linear_sparse",
            IntOp::AddRequant { .. } => "add_requant",
            IntOp::AddConstRequant { .. } => "add_const_requant",
            IntOp::MaxPool2d { .. } => "max_pool",
            IntOp::GlobalAvgPool { .. } => "global_avg_pool",
            IntOp::Flatten => "flatten",
            IntOp::PatchToTokens => "patch_to_tokens",
            IntOp::ConcatToken { .. } => "concat_token",
            IntOp::TakeToken { .. } => "take_token",
            IntOp::SplitHeads { .. } => "split_heads",
            IntOp::MergeHeads { .. } => "merge_heads",
            IntOp::BmmRequant { .. } => "bmm_requant",
            IntOp::Requant { .. } => "requant",
            IntOp::LayerNorm(_) => "layer_norm_int",
            IntOp::SoftmaxLut(_) => "softmax_lut",
            IntOp::GeluLut(_) => "gelu_lut",
        }
    }

    /// The integer grid this op's output is clamped onto, when the op
    /// declares one. Shape-only ops (`Flatten`, pooling, token plumbing)
    /// and `Linear` heads without a requantizer return `None`: their
    /// output inherits the producer's grid or is a raw accumulator.
    pub fn out_spec(&self) -> Option<QuantSpec> {
        match self {
            IntOp::Quantize { spec, .. } => Some(*spec),
            IntOp::Conv2d { requant, .. } | IntOp::Conv2dPacked { requant, .. } => {
                Some(requant.out_spec)
            }
            IntOp::Linear { requant, .. }
            | IntOp::LinearPacked { requant, .. }
            | IntOp::LinearSparse { requant, .. } => requant.as_ref().map(|r| r.out_spec),
            IntOp::AddRequant { out_spec, .. }
            | IntOp::AddConstRequant { out_spec, .. }
            | IntOp::BmmRequant { out_spec, .. }
            | IntOp::Requant { out_spec, .. } => Some(*out_spec),
            IntOp::LayerNorm(ln) => Some(ln.out_spec),
            IntOp::SoftmaxLut(lut) => Some(lut.out_spec),
            IntOp::GeluLut(lut) => Some(lut.out_spec),
            _ => None,
        }
    }

    /// Number of graph operands the op consumes at execution time.
    pub fn arity(&self) -> usize {
        match self {
            IntOp::Quantize { .. } => 0,
            IntOp::AddRequant { .. } | IntOp::BmmRequant { .. } => 2,
            _ => 1,
        }
    }
}

/// One node: an op plus where its operands come from.
#[derive(Debug, Clone)]
pub struct IntNode {
    /// The operation.
    pub op: IntOp,
    /// Operand sources (1 for most ops, 2 for adds/bmm).
    pub inputs: Vec<Src>,
    /// Human-readable name for reports and export manifests.
    pub name: String,
}

/// An integer-only network: a topologically ordered op list.
#[derive(Debug, Clone, Default)]
pub struct IntModel {
    /// Nodes in execution order.
    pub nodes: Vec<IntNode>,
}

impl IntModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        IntModel::default()
    }

    /// Appends a node, returning its id.
    pub fn push(&mut self, name: impl Into<String>, op: IntOp, inputs: Vec<Src>) -> usize {
        self.nodes.push(IntNode { op, inputs, name: name.into() });
        self.nodes.len() - 1
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the model has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Runs the model on a float input batch; the last node's output are
    /// the integer logits.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is malformed or shapes mismatch.
    pub fn run(&self, x: &Tensor<f32>) -> Result<Tensor<i32>> {
        // The input enters through the first Quantize node.
        let quantized = match self.nodes.first().map(|n| &n.op) {
            Some(IntOp::Quantize { scale, spec }) => {
                x.map(|v| ((v / scale).round() as i32).clamp(spec.qmin(), spec.qmax()))
            }
            _ => {
                return Err(TensorError::InvalidArgument(
                    "IntModel must start with a Quantize node".into(),
                ))
            }
        };
        self.run_quantized(&quantized)
    }

    /// Runs the model and returns *every* node's output — the hook
    /// per-layer verification and divergence analysis use.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is malformed or shapes mismatch.
    pub fn run_all(&self, x: &Tensor<f32>) -> Result<Vec<Tensor<i32>>> {
        let quantized = match self.nodes.first().map(|n| &n.op) {
            Some(IntOp::Quantize { scale, spec }) => {
                x.map(|v| ((v / scale).round() as i32).clamp(spec.qmin(), spec.qmax()))
            }
            _ => {
                return Err(TensorError::InvalidArgument(
                    "IntModel must start with a Quantize node".into(),
                ))
            }
        };
        self.execute(&quantized)
    }

    /// Runs the model on an already-quantized integer input (skipping the
    /// leading Quantize node) — the accelerator-simulator entry point.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is malformed or shapes mismatch.
    pub fn run_quantized(&self, input: &Tensor<i32>) -> Result<Tensor<i32>> {
        let (mut values, _) = self.execute_droppable(input, false)?;
        values.pop().flatten().ok_or_else(|| TensorError::InvalidArgument("empty IntModel".into()))
    }

    /// Keep-everything execution — the hook `run_all` and the plan
    /// compiler's shape inference use.
    fn execute(&self, input: &Tensor<i32>) -> Result<Vec<Tensor<i32>>> {
        let (values, _) = self.execute_droppable(input, true)?;
        Ok(values.into_iter().map(|v| v.expect("keep_all retains every value")).collect())
    }

    /// Per-node output shapes for a quantized input of `input_dims` —
    /// computed by running the interpreter on zeros (the plan compiler's
    /// shape-inference pass; graphs are data-independent in shape).
    pub(crate) fn infer_shapes(&self, input_dims: &[usize]) -> Result<Vec<Vec<usize>>> {
        let zeros = Tensor::<i32>::zeros(input_dims);
        let values = self.execute(&zeros)?;
        Ok(values.into_iter().map(|v| v.dims().to_vec()).collect())
    }

    /// Index of the step after which each node's output is dead: the
    /// maximum consumer index, the node's own index if nothing consumes
    /// it, and `usize::MAX` for the model output.
    fn last_uses(&self) -> Vec<usize> {
        let n = self.nodes.len();
        let mut last: Vec<usize> = (0..n).collect();
        for (i, node) in self.nodes.iter().enumerate() {
            for src in &node.inputs {
                if let Src::Node(id) = src {
                    if *id < n {
                        last[*id] = last[*id].max(i);
                    }
                }
            }
        }
        if n > 0 {
            last[n - 1] = usize::MAX;
        }
        last
    }

    /// The interpreter loop. With `keep_all` every node's output is
    /// retained (the `run_all` contract); otherwise each intermediate is
    /// dropped right after its last consumer runs, so peak liveness is
    /// bounded by the widest producer/consumer frontier instead of the sum
    /// of every layer in the network. Returns the (partially `None` when
    /// dropping) value list and the peak number of simultaneously live
    /// output elements.
    fn execute_droppable(
        &self,
        input: &Tensor<i32>,
        keep_all: bool,
    ) -> Result<(Vec<Option<Tensor<i32>>>, usize)> {
        let last = self.last_uses();
        let mut values: Vec<Option<Tensor<i32>>> = Vec::with_capacity(self.nodes.len());
        let mut live_elems = 0usize;
        let mut peak_elems = 0usize;
        for (i, node) in self.nodes.iter().enumerate() {
            let _t = t2c_obs::Timer::scoped_with(|| format!("layer.{}.forward_ns", node.name));
            let fetch = |src: &Src| -> Result<&Tensor<i32>> {
                match src {
                    Src::Input => Ok(input),
                    // Liveness covers every read, so a computed value can
                    // only be missing on a malformed (forward/dangling)
                    // reference — the same error either way.
                    Src::Node(id) => values.get(*id).and_then(Option::as_ref).ok_or_else(|| {
                        TensorError::InvalidArgument(format!(
                            "node {i} reads not-yet-computed node {id}"
                        ))
                    }),
                }
            };
            // Operand access must be fallible: a malformed graph (too few
            // inputs for the op) is a user error, not a panic.
            let operand = |idx: usize| -> Result<&Tensor<i32>> {
                let src = node.inputs.get(idx).ok_or_else(|| {
                    TensorError::InvalidArgument(format!(
                        "node {i} ({}) expects operand {idx} but lists {} input(s)",
                        node.name,
                        node.inputs.len()
                    ))
                })?;
                fetch(src)
            };
            // Routes a requantizer through the saturation-counting path when
            // profiling so each node reports `layer.<name>.saturated`.
            let requant_counted = |r: &MulQuant, acc: &Tensor<i32>, axis: usize, relu: bool| {
                if t2c_obs::enabled() {
                    let (y, sat) = r.apply_with_saturation(acc, axis, relu);
                    t2c_obs::counter_add(&format!("layer.{}.saturated", node.name), sat);
                    y
                } else {
                    r.apply(acc, axis, relu)
                }
            };
            let out =
                match &node.op {
                    IntOp::Quantize { .. } => input.clone(),
                    IntOp::Conv2d { weight, bias, spec, requant, relu, .. } => {
                        let xin = operand(0)?;
                        let acc = conv2d_i32(xin, weight, None, *spec)?;
                        let acc = match bias {
                            Some(b) => add_channel_bias(&acc, b, 1),
                            None => acc,
                        };
                        requant_counted(requant, &acc, 1, *relu)
                    }
                    IntOp::Conv2dPacked { weight, bias, spec, requant, relu, .. } => {
                        let xin = operand(0)?;
                        let acc = conv2d_i32_packed(xin, weight, *spec)?;
                        let acc = match bias {
                            Some(b) => add_channel_bias(&acc, b, 1),
                            None => acc,
                        };
                        requant_counted(requant, &acc, 1, *relu)
                    }
                    IntOp::Linear { weight, bias, requant, relu, .. } => {
                        let xin = operand(0)?;
                        let acc = linear_i32(xin, weight)?;
                        let acc = match bias {
                            Some(b) => add_channel_bias(&acc, b, acc.rank() - 1),
                            None => acc,
                        };
                        match requant {
                            Some(r) => requant_counted(r, &acc, acc.rank() - 1, *relu),
                            None => acc,
                        }
                    }
                    IntOp::LinearPacked { weight, bias, requant, relu, .. } => {
                        let xin = operand(0)?;
                        let acc = linear_packed_i32(xin, weight)?;
                        let acc = match bias {
                            Some(b) => add_channel_bias(&acc, b, acc.rank() - 1),
                            None => acc,
                        };
                        match requant {
                            Some(r) => requant_counted(r, &acc, acc.rank() - 1, *relu),
                            None => acc,
                        }
                    }
                    IntOp::LinearSparse { weight, bias, requant, relu, .. } => {
                        let xin = operand(0)?;
                        let acc = linear_sparse_i32(xin, weight)?;
                        let acc = match bias {
                            Some(b) => add_channel_bias(&acc, b, acc.rank() - 1),
                            None => acc,
                        };
                        match requant {
                            Some(r) => requant_counted(r, &acc, acc.rank() - 1, *relu),
                            None => acc,
                        }
                    }
                    IntOp::AddRequant { m_a, m_b, out_spec, relu } => {
                        let a = operand(0)?;
                        let b = operand(1)?;
                        add_requant(a, b, *m_a, *m_b, *out_spec, *relu)?
                    }
                    IntOp::AddConstRequant { value, m, out_spec } => {
                        let a = operand(0)?;
                        add_const_requant(a, value, *m, *out_spec)?
                    }
                    IntOp::MaxPool2d { spec } => {
                        let a = operand(0)?;
                        max_pool_i32(a, *spec)?
                    }
                    IntOp::GlobalAvgPool { frac_bits } => {
                        let a = operand(0)?;
                        global_avg_pool_i32(a, *frac_bits)?
                    }
                    IntOp::Flatten => {
                        let a = operand(0)?;
                        let n = a.dim(0);
                        let rest = a.numel() / n.max(1);
                        a.reshape(&[n, rest])?
                    }
                    IntOp::PatchToTokens => {
                        let a = operand(0)?;
                        let (n, d, h, w) = (a.dim(0), a.dim(1), a.dim(2), a.dim(3));
                        a.reshape(&[n, d, h * w])?.permute(&[0, 2, 1])?
                    }
                    IntOp::ConcatToken { token } => {
                        let a = operand(0)?;
                        concat_token(a, token)?
                    }
                    IntOp::TakeToken { index } => {
                        let a = operand(0)?;
                        take_token(a, *index)?
                    }
                    IntOp::SplitHeads { heads } => {
                        let a = operand(0)?;
                        let (n, l, d) = (a.dim(0), a.dim(1), a.dim(2));
                        a.reshape(&[n, l, *heads, d / heads])?
                            .permute(&[0, 2, 1, 3])?
                            .reshape(&[n * heads, l, d / heads])?
                    }
                    IntOp::MergeHeads { heads } => {
                        let a = operand(0)?;
                        let (nh, l, dh) = (a.dim(0), a.dim(1), a.dim(2));
                        let n = nh / heads;
                        a.reshape(&[n, *heads, l, dh])?.permute(&[0, 2, 1, 3])?.reshape(&[
                            n,
                            l,
                            heads * dh,
                        ])?
                    }
                    IntOp::BmmRequant { transpose_rhs, m, out_spec } => {
                        let a = operand(0)?;
                        let b = operand(1)?;
                        // Only the transposing branch needs a new tensor; the
                        // plain branch multiplies against the operand in place.
                        let acc = if *transpose_rhs {
                            let bt = b.permute(&[0, 2, 1])?;
                            a.bmm_i(&bt)?
                        } else {
                            a.bmm_i(b)?
                        };
                        requant_per_tensor(&acc, *m, *out_spec, false)
                    }
                    IntOp::Requant { m, out_spec } => {
                        let a = operand(0)?;
                        requant_per_tensor(a, *m, *out_spec, false)
                    }
                    IntOp::LayerNorm(ln) => {
                        let a = operand(0)?;
                        ln.apply(a)
                    }
                    IntOp::SoftmaxLut(lut) => {
                        let a = operand(0)?;
                        lut.apply(a)
                    }
                    IntOp::GeluLut(lut) => {
                        let a = operand(0)?;
                        lut.apply(a)
                    }
                };
            if t2c_obs::enabled() {
                let name = &node.name;
                let elements = out.numel() as u64;
                let macs: u64 = match &node.op {
                    IntOp::Conv2d { weight, .. } => {
                        elements * (weight.dim(1) * weight.dim(2) * weight.dim(3)) as u64
                    }
                    IntOp::Conv2dPacked { weight, .. } => elements * weight.k() as u64,
                    IntOp::Linear { weight, .. } => elements * weight.dim(1) as u64,
                    IntOp::LinearPacked { weight, .. } => elements * weight.k as u64,
                    // Skip-zero kernel: only stored slots are multiplied.
                    IntOp::LinearSparse { weight, .. } => {
                        (elements / weight.rows.max(1) as u64) * weight.stored() as u64
                    }
                    IntOp::BmmRequant { .. } => {
                        let k = fetch(&node.inputs[0]).map_or(0, |t| t.dim(t.rank() - 1));
                        elements * k as u64
                    }
                    _ => 0,
                };
                let in_elems: u64 = node
                    .inputs
                    .iter()
                    .filter_map(|s| fetch(s).ok())
                    .map(|t| t.numel() as u64)
                    .sum();
                let w_elems: u64 = match &node.op {
                    IntOp::Conv2d { weight, .. } | IntOp::Linear { weight, .. } => {
                        weight.numel() as u64
                    }
                    IntOp::Conv2dPacked { weight, .. } => weight.logical_numel() as u64,
                    IntOp::LinearPacked { weight, .. } => weight.logical_numel() as u64,
                    IntOp::LinearSparse { weight, .. } => weight.stored() as u64,
                    _ => 0,
                };
                t2c_obs::counter_add(&format!("layer.{name}.macs"), macs);
                t2c_obs::counter_add(&format!("layer.{name}.elements"), elements);
                t2c_obs::counter_add(
                    &format!("layer.{name}.bytes"),
                    (in_elems + w_elems + elements) * 4,
                );
            }
            live_elems += out.numel();
            peak_elems = peak_elems.max(live_elems);
            values.push(Some(out));
            if !keep_all {
                // Drop every operand this node was the last consumer of
                // (and the node's own output when nothing consumes it).
                for src in &self.nodes[i].inputs {
                    if let Src::Node(id) = src {
                        if last.get(*id) == Some(&i) {
                            if let Some(t) = values[*id].take() {
                                live_elems -= t.numel();
                            }
                        }
                    }
                }
                if last[i] == i {
                    if let Some(t) = values[i].take() {
                        live_elems -= t.numel();
                    }
                }
            }
        }
        Ok((values, peak_elems))
    }

    /// Classifies a float batch: integer forward + argmax over logits.
    ///
    /// # Errors
    ///
    /// Returns an error if the model is malformed.
    pub fn predict(&self, x: &Tensor<f32>) -> Result<Vec<usize>> {
        let logits = self.run(x)?;
        logits.to_f32().argmax_rows()
    }

    /// Total packed weight storage in bytes at the deployed bit widths
    /// (the paper's "Model Size (MB)" column).
    pub fn weight_bytes(&self) -> usize {
        let mut bits = 0usize;
        for node in &self.nodes {
            match &node.op {
                IntOp::Conv2d { weight, weight_spec, bias, requant, .. } => {
                    bits += weight.numel() * weight_spec.bits as usize;
                    bits += bias.as_ref().map_or(0, |b| b.len() * 32);
                    bits += requant.size_bytes() * 8;
                }
                // Prepacking is a layout change, not a storage change: the
                // panel padding is structural (all-zero, never exported), so
                // packed nodes account the logical element count and
                // `prepack` leaves `weight_bytes` invariant.
                IntOp::Conv2dPacked { weight, weight_spec, bias, requant, .. } => {
                    bits += weight.logical_numel() * weight_spec.bits as usize;
                    bits += bias.as_ref().map_or(0, |b| b.len() * 32);
                    bits += requant.size_bytes() * 8;
                }
                IntOp::Linear { weight, weight_spec, bias, requant, .. } => {
                    bits += weight.numel() * weight_spec.bits as usize;
                    bits += bias.as_ref().map_or(0, |b| b.len() * 32);
                    bits += requant.as_ref().map_or(0, super::mulquant::MulQuant::size_bytes) * 8;
                }
                IntOp::LinearPacked { weight, weight_spec, bias, requant, .. } => {
                    bits += weight.logical_numel() * weight_spec.bits as usize;
                    bits += bias.as_ref().map_or(0, |b| b.len() * 32);
                    bits += requant.as_ref().map_or(0, super::mulquant::MulQuant::size_bytes) * 8;
                }
                IntOp::LinearSparse { weight, weight_spec, bias, requant, .. } => {
                    bits += weight.stored() * weight_spec.bits as usize;
                    bits += sparse_index_bits(weight);
                    bits += bias.as_ref().map_or(0, |b| b.len() * 32);
                    bits += requant.as_ref().map_or(0, super::mulquant::MulQuant::size_bytes) * 8;
                }
                IntOp::SoftmaxLut(l) => bits += l.size_bytes() * 8,
                IntOp::GeluLut(l) => bits += l.size_bytes() * 8,
                IntOp::LayerNorm(ln) => bits += (ln.gamma_m.len() + ln.beta_b.len()) * 16,
                IntOp::ConcatToken { token } => bits += token.numel() * 8,
                IntOp::AddConstRequant { value, .. } => bits += value.numel() * 8,
                _ => {}
            }
        }
        bits.div_ceil(8)
    }

    /// A human-readable per-op summary: `id name(op) ← inputs`.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let srcs: Vec<String> = node
                .inputs
                .iter()
                .map(|s| match s {
                    Src::Input => "input".to_string(),
                    Src::Node(id) => format!("#{id}"),
                })
                .collect();
            out.push_str(&format!("#{i:<3} {:<24} ← [{}]\n", node.name, srcs.join(", ")));
        }
        out
    }

    /// Fraction of zero weights across conv/linear nodes (sparsity audit).
    pub fn weight_sparsity(&self) -> f32 {
        let mut zeros = 0usize;
        let mut total = 0usize;
        for node in &self.nodes {
            match &node.op {
                IntOp::Conv2d { weight, .. } | IntOp::Linear { weight, .. } => {
                    zeros += weight.count_zeros();
                    total += weight.numel();
                }
                IntOp::Conv2dPacked { weight, .. } => {
                    zeros += weight.count_zeros();
                    total += weight.logical_numel();
                }
                IntOp::LinearPacked { weight, .. } => {
                    zeros += weight.count_zeros();
                    total += weight.logical_numel();
                }
                IntOp::LinearSparse { weight, .. } => {
                    zeros += weight.rows * weight.cols - weight.nnz();
                    total += weight.rows * weight.cols;
                }
                _ => {}
            }
        }
        if total == 0 {
            0.0
        } else {
            zeros as f32 / total as f32
        }
    }

    /// Converts dense [`IntOp::Linear`] and [`IntOp::Conv2d`] weights to
    /// their prepacked twins ([`IntOp::LinearPacked`] /
    /// [`IntOp::Conv2dPacked`]), returning the number of nodes converted.
    ///
    /// This is the serving half of the cache-blocked GEMM path: the weight
    /// is repacked **once** into column-panel tiles so every subsequent
    /// forward pass hits `matmul_i32_sat_packed` with no per-call
    /// transpose. The transformation is bit-exact — packed ops run the
    /// same per-MAC saturation chain in the same per-element order (see
    /// `t2c_tensor::packed`) — and leaves [`IntModel::weight_bytes`] and
    /// [`IntModel::weight_sparsity`] invariant. [`IntOp::LinearSparse`]
    /// nodes are left untouched: their skip-zero kernel already has its
    /// own layout, and compressing then re-densifying would forfeit it.
    /// `t2c-serve` calls this at admission, after the lint gate passes.
    pub fn prepack(&mut self) -> usize {
        let mut converted = 0usize;
        for node in &mut self.nodes {
            let replacement = match &node.op {
                IntOp::Linear { weight, bias, requant, relu, weight_spec } => {
                    PackedMat::from_weight(weight).ok().map(|packed| IntOp::LinearPacked {
                        weight: packed,
                        bias: bias.clone(),
                        requant: requant.clone(),
                        relu: *relu,
                        weight_spec: *weight_spec,
                    })
                }
                IntOp::Conv2d { weight, bias, spec, requant, relu, weight_spec } => {
                    PackedConv::from_weight(weight, spec.groups).ok().map(|packed| {
                        IntOp::Conv2dPacked {
                            weight: packed,
                            bias: bias.clone(),
                            spec: *spec,
                            requant: requant.clone(),
                            relu: *relu,
                            weight_spec: *weight_spec,
                        }
                    })
                }
                _ => None,
            };
            if let Some(op) = replacement {
                node.op = op;
                converted += 1;
            }
        }
        converted
    }

    /// Converts dense [`IntOp::Linear`] nodes whose zero-code fraction is
    /// at least `threshold` into [`IntOp::LinearSparse`], returning the
    /// number of nodes converted.
    ///
    /// This is the deployment half of pruning: the pruners zero float
    /// weights, symmetric quantization maps those zeros to code 0, and
    /// this pass compresses the zero codes away. Encoding choice per node:
    /// a 1:4 or 2:4 N:M layout when the weights satisfy the pattern and
    /// its structural sparsity is close to the value sparsity (padding
    /// would otherwise store more than a bitmask), else the per-row
    /// bitmask. Nodes below the threshold — where skip-zero bookkeeping
    /// would cost more than it saves — and `Conv2d` nodes (no sparse conv
    /// kernel) stay dense; the dense kernels are the fallback dispatch.
    pub fn sparsify(&mut self, threshold: f32) -> usize {
        let mut converted = 0usize;
        for node in &mut self.nodes {
            let replacement = match &node.op {
                IntOp::Linear { weight, bias, requant, relu, weight_spec } => {
                    let numel = weight.numel();
                    if numel == 0 {
                        None
                    } else {
                        let value_sparsity = weight.count_zeros() as f32 / numel as f32;
                        if value_sparsity < threshold {
                            None
                        } else {
                            let sparse = pick_encoding(weight, value_sparsity);
                            let declared_sparsity = sparse.sparsity();
                            Some(IntOp::LinearSparse {
                                weight: sparse,
                                bias: bias.clone(),
                                requant: requant.clone(),
                                relu: *relu,
                                weight_spec: *weight_spec,
                                declared_sparsity,
                            })
                        }
                    }
                }
                _ => None,
            };
            if let Some(op) = replacement {
                node.op = op;
                converted += 1;
            }
        }
        converted
    }
}

/// Chooses the tightest supported sparse encoding for a linear weight:
/// an N:M layout (1:4, then 2:4) when the weights satisfy the pattern and
/// its structural sparsity `1 − n/m` is within 0.125 of the value
/// sparsity, else the general bitmask.
fn pick_encoding(weight: &Tensor<i32>, value_sparsity: f32) -> SparseMat {
    for (n, m) in [(1u8, 4u8), (2, 4)] {
        let structural = 1.0 - f32::from(n) / f32::from(m);
        if (value_sparsity - structural).abs() <= 0.125 {
            if let Ok(sp) = SparseMat::from_dense_nm(weight, n, m) {
                return sp;
            }
        }
    }
    SparseMat::from_dense(weight).expect("linear weight is rank 2")
}

/// Structural-index storage of a sparse weight: one mask bit per dense
/// element for the bitmask layout, `ceil(log2 m)` offset bits per stored
/// slot for N:M.
fn sparse_index_bits(w: &SparseMat) -> usize {
    match &w.encoding {
        SparseEncoding::Bitmask { .. } => w.rows * w.cols,
        SparseEncoding::Nm { m, .. } => {
            let off_bits = (usize::BITS - (*m as usize).saturating_sub(1).leading_zeros()) as usize;
            w.stored() * off_bits
        }
    }
}

/// Adds an accumulator-domain bias along `ch_axis` with the saturating-i32
/// semantics the lint interval model (T2C101–103) assumes: the i64
/// intermediate saturates instead of wrapping (`bias` values are arbitrary
/// i64, so `acc + bias` can exceed the i64 range the naive `+` assumes),
/// and the result is clamped onto the i32 accumulator rails. An empty bias
/// is a no-op rather than an index underflow.
fn add_channel_bias(acc: &Tensor<i32>, bias: &[i64], ch_axis: usize) -> Tensor<i32> {
    if bias.is_empty() {
        return acc.clone();
    }
    let dims = acc.dims();
    let ch_extent = dims[ch_axis];
    let inner: usize = dims[ch_axis + 1..].iter().product();
    let mut out = acc.clone();
    let os = out.as_mut_slice();
    for (i, v) in os.iter_mut().enumerate() {
        let ch = (i / inner.max(1)) % ch_extent.max(1);
        *v = (*v as i64)
            .saturating_add(bias[ch.min(bias.len() - 1)])
            .clamp(i32::MIN as i64, i32::MAX as i64) as i32;
    }
    out
}

fn linear_i32(x: &Tensor<i32>, w: &Tensor<i32>) -> Result<Tensor<i32>> {
    // Accepts [N, IN] or [N, L, IN]; weight is [OUT, IN].
    let wt = w.transpose()?;
    match x.rank() {
        2 => x.matmul_i(&wt),
        3 => {
            let (n, l, din) = (x.dim(0), x.dim(1), x.dim(2));
            let flat = x.reshape(&[n * l, din])?;
            flat.matmul_i(&wt)?.reshape(&[n, l, w.dim(0)])
        }
        r => Err(TensorError::RankMismatch { got: r, expected: 2, op: "linear_i32" }),
    }
}

fn linear_packed_i32(x: &Tensor<i32>, w: &PackedMat) -> Result<Tensor<i32>> {
    // Accepts [N, IN] or [N, L, IN]; packed rows are the OUT channels.
    match x.rank() {
        2 => matmul_i32_sat_packed(x, w),
        3 => {
            let (n, l, din) = (x.dim(0), x.dim(1), x.dim(2));
            let flat = x.reshape(&[n * l, din])?;
            matmul_i32_sat_packed(&flat, w)?.reshape(&[n, l, w.n])
        }
        r => Err(TensorError::RankMismatch { got: r, expected: 2, op: "linear_packed_i32" }),
    }
}

fn linear_sparse_i32(x: &Tensor<i32>, w: &SparseMat) -> Result<Tensor<i32>> {
    // Accepts [N, IN] or [N, L, IN]; weight rows are the OUT channels.
    match x.rank() {
        2 => matmul_sparse_i(x, w),
        3 => {
            let (n, l, din) = (x.dim(0), x.dim(1), x.dim(2));
            let flat = x.reshape(&[n * l, din])?;
            matmul_sparse_i(&flat, w)?.reshape(&[n, l, w.rows])
        }
        r => Err(TensorError::RankMismatch { got: r, expected: 2, op: "linear_sparse_i32" }),
    }
}

pub(crate) fn requant_per_tensor(
    acc: &Tensor<i32>,
    m: FixedScalar,
    spec: QuantSpec,
    relu: bool,
) -> Tensor<i32> {
    acc.map(|v| requant_scalar(v, m, spec, relu))
}

/// One per-tensor requant step — shared by the interpreter's map and the
/// plan executor's slice loops so both produce identical bits.
#[inline]
pub(crate) fn requant_scalar(v: i32, m: FixedScalar, spec: QuantSpec, relu: bool) -> i32 {
    let mut s = m.mul_shift(v as i64);
    if relu {
        s = s.max(0);
    }
    s.clamp(spec.qmin() as i64, spec.qmax() as i64) as i32
}

/// One residual-add requant step (shared with the plan executor).
#[inline]
pub(crate) fn add_requant_scalar(
    x: i32,
    y: i32,
    m_a: FixedScalar,
    m_b: FixedScalar,
    spec: QuantSpec,
    relu: bool,
) -> i32 {
    let mut v = m_a.mul_shift(x as i64) + m_b.mul_shift(y as i64);
    if relu {
        v = v.max(0);
    }
    v.clamp(spec.qmin() as i64, spec.qmax() as i64) as i32
}

fn add_requant(
    a: &Tensor<i32>,
    b: &Tensor<i32>,
    m_a: FixedScalar,
    m_b: FixedScalar,
    spec: QuantSpec,
    relu: bool,
) -> Result<Tensor<i32>> {
    a.zip_map(b, |x, y| add_requant_scalar(x, y, m_a, m_b, spec, relu))
}

/// One constant-add requant step (shared with the plan executor).
#[inline]
pub(crate) fn add_const_requant_scalar(v: i32, c: i32, m: FixedScalar, spec: QuantSpec) -> i32 {
    let sum = v as i64 + c as i64;
    m.mul_shift(sum).clamp(spec.qmin() as i64, spec.qmax() as i64) as i32
}

fn add_const_requant(
    a: &Tensor<i32>,
    c: &Tensor<i32>,
    m: FixedScalar,
    spec: QuantSpec,
) -> Result<Tensor<i32>> {
    // c broadcasts over the batch axis: c is [1, …] matching a[1..].
    let inner = c.numel();
    if !a.numel().is_multiple_of(inner) {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: c.dims().to_vec(),
            op: "add_const_requant",
        });
    }
    let cs = c.as_slice();
    let mut out = Tensor::<i32>::zeros(a.dims());
    let os = out.as_mut_slice();
    for (i, &v) in a.as_slice().iter().enumerate() {
        os[i] = add_const_requant_scalar(v, cs[i % inner], m, spec);
    }
    Ok(out)
}

fn max_pool_i32(x: &Tensor<i32>, spec: PoolSpec) -> Result<Tensor<i32>> {
    // Reuse the float kernel's geometry through a lossless i32→f32 round
    // trip is unacceptable for large ints; implement directly.
    let (n, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    let oh = (h + 2 * spec.padding - spec.kernel) / spec.stride + 1;
    let ow = (w + 2 * spec.padding - spec.kernel) / spec.stride + 1;
    let mut out = Tensor::<i32>::zeros(&[n, c, oh, ow]);
    max_pool_into(x.as_slice(), [n, c, h, w], spec, out.as_mut_slice());
    Ok(out)
}

/// The allocation-free core of the integer max pool (shared with the plan
/// executor): `xs` is `[n, c, h, w]` row-major, `os` holds the pooled
/// `[n, c, oh, ow]` result.
pub(crate) fn max_pool_into(xs: &[i32], dims: [usize; 4], spec: PoolSpec, os: &mut [i32]) {
    let [n, c, h, w] = dims;
    let oh = (h + 2 * spec.padding - spec.kernel) / spec.stride + 1;
    let ow = (w + 2 * spec.padding - spec.kernel) / spec.stride + 1;
    debug_assert_eq!(os.len(), n * c * oh * ow);
    let mut o = 0usize;
    for img in 0..n {
        for ch in 0..c {
            let base = (img * c + ch) * h * w;
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut best = i32::MIN;
                    for ki in 0..spec.kernel {
                        let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                        if ii < 0 || ii as usize >= h {
                            continue;
                        }
                        for kj in 0..spec.kernel {
                            let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                            if jj < 0 || jj as usize >= w {
                                continue;
                            }
                            best = best.max(xs[base + ii as usize * w + jj as usize]);
                        }
                    }
                    os[o] = best;
                    o += 1;
                }
            }
        }
    }
}

fn global_avg_pool_i32(x: &Tensor<i32>, frac_bits: u8) -> Result<Tensor<i32>> {
    if x.rank() != 4 {
        return Err(TensorError::RankMismatch {
            got: x.rank(),
            expected: 4,
            op: "global_avg_pool_i32",
        });
    }
    let (n, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    let mut out = Tensor::<i32>::zeros(&[n, c]);
    global_avg_pool_into(x.as_slice(), [n, c, h, w], frac_bits, out.as_mut_slice());
    Ok(out)
}

/// The allocation-free core of the global average pool (shared with the
/// plan executor).
pub(crate) fn global_avg_pool_into(xs: &[i32], dims: [usize; 4], frac_bits: u8, os: &mut [i32]) {
    let [n, c, h, w] = dims;
    debug_assert_eq!(os.len(), n * c);
    // Fixed-point 2^frac/(H·W) with 16 fractional bits of intermediate
    // precision; the output keeps `frac_bits` fractional bits.
    let m = (((1i64 << (16 + frac_bits as i64)) as f64) / (h * w) as f64).round() as i64;
    for img in 0..n {
        for ch in 0..c {
            let base = (img * c + ch) * h * w;
            let sum: i64 = xs[base..base + h * w].iter().map(|&v| v as i64).sum();
            os[img * c + ch] = round_shift(sum * m, 16) as i32;
        }
    }
}

fn concat_token(x: &Tensor<i32>, token: &Tensor<i32>) -> Result<Tensor<i32>> {
    let (n, l, d) = (x.dim(0), x.dim(1), x.dim(2));
    if token.numel() != d {
        return Err(TensorError::ShapeMismatch {
            lhs: token.dims().to_vec(),
            rhs: vec![d],
            op: "concat_token",
        });
    }
    let mut out = Tensor::<i32>::zeros(&[n, l + 1, d]);
    concat_token_into(x.as_slice(), [n, l, d], token.as_slice(), out.as_mut_slice());
    Ok(out)
}

/// The allocation-free core of the class-token prepend (shared with the
/// plan executor).
pub(crate) fn concat_token_into(xs: &[i32], dims: [usize; 3], ts: &[i32], os: &mut [i32]) {
    let [n, l, d] = dims;
    debug_assert_eq!(os.len(), n * (l + 1) * d);
    for img in 0..n {
        let base = img * (l + 1) * d;
        os[base..base + d].copy_from_slice(ts);
        os[base + d..base + (l + 1) * d].copy_from_slice(&xs[img * l * d..(img + 1) * l * d]);
    }
}

fn take_token(x: &Tensor<i32>, index: usize) -> Result<Tensor<i32>> {
    let (n, l, d) = (x.dim(0), x.dim(1), x.dim(2));
    if index >= l {
        return Err(TensorError::InvalidArgument(format!("token {index} out of {l}")));
    }
    let mut out = Tensor::<i32>::zeros(&[n, d]);
    take_token_into(x.as_slice(), [n, l, d], index, out.as_mut_slice());
    Ok(out)
}

/// The allocation-free core of the token extraction (shared with the plan
/// executor).
pub(crate) fn take_token_into(xs: &[i32], dims: [usize; 3], index: usize, os: &mut [i32]) {
    let [n, l, d] = dims;
    debug_assert_eq!(os.len(), n * d);
    for img in 0..n {
        os[img * d..(img + 1) * d]
            .copy_from_slice(&xs[(img * l + index) * d..(img * l + index) * d + d]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::FixedPointFormat;

    fn fixed(v: f32) -> FixedScalar {
        FixedPointFormat::int16_frac12().quantize(v)
    }

    #[test]
    fn minimal_model_runs_quantize_and_linear() {
        let mut m = IntModel::new();
        m.push("input", IntOp::Quantize { scale: 0.1, spec: QuantSpec::signed(8) }, vec![]);
        let w = Tensor::from_vec(vec![1, 0, 0, 1], &[2, 2]).unwrap();
        m.push(
            "fc",
            IntOp::Linear {
                weight: w,
                bias: Some(vec![10, -10]),
                requant: None,
                relu: false,
                weight_spec: QuantSpec::signed(8),
            },
            vec![Src::Node(0)],
        );
        let x = Tensor::from_vec(vec![1.0_f32, -0.5], &[1, 2]).unwrap();
        let y = m.run(&x).unwrap();
        // codes: [10, −5]; logits = codes + bias
        assert_eq!(y.as_slice(), &[20, -15]);
        assert_eq!(m.predict(&x).unwrap(), vec![0]);
    }

    #[test]
    fn malformed_graphs_error_instead_of_panicking() {
        // A node listing fewer operands than its op consumes used to panic
        // on `node.inputs[0]` / `[1]`; it must surface as Err.
        let mut m = IntModel::new();
        m.push("input", IntOp::Quantize { scale: 1.0, spec: QuantSpec::signed(8) }, vec![]);
        m.push(
            "fc",
            IntOp::Linear {
                weight: Tensor::from_vec(vec![1, 0, 0, 1], &[2, 2]).unwrap(),
                bias: None,
                requant: None,
                relu: false,
                weight_spec: QuantSpec::signed(8),
            },
            vec![], // missing operand
        );
        let x = Tensor::from_vec(vec![1.0_f32, 2.0], &[1, 2]).unwrap();
        let err = m.run(&x).unwrap_err();
        assert!(format!("{err}").contains("operand"), "unexpected error: {err}");

        // A binary op with only one listed input.
        let mut m = IntModel::new();
        m.push("input", IntOp::Quantize { scale: 1.0, spec: QuantSpec::signed(8) }, vec![]);
        m.push(
            "add",
            IntOp::AddRequant {
                m_a: fixed(1.0),
                m_b: fixed(1.0),
                out_spec: QuantSpec::signed(8),
                relu: false,
            },
            vec![Src::Node(0)],
        );
        assert!(m.run(&x).is_err());

        // Dangling / forward references already error; they must keep doing
        // so through run_quantized as well.
        let mut m = IntModel::new();
        m.push("input", IntOp::Quantize { scale: 1.0, spec: QuantSpec::signed(8) }, vec![]);
        m.push("flat", IntOp::Flatten, vec![Src::Node(7)]);
        let xq = Tensor::from_vec(vec![1, 2], &[1, 1, 1, 2]).unwrap();
        let err = m.run_quantized(&xq).unwrap_err();
        assert!(format!("{err}").contains("not-yet-computed"), "unexpected error: {err}");
    }

    #[test]
    fn op_metadata_accessors() {
        let q = IntOp::Quantize { scale: 0.1, spec: QuantSpec::unsigned(8) };
        assert_eq!(q.label(), "quantize");
        assert_eq!(q.out_spec(), Some(QuantSpec::unsigned(8)));
        assert_eq!(q.arity(), 0);
        assert_eq!(IntOp::Flatten.label(), "flatten");
        assert_eq!(IntOp::Flatten.out_spec(), None);
        assert_eq!(IntOp::Flatten.arity(), 1);
        let add = IntOp::AddRequant {
            m_a: fixed(1.0),
            m_b: fixed(0.5),
            out_spec: QuantSpec::signed(4),
            relu: false,
        };
        assert_eq!(add.arity(), 2);
        assert_eq!(add.out_spec(), Some(QuantSpec::signed(4)));
    }

    #[test]
    fn model_requires_leading_quantize() {
        let mut m = IntModel::new();
        m.push("flatten", IntOp::Flatten, vec![Src::Input]);
        assert!(m.run(&Tensor::ones(&[1, 1, 2, 2])).is_err());
    }

    #[test]
    fn add_requant_aligns_scales() {
        // a at scale 0.5, b at scale 0.25, out at scale 0.5:
        // a·1.0 + b·0.5
        let a = Tensor::from_vec(vec![4], &[1]).unwrap();
        let b = Tensor::from_vec(vec![4], &[1]).unwrap();
        let y = add_requant(&a, &b, fixed(1.0), fixed(0.5), QuantSpec::signed(8), false).unwrap();
        assert_eq!(y.as_slice(), &[6]);
    }

    #[test]
    fn global_avg_pool_fixed_point_division() {
        let x = Tensor::from_vec(vec![10, 20, 30, 40], &[1, 1, 2, 2]).unwrap();
        let y = global_avg_pool_i32(&x, 0).unwrap();
        assert_eq!(y.as_slice(), &[25]);
        // With 4 fractional bits the mean carries sub-LSB precision.
        let x2 = Tensor::from_vec(vec![10, 11, 10, 11], &[1, 1, 2, 2]).unwrap();
        let y2 = global_avg_pool_i32(&x2, 4).unwrap();
        assert_eq!(y2.as_slice(), &[168]); // 10.5 · 16
    }

    #[test]
    fn max_pool_int() {
        let x = Tensor::from_vec(vec![-5, 2, 7, 1], &[1, 1, 2, 2]).unwrap();
        let y = max_pool_i32(&x, PoolSpec::new(2)).unwrap();
        assert_eq!(y.as_slice(), &[7]);
    }

    #[test]
    fn token_ops_round_trip() {
        let x = Tensor::from_vec((0..12).collect::<Vec<i32>>(), &[1, 3, 4]).unwrap();
        let token = Tensor::from_vec(vec![100, 101, 102, 103], &[4]).unwrap();
        let with = concat_token(&x, &token).unwrap();
        assert_eq!(with.dims(), &[1, 4, 4]);
        assert_eq!(take_token(&with, 0).unwrap().as_slice(), token.as_slice());
        assert_eq!(take_token(&with, 1).unwrap().as_slice(), &[0, 1, 2, 3]);
        assert!(take_token(&with, 4).is_err());
    }

    #[test]
    fn requant_op_rescales_between_grids() {
        // 8-bit stream (scale 0.02) → 2-bit conv input (scale 0.64):
        // m = 0.02/0.64 = 1/32.
        let mut m = IntModel::new();
        m.push("input", IntOp::Quantize { scale: 0.02, spec: QuantSpec::unsigned(8) }, vec![]);
        m.push(
            "in_requant",
            IntOp::Requant {
                m: FixedPointFormat::int16_frac12().quantize(1.0 / 32.0),
                out_spec: QuantSpec::unsigned(2),
            },
            vec![Src::Node(0)],
        );
        let x = Tensor::from_vec(vec![0.0_f32, 0.64, 1.28, 5.0], &[1, 4]).unwrap();
        let y = m.run(&x).unwrap();
        // codes 0, 32, 64, 250 → /32 → 0, 1, 2, clamp(8→3)
        assert_eq!(y.as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    fn split_merge_heads_inverse() {
        let mut m = IntModel::new();
        m.push("input", IntOp::Quantize { scale: 1.0, spec: QuantSpec::signed(8) }, vec![]);
        m.push("split", IntOp::SplitHeads { heads: 2 }, vec![Src::Node(0)]);
        m.push("merge", IntOp::MergeHeads { heads: 2 }, vec![Src::Node(1)]);
        let x = Tensor::from_fn(&[2, 3, 4], |i| (i as f32) - 10.0);
        let y = m.run(&x).unwrap();
        assert_eq!(y.dims(), &[2, 3, 4]);
        assert_eq!(y.as_slice(), x.map(|v| v as i32).as_slice());
    }

    #[test]
    fn layer_norm_int_standardizes_rows() {
        let d = 8;
        let ln = LayerNormInt {
            gamma_m: vec![FixedPointFormat::int16_frac12().quantize(1.0 / (0.05 * 64.0)).raw; d],
            beta_b: vec![0; d],
            frac: 12,
            shift: 6,
            out_spec: QuantSpec::signed(8),
        };
        let x = Tensor::from_vec(vec![100, 120, 80, 90, 110, 105, 95, 100], &[1, 8]).unwrap();
        let y = ln.apply(&x);
        // Output scale 0.05: dequantized row mean ≈ 0, std ≈ 1.
        let vals: Vec<f32> = y.as_slice().iter().map(|&v| v as f32 * 0.05).collect();
        let mean: f32 = vals.iter().sum::<f32>() / 8.0;
        assert!(mean.abs() < 0.1, "mean {mean}");
        let var: f32 = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
        assert!((var - 1.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn sparsify_converts_pruned_linears_and_stays_bit_identical() {
        // fc: 2:4-patterned weights (50% zeros); head: dense. With
        // threshold 0.3 only fc converts, and it picks the N:M layout.
        let mut m = IntModel::new();
        m.push("input", IntOp::Quantize { scale: 0.1, spec: QuantSpec::signed(8) }, vec![]);
        let wfc = Tensor::from_fn(&[6, 8], |i| if i % 4 < 2 { (i as i32 % 5) - 2 } else { 0 });
        m.push(
            "fc",
            IntOp::Linear {
                weight: wfc,
                bias: Some((0..6).map(|i| i as i64 - 3).collect()),
                requant: None,
                relu: false,
                weight_spec: QuantSpec::signed(4),
            },
            vec![Src::Node(0)],
        );
        let whead = Tensor::from_fn(&[3, 6], |i| (i as i32 % 5) - 2);
        m.push(
            "head",
            IntOp::Linear {
                weight: whead,
                bias: None,
                requant: None,
                relu: false,
                weight_spec: QuantSpec::signed(4),
            },
            vec![Src::Node(1)],
        );
        let dense = m.clone();
        assert_eq!(m.sparsify(0.3), 1);
        assert_eq!(m.nodes[1].op.label(), "linear_sparse");
        assert_eq!(m.nodes[2].op.label(), "linear_int", "low-sparsity node stays dense");
        let IntOp::LinearSparse { weight, declared_sparsity, .. } = &m.nodes[1].op else {
            panic!("fc did not convert");
        };
        assert_eq!(weight.layout_label(), "2:4");
        assert!((declared_sparsity - weight.sparsity()).abs() < 1e-6);

        let x = Tensor::from_fn(&[4, 8], |i| (i as f32) * 0.07 - 1.1);
        let yd = dense.run(&x).unwrap();
        let ys = m.run(&x).unwrap();
        assert_eq!(yd.as_slice(), ys.as_slice());
        // Sparsity audit sees through the compressed storage.
        assert!((m.weight_sparsity() - dense.weight_sparsity()).abs() < 1e-6);
        // Compressed storage is smaller than dense at the same widths.
        assert!(m.weight_bytes() < dense.weight_bytes());
    }

    #[test]
    fn sparsify_prefers_bitmask_for_unstructured_masks() {
        let mut m = IntModel::new();
        m.push("input", IntOp::Quantize { scale: 0.1, spec: QuantSpec::signed(8) }, vec![]);
        // ~90% unstructured zeros: no N:M pattern fits tightly.
        let w = Tensor::from_fn(&[8, 10], |i| if i % 10 == 3 { 7 } else { 0 });
        m.push(
            "fc",
            IntOp::Linear {
                weight: w,
                bias: None,
                requant: None,
                relu: false,
                weight_spec: QuantSpec::signed(8),
            },
            vec![Src::Node(0)],
        );
        assert_eq!(m.sparsify(0.5), 1);
        let IntOp::LinearSparse { weight, .. } = &m.nodes[1].op else { panic!("not converted") };
        assert_eq!(weight.layout_label(), "bitmask");
        assert!((weight.sparsity() - 0.9).abs() < 1e-6);
    }

    #[test]
    fn add_channel_bias_saturates_instead_of_wrapping() {
        // Accumulator near the positive rail plus a huge i64 bias: the old
        // `acc + bias` i64 add wrapped to a negative value for biases near
        // i64::MAX, producing i32::MIN instead of i32::MAX.
        let acc = Tensor::from_vec(vec![5, -5], &[1, 2]).unwrap();
        let y = add_channel_bias(&acc, &[i64::MAX, i64::MIN], 1);
        assert_eq!(y.as_slice(), &[i32::MAX, i32::MIN]);
        // Near-i32::MAX bias saturates onto the accumulator rail exactly.
        let y2 = add_channel_bias(&acc, &[i64::from(i32::MAX) - 1], 1);
        assert_eq!(y2.as_slice(), &[i32::MAX, i32::MAX - 6]);
        // Empty bias is a no-op, not an index underflow panic.
        let y3 = add_channel_bias(&acc, &[], 1);
        assert_eq!(y3.as_slice(), acc.as_slice());
    }

    #[test]
    fn prepack_converts_dense_nodes_and_stays_bit_identical() {
        let mut m = IntModel::new();
        m.push("input", IntOp::Quantize { scale: 0.05, spec: QuantSpec::signed(8) }, vec![]);
        let wc = Tensor::from_fn(&[4, 2, 3, 3], |i| (i as i32 % 9) - 4);
        m.push(
            "conv",
            IntOp::Conv2d {
                weight: wc,
                bias: Some((0..4).map(|i| i as i64 * 7 - 10).collect()),
                spec: Conv2dSpec::new(1, 1),
                requant: MulQuant::from_float(
                    &[0.05],
                    &[0.0],
                    FixedPointFormat::int16_frac12(),
                    QuantSpec::signed(8),
                ),
                relu: true,
                weight_spec: QuantSpec::signed(8),
            },
            vec![Src::Node(0)],
        );
        m.push("flat", IntOp::Flatten, vec![Src::Node(1)]);
        let wf = Tensor::from_fn(&[10, 4 * 6 * 6], |i| (i as i32 % 7) - 3);
        m.push(
            "head",
            IntOp::Linear {
                weight: wf,
                bias: Some((0..10).map(|i| i as i64 - 5).collect()),
                requant: None,
                relu: false,
                weight_spec: QuantSpec::signed(8),
            },
            vec![Src::Node(2)],
        );
        let dense = m.clone();
        let bytes = dense.weight_bytes();
        let sparsity = dense.weight_sparsity();
        assert_eq!(m.prepack(), 2);
        assert_eq!(m.nodes[1].op.label(), "conv2d_packed");
        assert_eq!(m.nodes[3].op.label(), "linear_packed");
        // Prepacking is pure layout: storage accounting and the sparsity
        // audit are invariant, and outputs are bit-identical.
        assert_eq!(m.weight_bytes(), bytes);
        assert!((m.weight_sparsity() - sparsity).abs() < 1e-7);
        let x = Tensor::from_fn(&[2, 2, 6, 6], |i| (i as f32) * 0.013 - 0.4);
        assert_eq!(m.run(&x).unwrap().as_slice(), dense.run(&x).unwrap().as_slice());
        // Re-packing an already-packed model is a no-op.
        assert_eq!(m.prepack(), 0);
    }

    #[test]
    fn prepack_leaves_sparse_nodes_untouched() {
        let mut m = IntModel::new();
        m.push("input", IntOp::Quantize { scale: 0.1, spec: QuantSpec::signed(8) }, vec![]);
        let w = Tensor::from_fn(&[6, 8], |i| if i % 4 < 2 { (i as i32 % 5) - 2 } else { 0 });
        m.push(
            "fc",
            IntOp::Linear {
                weight: w,
                bias: None,
                requant: None,
                relu: false,
                weight_spec: QuantSpec::signed(4),
            },
            vec![Src::Node(0)],
        );
        assert_eq!(m.sparsify(0.3), 1);
        assert_eq!(m.prepack(), 0, "sparse nodes must keep their skip-zero layout");
        assert_eq!(m.nodes[1].op.label(), "linear_sparse");
    }

    #[test]
    fn intermediates_are_dropped_after_their_last_consumer() {
        // A deep chain of Requant nodes: with eager dropping the peak
        // liveness is 2 tensors (producer + consumer), not the whole chain.
        let mut m = IntModel::new();
        m.push("input", IntOp::Quantize { scale: 1.0, spec: QuantSpec::signed(8) }, vec![]);
        let depth = 16usize;
        for i in 0..depth {
            m.push(
                format!("rq{i}"),
                IntOp::Requant { m: fixed(1.0), out_spec: QuantSpec::signed(8) },
                vec![Src::Node(i)],
            );
        }
        let n = 64usize;
        let xq = Tensor::from_fn(&[1, n], |i| (i as i32 % 17) - 8);
        let (values, peak) = m.execute_droppable(&xq, false).unwrap();
        assert_eq!(peak, 2 * n, "peak {peak} elements, expected 2 tensors of {n}");
        // Every intermediate was released; only the output survives.
        for (i, v) in values.iter().enumerate() {
            assert_eq!(v.is_some(), i == depth, "node {i}");
        }
        // The keep-all path still retains everything (run_all contract)
        // and its peak is the full chain.
        let (all, peak_all) = m.execute_droppable(&xq, true).unwrap();
        assert!(all.iter().all(Option::is_some));
        assert_eq!(peak_all, (depth + 1) * n);
        // Outputs are identical either way.
        let y = m.run_quantized(&xq).unwrap();
        assert_eq!(y.as_slice(), all.last().unwrap().as_ref().unwrap().as_slice());
    }

    #[test]
    fn dropping_respects_multi_consumer_fanout() {
        // Node 0 feeds both branches of a residual add several steps
        // apart; it must stay live until the add consumes it.
        let mut m = IntModel::new();
        m.push("input", IntOp::Quantize { scale: 1.0, spec: QuantSpec::signed(8) }, vec![]);
        m.push(
            "rq",
            IntOp::Requant { m: fixed(0.5), out_spec: QuantSpec::signed(8) },
            vec![Src::Node(0)],
        );
        m.push(
            "add",
            IntOp::AddRequant {
                m_a: fixed(1.0),
                m_b: fixed(1.0),
                out_spec: QuantSpec::signed(8),
                relu: false,
            },
            vec![Src::Node(0), Src::Node(1)],
        );
        let xq = Tensor::from_vec(vec![10, -6, 4, 0], &[1, 4]).unwrap();
        let y = m.run_quantized(&xq).unwrap();
        assert_eq!(y.as_slice(), &[15, -9, 6, 0]);
    }

    #[test]
    fn bmm_requant_borrows_rhs_on_the_plain_branch() {
        // Both branches must agree with a manual bmm + per-tensor requant;
        // the plain branch used to clone its operand wholesale.
        let a = Tensor::from_fn(&[2, 3, 4], |i| (i as i32 % 11) - 5);
        let m_fix = fixed(0.25);
        let spec = QuantSpec::signed(8);
        let mut m = IntModel::new();
        m.push("input", IntOp::Quantize { scale: 1.0, spec: QuantSpec::signed(8) }, vec![]);
        m.push("split", IntOp::SplitHeads { heads: 1 }, vec![Src::Node(0)]);
        m.push(
            "bmm",
            IntOp::BmmRequant { transpose_rhs: false, m: m_fix, out_spec: spec },
            vec![Src::Node(1), Src::Node(1)],
        );
        // SplitHeads with 1 head is identity on [N, L, D]; bmm squares it.
        let sq = Tensor::from_fn(&[2, 4, 4], |i| (i as i32 % 5) - 2);
        let expect = requant_per_tensor(&sq.bmm_i(&sq).unwrap(), m_fix, spec, false);
        let y = m.run_quantized(&sq).unwrap();
        assert_eq!(y.as_slice(), expect.as_slice());

        // And the transposing branch matches a manual permute + bmm.
        let mut mt = IntModel::new();
        mt.push("input", IntOp::Quantize { scale: 1.0, spec: QuantSpec::signed(8) }, vec![]);
        mt.push("split", IntOp::SplitHeads { heads: 1 }, vec![Src::Node(0)]);
        mt.push(
            "bmm",
            IntOp::BmmRequant { transpose_rhs: true, m: m_fix, out_spec: spec },
            vec![Src::Node(1), Src::Node(1)],
        );
        let at = a.bmm_i(&a.permute(&[0, 2, 1]).unwrap()).unwrap();
        let expect_t = requant_per_tensor(&at, m_fix, spec, false);
        let yt = mt.run_quantized(&a).unwrap();
        assert_eq!(yt.as_slice(), expect_t.as_slice());
    }

    #[test]
    fn weight_accounting_scales_with_bits() {
        let mut m8 = IntModel::new();
        m8.push("input", IntOp::Quantize { scale: 1.0, spec: QuantSpec::signed(8) }, vec![]);
        let w = Tensor::<i32>::zeros(&[16, 16]);
        m8.push(
            "fc",
            IntOp::Linear {
                weight: w.clone(),
                bias: None,
                requant: None,
                relu: false,
                weight_spec: QuantSpec::signed(8),
            },
            vec![Src::Node(0)],
        );
        let mut m4 = m8.clone();
        if let IntOp::Linear { weight_spec, .. } = &mut m4.nodes[1].op {
            *weight_spec = QuantSpec::signed(4);
        }
        assert_eq!(m8.weight_bytes(), 256);
        assert_eq!(m4.weight_bytes(), 128);
        assert_eq!(m8.weight_sparsity(), 1.0);
    }
}
