//! Quantization target specifications.

use std::fmt;

use crate::fixed::FixedPointFormat;
use crate::observer::ObserverKind;

/// The integer grid a tensor is quantized onto: bit width and signedness.
///
/// Torch2Chip's pipeline is symmetric (zero-point 0): weights use signed
/// grids, post-ReLU activations use unsigned grids, and signed grids cover
/// the possibly-negative transformer activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuantSpec {
    /// Bit width (1..=16).
    pub bits: u8,
    /// Signed two's-complement (`true`) or unsigned (`false`).
    pub signed: bool,
}

impl QuantSpec {
    /// A signed two's-complement grid of `bits` bits:
    /// `[-2^(b-1), 2^(b-1)-1]`. The scale is still derived symmetrically
    /// from `qmax` (the positive side), but the full negative range stays
    /// usable — at 2 bits this is the difference between 4 levels and a
    /// ternary grid.
    pub fn signed(bits: u8) -> Self {
        QuantSpec { bits, signed: true }
    }

    /// An unsigned grid of `bits` bits: `[0, 2^b − 1]`.
    pub fn unsigned(bits: u8) -> Self {
        QuantSpec { bits, signed: false }
    }

    /// Smallest representable code.
    pub fn qmin(&self) -> i32 {
        if self.signed {
            -(1i32 << (self.bits - 1))
        } else {
            0
        }
    }

    /// Largest representable code.
    pub fn qmax(&self) -> i32 {
        if self.signed {
            (1i32 << (self.bits - 1)) - 1
        } else {
            (1i32 << self.bits) - 1
        }
    }

    /// Number of positive levels (used when computing scales from a
    /// clipping threshold: `scale = α / levels`).
    pub fn positive_levels(&self) -> f32 {
        self.qmax() as f32
    }

    /// The representable code interval as `(qmin, qmax)` in `i64` — the
    /// range-metadata form the static analyzer (`t2c-lint`) propagates.
    pub fn range(&self) -> (i64, i64) {
        (self.qmin() as i64, self.qmax() as i64)
    }

    /// Number of representable codes minus one (`qmax − qmin`): the grid
    /// width used to calibrate saturation-overshoot severities.
    pub fn width(&self) -> i64 {
        self.qmax() as i64 - self.qmin() as i64
    }

    /// `true` when `code` lies on this grid.
    pub fn contains(&self, code: i64) -> bool {
        code >= self.qmin() as i64 && code <= self.qmax() as i64
    }
}

impl fmt::Display for QuantSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", if self.signed { "int" } else { "uint" }, self.bits)
    }
}

/// A full layer quantization configuration: weight and activation bit
/// widths, per-channel weight scaling, observer choice and the fixed-point
/// format of the fused scale/bias.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantConfig {
    /// Weight grid.
    pub weight: QuantSpec,
    /// Activation grid.
    pub act: QuantSpec,
    /// Per-output-channel weight scales (`true`) or a single per-tensor
    /// scale.
    pub per_channel: bool,
    /// Observer used to calibrate activation ranges.
    pub observer: ObserverKind,
    /// Fixed-point format of the MulQuant scale and bias.
    pub fixed: FixedPointFormat,
    /// Keep the first (stem) layer at 8-bit when the target width is below
    /// 4 bits — standard practice in the sub-4-bit literature (SAWB/PACT,
    /// PROFIT) that the quantized twins honor. The classifier head is
    /// always 8-bit per-tensor regardless.
    pub keep_edges_8bit: bool,
}

impl QuantConfig {
    /// A `W<bits>/A<bits>` config for CNNs: signed weights, unsigned
    /// activations (post-ReLU), per-channel weights, EMA observer.
    pub fn wa(bits: u8) -> Self {
        QuantConfig {
            weight: QuantSpec::signed(bits),
            act: QuantSpec::unsigned(bits),
            per_channel: true,
            observer: ObserverKind::Ema { momentum: 0.95 },
            fixed: FixedPointFormat::int16_frac12(),
            keep_edges_8bit: true,
        }
    }

    /// A `W<w>/A<a>` config with distinct widths.
    pub fn w_a(wbits: u8, abits: u8) -> Self {
        let mut cfg = Self::wa(wbits);
        cfg.act = QuantSpec::unsigned(abits);
        cfg
    }

    /// Transformer variant: signed activations (LayerNorm outputs are
    /// zero-centred).
    pub fn vit(bits: u8) -> Self {
        QuantConfig {
            weight: QuantSpec::signed(bits),
            act: QuantSpec::signed(bits),
            per_channel: false,
            observer: ObserverKind::Ema { momentum: 0.95 },
            fixed: FixedPointFormat::int16_frac3(),
            keep_edges_8bit: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_range_is_full_twos_complement() {
        let s = QuantSpec::signed(4);
        assert_eq!(s.qmin(), -8);
        assert_eq!(s.qmax(), 7);
        let s8 = QuantSpec::signed(8);
        assert_eq!((s8.qmin(), s8.qmax()), (-128, 127));
        // 2-bit keeps 4 usable levels, not a ternary grid.
        let s2 = QuantSpec::signed(2);
        assert_eq!((s2.qmin(), s2.qmax()), (-2, 1));
    }

    #[test]
    fn unsigned_range() {
        let u = QuantSpec::unsigned(4);
        assert_eq!((u.qmin(), u.qmax()), (0, 15));
        let u8 = QuantSpec::unsigned(8);
        assert_eq!(u8.qmax(), 255);
    }

    #[test]
    fn config_presets() {
        let c = QuantConfig::wa(4);
        assert_eq!(c.weight.bits, 4);
        assert!(c.weight.signed && !c.act.signed);
        let v = QuantConfig::vit(8);
        assert!(v.act.signed);
        let m = QuantConfig::w_a(2, 4);
        assert_eq!((m.weight.bits, m.act.bits), (2, 4));
    }

    #[test]
    fn display() {
        assert_eq!(QuantSpec::signed(4).to_string(), "int4");
        assert_eq!(QuantSpec::unsigned(8).to_string(), "uint8");
    }
}
